#![warn(missing_docs)]
#![forbid(unsafe_code)]
//! # pqgram — an incrementally maintainable index for approximate lookups in hierarchical data
//!
//! A production-quality Rust implementation of
//! *Augsten, Böhlen, Gamper: "An Incrementally Maintainable Index for
//! Approximate Lookups in Hierarchical Data" (VLDB 2006)*, including every
//! substrate the paper depends on.
//!
//! The facade re-exports the workspace crates:
//!
//! * [`tree`] ([`pqgram_tree`]) — ordered labeled trees with stable node
//!   identity, the `INS`/`DEL`/`REN` edit operations with inverses, edit
//!   logs, and workload generators (random, XMark-shaped, DBLP-shaped);
//! * [`xml`] ([`pqgram_xml`]) — a from-scratch XML parser/writer mapping
//!   documents onto trees;
//! * [`ted`] ([`pqgram_ted`]) — the exact Zhang–Shasha tree edit distance
//!   the pq-gram distance approximates;
//! * [`core`] ([`pqgram_core`]) — pq-gram profiles, the index, the pq-gram
//!   distance and approximate lookups, and the paper's contribution: the
//!   delta function `δ`, the profile update function `U`, and Algorithm 1
//!   (incremental index maintenance from the log of inverse edits);
//! * [`diff`] ([`pqgram_diff`]) — a Merkle-hash guided tree diff deriving
//!   edit scripts (with logs) between document versions;
//! * [`store`] ([`pqgram_store`]) — a persistent page-based storage engine
//!   (pager, rollback journal, buffer pool, B+-tree, blob chains) holding
//!   the index relation `(treeId, pqg, cnt)` with transactional incremental
//!   updates, plus a [`DocumentStore`] that keeps the documents themselves
//!   next to the index and syncs them via derived edit scripts.
//!
//! The most common entry points are re-exported at the crate root.
//!
//! ## The 60-second tour
//!
//! ```
//! use pqgram::{build_index, update_index, PQParams, LabelTable, Tree, EditOp};
//!
//! // Build a document tree.
//! let mut labels = LabelTable::new();
//! let mut doc = Tree::with_root(labels.intern("article"));
//! let title = doc.add_child(doc.root(), labels.intern("title"));
//! doc.add_child(title, labels.intern("pq-grams"));
//! let author = doc.add_child(doc.root(), labels.intern("author"));
//! doc.add_child(author, labels.intern("N. Augsten"));
//!
//! // Index it (3,3-grams by default).
//! let params = PQParams::default();
//! let old_index = build_index(&doc, &labels, params);
//!
//! // The document evolves; only the log of inverse edits is kept.
//! let mut log = pqgram::EditLog::new();
//! let year = doc.next_node_id();
//! log.push(doc.apply_logged(EditOp::Insert {
//!     node: year, label: labels.intern("year"), parent: doc.root(), k: 1, m: 0,
//! }).unwrap());
//! log.push(doc.apply_logged(EditOp::Rename {
//!     node: title, label: labels.intern("title-2e"),
//! }).unwrap());
//!
//! // Update the index from (old index, resulting tree, log) alone.
//! let updated = update_index(&old_index, &doc, &labels, &log).unwrap().index;
//! assert_eq!(updated, build_index(&doc, &labels, params));
//! ```

pub use pqgram_core as core;
pub use pqgram_diff as diff;
pub use pqgram_store as store;
pub use pqgram_ted as ted;
pub use pqgram_tree as tree;
pub use pqgram_xml as xml;

pub use pqgram_core::join::{join as approximate_join, JoinPair, JoinStats};
pub use pqgram_core::maintain::{update_index, IndexDelta, MaintainError, UpdateStats};
pub use pqgram_core::{
    build_index, pq_distance, ForestIndex, GramKey, LookupHit, PQParams, ParamsMismatch, TreeId,
    TreeIndex,
};
pub use pqgram_diff::{sync as diff_sync, DiffError};
pub use pqgram_store::document::{DocumentStore, SyncOutcome};
pub use pqgram_store::IndexStore;
pub use pqgram_ted::tree_edit_distance;
pub use pqgram_tree::{
    optimize_log, record_script, EditError, EditLog, EditOp, InsertAnchor, LabelSym, LabelTable,
    LogOp, NodeId, OptimizeStats, ScriptConfig, ScriptMix, Tree,
};
pub use pqgram_xml::{parse_document, write_document, ParseError, WriteOptions};
