//! Property-based tests: write ∘ parse is the identity on the tree mapping,
//! for arbitrary tree shapes and hostile label content.

use pqgram_tree::{LabelTable, Tree};
use pqgram_xml::{parse_document, tokenize, write_document, WriteOptions};
use proptest::prelude::*;

/// Mirrors the writer's element-name validity check.
fn name_ish(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| {
        c.is_alphabetic() || c == '_' || c == ':' || c.is_ascii_digit() || c == '-' || c == '.'
    })
}

/// An arbitrary tree described by a preorder list of (label-pick, fanout),
/// constrained to the writer's conventions: inner nodes carry element-safe
/// names, text-ish labels only appear on leaves, and no two text leaves are
/// adjacent siblings (adjacent text runs would merge when re-parsed).
fn build_tree(shape: &[(u8, u8)], labels: &mut LabelTable, names: &[String]) -> Tree {
    const ELEMENT_SAFE: usize = 3; // names[0..3] are valid element names
    let first = shape.first().copied().unwrap_or((0, 0));
    let root_label = labels.intern(&names[first.0 as usize % ELEMENT_SAFE]);
    let mut tree = Tree::with_root(root_label);
    let mut stack = vec![(tree.root(), first.1 as usize)];
    let mut rest = shape[1..].iter();
    while let Some((parent, remaining)) = stack.pop() {
        if remaining == 0 {
            continue;
        }
        stack.push((parent, remaining - 1));
        if let Some(&(l, f)) = rest.next() {
            let want = &names[l as usize % names.len()];
            let fanout = (f % 4) as usize;
            let is_text = !name_ish(want);
            let prev_is_text =
                tree.children(parent).last().copied().is_some_and(|prev| {
                    tree.is_leaf(prev) && !name_ish(labels.name(tree.label(prev)))
                });
            if is_text && (fanout > 0 || prev_is_text) {
                // Fall back to an element-safe name.
                let sym = labels.intern(&names[l as usize % ELEMENT_SAFE]);
                let node = tree.add_child(parent, sym);
                stack.push((node, fanout));
            } else {
                let sym = labels.intern(want);
                let node = tree.add_child(parent, sym);
                stack.push((node, if is_text { 0 } else { fanout }));
            }
        }
    }
    tree
}

/// Element-name-safe labels plus text-ish labels with XML metacharacters.
fn label_pool() -> Vec<String> {
    vec![
        "a".into(),
        "item".into(),
        "x-1._y".into(),
        "text with spaces".into(),
        "a&b<c>\"d'".into(),
        "  leading & trailing  ".into(),
        "ünï-cödé".into(),
        "1starts-with-digit".into(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn write_parse_preserves_label_sequence(shape in proptest::collection::vec((0u8..8, 0u8..4), 1..80)) {
        let names = label_pool();
        let mut labels = LabelTable::new();
        let tree = build_tree(&shape, &mut labels, &names);
        let xml = write_document(&tree, &labels, &WriteOptions::default());
        let mut labels2 = LabelTable::new();
        let parsed = parse_document(&xml, &mut labels2);
        // Whitespace-bearing text labels get normalized by the parser; trees
        // whose text labels are whitespace-normal must roundtrip exactly.
        let normal = |s: &str| s.split_ascii_whitespace().collect::<Vec<_>>().join(" ") == s && !s.is_empty();
        let all_normal = tree
            .preorder(tree.root())
            .all(|n| {
                let name = labels.name(tree.label(n));
                // element-ish labels are written as tags; text-ish as text
                name_ish(name) || normal(name)
            });
        prop_assume!(all_normal);
        let parsed = parsed.expect("well-formed output");
        prop_assert_eq!(parsed.node_count(), tree.node_count());
        let seq = |t: &Tree, l: &LabelTable| -> Vec<String> {
            t.preorder(t.root()).map(|n| l.name(t.label(n)).to_string()).collect()
        };
        prop_assert_eq!(seq(&tree, &labels), seq(&parsed, &labels2));
    }

    #[test]
    fn tokenizer_never_panics_on_arbitrary_input(input in ".{0,300}") {
        // Must either tokenize or return a positioned error — never panic.
        let _ = tokenize(&input);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(input in ".{0,300}") {
        let mut labels = LabelTable::new();
        let _ = parse_document(&input, &mut labels);
    }

    #[test]
    fn parser_never_panics_on_tag_soup(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("<a>".to_string()),
                Just("</a>".to_string()),
                Just("<b x='1'>".to_string()),
                Just("</b>".to_string()),
                Just("text".to_string()),
                Just("<!-- c -->".to_string()),
                Just("<c/>".to_string()),
                Just("&amp;".to_string()),
                Just("<![CDATA[x]]>".to_string()),
            ],
            0..40,
        )
    ) {
        let soup: String = parts.concat();
        let mut labels = LabelTable::new();
        if let Ok(tree) = parse_document(&soup, &mut labels) {
            tree.validate().unwrap();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The streaming indexer must agree with parse-then-build on every
    /// well-formed document (and reject the same malformed ones).
    #[test]
    fn stream_index_matches_dom(shape in proptest::collection::vec((0u8..8, 0u8..4), 1..60)) {
        use pqgram_core::{build_index, PQParams};
        use pqgram_xml::{stream_index, ParseOptions};
        let names = label_pool();
        let mut labels = LabelTable::new();
        let tree = build_tree(&shape, &mut labels, &names);
        let xml = write_document(&tree, &labels, &WriteOptions::default());
        for params in [PQParams::new(3, 3), PQParams::new(2, 2), PQParams::new(1, 3)] {
            let streamed = stream_index(&xml, params, &ParseOptions::default());
            let mut lt2 = LabelTable::new();
            match parse_document(&xml, &mut lt2) {
                Ok(parsed) => {
                    let built = build_index(&parsed, &lt2, params);
                    prop_assert_eq!(streamed.unwrap(), built);
                }
                Err(_) => prop_assert!(streamed.is_err()),
            }
        }
    }

    /// Arbitrary input never panics the streaming indexer.
    #[test]
    fn stream_index_never_panics(input in ".{0,300}") {
        use pqgram_core::PQParams;
        use pqgram_xml::{stream_index, ParseOptions};
        let _ = stream_index(&input, PQParams::default(), &ParseOptions::default());
    }
}
