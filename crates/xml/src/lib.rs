#![warn(missing_docs)]
#![forbid(unsafe_code)]
//! A from-scratch XML parser and writer mapping documents onto
//! [`pqgram_tree::Tree`]s.
//!
//! The paper indexes XML documents (XMark, DBLP). This crate provides the
//! document ↔ tree bridge without external dependencies:
//!
//! * [`tokenize`] — a streaming tokenizer for the XML subset needed for data
//!   documents (elements, attributes, text, CDATA, comments, processing
//!   instructions, DOCTYPE, the five predefined entities and numeric
//!   character references);
//! * [`parse_document`] — builds a [`pqgram_tree::Tree`] following the usual convention of
//!   the pq-gram literature: an element becomes a node labeled with its tag
//!   name, an attribute becomes a child node labeled `@name` with one value
//!   leaf, and a text run becomes a leaf labeled with its (whitespace-
//!   normalized) content;
//! * [`write_document`] — serializes a tree back to XML (inverse of the
//!   mapping above).
//!
//! ```
//! use pqgram_tree::LabelTable;
//! use pqgram_xml::parse_document;
//!
//! let mut labels = LabelTable::new();
//! let tree = parse_document(r#"<dblp><article key="42"><title>pq-grams</title></article></dblp>"#,
//!                           &mut labels).unwrap();
//! assert_eq!(labels.name(tree.label(tree.root())), "dblp");
//! assert_eq!(tree.node_count(), 6); // dblp, article, @key, 42, title, pq-grams
//! ```

mod error;
mod parse;
pub mod stream;
mod token;
mod write;

pub use error::{ParseError, ParseErrorKind};
pub use parse::{parse_document, parse_document_with, ParseOptions};
pub use stream::stream_index;
pub use token::{tokenize, Attribute, Token, Tokenizer};
pub use write::{write_document, WriteOptions};
