//! Parse errors with positions.

use std::fmt;

/// What went wrong while parsing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Input ended inside a construct.
    UnexpectedEof,
    /// A character that cannot start/continue the current construct.
    UnexpectedChar(char),
    /// `</b>` closing an unopened or differently-named element.
    MismatchedCloseTag {
        /// The element that is actually open.
        expected: String,
        /// The close-tag name encountered.
        found: String,
    },
    /// Close tag with no element open.
    UnopenedCloseTag(String),
    /// Element(s) left open at end of input.
    UnclosedElement(String),
    /// Empty or malformed name.
    BadName,
    /// Malformed entity/character reference.
    BadEntity(String),
    /// Document has no root element, or content outside the root.
    BadDocumentStructure(&'static str),
    /// Attribute appears twice on one element.
    DuplicateAttribute(String),
}

/// A parse error with 1-based line/column of the offending position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Error category and payload.
    pub kind: ParseErrorKind,
    /// 1-based line.
    pub line: usize,
    /// 1-based column (in characters).
    pub column: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: ", self.line, self.column)?;
        match &self.kind {
            ParseErrorKind::UnexpectedEof => write!(f, "unexpected end of input"),
            ParseErrorKind::UnexpectedChar(c) => write!(f, "unexpected character {c:?}"),
            ParseErrorKind::MismatchedCloseTag { expected, found } => {
                write!(
                    f,
                    "mismatched close tag: expected </{expected}>, found </{found}>"
                )
            }
            ParseErrorKind::UnopenedCloseTag(n) => {
                write!(f, "close tag </{n}> with no open element")
            }
            ParseErrorKind::UnclosedElement(n) => write!(f, "element <{n}> left open"),
            ParseErrorKind::BadName => write!(f, "malformed name"),
            ParseErrorKind::BadEntity(e) => write!(f, "malformed entity reference &{e};"),
            ParseErrorKind::BadDocumentStructure(msg) => write!(f, "{msg}"),
            ParseErrorKind::DuplicateAttribute(a) => write!(f, "duplicate attribute {a:?}"),
        }
    }
}

impl std::error::Error for ParseError {}
