//! Streaming pq-gram index construction: index an XML document without
//! materializing its tree.
//!
//! The paper's documents reach hundreds of megabytes (DBLP: 211 MB); the
//! DOM-style [`crate::parse_document`] needs the whole tree in memory.
//! [`stream_index`] instead folds the tokenizer's events directly into the
//! pq-gram index: it keeps only the open-element stack (ancestor labels for
//! p-parts) and, per open element, the labels of the children seen so far
//! (for the q-part windows emitted when the element closes). Peak memory is
//! `O(depth + max fanout)` instead of `O(document)`.
//!
//! The result is identical to `build_index(parse_document(xml), …)` — the
//! equivalence is property-tested.

use crate::error::ParseError;
use crate::parse::ParseOptions;
use crate::token::{Token, Tokenizer};
use pqgram_core::{PQParams, TreeIndex};
use pqgram_tree::fingerprint::{combine, Fingerprint, NULL_FINGERPRINT, TUPLE_SEED};
use pqgram_tree::{karp_rabin, FxHashMap};

/// One open element: its label fingerprint and the fingerprints of the
/// children encountered so far.
struct Frame {
    label: Fingerprint,
    children: Vec<Fingerprint>,
}

/// Streaming gram emitter shared by the XML reader and tests.
struct Emitter {
    params: PQParams,
    /// Open-element label fingerprints, root first.
    stack: Vec<Frame>,
    index: TreeIndex,
    /// Cache: label string → fingerprint (labels repeat massively).
    fp_cache: FxHashMap<String, Fingerprint>,
}

impl Emitter {
    fn new(params: PQParams) -> Self {
        Emitter {
            params,
            stack: Vec::new(),
            index: TreeIndex::empty(params),
            fp_cache: FxHashMap::default(),
        }
    }

    fn fp(&mut self, label: &str) -> Fingerprint {
        if let Some(&f) = self.fp_cache.get(label) {
            return f;
        }
        let f = karp_rabin(label);
        self.fp_cache.insert(label.to_string(), f);
        f
    }

    /// p-part accumulator for a node whose label fingerprint is `label`,
    /// with the current stack as its ancestors.
    fn ppart_acc(&self, label: Fingerprint) -> Fingerprint {
        let p = self.params.p();
        let mut acc = TUPLE_SEED;
        // p−1 ancestors (null-padded at the front), closest last.
        for i in (1..p).rev() {
            let anc = if i <= self.stack.len() {
                self.stack[self.stack.len() - i].label
            } else {
                NULL_FINGERPRINT
            };
            acc = combine(acc, anc);
        }
        combine(acc, label)
    }

    /// Emits all grams anchored at a node with the given label and child
    /// fingerprints (children empty = leaf), assuming the stack holds the
    /// node's proper ancestors.
    fn emit_anchor(&mut self, label: Fingerprint, children: &[Fingerprint]) {
        let q = self.params.q();
        let stem = self.ppart_acc(label);
        if children.is_empty() {
            let mut acc = stem;
            for _ in 0..q {
                acc = combine(acc, NULL_FINGERPRINT);
            }
            self.index.add(acc);
            return;
        }
        let f = children.len();
        for start in 0..f + q - 1 {
            let mut acc = stem;
            for t in 0..q {
                let ext = start + t;
                let entry = if ext >= q - 1 && ext < q - 1 + f {
                    children[ext - (q - 1)]
                } else {
                    NULL_FINGERPRINT
                };
                acc = combine(acc, entry);
            }
            self.index.add(acc);
        }
    }

    /// A leaf child of the current top-of-stack element (text or empty
    /// element without attributes): emit its anchored gram and register it
    /// with the parent.
    fn leaf_child(&mut self, label: Fingerprint) {
        self.emit_anchor(label, &[]);
        if let Some(top) = self.stack.last_mut() {
            top.children.push(label);
        }
    }

    fn open(&mut self, label: Fingerprint) {
        self.stack.push(Frame {
            label,
            children: Vec::new(),
        });
    }

    fn close(&mut self) {
        let frame = self.stack.pop().expect("balanced");
        self.emit_anchor(frame.label, &frame.children);
        if let Some(top) = self.stack.last_mut() {
            top.children.push(frame.label);
        }
    }
}

/// Builds the pq-gram index of an XML document in one streaming pass, with
/// the same document→tree mapping as [`crate::parse_document_with`].
pub fn stream_index(
    input: &str,
    params: PQParams,
    options: &ParseOptions,
) -> Result<TreeIndex, ParseError> {
    let mut tokens = Tokenizer::new(input);
    let mut emitter = Emitter::new(params);
    let mut open_names: Vec<String> = Vec::new();
    let mut seen_root = false;

    let structure_err = |tok: &Tokenizer<'_>, msg: &'static str| {
        let (line, column) = tok.position();
        ParseError {
            kind: crate::error::ParseErrorKind::BadDocumentStructure(msg),
            line,
            column,
        }
    };

    while let Some(tok) = tokens.next() {
        match tok? {
            Token::StartTag {
                name,
                attributes,
                self_closing,
            } => {
                if open_names.is_empty() && seen_root {
                    return Err(structure_err(&tokens, "content after the root element"));
                }
                seen_root = true;
                let label = emitter.fp(&name);
                emitter.open(label);
                open_names.push(name);
                if options.include_attributes {
                    let mut attrs = attributes;
                    attrs.sort_by(|a, b| a.name.cmp(&b.name));
                    for attr in attrs {
                        let attr_label = emitter.fp(&format!("@{}", attr.name));
                        let value_label = emitter.fp(&attr.value);
                        // The @attr node with its single value leaf.
                        emitter.open(attr_label);
                        emitter.leaf_child(value_label);
                        emitter.close();
                    }
                }
                if self_closing {
                    emitter.close();
                    open_names.pop();
                }
            }
            Token::EndTag { name } => match open_names.pop() {
                Some(open) if open == name => emitter.close(),
                _ => return Err(structure_err(&tokens, "unbalanced close tag")),
            },
            Token::Text(raw) => {
                if !options.include_text {
                    continue;
                }
                let content = if options.normalize_whitespace {
                    raw.split_ascii_whitespace().collect::<Vec<_>>().join(" ")
                } else {
                    raw
                };
                if content.is_empty() {
                    continue;
                }
                if open_names.is_empty() {
                    return Err(structure_err(&tokens, "text outside the root element"));
                }
                let label = emitter.fp(&content);
                emitter.leaf_child(label);
            }
            Token::Comment(_) | Token::ProcessingInstruction(_) | Token::Doctype(_) => {}
        }
    }
    if !open_names.is_empty() {
        return Err(structure_err(&tokens, "unclosed element at end of input"));
    }
    if !seen_root {
        return Err(structure_err(&tokens, "document has no root element"));
    }
    Ok(emitter.index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_document_with;
    use crate::write::{write_document, WriteOptions};
    use pqgram_core::build_index;
    use pqgram_tree::generate::{dblp, xmark};
    use pqgram_tree::LabelTable;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_equivalent(xml: &str, params: PQParams, options: &ParseOptions) {
        let streamed = stream_index(xml, params, options).expect("stream");
        let mut lt = LabelTable::new();
        let tree = parse_document_with(xml, &mut lt, options).expect("parse");
        let built = build_index(&tree, &lt, params);
        assert_eq!(streamed, built, "stream and DOM disagree on {xml:?}");
    }

    #[test]
    fn matches_dom_on_handwritten_documents() {
        let docs = [
            "<a/>",
            "<a>text</a>",
            r#"<a x="1" b="2"><c>hi</c><d/><c>ho</c></a>"#,
            "<a><b><c><d/></c></b></a>",
            "<dblp><article key='k'><author>X</author><title>T &amp; U</title></article></dblp>",
            "<a>one<b/>two</a>",
        ];
        for doc in docs {
            for params in [
                PQParams::new(3, 3),
                PQParams::new(2, 2),
                PQParams::new(1, 4),
            ] {
                assert_equivalent(doc, params, &ParseOptions::default());
            }
        }
    }

    #[test]
    fn matches_dom_on_generated_documents() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut lt = LabelTable::new();
        for tree in [
            xmark(&mut rng, &mut lt, 3_000),
            dblp(&mut rng, &mut lt, 3_000),
        ] {
            let xml = write_document(&tree, &lt, &WriteOptions::default());
            assert_equivalent(&xml, PQParams::default(), &ParseOptions::default());
        }
    }

    #[test]
    fn respects_parse_options() {
        let doc = r#"<a x="1"><b>text</b></a>"#;
        let options = ParseOptions {
            include_attributes: false,
            include_text: false,
            normalize_whitespace: true,
        };
        assert_equivalent(doc, PQParams::default(), &options);
        // And the two option sets genuinely differ.
        let with = stream_index(doc, PQParams::default(), &ParseOptions::default()).unwrap();
        let without = stream_index(doc, PQParams::default(), &options).unwrap();
        assert_ne!(with, without);
    }

    #[test]
    fn rejects_malformed_documents() {
        for doc in ["", "<a>", "</a>", "<a/><b/>", "text only", "<a></b>"] {
            assert!(
                stream_index(doc, PQParams::default(), &ParseOptions::default()).is_err(),
                "{doc:?} must be rejected"
            );
        }
    }
}
