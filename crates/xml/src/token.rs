//! Streaming XML tokenizer.
//!
//! Supports the subset of XML 1.0 needed for data documents: elements,
//! attributes, character data, CDATA sections, comments, processing
//! instructions and DOCTYPE declarations (the latter three are tokenized but
//! typically skipped by the parser), the five predefined entities and decimal
//! / hexadecimal character references.

use crate::error::{ParseError, ParseErrorKind};

/// An attribute `name="value"` with the value entity-decoded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name.
    pub name: String,
    /// Decoded attribute value.
    pub value: String,
}

/// One XML token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Token {
    /// `<name attr="v" …>`; `self_closing` for `<name …/>`.
    StartTag {
        /// Element name.
        name: String,
        /// Attributes in document order, values decoded.
        attributes: Vec<Attribute>,
        /// True for `<name …/>`.
        self_closing: bool,
    },
    /// `</name>`.
    EndTag {
        /// Element name.
        name: String,
    },
    /// Character data between tags, entity-decoded. Includes CDATA content.
    Text(String),
    /// `<!-- … -->` (content without the delimiters).
    Comment(String),
    /// `<?target …?>` (content without the delimiters).
    ProcessingInstruction(String),
    /// `<!DOCTYPE …>` (content without the delimiters; internal subsets with
    /// balanced brackets are consumed).
    Doctype(String),
}

/// Tokenizes a complete document string. Convenience wrapper collecting
/// [`Tokenizer`].
pub fn tokenize(input: &str) -> Result<Vec<Token>, ParseError> {
    Tokenizer::new(input).collect()
}

/// Pull tokenizer over a `&str` input.
pub struct Tokenizer<'a> {
    input: &'a str,
    /// Byte offset of the cursor.
    pos: usize,
    line: usize,
    /// Byte offset where the current line starts (column = chars since).
    line_start: usize,
    finished: bool,
}

impl<'a> Tokenizer<'a> {
    /// Creates a tokenizer at the start of `input`.
    pub fn new(input: &'a str) -> Self {
        Tokenizer {
            input,
            pos: 0,
            line: 1,
            line_start: 0,
            finished: false,
        }
    }

    fn error(&self, kind: ParseErrorKind) -> ParseError {
        let column = self.input[self.line_start..self.pos].chars().count() + 1;
        ParseError {
            kind,
            line: self.line,
            column,
        }
    }

    /// Current 1-based (line, column) — used by the parser for its own
    /// errors.
    pub fn position(&self) -> (usize, usize) {
        (
            self.line,
            self.input[self.line_start..self.pos].chars().count() + 1,
        )
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.line_start = self.pos;
        }
        Some(c)
    }

    fn eat(&mut self, prefix: &str) -> bool {
        if self.rest().starts_with(prefix) {
            for _ in 0..prefix.chars().count() {
                self.bump();
            }
            true
        } else {
            false
        }
    }

    fn skip_whitespace(&mut self) {
        while self.peek().is_some_and(|c| c.is_ascii_whitespace()) {
            self.bump();
        }
    }

    /// Consumes until `needle`, returning the skipped slice (needle consumed).
    fn until(&mut self, needle: &str) -> Result<&'a str, ParseError> {
        let start = self.pos;
        match self.rest().find(needle) {
            Some(off) => {
                let end = start + off;
                while self.pos < end {
                    self.bump();
                }
                for _ in 0..needle.chars().count() {
                    self.bump();
                }
                Ok(&self.input[start..end])
            }
            None => {
                self.pos = self.input.len();
                Err(self.error(ParseErrorKind::UnexpectedEof))
            }
        }
    }

    fn name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        match self.peek() {
            Some(c) if is_name_start(c) => {
                self.bump();
            }
            _ => return Err(self.error(ParseErrorKind::BadName)),
        }
        while self.peek().is_some_and(is_name_char) {
            self.bump();
        }
        Ok(self.input[start..self.pos].to_string())
    }

    fn entity(&mut self) -> Result<char, ParseError> {
        // Cursor is just past '&'.
        let start = self.pos;
        let semi = match self.rest().find(';') {
            Some(off) if off <= 10 => start + off,
            _ => return Err(self.error(ParseErrorKind::BadEntity(String::new()))),
        };
        let body = &self.input[start..semi];
        let decoded = match body {
            "lt" => '<',
            "gt" => '>',
            "amp" => '&',
            "apos" => '\'',
            "quot" => '"',
            _ => {
                let code = if let Some(hex) = body.strip_prefix("#x").or(body.strip_prefix("#X")) {
                    u32::from_str_radix(hex, 16).ok()
                } else if let Some(dec) = body.strip_prefix('#') {
                    dec.parse::<u32>().ok()
                } else {
                    None
                };
                code.and_then(char::from_u32)
                    .ok_or_else(|| self.error(ParseErrorKind::BadEntity(body.to_string())))?
            }
        };
        while self.pos <= semi {
            self.bump();
        }
        Ok(decoded)
    }

    fn attribute_value(&mut self) -> Result<String, ParseError> {
        let quote = match self.peek() {
            Some(c @ ('"' | '\'')) => {
                self.bump();
                c
            }
            Some(c) => return Err(self.error(ParseErrorKind::UnexpectedChar(c))),
            None => return Err(self.error(ParseErrorKind::UnexpectedEof)),
        };
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error(ParseErrorKind::UnexpectedEof)),
                Some(c) if c == quote => {
                    self.bump();
                    return Ok(out);
                }
                Some('&') => {
                    self.bump();
                    out.push(self.entity()?);
                }
                Some('<') => return Err(self.error(ParseErrorKind::UnexpectedChar('<'))),
                Some(c) => {
                    self.bump();
                    out.push(c);
                }
            }
        }
    }

    fn start_tag(&mut self) -> Result<Token, ParseError> {
        // Cursor is just past '<'.
        let name = self.name()?;
        let mut attributes = Vec::new();
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some('>') => {
                    self.bump();
                    return Ok(Token::StartTag {
                        name,
                        attributes,
                        self_closing: false,
                    });
                }
                Some('/') => {
                    self.bump();
                    if self.eat(">") {
                        return Ok(Token::StartTag {
                            name,
                            attributes,
                            self_closing: true,
                        });
                    }
                    return Err(self.error(ParseErrorKind::UnexpectedChar('/')));
                }
                Some(c) if is_name_start(c) => {
                    let attr_name = self.name()?;
                    self.skip_whitespace();
                    if !self.eat("=") {
                        let c = self.peek().unwrap_or('\0');
                        return Err(self.error(ParseErrorKind::UnexpectedChar(c)));
                    }
                    self.skip_whitespace();
                    let value = self.attribute_value()?;
                    if attributes.iter().any(|a: &Attribute| a.name == attr_name) {
                        return Err(self.error(ParseErrorKind::DuplicateAttribute(attr_name)));
                    }
                    attributes.push(Attribute {
                        name: attr_name,
                        value,
                    });
                }
                Some(c) => return Err(self.error(ParseErrorKind::UnexpectedChar(c))),
                None => return Err(self.error(ParseErrorKind::UnexpectedEof)),
            }
        }
    }

    fn end_tag(&mut self) -> Result<Token, ParseError> {
        // Cursor is just past '</'.
        let name = self.name()?;
        self.skip_whitespace();
        if !self.eat(">") {
            let c = self.peek().unwrap_or('\0');
            return Err(self.error(ParseErrorKind::UnexpectedChar(c)));
        }
        Ok(Token::EndTag { name })
    }

    fn doctype(&mut self) -> Result<Token, ParseError> {
        // Cursor is just past '<!DOCTYPE'. Consume to matching '>', honoring
        // one level of internal subset brackets.
        let start = self.pos;
        let mut depth = 0i32;
        loop {
            match self.bump() {
                None => return Err(self.error(ParseErrorKind::UnexpectedEof)),
                Some('[') => depth += 1,
                Some(']') => depth -= 1,
                Some('>') if depth <= 0 => {
                    let body = &self.input[start..self.pos - 1];
                    return Ok(Token::Doctype(body.trim().to_string()));
                }
                Some(_) => {}
            }
        }
    }

    fn text(&mut self) -> Result<Token, ParseError> {
        let mut out = String::new();
        loop {
            match self.peek() {
                None | Some('<') => break,
                Some('&') => {
                    self.bump();
                    out.push(self.entity()?);
                }
                Some(c) => {
                    self.bump();
                    out.push(c);
                }
            }
        }
        Ok(Token::Text(out))
    }

    fn next_token(&mut self) -> Result<Option<Token>, ParseError> {
        if self.pos >= self.input.len() {
            return Ok(None);
        }
        if self.eat("<") {
            if self.eat("!--") {
                let body = self.until("-->")?;
                return Ok(Some(Token::Comment(body.to_string())));
            }
            if self.eat("![CDATA[") {
                let body = self.until("]]>")?;
                return Ok(Some(Token::Text(body.to_string())));
            }
            if self.eat("!DOCTYPE") {
                return self.doctype().map(Some);
            }
            if self.eat("?") {
                let body = self.until("?>")?;
                return Ok(Some(Token::ProcessingInstruction(body.to_string())));
            }
            if self.eat("/") {
                return self.end_tag().map(Some);
            }
            return self.start_tag().map(Some);
        }
        self.text().map(Some)
    }
}

impl Iterator for Tokenizer<'_> {
    type Item = Result<Token, ParseError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.finished {
            return None;
        }
        match self.next_token() {
            Ok(Some(t)) => Some(Ok(t)),
            Ok(None) => None,
            Err(e) => {
                self.finished = true;
                Some(Err(e))
            }
        }
    }
}

fn is_name_start(c: char) -> bool {
    c.is_alphabetic() || c == '_' || c == ':'
}

fn is_name_char(c: char) -> bool {
    is_name_start(c) || c.is_ascii_digit() || c == '-' || c == '.'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn text(s: &str) -> Token {
        Token::Text(s.to_string())
    }

    #[test]
    fn simple_element() {
        let toks = tokenize("<a>hi</a>").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::StartTag {
                    name: "a".into(),
                    attributes: vec![],
                    self_closing: false
                },
                text("hi"),
                Token::EndTag { name: "a".into() },
            ]
        );
    }

    #[test]
    fn attributes_and_self_closing() {
        let toks = tokenize(r#"<a x="1" y='two'/>"#).unwrap();
        assert_eq!(
            toks,
            vec![Token::StartTag {
                name: "a".into(),
                attributes: vec![
                    Attribute {
                        name: "x".into(),
                        value: "1".into()
                    },
                    Attribute {
                        name: "y".into(),
                        value: "two".into()
                    },
                ],
                self_closing: true,
            }]
        );
    }

    #[test]
    fn entities_decoded_in_text_and_attributes() {
        let toks = tokenize(r#"<a t="&lt;&amp;&gt;">x &#65;&#x42; &quot;q&apos;</a>"#).unwrap();
        match &toks[0] {
            Token::StartTag { attributes, .. } => assert_eq!(attributes[0].value, "<&>"),
            t => panic!("unexpected {t:?}"),
        }
        assert_eq!(toks[1], text("x AB \"q'"));
    }

    #[test]
    fn cdata_is_raw_text() {
        let toks = tokenize("<a><![CDATA[<not> &amp; parsed]]></a>").unwrap();
        assert_eq!(toks[1], text("<not> &amp; parsed"));
    }

    #[test]
    fn comments_pi_doctype() {
        let toks =
            tokenize("<?xml version=\"1.0\"?><!DOCTYPE dblp SYSTEM \"dblp.dtd\"><!-- c --><a/>")
                .unwrap();
        assert_eq!(
            toks[0],
            Token::ProcessingInstruction("xml version=\"1.0\"".into())
        );
        assert_eq!(toks[1], Token::Doctype("dblp SYSTEM \"dblp.dtd\"".into()));
        assert_eq!(toks[2], Token::Comment(" c ".into()));
        assert!(matches!(toks[3], Token::StartTag { .. }));
    }

    #[test]
    fn doctype_with_internal_subset() {
        let toks = tokenize("<!DOCTYPE a [<!ELEMENT a (b)> ]><a/>").unwrap();
        assert!(matches!(&toks[0], Token::Doctype(d) if d.contains("ELEMENT")));
    }

    #[test]
    fn errors_carry_position() {
        let err = tokenize("<a>\n  <b x=></b></a>").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(matches!(err.kind, ParseErrorKind::UnexpectedChar('>')));
    }

    #[test]
    fn bad_entity_rejected() {
        assert!(matches!(
            tokenize("<a>&bogus;</a>").unwrap_err().kind,
            ParseErrorKind::BadEntity(_)
        ));
        assert!(matches!(
            tokenize("<a>&#xZZ;</a>").unwrap_err().kind,
            ParseErrorKind::BadEntity(_)
        ));
        // Unterminated entity (no ';' within bounds).
        assert!(tokenize("<a>&ampampampamp</a>").is_err());
    }

    #[test]
    fn duplicate_attribute_rejected() {
        assert!(matches!(
            tokenize(r#"<a x="1" x="2"/>"#).unwrap_err().kind,
            ParseErrorKind::DuplicateAttribute(_)
        ));
    }

    #[test]
    fn eof_inside_tag() {
        assert_eq!(
            tokenize("<a").unwrap_err().kind,
            ParseErrorKind::UnexpectedEof
        );
        assert_eq!(
            tokenize("<!-- never closed").unwrap_err().kind,
            ParseErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn raw_text_lt_in_attribute_rejected() {
        assert!(matches!(
            tokenize(r#"<a x="<"/>"#).unwrap_err().kind,
            ParseErrorKind::UnexpectedChar('<')
        ));
    }

    #[test]
    fn unicode_names_and_text() {
        let toks = tokenize("<bücher>Ä ö</bücher>").unwrap();
        assert!(matches!(&toks[0], Token::StartTag { name, .. } if name == "bücher"));
        assert_eq!(toks[1], text("Ä ö"));
    }
}
