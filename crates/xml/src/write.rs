//! [`Tree`] → XML serialization (inverse of the parse mapping).
//!
//! * a node whose label starts with `@` and that has exactly one leaf child
//!   is written as an attribute of its parent element;
//! * a leaf whose label is a valid XML name is written as an empty element;
//! * any other leaf is written as a text run (escaped);
//! * every other node is written as an element.
//!
//! `parse(write(tree))` yields a tree isomorphic to the input whenever labels
//! honor the conventions above (text leaves must not be whitespace-only if
//! whitespace normalization is enabled on the parse side).

use pqgram_tree::{LabelTable, NodeId, Tree};
use std::fmt::Write;

/// Options for [`write_document`].
#[derive(Clone, Debug, Default)]
pub struct WriteOptions {
    /// Pretty-print with this many spaces per level (`None` = compact).
    pub indent: Option<usize>,
    /// Emit an `<?xml version="1.0"?>` declaration.
    pub declaration: bool,
}

/// Serializes `tree` as an XML document.
pub fn write_document(tree: &Tree, labels: &LabelTable, options: &WriteOptions) -> String {
    let mut out = String::new();
    if options.declaration {
        out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
        if options.indent.is_some() {
            out.push('\n');
        }
    }
    write_node(&mut out, tree, labels, tree.root(), 0, options);
    out
}

fn write_node(
    out: &mut String,
    tree: &Tree,
    labels: &LabelTable,
    node: NodeId,
    level: usize,
    options: &WriteOptions,
) {
    let label = labels.name(tree.label(node));
    let newline_indent = |out: &mut String, level: usize| {
        if let Some(width) = options.indent {
            if !out.is_empty() && !out.ends_with('\n') {
                out.push('\n');
            }
            for _ in 0..level * width {
                out.push(' ');
            }
        }
    };

    if tree.is_leaf(node) && !is_valid_name(label) {
        newline_indent(out, level);
        escape_text(out, label);
        return;
    }

    newline_indent(out, level);
    out.push('<');
    out.push_str(label);

    // Attributes: children labeled `@name` with exactly one leaf child.
    let mut content = Vec::new();
    for &child in tree.children(node) {
        let child_label = labels.name(tree.label(child));
        if let Some(attr_name) = child_label.strip_prefix('@') {
            let grandchildren = tree.children(child);
            if is_valid_name(attr_name)
                && grandchildren.len() == 1
                && tree.is_leaf(grandchildren[0])
            {
                out.push(' ');
                out.push_str(attr_name);
                out.push_str("=\"");
                escape_attr(out, labels.name(tree.label(grandchildren[0])));
                out.push('"');
                continue;
            }
        }
        content.push(child);
    }

    if content.is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    let only_text = content.len() == 1
        && tree.is_leaf(content[0])
        && !is_valid_name(labels.name(tree.label(content[0])));
    for &child in &content {
        write_node(out, tree, labels, child, level + 1, options);
    }
    if !only_text {
        newline_indent(out, level);
    }
    let _ = write!(out, "</{label}>");
}

/// True if `s` is a valid XML element/attribute name for our tokenizer.
pub(crate) fn is_valid_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| {
        c.is_alphabetic() || c == '_' || c == ':' || c.is_ascii_digit() || c == '-' || c == '.'
    })
}

fn escape_text(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            _ => out.push(c),
        }
    }
}

fn escape_attr(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_document;

    #[test]
    fn roundtrip_simple() {
        let mut lt = LabelTable::new();
        let doc = r#"<a x="1"><b>hi there</b><c/></a>"#;
        let tree = parse_document(doc, &mut lt).unwrap();
        let written = write_document(&tree, &lt, &WriteOptions::default());
        let mut lt2 = LabelTable::new();
        let back = parse_document(&written, &mut lt2).unwrap();
        assert_eq!(tree.node_count(), back.node_count());
        let names = |t: &Tree, l: &LabelTable| -> Vec<String> {
            t.preorder(t.root())
                .map(|n| l.name(t.label(n)).to_string())
                .collect()
        };
        assert_eq!(names(&tree, &lt), names(&back, &lt2));
    }

    #[test]
    fn escaping_roundtrip() {
        let mut lt = LabelTable::new();
        let doc = r#"<a x="a&quot;&lt;b"><t>x &amp; y &lt; z</t></a>"#;
        let tree = parse_document(doc, &mut lt).unwrap();
        let written = write_document(&tree, &lt, &WriteOptions::default());
        let mut lt2 = LabelTable::new();
        let back = parse_document(&written, &mut lt2).unwrap();
        let names = |t: &Tree, l: &LabelTable| -> Vec<String> {
            t.preorder(t.root())
                .map(|n| l.name(t.label(n)).to_string())
                .collect()
        };
        assert_eq!(names(&tree, &lt), names(&back, &lt2));
    }

    #[test]
    fn pretty_print_has_indentation() {
        let mut lt = LabelTable::new();
        let tree = parse_document("<a><b><c/></b></a>", &mut lt).unwrap();
        let written = write_document(
            &tree,
            &lt,
            &WriteOptions {
                indent: Some(2),
                declaration: true,
            },
        );
        assert!(written.starts_with("<?xml"));
        assert!(written.contains("\n  <b>"));
        assert!(written.contains("\n    <c/>"));
    }

    #[test]
    fn generated_trees_roundtrip() {
        use pqgram_tree::generate::{dblp, xmark};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(10);
        let mut lt = LabelTable::new();
        for tree in [
            xmark(&mut rng, &mut lt, 3_000),
            dblp(&mut rng, &mut lt, 3_000),
        ] {
            let written = write_document(&tree, &lt, &WriteOptions::default());
            let mut lt2 = LabelTable::new();
            let back = parse_document(&written, &mut lt2).unwrap();
            assert_eq!(tree.node_count(), back.node_count());
        }
    }

    #[test]
    fn valid_name_checks() {
        assert!(is_valid_name("a"));
        assert!(is_valid_name("_x-1.b"));
        assert!(!is_valid_name(""));
        assert!(!is_valid_name("1a"));
        assert!(!is_valid_name("two words"));
        assert!(!is_valid_name("@attr"));
    }
}
