//! Document → [`Tree`] construction.
//!
//! The mapping follows the pq-gram literature (and Augsten et al.'s
//! experimental setup): element nodes are labeled with their tag name,
//! attributes become children labeled `@name` (sorted by name, since XML
//! attribute order is not significant) each carrying one value leaf, and
//! text runs become leaves labeled with their whitespace-normalized content.

use crate::error::{ParseError, ParseErrorKind};
use crate::token::{Token, Tokenizer};
use pqgram_tree::{LabelTable, NodeId, Tree};

/// Options controlling the document → tree mapping.
#[derive(Clone, Debug)]
pub struct ParseOptions {
    /// Map attributes to `@name(value)` children (default `true`).
    pub include_attributes: bool,
    /// Map text runs to value leaves (default `true`).
    pub include_text: bool,
    /// Collapse internal whitespace in text and drop whitespace-only runs
    /// (default `true`; data documents are whitespace-insensitive).
    pub normalize_whitespace: bool,
}

impl Default for ParseOptions {
    fn default() -> Self {
        ParseOptions {
            include_attributes: true,
            include_text: true,
            normalize_whitespace: true,
        }
    }
}

/// Parses an XML document into a tree with default [`ParseOptions`].
pub fn parse_document(input: &str, labels: &mut LabelTable) -> Result<Tree, ParseError> {
    parse_document_with(input, labels, &ParseOptions::default())
}

/// Parses an XML document into a tree.
pub fn parse_document_with(
    input: &str,
    labels: &mut LabelTable,
    options: &ParseOptions,
) -> Result<Tree, ParseError> {
    let mut tokens = Tokenizer::new(input);
    let mut tree: Option<Tree> = None;
    // Stack of open element nodes.
    let mut stack: Vec<(String, NodeId)> = Vec::new();

    let structure_err = |tok: &Tokenizer<'_>, msg: &'static str| {
        let (line, column) = tok.position();
        ParseError {
            kind: ParseErrorKind::BadDocumentStructure(msg),
            line,
            column,
        }
    };

    while let Some(tok) = tokens.next() {
        match tok? {
            Token::StartTag {
                name,
                attributes,
                self_closing,
            } => {
                let node = match (&mut tree, stack.last()) {
                    (None, _) => {
                        let t = Tree::with_root(labels.intern(&name));
                        let root = t.root();
                        tree = Some(t);
                        root
                    }
                    (Some(t), Some(&(_, parent))) => t.add_child(parent, labels.intern(&name)),
                    (Some(_), None) => {
                        return Err(structure_err(&tokens, "content after the root element"))
                    }
                };
                let t = tree.as_mut().expect("set above");
                if options.include_attributes {
                    let mut attrs = attributes;
                    attrs.sort_by(|a, b| a.name.cmp(&b.name));
                    for attr in attrs {
                        let attr_node =
                            t.add_child(node, labels.intern(&format!("@{}", attr.name)));
                        t.add_child(attr_node, labels.intern(&attr.value));
                    }
                }
                if !self_closing {
                    stack.push((name, node));
                }
            }
            Token::EndTag { name } => match stack.pop() {
                Some((open, _)) if open == name => {}
                Some((open, _)) => {
                    let (line, column) = tokens.position();
                    return Err(ParseError {
                        kind: ParseErrorKind::MismatchedCloseTag {
                            expected: open,
                            found: name,
                        },
                        line,
                        column,
                    });
                }
                None => {
                    let (line, column) = tokens.position();
                    return Err(ParseError {
                        kind: ParseErrorKind::UnopenedCloseTag(name),
                        line,
                        column,
                    });
                }
            },
            Token::Text(raw) => {
                if !options.include_text {
                    continue;
                }
                let content = if options.normalize_whitespace {
                    normalize_ws(&raw)
                } else {
                    raw
                };
                if content.is_empty() {
                    continue;
                }
                match (&mut tree, stack.last()) {
                    (Some(t), Some(&(_, parent))) => {
                        t.add_child(parent, labels.intern(&content));
                    }
                    _ => return Err(structure_err(&tokens, "text outside the root element")),
                }
            }
            Token::Comment(_) | Token::ProcessingInstruction(_) | Token::Doctype(_) => {}
        }
    }

    if let Some((open, _)) = stack.pop() {
        let (line, column) = tokens.position();
        return Err(ParseError {
            kind: ParseErrorKind::UnclosedElement(open),
            line,
            column,
        });
    }
    tree.ok_or_else(|| structure_err(&tokens, "document has no root element"))
}

fn normalize_ws(s: &str) -> String {
    s.split_ascii_whitespace().collect::<Vec<_>>().join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(tree: &Tree, labels: &LabelTable) -> Vec<String> {
        tree.preorder(tree.root())
            .map(|n| labels.name(tree.label(n)).to_string())
            .collect()
    }

    #[test]
    fn element_text_attribute_mapping() {
        let mut lt = LabelTable::new();
        let t = parse_document(r#"<a x="1"><b>hi</b></a>"#, &mut lt).unwrap();
        assert_eq!(names(&t, &lt), vec!["a", "@x", "1", "b", "hi"]);
    }

    #[test]
    fn attributes_sorted_by_name() {
        let mut lt = LabelTable::new();
        let t = parse_document(r#"<a z="1" b="2"/>"#, &mut lt).unwrap();
        assert_eq!(names(&t, &lt), vec!["a", "@b", "2", "@z", "1"]);
    }

    #[test]
    fn whitespace_only_text_dropped() {
        let mut lt = LabelTable::new();
        let t = parse_document("<a>\n  <b/>\n  <c/>\n</a>", &mut lt).unwrap();
        assert_eq!(names(&t, &lt), vec!["a", "b", "c"]);
    }

    #[test]
    fn whitespace_normalized_inside_text() {
        let mut lt = LabelTable::new();
        let t = parse_document("<a>  two\n words </a>", &mut lt).unwrap();
        assert_eq!(names(&t, &lt), vec!["a", "two words"]);
    }

    #[test]
    fn options_can_disable_attributes_and_text() {
        let mut lt = LabelTable::new();
        let opts = ParseOptions {
            include_attributes: false,
            include_text: false,
            normalize_whitespace: true,
        };
        let t = parse_document_with(r#"<a x="1"><b>hi</b></a>"#, &mut lt, &opts).unwrap();
        assert_eq!(names(&t, &lt), vec!["a", "b"]);
    }

    #[test]
    fn prolog_comments_pi_skipped() {
        let mut lt = LabelTable::new();
        let doc = "<?xml version=\"1.0\"?><!DOCTYPE a><!-- hello --><a><!-- inner --><b/></a>";
        let t = parse_document(doc, &mut lt).unwrap();
        assert_eq!(names(&t, &lt), vec!["a", "b"]);
    }

    #[test]
    fn mismatched_tags_rejected() {
        let mut lt = LabelTable::new();
        let err = parse_document("<a><b></a></b>", &mut lt).unwrap_err();
        assert!(matches!(
            err.kind,
            ParseErrorKind::MismatchedCloseTag { .. }
        ));
    }

    #[test]
    fn unclosed_and_unopened_rejected() {
        let mut lt = LabelTable::new();
        assert!(matches!(
            parse_document("<a><b>", &mut lt).unwrap_err().kind,
            ParseErrorKind::UnclosedElement(_)
        ));
        assert!(matches!(
            parse_document("</a>", &mut lt).unwrap_err().kind,
            ParseErrorKind::UnopenedCloseTag(_)
        ));
    }

    #[test]
    fn multiple_roots_rejected() {
        let mut lt = LabelTable::new();
        let err = parse_document("<a/><b/>", &mut lt).unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::BadDocumentStructure(_)));
    }

    #[test]
    fn empty_document_rejected() {
        let mut lt = LabelTable::new();
        for doc in ["", "   ", "<!-- only a comment -->"] {
            assert!(parse_document(doc, &mut lt).is_err(), "doc {doc:?}");
        }
    }

    #[test]
    fn dblp_like_snippet() {
        let mut lt = LabelTable::new();
        let doc = r#"<dblp>
            <article key="journals/x/1">
                <author>A. Author</author>
                <title>On pq-grams &amp; indexes</title>
                <year>2006</year>
            </article>
        </dblp>"#;
        let t = parse_document(doc, &mut lt).unwrap();
        assert_eq!(
            names(&t, &lt),
            vec![
                "dblp",
                "article",
                "@key",
                "journals/x/1",
                "author",
                "A. Author",
                "title",
                "On pq-grams & indexes",
                "year",
                "2006",
            ]
        );
        t.validate().unwrap();
    }
}
