//! Golden-report tests for `cargo xtask analyze`.
//!
//! Each directory under `tests/fixtures/` is a miniature workspace
//! (mirroring the `crates/store/src` layout the analyses scope on) with an
//! `expected.txt` golden in the `report::render` format. The seeded
//! fixtures prove each analysis actually fires; the clean fixture plus
//! the seeding test prove a newly introduced violation fails the build.

use std::fs;
use std::path::PathBuf;
use xtask::analyze::report::render;
use xtask::analyze::{dir_model, run_dir, run_model};

/// `tests/fixtures/` under the xtask crate. `CARGO_MANIFEST_DIR` is unset
/// when the suite is built with bare rustc (offline fallback); then the
/// path is resolved against the workspace root, where xtask always runs.
fn fixtures() -> PathBuf {
    std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("crates/xtask"))
        .join("tests/fixtures")
}

fn golden(case: &str) -> String {
    let dir = fixtures().join(case);
    let report = run_dir(&dir).expect("analyze fixture");
    let actual = render(&report.all());
    let expected = fs::read_to_string(dir.join("expected.txt")).expect("read golden");
    assert_eq!(
        actual, expected,
        "fixture `{case}` drifted from its golden report"
    );
    actual
}

#[test]
fn clean_fixture_has_no_findings() {
    assert!(golden("clean").is_empty());
}

#[test]
fn panic_reachable_fixture_fails_hard() {
    let text = golden("panic_reachable");
    assert!(text.contains("panic-recovery"), "{text}");
    assert!(text.contains("recover -> header"), "{text}");
}

#[test]
fn txn_violation_fixture_fails_hard() {
    let text = golden("txn_violation");
    assert!(text.contains("txn-discipline"), "{text}");
    assert!(
        text.contains("unguarded_put -> Pager::write_page"),
        "{text}"
    );
}

#[test]
fn discarded_result_fixture_flags_both_idioms() {
    let text = golden("discarded_result");
    assert_eq!(text.matches("discarded-result").count(), 2, "{text}");
}

#[test]
fn sync_order_fixture_fails_hard() {
    let text = golden("sync_order");
    assert!(text.contains("txn-ordering"), "{text}");
}

/// The acceptance property in one test: start from the clean fixture and
/// seed a fresh violation; the run must flip from green to failing.
#[test]
fn seeding_a_violation_into_the_clean_fixture_fails() {
    let dir = fixtures().join("clean");
    let clean = run_dir(&dir).expect("analyze fixture");
    assert!(clean.hard.is_empty(), "clean fixture must start green");

    let mut m = dir_model(&dir).expect("model");
    m.add_file(
        "crates/store/src/seeded.rs",
        "// analyze: entrypoint(recovery)\npub fn reopen(v: &[u8]) -> u8 { v[0] }\n",
    )
    .expect("parse seeded file");
    let report = run_model(&m, false);
    assert!(
        report.hard.iter().any(|v| v.rule == "panic-recovery"),
        "seeded violation must fail the run: {:?}",
        report.hard
    );
}

#[test]
fn clean_locks_fixture_is_hard_clean_with_census() {
    let dir = fixtures().join("clean_locks");
    let report = run_dir(&dir).expect("analyze fixture");
    assert!(report.hard.is_empty(), "{:?}", report.hard);
    let text = golden("clean_locks");
    assert_eq!(text.matches("lock-discipline").count(), 2, "{text}");
}

#[test]
fn lock_inversion_fixture_fails_hard() {
    let text = golden("lock_inversion");
    assert!(text.contains("lock-order"), "{text}");
    assert!(
        text.contains("acquires `shard` while holding `pager`"),
        "{text}"
    );
}

#[test]
fn guard_across_io_fixture_fails_hard() {
    let text = golden("guard_across_io");
    assert!(text.contains("lock-guard-io"), "{text}");
    assert!(text.contains("reaches the VFS seam"), "{text}");
}

#[test]
fn reader_writes_fixture_fails_hard() {
    let text = golden("reader_writes");
    assert!(text.contains("reader-writes"), "{text}");
    assert!(
        text.contains("IndexStoreReader::lookup -> Pager::transactional -> Pager::write_page"),
        "{text}"
    );
}

#[test]
fn tainted_index_fixture_fails_hard() {
    let text = golden("tainted_index");
    assert!(text.contains("taint-index"), "{text}");
    assert!(text.contains("untrusted `off` as a slice index"), "{text}");
}

#[test]
fn tainted_alloc_fixture_fails_hard() {
    let text = golden("tainted_alloc");
    assert!(text.contains("taint-alloc"), "{text}");
    assert!(
        text.contains("untrusted `n` as an allocation size"),
        "{text}"
    );
}

#[test]
fn missing_validator_fixture_fails_hard() {
    let text = golden("missing_validator");
    assert!(text.contains("taint-escape"), "{text}");
    assert!(text.contains("declares no validation"), "{text}");
}

/// Seeding analogue for the taint pass: mark a source in the clean
/// fixture and index with its result; the run must flip to failing.
#[test]
fn seeding_a_tainted_use_into_the_clean_fixture_fails() {
    let dir = fixtures().join("clean");
    let clean = run_dir(&dir).expect("analyze fixture");
    assert!(clean.hard.is_empty(), "clean fixture must start green");

    let mut m = dir_model(&dir).expect("model");
    m.add_file(
        "crates/store/src/seeded.rs",
        "// analyze: untrusted-source\npub fn raw_len(b: &[u8]) -> u64 { 0 }\n\
         pub fn read(b: &[u8]) -> u8 {\nlet n = raw_len(b);\nb[n as usize]\n}\n",
    )
    .expect("parse seeded file");
    let report = run_model(&m, false);
    assert!(
        report.hard.iter().any(|v| v.rule == "taint-index"),
        "seeded tainted index must fail the run: {:?}",
        report.hard
    );
}

/// Seeding analogue for the lock pass: drop an inversion into the clean
/// lock fixture; the run must flip from green to failing.
#[test]
fn seeding_an_inversion_into_the_clean_lock_fixture_fails() {
    let dir = fixtures().join("clean_locks");
    let clean = run_dir(&dir).expect("analyze fixture");
    assert!(clean.hard.is_empty(), "clean_locks must start green");

    let mut m = dir_model(&dir).expect("model");
    m.add_file(
        "crates/store/src/seeded.rs",
        "impl Pool {\npub fn seeded(&self) {\nlet mut pager = self.pager.lock();\n\
         let mut shard = self.shard.lock();\n} }\n",
    )
    .expect("parse seeded file");
    let report = run_model(&m, false);
    assert!(
        report.hard.iter().any(|v| v.rule == "lock-order"),
        "seeded inversion must fail the run: {:?}",
        report.hard
    );
}
