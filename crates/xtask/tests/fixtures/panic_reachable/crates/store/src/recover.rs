//! Seeded violation: a panic site (`.unwrap()`) reachable from a
//! recovery entry point, two calls deep.

// analyze: entrypoint(recovery)
pub fn recover(bytes: &[u8]) -> u32 {
    header(bytes)
}

fn header(bytes: &[u8]) -> u32 {
    parse(bytes).unwrap()
}

fn parse(bytes: &[u8]) -> Option<u32> {
    if bytes.first().copied() == Some(1) {
        Some(1)
    } else {
        None
    }
}
