//! Seeded violation: commit retires the journal before syncing the data
//! file — the exact crash-durability bug the ordering anchor exists for.

pub struct Pager;

impl Pager {
    pub fn commit(&mut self) {
        self.journal.take();
        self.file.sync();
    }
}
