//! I/O under a no-I/O guard: `flush_under_shard` keeps the `shard`-class
//! guard live across a call that reaches the VFS seam, with no mediating
//! `pager`-class guard — a fault-injection stall under the lock blocks
//! every other thread hashing to that shard.
//!
//! Fixture files are parsed by the analyzer model, never compiled, so the
//! bodies only have to be lexically plausible Rust.

pub trait VfsFile {
    fn sync(&mut self);
}

pub struct RealFile;

impl VfsFile for RealFile {
    fn sync(&mut self) {}
}

pub struct Shard {
    hits: u64,
}

pub struct Pool {
    // analyze: lock-class(shard)
    shard: Mutex<Shard>,
    file: RealFile,
}

impl Pool {
    pub fn flush_under_shard(&mut self) {
        let mut shard = self.shard.lock();
        self.file.sync();
        shard.hits += 1;
    }
}
