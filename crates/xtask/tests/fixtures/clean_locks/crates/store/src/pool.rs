//! Correct lock discipline, in miniature: every lock field carries a
//! class, `shard` is taken before `pager`, the only I/O under the shard
//! guard is mediated by the live pager-class guard, and the reader type
//! never reaches a write. The golden report is just the acquisition
//! census.
//!
//! Fixture files are parsed by the analyzer model, never compiled, so the
//! bodies only have to be lexically plausible Rust.

pub trait VfsFile {
    fn sync(&mut self);
}

pub struct RealFile;

impl VfsFile for RealFile {
    fn sync(&mut self) {}
}

pub struct Shard {
    hits: u64,
}

impl Shard {
    pub fn hit(&mut self) {
        self.hits += 1;
    }
}

pub struct Pager {
    file: RealFile,
}

impl Pager {
    // analyze: txn-sink
    pub fn write_page(&mut self) {
        self.file.sync();
    }
}

pub struct Pool {
    // analyze: lock-class(shard)
    shard: Mutex<Shard>,
    // analyze: lock-class(pager)
    pager: Mutex<Pager>,
}

impl Pool {
    // analyze: txn-boundary
    pub fn flush(&self) {
        let mut shard = self.shard.lock();
        let mut pager = self.pager.lock();
        pager.write_page();
        shard.hit();
    }
}

pub struct IndexStoreReader {
    total: u64,
}

impl IndexStoreReader {
    pub fn lookup(&self) -> u64 {
        self.total
    }
}
