//! Seeded violation: a count decoded from raw disk bytes steers a slice
//! index without any validation boundary in between.

// analyze: untrusted-source
pub fn read_u16(bytes: &[u8], at: usize) -> u16 {
    let mut w = [0u8; 2];
    w.copy_from_slice(&bytes[at..at + 2]);
    u16::from_le_bytes(w)
}

pub fn first_row(bytes: &[u8]) -> u8 {
    let off = usize::from(read_u16(bytes, 0));
    bytes[off]
}
