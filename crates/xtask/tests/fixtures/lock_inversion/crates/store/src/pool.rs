//! Lock-order inversion: `backwards` takes the `pager`-class lock first
//! and then a `shard`-class lock, inverting the declared `shard → pager`
//! order — the classic two-thread deadlock shape.
//!
//! Fixture files are parsed by the analyzer model, never compiled, so the
//! bodies only have to be lexically plausible Rust.

pub struct Shard {
    hits: u64,
}

pub struct Pager {
    count: u64,
}

pub struct Pool {
    // analyze: lock-class(shard)
    shard: Mutex<Shard>,
    // analyze: lock-class(pager)
    pager: Mutex<Pager>,
}

impl Pool {
    pub fn backwards(&self) {
        let mut pager = self.pager.lock();
        let mut shard = self.shard.lock();
        shard.hits += pager.count;
    }
}
