//! Seeded violations: both `Result`-laundering idioms the discard
//! analysis is zero-tolerance about in the storage crate.

pub fn flush(f: &mut File) {
    let _ = f.sync();
}

pub fn close(f: &mut File) {
    f.sync().ok();
}
