//! Seeded violation: a public path reaches a mutating write with no
//! transaction boundary anywhere above it.

pub struct Pager {
    dirty: bool,
}

impl Pager {
    // analyze: txn-sink
    pub fn write_page(&mut self) {
        self.dirty = true;
    }
}

pub fn unguarded_put(p: &mut Pager) {
    p.write_page();
}
