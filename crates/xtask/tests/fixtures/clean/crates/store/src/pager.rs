//! A miniature storage crate in the shape `cargo xtask analyze` accepts:
//! the recovery entry point reaches no panic site, every mutating path
//! passes a transaction boundary, commit orders data-sync before journal
//! retire, and no `Result` is laundered away.
//!
//! Fixture files are parsed by the analyzer model, never compiled, so the
//! bodies only have to be lexically plausible Rust.

pub struct Pager {
    dirty: bool,
}

impl Pager {
    // analyze: txn-sink
    pub fn write_page(&mut self) {
        self.dirty = true;
    }

    // analyze: txn-boundary
    pub fn transactional(&mut self) {
        self.write_page();
    }

    pub fn commit(&mut self) {
        self.file.sync();
        self.journal.take();
    }
}

// analyze: entrypoint(recovery)
pub fn recover(p: &mut Pager) -> Result<(), ()> {
    if p.dirty {
        return Err(());
    }
    Ok(())
}

pub fn put(p: &mut Pager) {
    p.transactional();
}
