//! Seeded violation: a raw header value is handed to workspace code that
//! declares no taint contract — the missing-validator case. `place` would
//! be fine if it were marked `validates(pageid)` (and checked).

// analyze: untrusted-source
pub fn meta_slot(bytes: &[u8]) -> u64 {
    let mut w = [0u8; 8];
    w.copy_from_slice(&bytes[..8]);
    u64::from_le_bytes(w)
}

pub fn place(raw: u64) -> u32 {
    raw as u32
}

pub fn root_page(bytes: &[u8]) -> u32 {
    let raw = meta_slot(bytes);
    place(raw)
}
