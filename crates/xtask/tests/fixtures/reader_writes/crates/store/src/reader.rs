//! Single-writer violation: a method of the read-only snapshot handle
//! `IndexStoreReader` reaches a mutating `txn-sink` — the shape the
//! reader/writer split exists to forbid. The write goes through the
//! transaction boundary, so only the `reader-writes` rule fires.
//!
//! Fixture files are parsed by the analyzer model, never compiled, so the
//! bodies only have to be lexically plausible Rust.

pub struct Pager {
    dirty: bool,
}

impl Pager {
    // analyze: txn-sink
    pub fn write_page(&mut self) {
        self.dirty = true;
    }

    // analyze: txn-boundary
    pub fn transactional(&mut self) {
        self.write_page();
    }
}

pub struct IndexStoreReader {
    pager: Pager,
}

impl IndexStoreReader {
    pub fn lookup(&mut self) -> u64 {
        self.pager.transactional();
        1
    }
}
