//! Seeded violation: an on-disk row count sizes a `Vec` before anything
//! clamps it against the physical entry size — the corrupt-length OOM.

// analyze: untrusted-source
pub fn row_count(bytes: &[u8]) -> u64 {
    let mut w = [0u8; 8];
    w.copy_from_slice(&bytes[..8]);
    u64::from_le_bytes(w)
}

pub fn decode_rows(bytes: &[u8]) -> Vec<u64> {
    let n = row_count(bytes) as usize;
    Vec::with_capacity(n)
}
