//! A minimal Rust source masker.
//!
//! The lint rules in [`crate::rules`] are lexical: they look for tokens
//! like `.unwrap()` or `as u32` in *code*, never inside comments or string
//! literals. Instead of a full parser, [`mask`] rewrites a source file so
//! that every byte belonging to a comment, string, char or byte literal is
//! replaced by a space while newlines and all remaining code bytes stay in
//! place. Rules can then use plain substring scans on the masked text and
//! still report exact line numbers against the original file.
//!
//! Handled syntax: line comments, nested block comments, string literals
//! with escapes, raw (byte) strings with arbitrary `#` fences, char
//! literals, and lifetimes (which are *not* char literals).

/// Returns `source` with comment/string/char-literal bytes blanked out.
pub fn mask(source: &str) -> String {
    let bytes = source.as_bytes();
    let mut out = bytes.to_vec();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                i = blank_until(&mut out, bytes, i, |b, j| b[j] == b'\n');
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                i = blank_block_comment(&mut out, bytes, i);
            }
            b'"' => {
                i = blank_string(&mut out, bytes, i);
            }
            b'r' | b'b' if is_raw_string_start(bytes, i) => {
                i = blank_raw_string(&mut out, bytes, i);
            }
            b'b' if bytes.get(i + 1) == Some(&b'"') => {
                out[i] = b' ';
                i = blank_string(&mut out, bytes, i + 1);
            }
            b'b' if bytes.get(i + 1) == Some(&b'\'') => {
                out[i] = b' ';
                i = blank_char(&mut out, bytes, i + 1);
            }
            b'\'' => {
                i = blank_char(&mut out, bytes, i);
            }
            _ => i += 1,
        }
    }
    // `out` only ever replaces ASCII bytes with spaces, so it stays UTF-8.
    String::from_utf8(out).unwrap_or_default()
}

/// The 1-based line number of byte offset `pos` in `text`.
pub fn line_of(text: &str, pos: usize) -> usize {
    text.as_bytes()[..pos.min(text.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
        + 1
}

fn blank(out: &mut [u8], i: usize) {
    if out[i] != b'\n' {
        out[i] = b' ';
    }
}

fn blank_until(
    out: &mut [u8],
    bytes: &[u8],
    mut i: usize,
    stop: impl Fn(&[u8], usize) -> bool,
) -> usize {
    while i < bytes.len() && !stop(bytes, i) {
        blank(out, i);
        i += 1;
    }
    i
}

fn blank_block_comment(out: &mut [u8], bytes: &[u8], mut i: usize) -> usize {
    let mut depth = 0usize;
    while i < bytes.len() {
        if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
            depth += 1;
            blank(out, i);
            blank(out, i + 1);
            i += 2;
        } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
            depth -= 1;
            blank(out, i);
            blank(out, i + 1);
            i += 2;
            if depth == 0 {
                return i;
            }
        } else {
            blank(out, i);
            i += 1;
        }
    }
    i
}

fn blank_string(out: &mut [u8], bytes: &[u8], start: usize) -> usize {
    // The delimiting quotes stay visible so that argument counters (see
    // `rules::top_level_args`) still see a masked literal as content.
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if i + 1 < bytes.len() => {
                blank(out, i);
                blank(out, i + 1);
                i += 2;
            }
            b'"' => return i + 1,
            _ => {
                blank(out, i);
                i += 1;
            }
        }
    }
    i
}

/// True at `r"`, `r#`, `br"`, `br#` (raw string openers).
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    // Don't treat identifiers ending in r/b (e.g. `var"` is impossible, but
    // `for r in` is) as raw-string starts: require the prefix to begin a
    // token, i.e. the previous byte must not be an identifier byte.
    if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        return false;
    }
    let rest = &bytes[i..];
    // Only `r` and `br` open raw strings; `rb` is not a Rust prefix, and
    // inventing it would desynchronise the masker on the tokens that follow.
    let after_prefix = if rest.starts_with(b"br") {
        2
    } else if rest.starts_with(b"r") {
        1
    } else {
        return false; // bare `b` handles `b"`/`b'` separately
    };
    let mut j = after_prefix;
    while rest.get(j) == Some(&b'#') {
        j += 1;
    }
    rest.get(j) == Some(&b'"')
}

fn blank_raw_string(out: &mut [u8], bytes: &[u8], start: usize) -> usize {
    let mut i = start;
    while bytes.get(i) == Some(&b'r') || bytes.get(i) == Some(&b'b') {
        blank(out, i);
        i += 1;
    }
    let mut fence = 0usize;
    while bytes.get(i) == Some(&b'#') {
        blank(out, i);
        fence += 1;
        i += 1;
    }
    i += 1; // opening quote stays visible
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let closes = bytes[i + 1..].iter().take_while(|&&b| b == b'#').count() >= fence;
            if closes {
                for k in i + 1..=i + fence {
                    blank(out, k);
                }
                return i + fence + 1;
            }
        }
        blank(out, i);
        i += 1;
    }
    i
}

/// Distinguishes char literals (`'a'`, `'\n'`) from lifetimes (`'static`).
fn blank_char(out: &mut [u8], bytes: &[u8], start: usize) -> usize {
    let is_char = match bytes.get(start + 1) {
        Some(b'\\') => true,
        Some(_) => {
            // `'X'` where X is one char (possibly multi-byte UTF-8).
            let mut j = start + 1;
            j += utf8_len(bytes[j]);
            bytes.get(j) == Some(&b'\'')
        }
        None => false,
    };
    if !is_char {
        return start + 1; // a lifetime: keep the identifier visible
    }
    let mut i = start + 1; // delimiting quotes stay visible
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if i + 1 < bytes.len() => {
                blank(out, i);
                blank(out, i + 1);
                i += 2;
            }
            b'\'' => return i + 1,
            _ => {
                blank(out, i);
                i += 1;
            }
        }
    }
    i
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >= 0xf0 => 4,
        b if b >= 0xe0 => 3,
        _ => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_comments_and_strings() {
        let src = "let x = \"a.unwrap()\"; // .unwrap()\nlet y = v.unwrap();\n";
        let masked = mask(src);
        assert_eq!(masked.matches(".unwrap()").count(), 1, "{masked}");
        assert_eq!(masked.len(), src.len(), "masking must preserve offsets");
    }

    #[test]
    fn masks_raw_strings_and_chars() {
        let src = "let s = r#\"as u32\"#; let c = 'a'; let l: &'static str = b\"as u8\";";
        let masked = mask(src);
        assert!(!masked.contains("as u32"), "{masked}");
        assert!(!masked.contains("as u8"), "{masked}");
        assert!(masked.contains("'static"), "lifetimes survive: {masked}");
    }

    #[test]
    fn masks_nested_block_comments() {
        let src = "/* outer /* inner as u64 */ still */ x as u64";
        let masked = mask(src);
        assert_eq!(masked.matches("as u64").count(), 1, "{masked}");
    }

    #[test]
    fn rb_is_not_a_raw_string_prefix() {
        // Only `r`/`br` are raw prefixes in Rust. An invented `rb` prefix
        // would swallow the `#` fence tokens and desynchronise everything
        // after them.
        assert!(!is_raw_string_start(b"rb\"x\"", 0));
        assert!(!is_raw_string_start(b"rb#\"x\"#", 0));
        assert!(is_raw_string_start(b"br\"x\"", 0));
        assert!(is_raw_string_start(b"br##\"x\"##", 0));
        assert!(is_raw_string_start(b"r#\"x\"#", 0));
        // A prefix mid-identifier is not a raw string (`for r in …`).
        assert!(!is_raw_string_start(b"for\"", 2));
    }

    #[test]
    fn raw_string_fences_respect_hash_count() {
        // The `"#` inside the literal must not close an `r##`-fenced string.
        let src = "let s = r##\"a \"# b as u16\"##; let x = y as u16;";
        let masked = mask(src);
        assert_eq!(masked.matches("as u16").count(), 1, "{masked}");
        assert_eq!(masked.len(), src.len());
    }

    #[test]
    fn double_quote_char_literal_does_not_open_a_string() {
        let src = "let q = '\"'; let s = \"as u32\"; let v = w as u32;";
        let masked = mask(src);
        assert_eq!(masked.matches("as u32").count(), 1, "{masked}");
    }

    #[test]
    fn doc_comment_quote_does_not_open_a_string() {
        // An unbalanced quote in a `//!` line must not mask following code.
        let src = "//! prints \"hello\nlet x = y.unwrap();\n";
        let masked = mask(src);
        assert_eq!(masked.matches(".unwrap()").count(), 1, "{masked}");
    }

    #[test]
    fn comment_tokens_inside_strings_stay_inert() {
        let src = "let u = \"http://e/*x*/\"; u.unwrap();";
        let masked = mask(src);
        assert_eq!(masked.matches(".unwrap()").count(), 1, "{masked}");
    }

    #[test]
    fn escaped_backslash_before_closing_quote() {
        let src = "let p = \"dir\\\\\"; p.unwrap();";
        let masked = mask(src);
        assert_eq!(masked.matches(".unwrap()").count(), 1, "{masked}");
    }

    #[test]
    fn line_numbers() {
        let text = "a\nb\nc";
        assert_eq!(line_of(text, 0), 1);
        assert_eq!(line_of(text, 2), 2);
        assert_eq!(line_of(text, 4), 3);
    }
}
