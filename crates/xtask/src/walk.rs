//! Workspace discovery and deterministic file walking (no `walkdir` dep).

use std::io;
use std::path::{Path, PathBuf};

/// Finds the workspace root: the nearest ancestor of the current directory
/// (or of `CARGO_MANIFEST_DIR` when invoked through cargo) whose
/// `Cargo.toml` contains a `[workspace]` table.
pub fn workspace_root() -> io::Result<PathBuf> {
    let start = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .unwrap_or(std::env::current_dir()?);
    let mut dir = start.as_path();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest)?;
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Ok(dir.to_path_buf());
            }
        }
        dir = dir.parent().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                "no ancestor Cargo.toml with a [workspace] table",
            )
        })?;
    }
}

/// All `.rs` files under `dir` (recursively), sorted for deterministic
/// output. Skips `target` directories and hidden entries.
pub fn rust_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    collect(dir, &mut files)?;
    files.sort();
    Ok(files)
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if path.is_dir() {
            collect(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `path` relative to `root`, with forward slashes (stable across hosts, and
/// the key format used in `baseline.toml`).
pub fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}
