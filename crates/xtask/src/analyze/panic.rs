//! Panic-reachability: prove that recovery entry points cannot reach a
//! panic site.
//!
//! *Seeds* are syntactic panic sites in non-test code:
//!
//! * `.unwrap()` / `.expect(…)` (and the `_err` variants);
//! * the panicking macros `panic!`, `unreachable!`, `todo!`,
//!   `unimplemented!`, `assert!`, `assert_eq!`, `assert_ne!`;
//! * indexing / slicing `x[…]` (an `Index` impl may panic);
//! * the length-checked slice ops `copy_from_slice`, `clone_from_slice`,
//!   `split_at`, `split_at_mut`.
//!
//! `debug_assert!` is deliberately **not** a seed: panic-freedom on the
//! recovery path is a release-build property, and `debug_assert` is the
//! project's sanctioned self-audit mechanism (DESIGN.md §7). Calls into
//! `std` are assumed panic-free for valid arguments; the seeds above are
//! exactly the argument-dependent escape hatches.
//!
//! Functions marked `// analyze: trusted(<reason>)` contribute no seeds
//! (a reviewed leaf such as the fixed-offset page accessors); their
//! callees are still traversed.
//!
//! Reachability runs from every `entrypoint(recovery)` function (zero
//! seeds tolerated — hard failure) and every `entrypoint` function
//! (findings ratcheted through the `[panic-reach]` baseline section).

use super::callgraph::Graph;
use super::model::{Marker, Model};
use crate::rules::Violation;
use std::collections::VecDeque;

/// One panic site inside a function body.
#[derive(Clone, Debug)]
pub struct Seed {
    /// 1-based line in the original file.
    pub line: usize,
    /// What the site is, e.g. "`.unwrap()`" or "indexing `[...]`".
    pub what: String,
}

const SEED_METHODS: &[&str] = &[
    "unwrap",
    "unwrap_err",
    "expect",
    "expect_err",
    "copy_from_slice",
    "clone_from_slice",
    "split_at",
    "split_at_mut",
];

const SEED_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Lexical panic seeds in a masked function body. `start_line` is the
/// line of the body's opening brace.
pub fn seeds_of_body(body: &str, start_line: usize) -> Vec<Seed> {
    let bytes = body.as_bytes();
    let mut out = Vec::new();
    let line_at = |pos: usize| {
        start_line
            + body.as_bytes()[..pos]
                .iter()
                .filter(|&&b| b == b'\n')
                .count()
    };
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'[' {
            // Indexing: `[` directly after a value (identifier, call or
            // index result, or `?`). Attribute `#[…]`, macro `…![…]`,
            // types and array/pattern literals are preceded by other bytes.
            let prev_at = bytes[..i].iter().rposition(|b| !b.is_ascii_whitespace());
            let is_index = prev_at.is_some_and(|p| {
                let b = bytes[p];
                if b == b')' || b == b']' || b == b'?' {
                    return true;
                }
                if !(b.is_ascii_alphanumeric() || b == b'_') {
                    return false;
                }
                // `let [a, b] = …` patterns: the "value" before `[` is a
                // keyword, not an expression.
                let mut s = p;
                while s > 0 && (bytes[s - 1].is_ascii_alphanumeric() || bytes[s - 1] == b'_') {
                    s -= 1;
                }
                !matches!(
                    &body[s..=p],
                    "let"
                        | "in"
                        | "return"
                        | "else"
                        | "mut"
                        | "ref"
                        | "move"
                        | "break"
                        | "continue"
                        | "match"
                        | "if"
                        | "while"
                )
            });
            if is_index {
                out.push(Seed {
                    line: line_at(i),
                    what: "indexing `[...]`".into(),
                });
            }
            i += 1;
            continue;
        }
        if !(b.is_ascii_alphabetic() || b == b'_')
            || (i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_'))
        {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
        let name = &body[start..i];
        let prev_dot = start > 0 && bytes[start - 1] == b'.';
        let next = bytes.get(i);
        if prev_dot && next == Some(&b'(') && SEED_METHODS.contains(&name) {
            out.push(Seed {
                line: line_at(start),
                what: format!("`.{name}(...)`"),
            });
        } else if next == Some(&b'!') && SEED_MACROS.contains(&name) {
            out.push(Seed {
                line: line_at(start),
                what: format!("`{name}!`"),
            });
        }
    }
    out
}

/// Seeds of every non-test, non-trusted function, indexed like
/// `model.fns`.
pub fn all_seeds(model: &Model) -> Vec<Vec<Seed>> {
    model
        .fns
        .iter()
        .map(|f| {
            if f.is_test || f.has_marker(|m| matches!(m, Marker::Trusted(_))) {
                Vec::new()
            } else {
                let body_line = f.line + f.sig.bytes().filter(|&b| b == b'\n').count();
                seeds_of_body(&f.body, body_line)
            }
        })
        .collect()
}

/// Result of the reachability pass.
#[derive(Debug, Default)]
pub struct PanicReport {
    /// Hard failures: seeds reachable from `entrypoint(recovery)`.
    pub recovery: Vec<Violation>,
    /// Ratcheted findings: seeds reachable from plain `entrypoint`s.
    pub ratcheted: Vec<Violation>,
}

/// Runs panic-reachability over the model.
pub fn run(model: &Model, graph: &Graph, seeds: &[Vec<Seed>]) -> PanicReport {
    let mut report = PanicReport::default();
    for (entry_id, entry) in model.fns.iter().enumerate() {
        let recovery = entry.has_marker(|m| matches!(m, Marker::EntryRecovery));
        let ratcheted = entry.has_marker(|m| matches!(m, Marker::Entry));
        if !recovery && !ratcheted {
            continue;
        }
        // BFS with parent links for an example path.
        let mut parent: Vec<Option<usize>> = vec![None; model.fns.len()];
        let mut visited = vec![false; model.fns.len()];
        let mut queue = VecDeque::new();
        visited[entry_id] = true;
        queue.push_back(entry_id);
        while let Some(id) = queue.pop_front() {
            for &next in &graph.edges[id] {
                if !visited[next] {
                    visited[next] = true;
                    parent[next] = Some(id);
                    queue.push_back(next);
                }
            }
        }
        for (id, f) in model.fns.iter().enumerate() {
            if !visited[id] || seeds[id].is_empty() {
                continue;
            }
            let path = path_to(model, &parent, entry_id, id);
            for seed in &seeds[id] {
                let v = Violation {
                    rule: if recovery {
                        "panic-recovery"
                    } else {
                        "panic-reach"
                    },
                    file: f.file.clone(),
                    line: seed.line,
                    message: format!(
                        "{} reachable from `{}`: {}",
                        seed.what,
                        entry.qualified(),
                        path
                    ),
                };
                if recovery {
                    report.recovery.push(v);
                } else {
                    report.ratcheted.push(v);
                }
            }
        }
    }
    dedup(&mut report.recovery);
    dedup(&mut report.ratcheted);
    report
}

/// Drops duplicate findings for the same site (reached from several
/// entry points) so baseline counts track *sites*, not paths.
fn dedup(violations: &mut Vec<Violation>) {
    violations.sort_by(|a, b| (&a.file, a.line, &a.message).cmp(&(&b.file, b.line, &b.message)));
    violations.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.rule == b.rule);
}

fn path_to(model: &Model, parent: &[Option<usize>], entry: usize, mut id: usize) -> String {
    let mut names = vec![model.fns[id].qualified()];
    while id != entry {
        match parent[id] {
            Some(p) => {
                id = p;
                names.push(model.fns[id].qualified());
            }
            None => break,
        }
    }
    names.reverse();
    names.join(" -> ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_scan_finds_the_catalogue() {
        let seeds = seeds_of_body(
            "{ x.unwrap(); y.expect(\"m\"); panic!(\"n\"); v[0]; s[1..2]; \
             a.copy_from_slice(b); assert!(c); }",
            1,
        );
        assert_eq!(seeds.len(), 7, "{seeds:?}");
    }

    #[test]
    fn seed_scan_skips_non_seeds() {
        let seeds = seeds_of_body(
            "{ x.unwrap_or(0); y.unwrap_or_else(f); vec![1]; #[allow(dead_code)] \
             let a: [u8; 4] = [0; 4]; debug_assert!(x, \"m\"); matches!(x, Y); \
             map.get(&k); }",
            1,
        );
        assert!(seeds.is_empty(), "{seeds:?}");
    }

    #[test]
    fn reachability_reports_a_path() {
        let mut m = Model::default();
        m.add_file(
            "crates/store/src/a.rs",
            "// analyze: entrypoint(recovery)\nfn open() { helper(); }\n\
             fn helper() { inner(); }\nfn inner(v: &[u8]) { v[0]; }\n",
        )
        .expect("parse");
        let g = Graph::build(&m);
        let seeds = all_seeds(&m);
        let report = run(&m, &g, &seeds);
        assert_eq!(report.recovery.len(), 1, "{report:?}");
        assert!(report.recovery[0]
            .message
            .contains("open -> helper -> inner"));
        assert!(report.ratcheted.is_empty());
    }

    #[test]
    fn trusted_suppresses_seeds() {
        let mut m = Model::default();
        m.add_file(
            "crates/store/src/a.rs",
            "// analyze: entrypoint(recovery)\nfn open() { leaf(); }\n\
             // analyze: trusted(fixed offsets)\nfn leaf(v: &[u8]) { v[0]; }\n",
        )
        .expect("parse");
        let g = Graph::build(&m);
        let seeds = all_seeds(&m);
        let report = run(&m, &g, &seeds);
        assert!(report.recovery.is_empty(), "{report:?}");
    }
}
