//! Aggregation and rendering of the analyzer's findings.
//!
//! Zero-tolerance rules (`panic-recovery`, `txn-discipline`,
//! `txn-ordering`, `discarded-result`, `lock-class`, `lock-order`,
//! `lock-guard-io`, `reader-writes`, and the taint rules `taint-index`,
//! `taint-alloc`, `taint-loop`, `taint-arith`, `taint-pageid`,
//! `taint-escape`, `taint-anchor`) fail the run directly; the
//! `panic-reach` rule and the `lock-discipline` acquisition census are
//! ratcheted through their `baseline.toml` sections, exactly like the
//! token lints.

use crate::rules::Violation;

/// Everything one analyzer run produced.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings that fail the run whenever present.
    pub hard: Vec<Violation>,
    /// `panic-reach` findings, gated by the baseline ratchet.
    pub ratcheted: Vec<Violation>,
}

impl Report {
    /// Every finding, hard first, in stable order.
    pub fn all(&self) -> Vec<&Violation> {
        let mut all: Vec<&Violation> = self.hard.iter().chain(self.ratcheted.iter()).collect();
        all.sort_by(|a, b| (a.rule, &a.file, a.line).cmp(&(b.rule, &b.file, b.line)));
        all
    }
}

/// Renders findings one per line — the golden-report format used by the
/// fixture tests: `rule file:line message`.
pub fn render(violations: &[&Violation]) -> String {
    let mut out = String::new();
    for v in violations {
        out.push_str(&format!("{} {}:{} {}\n", v.rule, v.file, v.line, v.message));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_stable_and_line_oriented() {
        let report = Report {
            hard: vec![Violation {
                rule: "txn-discipline",
                file: "b.rs".into(),
                line: 2,
                message: "m".into(),
            }],
            ratcheted: vec![Violation {
                rule: "panic-reach",
                file: "a.rs".into(),
                line: 1,
                message: "n".into(),
            }],
        };
        let text = render(&report.all());
        assert_eq!(text, "panic-reach a.rs:1 n\ntxn-discipline b.rs:2 m\n");
    }
}
