//! Lock discipline: classes, acquisition order, I/O under guards, and
//! single-writer ownership.
//!
//! Every `Mutex`/`RwLock` struct field must be classified into a declared
//! **lock class** with a field-level `// analyze: lock-class(<name>)`
//! marker ([`super::model::LockField`]). The classes form a total order
//! ([`LOCK_CLASSES`]):
//!
//! ```text
//! manifest (rank 0, no I/O)  ->  shard (rank 1, no I/O)
//!   ->  pager (rank 2, I/O)  ->  vfs-state (rank 3, no I/O)
//! ```
//!
//! Four zero-tolerance rules are proved over the masked bodies and the
//! call graph:
//!
//! * `lock-class` — every lock field carries a known class; an
//!   unclassified field or an unknown class name is a hard finding, as is
//!   one content type classified into two different classes (acquisition
//!   sites are classified *by content type*, so the mapping must be a
//!   function).
//! * `lock-order` — while a guard of class `c` is live, no acquisition of
//!   rank ≤ rank(`c`) may happen, directly in the same body or
//!   transitively through any callee (`acq*` fixpoint). Same-class
//!   re-acquisition is the degenerate inversion (self-deadlock on a
//!   non-reentrant mutex).
//! * `lock-guard-io` — while a guard of a *no-I/O* class is live, no call
//!   may reach the `Vfs`/`VfsFile` seam except through a call site that
//!   is itself under a live guard of an I/O-allowed class (the pager
//!   mediates: `flush_dirty` holds the shard lock across the pager
//!   write-back *by design* — releasing it first would let a reader
//!   fault-in the stale on-disk page). Calls to a user-supplied closure
//!   parameter under *any* live guard are findings: the closure's body is
//!   outside the analysis and may take arbitrary locks or block.
//! * `reader-writes` — no method of a read-only handle type
//!   ([`READER_TYPES`]) may reach a `txn-sink` (a mutating storage
//!   write). This is the single-writer half of the snapshot contract:
//!   readers share the buffer pool but must never write pages back.
//!
//! Additionally the pass emits one **ratcheted census finding** (rule
//! `lock-discipline`) per classified acquisition site, so the
//! `[lock-discipline]` baseline section tracks where locking happens —
//! a new acquisition site anywhere fails the ratchet until reviewed.
//!
//! Guard live ranges are lexical, mirroring Rust's drop rules closely
//! enough for this codebase: a `let`-bound guard lives to the end of its
//! enclosing block, cut short by `drop(<name>)` or a shadowing
//! rebinding; an unbound (temporary) guard lives to the end of its
//! statement. Like the transaction pass, the workspace run is anchored
//! ([`run`] with `require_anchors`): every declared class must be
//! inhabited and the reader types must exist, so the checks cannot rot
//! away silently in a refactor.

use super::callgraph::{call_sites, local_types, resolve_site_typed, Graph};
use super::model::{FnItem, Marker, Model};
use crate::rules::Violation;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One declared lock class.
struct LockClass {
    name: &'static str,
    /// Position in the total acquisition order (acquire ascending).
    rank: usize,
    /// Whether calls under a guard of this class may reach the VFS seam.
    io_allowed: bool,
}

/// The declared classes, in acquisition order. `manifest` guards the
/// segmented store's published source-set pointer (an RCU swap: guards are
/// statement-scoped temporaries covering one `Arc` clone or one pointer
/// store, never I/O), `shard` a buffer shard's frame table, `pager` the
/// file-backed pager (the only class whose guards may cover I/O),
/// `vfs-state` the fault-injection VFS's in-memory bookkeeping.
const LOCK_CLASSES: &[LockClass] = &[
    LockClass {
        name: "manifest",
        rank: 0,
        io_allowed: false,
    },
    LockClass {
        name: "shard",
        rank: 1,
        io_allowed: false,
    },
    LockClass {
        name: "pager",
        rank: 2,
        io_allowed: true,
    },
    LockClass {
        name: "vfs-state",
        rank: 3,
        io_allowed: false,
    },
];

/// Read-only handle types: their methods must never reach a `txn-sink`.
const READER_TYPES: &[&str] = &["IndexStoreReader", "SegmentedReader"];

/// The I/O seam: owners whose methods count as performing I/O.
const VFS_SEAM_TRAITS: &[&str] = &["Vfs", "VfsFile"];

fn class_index(name: &str) -> Option<usize> {
    LOCK_CLASSES.iter().position(|c| c.name == name)
}

fn order_hint() -> String {
    LOCK_CLASSES
        .iter()
        .map(|c| c.name)
        .collect::<Vec<_>>()
        .join(" -> ")
}

/// Validates every lock field's class and builds the content-type →
/// class map used to classify acquisitions through typed locals.
fn classify_fields(model: &Model) -> (Vec<Violation>, BTreeMap<String, usize>) {
    let mut hard = Vec::new();
    let mut by_content: BTreeMap<String, usize> = BTreeMap::new();
    for ((owner, field), lf) in &model.lock_fields {
        let class = match &lf.class {
            None => {
                hard.push(Violation {
                    rule: "lock-class",
                    file: lf.file.clone(),
                    line: lf.line,
                    message: format!(
                        "lock field `{owner}.{field}` has no class; add \
                         `// analyze: lock-class(<name>)` above it (known classes: {})",
                        order_hint()
                    ),
                });
                continue;
            }
            Some(name) => match class_index(name) {
                Some(idx) => idx,
                None => {
                    hard.push(Violation {
                        rule: "lock-class",
                        file: lf.file.clone(),
                        line: lf.line,
                        message: format!(
                            "unknown lock class `{name}` on `{owner}.{field}`; known \
                             classes: {}",
                            order_hint()
                        ),
                    });
                    continue;
                }
            },
        };
        match by_content.get(&lf.content) {
            Some(&prev) if prev != class => hard.push(Violation {
                rule: "lock-class",
                file: lf.file.clone(),
                line: lf.line,
                message: format!(
                    "lock content type `{}` is classified both `{}` and `{}`; \
                     acquisition sites are classified by content type, so the \
                     mapping must be unambiguous",
                    lf.content, LOCK_CLASSES[prev].name, LOCK_CLASSES[class].name
                ),
            }),
            _ => {
                by_content.insert(lf.content.clone(), class);
            }
        }
    }
    (hard, by_content)
}

/// One classified lock acquisition inside a function body.
struct Acq {
    /// Index into [`LOCK_CLASSES`].
    class: usize,
    /// Byte offset of the acquisition method name within the body.
    at: usize,
    /// Exclusive end of the guard's lexical live range.
    end: usize,
    /// 1-based line of the acquisition in the original file.
    line: usize,
}

/// Everything the per-function checks need, computed in one scan.
struct FnLockData {
    acqs: Vec<Acq>,
    /// `(offset, qualified display name, resolved callee ids)` per call.
    calls: Vec<(usize, String, Vec<usize>)>,
    /// `(offset, parameter name)` for calls to closure parameters.
    closure_calls: Vec<(usize, String)>,
}

/// True when the parens after `after_name` are an empty argument list —
/// distinguishes `pager.lock()` from `file.read(buf)`.
fn empty_args(body: &str, after_name: usize) -> bool {
    let bytes = body.as_bytes();
    let mut i = after_name;
    while bytes.get(i).is_some_and(|b| b.is_ascii_whitespace()) {
        i += 1;
    }
    if bytes.get(i) != Some(&b'(') {
        return false;
    }
    i += 1;
    while bytes.get(i).is_some_and(|b| b.is_ascii_whitespace()) {
        i += 1;
    }
    bytes.get(i) == Some(&b')')
}

/// The `let`-binding (or reassignment) name when the statement containing
/// the acquisition at `name_at` binds it, `None` for a temporary guard.
fn binding_name(body: &str, name_at: usize) -> Option<String> {
    let bytes = body.as_bytes();
    let stmt_start = bytes[..name_at]
        .iter()
        .rposition(|&b| b == b';' || b == b'{' || b == b'}')
        .map(|p| p + 1)
        .unwrap_or(0);
    let head = body[stmt_start..name_at].trim_start();
    let rest = match head.strip_prefix("let ") {
        Some(r) => r
            .trim_start()
            .strip_prefix("mut ")
            .unwrap_or(r)
            .trim_start(),
        None => head,
    };
    let name: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        return None;
    }
    let after = rest[name.len()..].trim_start();
    // `guard = …` (binding or reassignment) but not `guard == …`.
    (after.starts_with('=') && !after.starts_with("==")).then_some(name)
}

/// Exclusive end of the guard's lexical live range.
fn live_range_end(body: &str, name_at: usize) -> usize {
    let bytes = body.as_bytes();
    match binding_name(body, name_at) {
        Some(name) => {
            // To the end of the enclosing block…
            let mut depth = 0usize;
            let mut end = body.len();
            let mut i = name_at;
            while i < bytes.len() {
                match bytes[i] {
                    b'{' => depth += 1,
                    b'}' => {
                        if depth == 0 {
                            end = i;
                            break;
                        }
                        depth -= 1;
                    }
                    _ => {}
                }
                i += 1;
            }
            // …cut short by `drop(name)` or a shadowing `let name =`.
            if let Some(at) = find_drop(body, name_at, end, &name) {
                end = at;
            }
            if let Some(at) = find_shadow(body, name_at, end, &name) {
                end = end.min(at);
            }
            end
        }
        None => {
            // Temporary: to the end of the statement. A block returning to
            // depth 0 (`if let … = tmp.lock()… { … }`) ends the statement
            // unless the expression continues (`else`, a method chain, or
            // the block is itself a sub-expression).
            let mut depth = 0isize;
            let mut i = name_at;
            while i < bytes.len() {
                match bytes[i] {
                    b'(' | b'[' | b'{' => depth += 1,
                    b')' | b']' => {
                        if depth == 0 {
                            return i;
                        }
                        depth -= 1;
                    }
                    b'}' => {
                        if depth == 0 {
                            return i;
                        }
                        depth -= 1;
                        if depth == 0 {
                            let mut j = i + 1;
                            while bytes.get(j).is_some_and(|b| b.is_ascii_whitespace()) {
                                j += 1;
                            }
                            let cont = matches!(
                                bytes.get(j),
                                Some(&b'.') | Some(&b'?') | Some(&b')') | Some(&b',')
                            ) || body[j.min(body.len())..].starts_with("else");
                            if !cont {
                                return i;
                            }
                        }
                    }
                    b';' if depth == 0 => return i,
                    _ => {}
                }
                i += 1;
            }
            body.len()
        }
    }
}

/// Position of `drop(<name>)` between `from` and `to`, if any.
fn find_drop(body: &str, from: usize, to: usize, name: &str) -> Option<usize> {
    let bytes = body.as_bytes();
    let mut i = from;
    while let Some(pos) = body[i..to.min(body.len())].find("drop") {
        let at = i + pos;
        i = at + 4;
        let boundary = (at == 0 || !bytes[at - 1].is_ascii_alphanumeric() && bytes[at - 1] != b'_')
            && bytes.get(at + 4) == Some(&b'(');
        if !boundary {
            continue;
        }
        let inner = body[at + 5..].trim_start();
        if inner
            .strip_prefix(name)
            .is_some_and(|r| r.trim_start().starts_with(')'))
        {
            return Some(at);
        }
    }
    None
}

/// Position of a shadowing `let [mut] <name> =` after `from`, if any.
fn find_shadow(body: &str, from: usize, to: usize, name: &str) -> Option<usize> {
    let bytes = body.as_bytes();
    let mut i = from + 1;
    while let Some(pos) = body[i..to.min(body.len())].find("let ") {
        let at = i + pos;
        i = at + 4;
        let boundary = at == 0 || !bytes[at - 1].is_ascii_alphanumeric() && bytes[at - 1] != b'_';
        if !boundary {
            continue;
        }
        let rest = body[at + 4..].trim_start();
        let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
        if rest
            .strip_prefix(name)
            .is_some_and(|r| !r.starts_with(|c: char| c.is_ascii_alphanumeric() || c == '_'))
        {
            return Some(at);
        }
    }
    None
}

/// Closure parameter names: `f: impl FnOnce(…)`, `f: F` with
/// `F: FnMut(…)` in the generics or `where` clause.
fn closure_params(sig: &str) -> Vec<String> {
    let bytes = sig.as_bytes();
    // Generics region: `<…>` balanced (skipping `->`) before the params.
    let mut generics: Option<(usize, usize)> = None;
    let mut params_open = None;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'<' => {
                let start = i;
                let mut depth = 0isize;
                while i < bytes.len() {
                    match bytes[i] {
                        b'<' => depth += 1,
                        b'>' if i > 0 && bytes[i - 1] != b'-' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                generics = Some((start + 1, i.min(bytes.len())));
                i += 1;
            }
            b'(' => {
                params_open = Some(i);
                break;
            }
            _ => i += 1,
        }
    }
    let mut fn_generics: BTreeSet<String> = BTreeSet::new();
    let mut collect_bounds = |clause: &str| {
        for part in split_commas(clause) {
            if let Some((name, bound)) = part.split_once(':') {
                let name = name.trim();
                if bound.contains("Fn")
                    && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                    && !name.is_empty()
                {
                    fn_generics.insert(name.to_string());
                }
            }
        }
    };
    if let Some((s, e)) = generics {
        if s < e {
            collect_bounds(&sig[s..e]);
        }
    }
    if let Some(wh) = sig.find(" where ") {
        collect_bounds(&sig[wh + 7..]);
    }
    let mut out = Vec::new();
    let Some(open) = params_open else { return out };
    // Matching close paren of the parameter list.
    let mut depth = 0isize;
    let mut close = None;
    for (idx, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    close = Some(idx);
                    break;
                }
            }
            _ => {}
        }
    }
    let Some(close) = close else { return out };
    for part in split_commas(&sig[open + 1..close]) {
        if let Some((name, ty)) = part.split_once(':') {
            let name = name
                .trim()
                .strip_prefix("mut ")
                .unwrap_or(name.trim())
                .trim();
            let ty = ty.trim();
            let bare = super::model::strip_wrappers(ty);
            if (ty.contains("Fn") || fn_generics.contains(&bare))
                && !name.is_empty()
                && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
            {
                out.push(name.to_string());
            }
        }
    }
    out
}

/// Splits on top-level commas (nested `()`/`<>`/`[]` ignored).
fn split_commas(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0isize;
    let mut start = 0;
    let bytes = s.as_bytes();
    for (idx, &b) in bytes.iter().enumerate() {
        match b {
            b'(' | b'[' | b'<' => depth += 1,
            b')' | b']' => depth -= 1,
            b'>' if idx > 0 && bytes[idx - 1] != b'-' => depth -= 1,
            b',' if depth == 0 => {
                parts.push(&s[start..idx]);
                start = idx + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

/// Classifies the receiver of an acquisition call, if it is a known lock.
fn classify_receiver(
    model: &Model,
    f: &FnItem,
    recv: &[String],
    locals: &BTreeMap<String, String>,
    by_content: &BTreeMap<String, usize>,
) -> Option<usize> {
    let field_class = |owner: &str, field: &str| {
        model
            .lock_fields
            .get(&(owner.to_string(), field.to_string()))
            .and_then(|lf| lf.class.as_deref())
            .and_then(class_index)
    };
    match recv {
        [s, field] if s == "self" => field_class(f.owner.as_deref()?, field),
        [local] => by_content.get(locals.get(local)?).copied(),
        [local, field] => field_class(locals.get(local)?, field),
        _ => None,
    }
}

/// Scans one function's body for acquisitions, resolved calls, and
/// closure-parameter calls.
fn scan_fn(model: &Model, f: &FnItem, by_content: &BTreeMap<String, usize>) -> FnLockData {
    let locals = local_types(f, model);
    let params = closure_params(&f.sig);
    let body_line = f.line + f.sig.bytes().filter(|&b| b == b'\n').count();
    let line_at = |pos: usize| {
        body_line
            + f.body.as_bytes()[..pos]
                .iter()
                .filter(|&&b| b == b'\n')
                .count()
    };
    let mut data = FnLockData {
        acqs: Vec::new(),
        calls: Vec::new(),
        closure_calls: Vec::new(),
    };
    for call in call_sites(&f.body) {
        if call.is_method
            && matches!(call.name.as_str(), "lock" | "read" | "write")
            && empty_args(&f.body, call.at + call.name.len())
        {
            if let Some(class) = classify_receiver(model, f, &call.recv, &locals, by_content) {
                data.acqs.push(Acq {
                    class,
                    at: call.at,
                    end: live_range_end(&f.body, call.at),
                    line: line_at(call.at),
                });
                continue;
            }
        }
        if !call.is_method && call.path.is_empty() && params.contains(&call.name) {
            data.closure_calls.push((call.at, call.name.clone()));
            continue;
        }
        let callees = resolve_site_typed(model, f, &call, &locals);
        if !callees.is_empty() {
            data.calls.push((call.at, call.name.clone(), callees));
        }
    }
    data
}

/// Result of the lock pass.
#[derive(Debug, Default)]
pub struct LockReport {
    /// Zero-tolerance findings (`lock-class`, `lock-order`,
    /// `lock-guard-io`, `reader-writes`).
    pub hard: Vec<Violation>,
    /// The `lock-discipline` acquisition census, gated by the baseline.
    pub census: Vec<Violation>,
}

/// Runs the lock-discipline analysis. With `require_anchors` (workspace
/// runs) every declared class must be inhabited, the reader types must
/// exist with non-test methods, and a `txn-sink` must exist — so the
/// rules cannot be refactored into vacuity.
pub fn run(model: &Model, graph: &Graph, require_anchors: bool) -> LockReport {
    let (mut hard, by_content) = classify_fields(model);
    let n = model.fns.len();
    let data: Vec<Option<FnLockData>> = model
        .fns
        .iter()
        .map(|f| (!f.is_test).then(|| scan_fn(model, f, &by_content)))
        .collect();

    // acq*[f]: bitmask of classes f may acquire, transitively.
    let mut acq_star: Vec<u32> = data
        .iter()
        .map(|d| {
            d.as_ref()
                .map(|d| d.acqs.iter().fold(0u32, |m, a| m | 1 << a.class))
                .unwrap_or(0)
        })
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for id in 0..n {
            let Some(d) = &data[id] else { continue };
            let mut mask = acq_star[id];
            for (_, _, callees) in &d.calls {
                for &callee in callees {
                    mask |= acq_star[callee];
                }
            }
            if mask != acq_star[id] {
                acq_star[id] = mask;
                changed = true;
            }
        }
    }

    // Seam membership: trait methods and every implementor's methods.
    let seam_owners: BTreeSet<&str> = VFS_SEAM_TRAITS
        .iter()
        .copied()
        .chain(VFS_SEAM_TRAITS.iter().flat_map(|t| {
            model
                .impls
                .get(*t)
                .map(Vec::as_slice)
                .unwrap_or(&[])
                .iter()
                .map(String::as_str)
        }))
        .collect();
    // vfs-unguarded fixpoint: f reaches the seam through a call site not
    // mediated by a live I/O-allowed guard in f.
    let io_ranges: Vec<Vec<(usize, usize)>> = data
        .iter()
        .map(|d| {
            d.as_ref()
                .map(|d| {
                    d.acqs
                        .iter()
                        .filter(|a| LOCK_CLASSES[a.class].io_allowed)
                        .map(|a| (a.at, a.end))
                        .collect()
                })
                .unwrap_or_default()
        })
        .collect();
    let mediated = |id: usize, at: usize| io_ranges[id].iter().any(|&(s, e)| s < at && at < e);
    let mut vfs_unguarded: Vec<bool> = model
        .fns
        .iter()
        .map(|f| f.owner.as_deref().is_some_and(|o| seam_owners.contains(o)))
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for id in 0..n {
            if vfs_unguarded[id] {
                continue;
            }
            let Some(d) = &data[id] else { continue };
            let reaches = d.calls.iter().any(|(at, _, callees)| {
                !mediated(id, *at) && callees.iter().any(|&c| vfs_unguarded[c])
            });
            if reaches {
                vfs_unguarded[id] = true;
                changed = true;
            }
        }
    }

    for (id, f) in model.fns.iter().enumerate() {
        let Some(d) = &data[id] else { continue };
        let body_line = f.line + f.sig.bytes().filter(|&b| b == b'\n').count();
        let line_at = |pos: usize| {
            body_line
                + f.body.as_bytes()[..pos]
                    .iter()
                    .filter(|&&b| b == b'\n')
                    .count()
        };
        for a in &d.acqs {
            let held = &LOCK_CLASSES[a.class];
            // Direct ordering: later acquisitions inside the live range.
            for b in &d.acqs {
                if b.at <= a.at || b.at >= a.end {
                    continue;
                }
                let taken = &LOCK_CLASSES[b.class];
                if taken.rank > held.rank {
                    continue;
                }
                hard.push(Violation {
                    rule: "lock-order",
                    file: f.file.clone(),
                    line: b.line,
                    message: if b.class == a.class {
                        format!(
                            "`{}` re-acquires lock class `{}` while already holding it \
                             (self-deadlock on a non-reentrant lock)",
                            f.qualified(),
                            held.name
                        )
                    } else {
                        format!(
                            "`{}` acquires `{}` while holding `{}`; the declared order \
                             is {}",
                            f.qualified(),
                            taken.name,
                            held.name,
                            order_hint()
                        )
                    },
                });
            }
            // Transitive ordering: callees that may acquire ≤ rank.
            for (at, name, callees) in &d.calls {
                if *at <= a.at || *at >= a.end {
                    continue;
                }
                let mut flagged: u32 = 0;
                for &callee in callees {
                    for (ci, c) in LOCK_CLASSES.iter().enumerate() {
                        if acq_star[callee] & (1 << ci) == 0
                            || c.rank > held.rank
                            || flagged & (1 << ci) != 0
                        {
                            continue;
                        }
                        flagged |= 1 << ci;
                        hard.push(Violation {
                            rule: "lock-order",
                            file: f.file.clone(),
                            line: line_at(*at),
                            message: format!(
                                "`{}` holds `{}` across a call to `{}` (via `{}`) which \
                                 may acquire `{}`; the declared order is {}",
                                f.qualified(),
                                held.name,
                                model.fns[callee].qualified(),
                                name,
                                c.name,
                                order_hint()
                            ),
                        });
                    }
                }
            }
            // I/O under a no-I/O guard, unless pager-mediated at the site.
            if !held.io_allowed {
                for (at, _, callees) in &d.calls {
                    if *at <= a.at || *at >= a.end || mediated(id, *at) {
                        continue;
                    }
                    if let Some(&callee) = callees.iter().find(|&&c| vfs_unguarded[c]) {
                        hard.push(Violation {
                            rule: "lock-guard-io",
                            file: f.file.clone(),
                            line: line_at(*at),
                            message: format!(
                                "`{}` holds no-I/O lock class `{}` across a call to \
                                 `{}` that reaches the VFS seam; release the guard or \
                                 mediate through a `pager`-class guard",
                                f.qualified(),
                                held.name,
                                model.fns[callee].qualified()
                            ),
                        });
                    }
                }
            }
            // Any guard across a user-closure call.
            for (at, pname) in &d.closure_calls {
                if *at <= a.at || *at >= a.end {
                    continue;
                }
                hard.push(Violation {
                    rule: "lock-guard-io",
                    file: f.file.clone(),
                    line: line_at(*at),
                    message: format!(
                        "`{}` holds lock class `{}` across a call to its closure \
                         parameter `{}`; user code must run outside all locks",
                        f.qualified(),
                        held.name,
                        pname
                    ),
                });
            }
        }
    }

    hard.extend(reader_writes(model, graph));
    if require_anchors {
        hard.extend(check_anchors(model, &data));
    }

    let mut census = Vec::new();
    for (id, f) in model.fns.iter().enumerate() {
        let Some(d) = &data[id] else { continue };
        for a in &d.acqs {
            census.push(Violation {
                rule: "lock-discipline",
                file: f.file.clone(),
                line: a.line,
                message: format!(
                    "`{}` acquires lock class `{}`",
                    f.qualified(),
                    LOCK_CLASSES[a.class].name
                ),
            });
        }
    }
    census.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    hard.sort_by(|a, b| (a.rule, &a.file, a.line).cmp(&(b.rule, &b.file, b.line)));
    hard.dedup_by(|a, b| {
        a.rule == b.rule && a.file == b.file && a.line == b.line && a.message == b.message
    });
    LockReport { hard, census }
}

/// Single-writer rule: reader-type methods must not reach a `txn-sink`.
fn reader_writes(model: &Model, graph: &Graph) -> Vec<Violation> {
    let mut out = Vec::new();
    for (id, f) in model.fns.iter().enumerate() {
        if f.is_test
            || !f
                .owner
                .as_deref()
                .is_some_and(|o| READER_TYPES.contains(&o))
        {
            continue;
        }
        // BFS with parent links for an example path.
        let mut parent: Vec<Option<usize>> = vec![None; model.fns.len()];
        let mut visited = vec![false; model.fns.len()];
        let mut queue = VecDeque::new();
        visited[id] = true;
        queue.push_back(id);
        let mut found = None;
        'bfs: while let Some(cur) = queue.pop_front() {
            for &next in &graph.edges[cur] {
                if visited[next] {
                    continue;
                }
                visited[next] = true;
                parent[next] = Some(cur);
                if model.fns[next].has_marker(|m| matches!(m, Marker::TxnSink)) {
                    found = Some(next);
                    break 'bfs;
                }
                queue.push_back(next);
            }
        }
        let Some(mut sink) = found else { continue };
        let mut names = vec![model.fns[sink].qualified()];
        while sink != id {
            match parent[sink] {
                Some(p) => {
                    sink = p;
                    names.push(model.fns[sink].qualified());
                }
                None => break,
            }
        }
        names.reverse();
        out.push(Violation {
            rule: "reader-writes",
            file: f.file.clone(),
            line: f.line,
            message: format!(
                "`{}` is a method of read-only handle `{}` but reaches a mutating \
                 write: {}",
                f.qualified(),
                f.owner.as_deref().unwrap_or(""),
                names.join(" -> ")
            ),
        });
    }
    out
}

/// Workspace anchors: the classes must be inhabited, the reader types
/// must exist, and a sink must exist for `reader-writes` to bite.
fn check_anchors(model: &Model, data: &[Option<FnLockData>]) -> Vec<Violation> {
    let mut out = Vec::new();
    for (ci, class) in LOCK_CLASSES.iter().enumerate() {
        let inhabited = model
            .lock_fields
            .values()
            .any(|lf| lf.class.as_deref().and_then(class_index) == Some(ci));
        if !inhabited {
            out.push(Violation {
                rule: "lock-class",
                file: "<workspace>".into(),
                line: 0,
                message: format!(
                    "anchor: no lock field is classified `{}`; update the class table \
                     in crates/xtask/src/analyze/lock.rs if the locking design changed",
                    class.name
                ),
            });
        }
    }
    for reader in READER_TYPES {
        let exists = model
            .fns
            .iter()
            .any(|f| !f.is_test && f.owner.as_deref() == Some(*reader));
        if !exists {
            out.push(Violation {
                rule: "reader-writes",
                file: "<workspace>".into(),
                line: 0,
                message: format!(
                    "anchor: reader type `{reader}` has no non-test methods; update \
                     READER_TYPES in crates/xtask/src/analyze/lock.rs if it moved"
                ),
            });
        }
    }
    let has_sink = model
        .fns
        .iter()
        .any(|f| f.has_marker(|m| matches!(m, Marker::TxnSink)));
    if !has_sink {
        out.push(Violation {
            rule: "reader-writes",
            file: "<workspace>".into(),
            line: 0,
            message: "anchor: no `txn-sink` markers found; the single-writer rule is \
                      vacuous without sinks"
                .into(),
        });
    }
    let any_acq = data.iter().flatten().any(|d| !d.acqs.is_empty());
    if !any_acq {
        out.push(Violation {
            rule: "lock-class",
            file: "<workspace>".into(),
            line: 0,
            message: "anchor: no classified lock acquisitions found anywhere; the \
                      ordering rules are vacuous"
                .into(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(src: &str) -> (Model, Graph) {
        let mut m = Model::default();
        m.add_file("crates/store/src/demo.rs", src).expect("parse");
        let g = Graph::build(&m);
        (m, g)
    }

    fn run_src(src: &str) -> LockReport {
        let (m, g) = setup(src);
        run(&m, &g, false)
    }

    const POOL: &str = "struct Shard;\nstruct Pager;\nstruct Pool {\n\
                        // analyze: lock-class(shard)\nshards: Box<[Mutex<Shard>]>,\n\
                        // analyze: lock-class(pager)\npager: Mutex<Pager>,\n}\n";

    #[test]
    fn unclassified_lock_field_is_hard() {
        let r = run_src("struct S;\nstruct P { naked: Mutex<S> }\n");
        assert_eq!(r.hard.len(), 1, "{:?}", r.hard);
        assert_eq!(r.hard[0].rule, "lock-class");
        assert!(r.hard[0].message.contains("no class"));
    }

    #[test]
    fn unknown_class_is_hard_even_without_anchors() {
        let r =
            run_src("struct S;\nstruct P {\n// analyze: lock-class(bogus)\nnaked: Mutex<S>,\n}\n");
        assert_eq!(r.hard.len(), 1, "{:?}", r.hard);
        assert!(r.hard[0].message.contains("unknown lock class `bogus`"));
    }

    #[test]
    fn correct_order_is_clean_and_censused() {
        let r = run_src(&format!(
            "{POOL}impl Pool {{ fn ok(&self, i: usize) {{\n\
             let mut shard = self.shards[i].lock();\n\
             let mut pager = self.pager.lock();\n\
             }} }}\n"
        ));
        assert!(r.hard.is_empty(), "{:?}", r.hard);
        assert_eq!(r.census.len(), 2, "{:?}", r.census);
    }

    #[test]
    fn inversion_is_flagged() {
        let r = run_src(&format!(
            "{POOL}impl Pool {{ fn bad(&self, i: usize) {{\n\
             let mut pager = self.pager.lock();\n\
             let mut shard = self.shards[i].lock();\n\
             }} }}\n"
        ));
        assert_eq!(r.hard.len(), 1, "{:?}", r.hard);
        assert_eq!(r.hard[0].rule, "lock-order");
        assert!(r.hard[0]
            .message
            .contains("acquires `shard` while holding `pager`"));
    }

    #[test]
    fn same_class_reacquisition_is_flagged() {
        let r = run_src(&format!(
            "{POOL}impl Pool {{ fn bad(&self, i: usize, j: usize) {{\n\
             let a = self.shards[i].lock();\n\
             let b = self.shards[j].lock();\n\
             }} }}\n"
        ));
        assert_eq!(r.hard.len(), 1, "{:?}", r.hard);
        assert!(r.hard[0].message.contains("re-acquires"));
    }

    #[test]
    fn dropping_the_guard_ends_its_range() {
        let r = run_src(&format!(
            "{POOL}impl Pool {{ fn ok(&self, i: usize) {{\n\
             let mut pager = self.pager.lock();\n\
             drop(pager);\n\
             let mut shard = self.shards[i].lock();\n\
             }} }}\n"
        ));
        assert!(r.hard.is_empty(), "{:?}", r.hard);
    }

    #[test]
    fn block_scope_ends_the_range() {
        let r = run_src(&format!(
            "{POOL}impl Pool {{ fn ok(&self, i: usize) {{\n\
             {{ let mut pager = self.pager.lock(); }}\n\
             let mut shard = self.shards[i].lock();\n\
             }} }}\n"
        ));
        assert!(r.hard.is_empty(), "{:?}", r.hard);
    }

    #[test]
    fn if_let_temporary_guard_ends_with_its_block() {
        // `if let … = tmp.lock().probe() { … }` — the temporary guard dies
        // with the if-block; a later acquisition is not a re-acquisition.
        let r = run_src(&format!(
            "{POOL}impl Pool {{ fn ok(&self, i: usize) {{\n\
             if let Some(x) = self.shards[i].lock().probe() {{ return; }}\n\
             let g = self.shards[i].lock();\n\
             }} }}\n"
        ));
        assert!(r.hard.is_empty(), "{:?}", r.hard);
        assert_eq!(r.census.len(), 2, "{:?}", r.census);
    }

    #[test]
    fn manifest_class_orders_before_shard() {
        // The RCU pointer class ranks lowest: taking it while a shard
        // guard is live is an inversion, the opposite order is clean.
        let src = "struct SourceSet;\nstruct Shard;\nstruct Store {\n\
                   // analyze: lock-class(manifest)\npublished: Arc<Mutex<Arc<SourceSet>>>,\n\
                   // analyze: lock-class(shard)\nshard: Mutex<Shard>,\n}\n\
                   impl Store {\nfn bad(&self) {\n\
                   let g = self.shard.lock();\n\
                   let set = Arc::clone(&*self.published.lock());\n\
                   }\nfn ok(&self) {\n\
                   let set = Arc::clone(&*self.published.lock());\n\
                   let g = self.shard.lock();\n\
                   }\n}\n";
        let r = run_src(src);
        assert_eq!(r.hard.len(), 1, "{:?}", r.hard);
        assert_eq!(r.hard[0].rule, "lock-order");
        assert!(
            r.hard[0]
                .message
                .contains("acquires `manifest` while holding `shard`"),
            "{:?}",
            r.hard
        );
        assert_eq!(r.census.len(), 4, "{:?}", r.census);
    }

    #[test]
    fn transitive_inversion_is_flagged() {
        let r = run_src(&format!(
            "{POOL}impl Pool {{\n\
             fn leaf(&self, i: usize) {{ let g = self.shards[i].lock(); }}\n\
             fn bad(&self, i: usize) {{\n\
             let mut pager = self.pager.lock();\n\
             self.leaf(i);\n\
             }} }}\n"
        ));
        assert_eq!(r.hard.len(), 1, "{:?}", r.hard);
        assert_eq!(r.hard[0].rule, "lock-order");
        assert!(
            r.hard[0].message.contains("may acquire `shard`"),
            "{:?}",
            r.hard
        );
    }

    const VFS: &str = "trait VfsFile { fn sync(&mut self); }\n\
                       struct RealFile;\nimpl VfsFile for RealFile {\nfn sync(&mut self) {}\n}\n";

    #[test]
    fn io_under_shard_guard_is_flagged() {
        let r = run_src(&format!(
            "{VFS}struct Shard;\nstruct Pool {{\n\
             // analyze: lock-class(shard)\nshard: Mutex<Shard>,\nfile: Box<dyn VfsFile>,\n}}\n\
             impl Pool {{ fn bad(&mut self) {{\n\
             let g = self.shard.lock();\n\
             self.file.sync();\n\
             }} }}\n"
        ));
        assert_eq!(r.hard.len(), 1, "{:?}", r.hard);
        assert_eq!(r.hard[0].rule, "lock-guard-io");
        assert!(r.hard[0].message.contains("reaches the VFS seam"));
    }

    #[test]
    fn pager_mediation_legalises_io_under_shard_guard() {
        // flush_dirty's shape: the seam call runs under the pager guard
        // while the shard guard is also live — legal by design.
        let r = run_src(&format!(
            "{VFS}struct Shard;\nstruct Pager {{ file: Box<dyn VfsFile> }}\n\
             impl Pager {{ fn write_back(&mut self) {{ self.file.sync(); }} }}\n\
             struct Pool {{\n\
             // analyze: lock-class(shard)\nshard: Mutex<Shard>,\n\
             // analyze: lock-class(pager)\npager: Mutex<Pager>,\n}}\n\
             impl Pool {{ fn flush(&self) {{\n\
             let mut shard = self.shard.lock();\n\
             let mut pager = self.pager.lock();\n\
             pager.write_back();\n\
             }} }}\n"
        ));
        assert!(r.hard.is_empty(), "{:?}", r.hard);
    }

    #[test]
    fn closure_call_under_any_guard_is_flagged() {
        let r = run_src(&format!(
            "{POOL}impl Pool {{ fn scan<F: FnMut(u32)>(&self, i: usize, mut f: F) {{\n\
             let g = self.shards[i].lock();\n\
             f(1);\n\
             }} }}\n"
        ));
        assert_eq!(r.hard.len(), 1, "{:?}", r.hard);
        assert_eq!(r.hard[0].rule, "lock-guard-io");
        assert!(r.hard[0].message.contains("closure parameter `f`"));
    }

    #[test]
    fn closure_call_outside_guards_is_clean() {
        let r = run_src(&format!(
            "{POOL}impl Pool {{ fn scan(&self, i: usize, f: impl FnOnce(u32)) {{\n\
             {{ let g = self.shards[i].lock(); }}\n\
             f(1);\n\
             }} }}\n"
        ));
        assert!(r.hard.is_empty(), "{:?}", r.hard);
    }

    #[test]
    fn reader_reaching_a_sink_is_flagged() {
        let r = run_src(
            "struct Pager;\nimpl Pager {\n// analyze: txn-sink\n\
             fn write_page(&mut self) {}\n}\n\
             struct IndexStoreReader { pager: Pager }\n\
             impl IndexStoreReader {\nfn backfill(&mut self) { self.pager.write_page(); }\n}\n",
        );
        assert_eq!(r.hard.len(), 1, "{:?}", r.hard);
        assert_eq!(r.hard[0].rule, "reader-writes");
        assert!(r.hard[0].message.contains("backfill"));
        assert!(r.hard[0].message.contains("write_page"));
    }

    #[test]
    fn anchors_demand_inhabited_classes() {
        let (m, g) = setup("fn unrelated() {}\n");
        let r = run(&m, &g, true);
        let classes = r.hard.iter().filter(|v| v.rule == "lock-class").count();
        let readers = r.hard.iter().filter(|v| v.rule == "reader-writes").count();
        assert_eq!(classes, LOCK_CLASSES.len() + 1, "{:?}", r.hard);
        assert_eq!(readers, READER_TYPES.len() + 1, "{:?}", r.hard);
    }

    #[test]
    fn temporary_guard_covers_its_statement_only() {
        let r = run_src(&format!(
            "{POOL}impl Pool {{\n\
             fn leaf(&self, i: usize) {{ let g = self.shards[i].lock(); }}\n\
             fn ok(&self, i: usize) {{\n\
             self.pager.lock();\n\
             self.leaf(i);\n\
             }} }}\n"
        ));
        assert!(r.hard.is_empty(), "{:?}", r.hard);
        assert_eq!(r.census.len(), 2, "{:?}", r.census);
    }
}
