//! The parsed-item model: a cheap, offline-friendly approximation of the
//! workspace's items, built on the [`crate::lexer`] masker instead of a
//! full parser.
//!
//! For every `.rs` file the model records:
//!
//! * functions — name, owning `impl`/`trait` type, masked signature and
//!   body text, whether the item is test-only, and any `// analyze:`
//!   marker directives written above it;
//! * struct fields — `(type, field) -> field type`, used by the call
//!   graph to resolve `self.field.method(...)` receivers;
//! * `impl Trait for Type` pairs, used to resolve calls through trait
//!   objects (`Box<dyn VfsFile>`) to every implementor.
//!
//! The parser is intentionally lexical: it brace-matches on masked text
//! (strings and comments blanked), so it never confuses a `{` in a string
//! for a block. Known approximations are documented in DESIGN.md §10.

use crate::lexer::{line_of, mask};
use std::collections::BTreeMap;
use std::fmt;

/// A `// analyze: …` directive attached to the function below it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Marker {
    /// `entrypoint(recovery)` — a recovery entry point; *zero* reachable
    /// panic sites tolerated.
    EntryRecovery,
    /// `entrypoint` — an audited entry point; reachable panic sites are
    /// ratcheted via the `[panic-reach]` baseline section.
    Entry,
    /// `trusted(<reason>)` — a reviewed leaf whose panic sites are
    /// excluded from seeding. The reason is mandatory.
    Trusted(String),
    /// `txn-boundary` — this function opens (and closes) a journal
    /// transaction around everything it runs.
    TxnBoundary,
    /// `txn-sink` — a mutating storage write; every unguarded path from a
    /// root to one of these is a discipline violation.
    TxnSink,
    /// `txn-exempt(<reason>)` — deliberately writes outside a transaction
    /// (e.g. initialising a fresh file). The reason is mandatory.
    TxnExempt(String),
    /// `untrusted-source` — the function's return value originates from
    /// raw on-disk bytes (page buffers, journal records, headers). The
    /// function must be *total* — erroring, never panicking, on any input
    /// — and every caller must validate the value before using it as an
    /// index, length, allocation size, page id, loop bound, or arithmetic
    /// operand.
    UntrustedSource,
    /// `validates(len|offset|pageid|count)` — a validation boundary: the
    /// function fully checks the listed kinds of untrusted quantities and
    /// its return value is trusted. Kinds are `|`-separated and restricted
    /// to the four listed.
    Validates(Vec<String>),
    /// `taint-exempt(<reason>)` — a reviewed leaf that intentionally
    /// operates on raw untrusted values (e.g. branchless bit tricks that
    /// are total over all inputs). The reason is mandatory.
    TaintExempt(String),
}

/// The only quantities `validates(…)` may claim to check.
pub const VALIDATE_KINDS: &[&str] = &["len", "offset", "pageid", "count"];

impl Marker {
    fn parse(text: &str) -> Result<Marker, String> {
        let text = text.trim();
        let (name, arg) = match text.split_once('(') {
            Some((name, rest)) => {
                let arg = rest
                    .strip_suffix(')')
                    .ok_or_else(|| format!("unclosed `(` in `// analyze: {text}`"))?;
                (name.trim(), Some(arg.trim()))
            }
            None => (text, None),
        };
        match (name, arg) {
            ("entrypoint", Some("recovery")) => Ok(Marker::EntryRecovery),
            ("entrypoint", None) => Ok(Marker::Entry),
            ("trusted", Some(reason)) if !reason.is_empty() => {
                Ok(Marker::Trusted(reason.to_string()))
            }
            ("trusted", _) => Err("`trusted` needs a non-empty reason: trusted(<why>)".into()),
            ("txn-boundary", None) => Ok(Marker::TxnBoundary),
            ("txn-sink", None) => Ok(Marker::TxnSink),
            ("txn-exempt", Some(reason)) if !reason.is_empty() => {
                Ok(Marker::TxnExempt(reason.to_string()))
            }
            ("txn-exempt", _) => Err("`txn-exempt` needs a reason: txn-exempt(<why>)".into()),
            ("untrusted-source", None) => Ok(Marker::UntrustedSource),
            ("untrusted-source", Some(_)) => Err("`untrusted-source` takes no argument".into()),
            ("validates", Some(kinds)) if !kinds.is_empty() => {
                let parts: Vec<String> = kinds.split('|').map(|k| k.trim().to_string()).collect();
                for k in &parts {
                    if !VALIDATE_KINDS.contains(&k.as_str()) {
                        return Err(format!(
                            "`validates({k})` is not a known kind; use one of \
                             validates({})",
                            VALIDATE_KINDS.join("|")
                        ));
                    }
                }
                Ok(Marker::Validates(parts))
            }
            ("validates", _) => Err(format!(
                "`validates` needs the checked kinds: validates({})",
                VALIDATE_KINDS.join("|")
            )),
            ("taint-exempt", Some(reason)) if !reason.is_empty() => {
                Ok(Marker::TaintExempt(reason.to_string()))
            }
            ("taint-exempt", _) => Err("`taint-exempt` needs a reason: taint-exempt(<why>)".into()),
            ("lock-class", _) => Err(
                "`lock-class` is a field-level directive; write it directly above the \
                 Mutex/RwLock field it classifies"
                    .into(),
            ),
            _ => Err(format!("unknown analyze directive `{text}`")),
        }
    }
}

/// One function (free function, inherent/trait method, or trait default
/// method) in the model.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// `impl`/`trait` owner type name, `None` for free functions.
    pub owner: Option<String>,
    /// Repo-relative file path (forward slashes).
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Masked signature text (from `fn` to the body `{` / `;`).
    pub sig: String,
    /// Masked body text including the outer braces; empty for
    /// signature-only trait methods.
    pub body: String,
    /// Byte offset of the body start within the masked file, for
    /// line-number reporting of seeds inside the body.
    pub body_offset: usize,
    /// True inside `#[cfg(test)]` regions or under a `#[test]` attribute.
    pub is_test: bool,
    /// True when the declared return type mentions `Result`.
    pub returns_result: bool,
    /// Markers written above the function.
    pub markers: Vec<Marker>,
}

impl FnItem {
    /// `Type::name` or the bare name, for reports.
    pub fn qualified(&self) -> String {
        match &self.owner {
            Some(owner) => format!("{owner}::{}", self.name),
            None => self.name.clone(),
        }
    }

    /// True when any marker matches the predicate.
    pub fn has_marker(&self, pred: impl Fn(&Marker) -> bool) -> bool {
        self.markers.iter().any(pred)
    }

    /// True when the first parameter is a `self` receiver (`self`,
    /// `&self`, `&mut self`, `mut self`, `&'a self`, `self: …`). Only
    /// such functions are dispatch targets of method-call syntax;
    /// associated functions like `Manifest::create(path, …)` are not.
    pub fn has_self_receiver(&self) -> bool {
        let Some(open) = self.sig.find('(') else {
            return false;
        };
        let first = self.sig[open + 1..]
            .trim_start()
            .trim_start_matches('&')
            .trim_start();
        // Skip an optional lifetime (`'a `) and `mut` on the receiver.
        let first = match first.strip_prefix('\'') {
            Some(rest) => rest
                .split_once(char::is_whitespace)
                .map(|(_, r)| r)
                .unwrap_or("")
                .trim_start(),
            None => first,
        };
        let first = first
            .strip_prefix("mut ")
            .map(str::trim_start)
            .unwrap_or(first);
        first == "self"
            || first.strip_prefix("self").is_some_and(|r| {
                r.starts_with(|c: char| c == ',' || c == ')' || c == ':' || c.is_whitespace())
            })
    }
}

impl fmt::Display for FnItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}:{})", self.qualified(), self.file, self.line)
    }
}

/// One `Mutex`/`RwLock` struct field — the unit the lock-discipline pass
/// classifies. Declared with `// analyze: lock-class(<name>)` directly
/// above the field; a lock field without a class is a hard finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LockField {
    /// Declared lock class, `None` when the field carries no marker.
    pub class: Option<String>,
    /// Stripped content type behind the lock (`Mutex<Pager>` → `Pager`),
    /// used to classify acquisitions through typed locals.
    pub content: String,
    /// Repo-relative file of the declaration.
    pub file: String,
    /// 1-based line of the field.
    pub line: usize,
}

/// The whole-workspace model.
#[derive(Debug, Default)]
pub struct Model {
    /// All functions; indices are the `FnId`s used by the call graph.
    pub fns: Vec<FnItem>,
    /// `(owner type, field name) -> field type` (last path segment, with
    /// `Option`/`Box`/`Arc`/`Rc`/`Mutex`/`RefCell`/`dyn`/refs stripped).
    pub fields: BTreeMap<(String, String), String>,
    /// `(owner type, field name) -> lock field` for every `Mutex`/`RwLock`
    /// field, with its declared `lock-class(<name>)` when present.
    pub lock_fields: BTreeMap<(String, String), LockField>,
    /// `trait -> implementing types` from `impl Trait for Type` items.
    pub impls: BTreeMap<String, Vec<String>>,
    /// Names of types that appear as an `impl`/`struct`/`trait` owner.
    pub known_types: std::collections::BTreeSet<String>,
    /// Names declared with `trait Name`.
    pub traits: std::collections::BTreeSet<String>,
    /// `fn name -> fn ids` across the workspace.
    pub by_name: BTreeMap<String, Vec<usize>>,
}

impl Model {
    /// Parses `source` (the contents of `file`) into the model.
    pub fn add_file(&mut self, file: &str, source: &str) -> Result<(), String> {
        let masked = mask(source);
        let bytes = masked.as_bytes();
        let test_ranges = test_ranges(bytes);
        let regions = owner_regions(bytes);
        parse_struct_fields(
            &masked,
            source,
            file,
            &mut self.fields,
            &mut self.lock_fields,
        )
        .map_err(|e| format!("{file}: {e}"))?;
        for region in &regions {
            self.known_types.insert(region.name.clone());
            if region.is_trait {
                self.traits.insert(region.name.clone());
            }
            if let Some(trait_name) = &region.trait_name {
                self.impls
                    .entry(trait_name.clone())
                    .or_default()
                    .push(region.name.clone());
            }
        }
        let mut i = 0;
        while let Some(at) = find_kw(bytes, i, b"fn") {
            i = at + 2;
            let Some(parsed) = parse_fn(&masked, source, at) else {
                continue;
            };
            let owner = regions
                .iter()
                .filter(|r| r.body.0 < at && at < r.body.1)
                .max_by_key(|r| r.body.0)
                .map(|r| r.name.clone());
            let in_test_range = test_ranges.iter().any(|(s, e)| *s <= at && at < *e);
            let id = self.fns.len();
            let item = FnItem {
                name: parsed.name.clone(),
                owner,
                file: file.to_string(),
                line: line_of(&masked, at),
                sig: parsed.sig,
                body: parsed.body,
                body_offset: parsed.body_offset,
                is_test: in_test_range || parsed.attr_test,
                returns_result: parsed.returns_result,
                markers: parsed.markers.map_err(|e| format!("{file}: {e}"))?,
            };
            self.by_name.entry(parsed.name).or_default().push(id);
            self.fns.push(item);
            i = parsed.next;
        }
        Ok(())
    }

    /// Ids of functions named `name` owned by `owner`.
    pub fn methods_of(&self, owner: &str, name: &str) -> Vec<usize> {
        self.by_name
            .get(name)
            .map(|ids| {
                ids.iter()
                    .copied()
                    .filter(|&id| self.fns[id].owner.as_deref() == Some(owner))
                    .collect()
            })
            .unwrap_or_default()
    }
}

/// Finds keyword `kw` at or after `from`, on identifier boundaries.
fn find_kw(bytes: &[u8], mut from: usize, kw: &[u8]) -> Option<usize> {
    while from + kw.len() <= bytes.len() {
        if bytes[from..].starts_with(kw) {
            let before_ok = from == 0 || !is_ident_byte(bytes[from - 1]);
            let after = bytes.get(from + kw.len());
            let after_ok = !after.is_some_and(|&b| is_ident_byte(b));
            if before_ok && after_ok {
                return Some(from);
            }
        }
        from += 1;
    }
    None
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn skip_ws(bytes: &[u8], mut i: usize) -> usize {
    while bytes.get(i).is_some_and(|b| b.is_ascii_whitespace()) {
        i += 1;
    }
    i
}

fn read_ident(bytes: &[u8], mut i: usize) -> (String, usize) {
    let start = i;
    while bytes.get(i).is_some_and(|&b| is_ident_byte(b)) {
        i += 1;
    }
    (String::from_utf8_lossy(&bytes[start..i]).into_owned(), i)
}

/// Matches a bracketed region starting at `open_at` (which must hold the
/// opening delimiter); returns the offset one past the closing delimiter.
/// Angle brackets are handled `->`-aware by the caller, this one is for
/// `(`/`[`/`{` which cannot appear unbalanced in masked code.
fn match_delim(bytes: &[u8], open_at: usize) -> usize {
    let open = bytes[open_at];
    let close = match open {
        b'(' => b')',
        b'[' => b']',
        b'{' => b'}',
        _ => return open_at + 1,
    };
    let mut depth = 0usize;
    let mut i = open_at;
    while i < bytes.len() {
        if bytes[i] == open {
            depth += 1;
        } else if bytes[i] == close {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

/// Skips a generics list starting at `<`; `>` preceded by `-` (i.e. `->`)
/// does not close.
fn skip_generics(bytes: &[u8], mut i: usize) -> usize {
    let mut depth = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'<' => depth += 1,
            b'>' if i > 0 && bytes[i - 1] != b'-' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// `#[cfg(test)]` item ranges (the brace-matched block of the annotated
/// item, typically `mod tests`).
fn test_ranges(bytes: &[u8]) -> Vec<(usize, usize)> {
    let needle = b"#[cfg(test)]";
    let mut out = Vec::new();
    let mut i = 0;
    while i + needle.len() <= bytes.len() {
        if &bytes[i..i + needle.len()] == needle {
            let mut j = i + needle.len();
            while j < bytes.len() && bytes[j] != b'{' && bytes[j] != b';' {
                j += 1;
            }
            if bytes.get(j) == Some(&b'{') {
                let end = match_delim(bytes, j);
                out.push((i, end));
                i = j;
            }
        }
        i += 1;
    }
    out
}

struct OwnerRegion {
    name: String,
    trait_name: Option<String>,
    is_trait: bool,
    body: (usize, usize),
}

/// `impl …` and `trait …` regions with the owning type name.
fn owner_regions(bytes: &[u8]) -> Vec<OwnerRegion> {
    let mut out = Vec::new();
    for kw in [&b"impl"[..], &b"trait"[..]] {
        let mut i = 0;
        while let Some(at) = find_kw(bytes, i, kw) {
            i = at + kw.len();
            let mut j = skip_ws(bytes, i);
            if bytes.get(j) == Some(&b'<') {
                j = skip_generics(bytes, j);
                j = skip_ws(bytes, j);
            }
            // Collect path tokens up to `{`, `for`, or `where`.
            let mut first = read_path_type(bytes, &mut j);
            let mut trait_name = None;
            let mut is_for = false;
            loop {
                j = skip_ws(bytes, j);
                match bytes.get(j) {
                    Some(b'{') => break,
                    _ => {
                        if let Some(rest) = find_kw(bytes, j, b"for").filter(|&p| p == j) {
                            let _ = rest;
                            is_for = true;
                            j = skip_ws(bytes, j + 3);
                            trait_name = Some(first.clone());
                            first = read_path_type(bytes, &mut j);
                        } else if let Some(p) = find_kw(bytes, j, b"where").filter(|&p| p == j) {
                            // Skip the where clause up to `{`.
                            j = p + 5;
                            while j < bytes.len() && bytes[j] != b'{' {
                                j += 1;
                            }
                        } else if j >= bytes.len() {
                            break;
                        } else {
                            j += 1;
                        }
                    }
                }
            }
            if bytes.get(j) != Some(&b'{') || first.is_empty() {
                continue;
            }
            let end = match_delim(bytes, j);
            out.push(OwnerRegion {
                name: first,
                trait_name: if is_for { trait_name } else { None },
                is_trait: kw == b"trait",
                body: (j, end),
            });
        }
    }
    out
}

/// Reads a type path at `*j` (e.g. `crate::vfs::VfsFile<'a>`), returning
/// the last path segment and advancing `*j` past the path and any generic
/// arguments.
fn read_path_type(bytes: &[u8], j: &mut usize) -> String {
    let mut last = String::new();
    loop {
        *j = skip_ws(bytes, *j);
        if bytes.get(*j) == Some(&b'&') || bytes.get(*j) == Some(&b'\'') {
            *j += 1;
            continue;
        }
        let (ident, next) = read_ident(bytes, *j);
        if ident.is_empty() {
            break;
        }
        *j = next;
        if bytes.get(*j) == Some(&b'<') {
            let after = skip_generics(bytes, *j);
            if ident != "dyn" && ident != "mut" {
                last = ident;
            }
            *j = after;
            break;
        }
        if bytes.get(*j) == Some(&b':') && bytes.get(*j + 1) == Some(&b':') {
            *j += 2;
            continue;
        }
        if ident != "dyn" && ident != "mut" {
            last = ident;
        }
        break;
    }
    last
}

/// Strips wrapper types to the interesting last segment:
/// `Option<Box<dyn VfsFile>>` → `VfsFile`.
pub fn strip_wrappers(ty: &str) -> String {
    let mut t = ty.trim();
    loop {
        t = t
            .trim_start_matches('&')
            .trim_start_matches("mut ")
            .trim()
            .trim_start_matches("dyn ")
            .trim();
        // `&'a BufferPool` — drop the lifetime token.
        if let Some(rest) = t.strip_prefix('\'') {
            t = match rest.find(char::is_whitespace) {
                Some(ws) => rest[ws..].trim_start(),
                None => "",
            };
            continue;
        }
        let mut advanced = false;
        for wrapper in [
            "Option<", "Box<", "Arc<", "Rc<", "Mutex<", "RwLock<", "RefCell<", "Vec<",
        ] {
            if let Some(rest) = t.strip_prefix(wrapper) {
                t = rest.strip_suffix('>').unwrap_or(rest);
                advanced = true;
                break;
            }
        }
        // Slice / array types: `[Mutex<Shard>]`, `[u8; 4]` → element type.
        if !advanced {
            if let Some(rest) = t.strip_prefix('[') {
                let inner = rest.strip_suffix(']').unwrap_or(rest);
                t = inner.split(';').next().unwrap_or(inner).trim();
                advanced = true;
            }
        }
        if !advanced {
            break;
        }
    }
    // Last path segment, generics dropped.
    let t = t.split('<').next().unwrap_or(t);
    let t = t.rsplit("::").next().unwrap_or(t);
    t.trim().to_string()
}

/// Parses `struct Name { field: Type, … }` declarations into `fields`,
/// recording every `Mutex`/`RwLock` field into `lock_fields` together with
/// its `// analyze: lock-class(<name>)` marker (scanned from the *raw*
/// source above the field — comments are blanked in the masked text).
/// A malformed or misplaced field directive is a parse error, exactly like
/// an unknown function marker.
fn parse_struct_fields(
    masked: &str,
    raw: &str,
    file: &str,
    fields: &mut BTreeMap<(String, String), String>,
    lock_fields: &mut BTreeMap<(String, String), LockField>,
) -> Result<(), String> {
    let bytes = masked.as_bytes();
    let mut i = 0;
    while let Some(at) = find_kw(bytes, i, b"struct") {
        i = at + 6;
        let mut j = skip_ws(bytes, i);
        let (name, next) = read_ident(bytes, j);
        j = next;
        if name.is_empty() {
            continue;
        }
        if bytes.get(j) == Some(&b'<') {
            j = skip_generics(bytes, j);
        }
        j = skip_ws(bytes, j);
        // Skip a where clause.
        while j < bytes.len() && bytes[j] != b'{' && bytes[j] != b';' && bytes[j] != b'(' {
            j += 1;
        }
        if bytes.get(j) != Some(&b'{') {
            continue; // unit or tuple struct
        }
        let end = match_delim(bytes, j);
        let body_start = j + 1;
        let body = &masked[body_start..end.saturating_sub(1)];
        for (part_at, raw_part) in split_fields(body) {
            let mut part = raw_part.trim_start();
            let mut offset = part_at + (raw_part.len() - part.len());
            // `pub` / `pub(crate)` visibility prefixes. Token boundary
            // required: a field *named* `published` starts with the same
            // three bytes.
            let visibility = part
                .strip_prefix("pub")
                .filter(|r| r.starts_with('(') || r.starts_with(|c: char| c.is_whitespace()));
            if let Some(rest) = visibility {
                let rest2 = rest.trim_start();
                let stripped = match rest2.strip_prefix('(') {
                    Some(vis) => vis.split_once(')').map(|(_, r)| r).unwrap_or(rest2),
                    None => rest2,
                };
                offset += part.len() - stripped.len();
                part = stripped;
                let trimmed = part.trim_start();
                offset += part.len() - trimmed.len();
                part = trimmed;
            }
            let part = part.trim_end();
            let Some((fname, ftype)) = part.split_once(':') else {
                continue;
            };
            let fname = fname.trim();
            if fname.is_empty() || !fname.bytes().all(is_ident_byte) {
                continue;
            }
            let ftype = ftype.trim();
            let field_at = body_start + offset;
            let line = line_of(masked, field_at);
            let marker = field_marker(raw, field_at)?;
            if let Some(lock) = lock_content_type(ftype) {
                lock_fields.insert(
                    (name.clone(), fname.to_string()),
                    LockField {
                        class: marker,
                        content: lock,
                        file: file.to_string(),
                        line,
                    },
                );
            } else if let Some(class) = marker {
                return Err(format!(
                    "`lock-class({class})` on `{name}.{fname}`, which is not a \
                     Mutex/RwLock field"
                ));
            }
            fields.insert((name.clone(), fname.to_string()), strip_wrappers(ftype));
        }
        i = j;
    }
    Ok(())
}

/// The stripped content type when `ftype` is (or wraps) a `Mutex`/`RwLock`:
/// `Arc<Mutex<FaultState>>` → `FaultState`, `Box<[Mutex<Shard>]>` → `Shard`.
fn lock_content_type(ftype: &str) -> Option<String> {
    let at = ["Mutex<", "RwLock<"].iter().find_map(|kw| {
        ftype.find(kw).and_then(|p| {
            // Token boundary: `FxMutex<` must not match.
            let boundary = p == 0 || !is_ident_byte(ftype.as_bytes()[p - 1]);
            boundary.then_some(p + kw.len())
        })
    })?;
    let inner_end = skip_generics(ftype.as_bytes(), at - 1).saturating_sub(1);
    let inner = ftype.get(at..inner_end)?;
    // Mutex/RwLock take one type parameter; a top-level comma means we
    // misparsed — bail out rather than classify garbage.
    Some(strip_wrappers(split_top(inner, ',').first()?))
}

/// First segments of `s` split on top-level `sep` (nested brackets ignored).
fn split_top(s: &str, sep: char) -> Vec<&str> {
    let bytes = s.as_bytes();
    let mut parts = Vec::new();
    let mut depth = 0isize;
    let mut start = 0;
    for (idx, &b) in bytes.iter().enumerate() {
        match b {
            b'(' | b'[' | b'<' => depth += 1,
            b')' | b']' => depth -= 1,
            b'>' if idx > 0 && bytes[idx - 1] != b'-' => depth -= 1,
            _ if b == sep as u8 && depth == 0 => {
                parts.push(&s[start..idx]);
                start = idx + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

/// Scans the comment/attribute lines directly above the field at byte
/// offset `field_at` for a `// analyze: lock-class(<name>)` directive.
/// Any other `// analyze:` directive above a field is an error.
fn field_marker(raw: &str, field_at: usize) -> Result<Option<String>, String> {
    let mut class: Option<String> = None;
    let line_start = raw[..field_at.min(raw.len())]
        .rfind('\n')
        .map(|p| p + 1)
        .unwrap_or(0);
    let mut cursor = line_start;
    while cursor > 0 {
        let prev_start = raw[..cursor - 1].rfind('\n').map(|p| p + 1).unwrap_or(0);
        let trimmed = raw[prev_start..cursor - 1].trim();
        if let Some(directive) = trimmed.strip_prefix("// analyze:") {
            let directive = directive.trim();
            let inner = directive
                .strip_prefix("lock-class(")
                .and_then(|rest| rest.strip_suffix(')'))
                .map(str::trim);
            match inner {
                Some(name)
                    if !name.is_empty() && name.bytes().all(|b| is_ident_byte(b) || b == b'-') =>
                {
                    if class.is_some() {
                        return Err("duplicate `lock-class` directives on one field".into());
                    }
                    class = Some(name.to_string());
                }
                _ => {
                    return Err(format!(
                        "unknown field directive `{directive}` (fields accept only \
                         `lock-class(<name>)`)"
                    ))
                }
            }
        } else if !(trimmed.starts_with("///")
            || trimmed.starts_with("//")
            || trimmed.starts_with("#["))
        {
            break;
        }
        cursor = prev_start;
        if prev_start == 0 {
            break;
        }
    }
    Ok(class)
}

/// Splits a struct body on top-level commas (nested `()`/`[]`/`<>`
/// ignored, `->` inside `Fn(…) -> T` fields handled), keeping each part's
/// byte offset within `body`.
fn split_fields(body: &str) -> Vec<(usize, &str)> {
    let bytes = body.as_bytes();
    let mut parts = Vec::new();
    let mut depth = 0isize;
    let mut start = 0;
    for (idx, &b) in bytes.iter().enumerate() {
        match b {
            b'(' | b'[' | b'<' => depth += 1,
            b')' | b']' => depth -= 1,
            b'>' if idx > 0 && bytes[idx - 1] != b'-' => depth -= 1,
            b',' if depth == 0 => {
                parts.push((start, &body[start..idx]));
                start = idx + 1;
            }
            _ => {}
        }
    }
    parts.push((start, &body[start..]));
    parts
}

struct ParsedFn {
    name: String,
    sig: String,
    body: String,
    body_offset: usize,
    returns_result: bool,
    attr_test: bool,
    markers: Result<Vec<Marker>, String>,
    next: usize,
}

/// Parses the function starting with the `fn` keyword at `at`. Returns
/// `None` for `fn(` pointer types and other non-items.
fn parse_fn(masked: &str, raw: &str, at: usize) -> Option<ParsedFn> {
    let bytes = masked.as_bytes();
    let mut j = skip_ws(bytes, at + 2);
    let (name, next) = read_ident(bytes, j);
    if name.is_empty() {
        return None; // `fn(` pointer type
    }
    j = next;
    if bytes.get(j) == Some(&b'<') {
        j = skip_generics(bytes, j);
    }
    j = skip_ws(bytes, j);
    if bytes.get(j) != Some(&b'(') {
        return None;
    }
    let args_end = match_delim(bytes, j);
    // Scan from the end of the argument list to the body `{` or a `;`
    // (trait method signature), at top level.
    let mut k = args_end;
    while k < bytes.len() {
        match bytes[k] {
            b'{' => break,
            b';' => break,
            b'(' | b'[' => k = match_delim(bytes, k),
            b'<' => k = skip_generics(bytes, k),
            _ => k += 1,
        }
    }
    let sig = masked[at..k.min(masked.len())].to_string();
    let returns_result = sig.contains("Result");
    let (body, body_offset, next) = if bytes.get(k) == Some(&b'{') {
        let end = match_delim(bytes, k);
        (masked[k..end].to_string(), k, end)
    } else {
        (String::new(), k, k + 1)
    };
    let (attr_test, markers) = preamble(raw, masked, at);
    Some(ParsedFn {
        name,
        sig,
        body,
        body_offset,
        returns_result,
        attr_test,
        markers,
        next,
    })
}

/// Scans the attribute/doc/marker lines directly above the `fn` at `at`:
/// collects `// analyze:` directives (from the *raw* source — comments are
/// blanked in the masked text) and detects `#[test]`-style attributes.
fn preamble(raw: &str, masked: &str, at: usize) -> (bool, Result<Vec<Marker>, String>) {
    let mut markers = Vec::new();
    let mut attr_test = false;
    // Byte offset of the start of the fn's line.
    let line_start = raw[..at.min(raw.len())]
        .rfind('\n')
        .map(|p| p + 1)
        .unwrap_or(0);
    // Words like `pub`, `const`, `unsafe` may precede `fn` on the same
    // line; anything above is the preamble.
    let mut cursor = line_start;
    loop {
        if cursor == 0 {
            break;
        }
        let prev_start = raw[..cursor - 1].rfind('\n').map(|p| p + 1).unwrap_or(0);
        let raw_line = &raw[prev_start..cursor - 1];
        let trimmed = raw_line.trim();
        let masked_line = masked.get(prev_start..cursor - 1).unwrap_or("");
        if let Some(directive) = trimmed.strip_prefix("// analyze:") {
            match Marker::parse(directive) {
                Ok(m) => markers.push(m),
                Err(e) => return (attr_test, Err(e)),
            }
        } else if trimmed.starts_with("///")
            || trimmed.starts_with("//")
            || trimmed.starts_with("#[")
            || masked_line.trim_start().starts_with("#[")
        {
            let attr = masked_line.trim();
            if attr.starts_with("#[") && (attr.contains("test") || attr.contains("bench")) {
                attr_test = true;
            }
        } else {
            break;
        }
        cursor = prev_start;
        if prev_start == 0 {
            break;
        }
    }
    markers.reverse();
    (attr_test, Ok(markers))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_of(src: &str) -> Model {
        let mut m = Model::default();
        m.add_file("crates/store/src/demo.rs", src).expect("parse");
        m
    }

    #[test]
    fn parses_free_and_method_fns() {
        let m = model_of(
            "fn free(x: u32) -> Result<(), E> { x; }\n\
             struct S { file: Box<dyn VfsFile>, n: u32 }\n\
             impl S {\n    fn method(&self) { self.n; }\n}\n\
             impl VfsFile for S {\n    fn sync(&mut self) {}\n}\n",
        );
        let names: Vec<String> = m.fns.iter().map(|f| f.qualified()).collect();
        assert_eq!(names, ["free", "S::method", "S::sync"], "{names:?}");
        assert!(m.fns[0].returns_result);
        assert!(!m.fns[1].returns_result);
        assert_eq!(
            m.fields
                .get(&("S".into(), "file".into()))
                .map(String::as_str),
            Some("VfsFile")
        );
        assert_eq!(m.impls.get("VfsFile"), Some(&vec!["S".to_string()]));
    }

    #[test]
    fn test_code_is_flagged() {
        let m = model_of(
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n    #[test]\n    fn t() {}\n}\n",
        );
        assert!(!m.fns[0].is_test);
        assert!(m.fns[1].is_test, "helper inside cfg(test) mod");
        assert!(m.fns[2].is_test);
    }

    #[test]
    fn markers_parse_and_attach() {
        let m = model_of(
            "/// Docs.\n// analyze: entrypoint(recovery)\n// analyze: txn-boundary\npub fn open() {}\n\
             // analyze: trusted(const offsets)\nfn leaf() {}\n",
        );
        assert_eq!(
            m.fns[0].markers,
            vec![Marker::EntryRecovery, Marker::TxnBoundary]
        );
        assert_eq!(
            m.fns[1].markers,
            vec![Marker::Trusted("const offsets".into())]
        );
    }

    #[test]
    fn taint_markers_parse_and_attach() {
        let m = model_of(
            "// analyze: untrusted-source\nfn read_u64() {}\n\
             // analyze: validates(len|count)\nfn parse_layout() {}\n\
             // analyze: taint-exempt(branchless bit trick, total on all inputs)\n\
             fn select_zero() {}\n",
        );
        assert_eq!(m.fns[0].markers, vec![Marker::UntrustedSource]);
        assert_eq!(
            m.fns[1].markers,
            vec![Marker::Validates(vec!["len".into(), "count".into()])]
        );
        assert_eq!(
            m.fns[2].markers,
            vec![Marker::TaintExempt(
                "branchless bit trick, total on all inputs".into()
            )]
        );
    }

    #[test]
    fn malformed_taint_markers_are_errors() {
        for src in [
            "// analyze: untrusted-source(page)\nfn f() {}\n",
            "// analyze: validates\nfn f() {}\n",
            "// analyze: validates(size)\nfn f() {}\n",
            "// analyze: validates(len|sizes)\nfn f() {}\n",
            "// analyze: taint-exempt\nfn f() {}\n",
            "// analyze: taint-exempt()\nfn f() {}\n",
        ] {
            let mut m = Model::default();
            let err = m.add_file("f.rs", src);
            assert!(err.is_err(), "`{src}` must be rejected");
        }
    }

    #[test]
    fn bad_marker_is_an_error() {
        let mut m = Model::default();
        let err = m.add_file("f.rs", "// analyze: entrypiont\nfn f() {}\n");
        assert!(err.is_err(), "{err:?}");
    }

    #[test]
    fn strip_wrappers_unwraps_nesting() {
        assert_eq!(strip_wrappers("Option<Box<dyn VfsFile>>"), "VfsFile");
        assert_eq!(strip_wrappers("&mut BTree"), "BTree");
        assert_eq!(strip_wrappers("&'a BufferPool"), "BufferPool");
        assert_eq!(strip_wrappers("&'a mut Tree"), "Tree");
        assert_eq!(strip_wrappers("crate::pager::Pager"), "Pager");
        assert_eq!(strip_wrappers("u32"), "u32");
        assert_eq!(strip_wrappers("Box<[Mutex<Shard>]>"), "Shard");
        assert_eq!(strip_wrappers("[u8; 4]"), "u8");
    }

    #[test]
    fn lock_fields_record_classes_and_content() {
        let m = model_of(
            "struct Pool {\n\
             \x20   /// The pager.\n\
             \x20   // analyze: lock-class(pager)\n\
             \x20   pager: Mutex<Pager>,\n\
             \x20   // analyze: lock-class(shard)\n\
             \x20   shards: Box<[Mutex<Shard>]>,\n\
             \x20   naked: Mutex<State>,\n\
             \x20   n: u32,\n\
             }\n",
        );
        let pager = m
            .lock_fields
            .get(&("Pool".into(), "pager".into()))
            .expect("pager");
        assert_eq!(pager.class.as_deref(), Some("pager"));
        assert_eq!(pager.content, "Pager");
        let shards = m
            .lock_fields
            .get(&("Pool".into(), "shards".into()))
            .expect("shards");
        assert_eq!(shards.class.as_deref(), Some("shard"));
        assert_eq!(shards.content, "Shard");
        let naked = m
            .lock_fields
            .get(&("Pool".into(), "naked".into()))
            .expect("naked");
        assert_eq!(naked.class, None, "unmarked lock field has no class");
        assert!(
            !m.lock_fields.contains_key(&("Pool".into(), "n".into())),
            "plain fields are not lock fields"
        );
    }

    #[test]
    fn pub_prefixed_field_names_keep_their_name() {
        // `published` starts with the bytes `pub`; the visibility stripper
        // must not eat them.
        let m = model_of(
            "struct Store {\n\
             // analyze: lock-class(manifest)\n\
             published: Arc<Mutex<Arc<SourceSet>>>,\n\
             pub pubsub: Mutex<Bus>,\n\
             }\n",
        );
        let p = m
            .lock_fields
            .get(&("Store".into(), "published".into()))
            .expect("published");
        assert_eq!(p.class.as_deref(), Some("manifest"));
        assert_eq!(p.content, "SourceSet");
        let b = m
            .lock_fields
            .get(&("Store".into(), "pubsub".into()))
            .expect("pubsub");
        assert_eq!(b.content, "Bus");
    }

    #[test]
    fn unknown_field_directive_is_an_error() {
        let mut m = Model::default();
        let err = m.add_file(
            "f.rs",
            "struct S {\n    // analyze: lock-klass(shard)\n    x: Mutex<T>,\n}\n",
        );
        assert!(err.is_err(), "{err:?}");
    }

    #[test]
    fn lock_class_on_non_lock_field_is_an_error() {
        let mut m = Model::default();
        let err = m.add_file(
            "f.rs",
            "struct S {\n    // analyze: lock-class(shard)\n    x: u32,\n}\n",
        );
        assert!(err.is_err(), "{err:?}");
    }

    #[test]
    fn lock_class_on_a_fn_is_an_error() {
        let mut m = Model::default();
        let err = m.add_file("f.rs", "// analyze: lock-class(shard)\nfn f() {}\n");
        assert!(err.is_err(), "{err:?}");
    }
}
