//! Transaction discipline: every call path that reaches a mutating
//! storage write must pass through a function that opens a journal
//! transaction, and commit paths must order data-sync before journal
//! retire.
//!
//! The vocabulary is the `// analyze:` markers from [`super::model`]:
//!
//! * `txn-sink` — a mutating write (`Pager::write_page`, buffer-pool page
//!   mutation, …);
//! * `txn-boundary` — opens and closes a transaction around everything it
//!   runs (`IndexStore::transactional`, `ops::ensure_format`);
//! * `txn-exempt(<reason>)` — reviewed out-of-transaction writes
//!   (initialising a fresh file, flushing already-committed state).
//!
//! A function is **covered** when it carries a boundary/exempt marker or
//! its body directly calls a boundary function — the latter handles the
//! `self.transactional(|store| …)` closure idiom, where the closure's
//! calls lexically belong to the enclosing function. A function has
//! **unguarded reach** when it can reach a sink through uncovered
//! functions only. The violations are the non-test *roots* (functions
//! with no non-test workspace callers) with unguarded reach: some public
//! path mutates storage with no transaction anywhere above it.
//!
//! The ordering check is anchored: `Pager::commit` must sync the data
//! file before retiring the journal, and `BufferPool::commit` must flush
//! dirty frames before committing the pager. In workspace runs the
//! anchors are required — renaming them away fails the pass, so the check
//! cannot rot silently.

use super::callgraph::Graph;
use super::model::{Marker, Model};
use crate::rules::Violation;

/// Computes per-function "can reach a sink through uncovered functions".
fn unguarded_reach(model: &Model, graph: &Graph) -> Vec<bool> {
    let n = model.fns.len();
    let sink: Vec<bool> = model
        .fns
        .iter()
        .map(|f| f.has_marker(|m| matches!(m, Marker::TxnSink)))
        .collect();
    let covered: Vec<bool> = model
        .fns
        .iter()
        .enumerate()
        .map(|(id, f)| {
            if f.has_marker(|m| matches!(m, Marker::TxnBoundary | Marker::TxnExempt(_))) {
                return true;
            }
            graph.edges[id]
                .iter()
                .any(|&c| model.fns[c].has_marker(|m| matches!(m, Marker::TxnBoundary)))
        })
        .collect();
    // Fixpoint: reach[f] = sink[f] || (!covered[f] && any(reach[callee])).
    // A covered function cuts propagation: everything below it runs
    // inside (or is excused from) a transaction.
    let mut reach = sink.clone();
    let mut changed = true;
    while changed {
        changed = false;
        for id in 0..n {
            if reach[id] || covered[id] {
                continue;
            }
            if graph.edges[id].iter().any(|&c| reach[c] && !covered[c]) {
                reach[id] = true;
                changed = true;
            }
        }
    }
    // A sink that is itself covered must not propagate either.
    for id in 0..n {
        if covered[id] && !sink[id] {
            reach[id] = false;
        }
    }
    reach
}

/// Example path from `from` to the nearest reachable sink through
/// uncovered functions, for the report.
fn path_to_sink(model: &Model, graph: &Graph, from: usize) -> String {
    let mut parent: Vec<Option<usize>> = vec![None; model.fns.len()];
    let mut visited = vec![false; model.fns.len()];
    let mut queue = std::collections::VecDeque::new();
    visited[from] = true;
    queue.push_back(from);
    let mut found = None;
    'bfs: while let Some(id) = queue.pop_front() {
        for &next in &graph.edges[id] {
            if visited[next] {
                continue;
            }
            visited[next] = true;
            parent[next] = Some(id);
            if model.fns[next].has_marker(|m| matches!(m, Marker::TxnSink)) {
                found = Some(next);
                break 'bfs;
            }
            let covered = model.fns[next]
                .has_marker(|m| matches!(m, Marker::TxnBoundary | Marker::TxnExempt(_)));
            if !covered {
                queue.push_back(next);
            }
        }
    }
    let Some(mut id) = found else {
        return model.fns[from].qualified();
    };
    let mut names = vec![model.fns[id].qualified()];
    while id != from {
        match parent[id] {
            Some(p) => {
                id = p;
                names.push(model.fns[id].qualified());
            }
            None => break,
        }
    }
    names.reverse();
    names.join(" -> ")
}

/// Runs the discipline analysis; violations are zero-tolerance.
pub fn run(model: &Model, graph: &Graph) -> Vec<Violation> {
    let reach = unguarded_reach(model, graph);
    let mut out = Vec::new();
    for (id, f) in model.fns.iter().enumerate() {
        if f.is_test || !reach[id] {
            continue;
        }
        let is_root = graph.callers[id]
            .iter()
            .all(|&c| model.fns[c].is_test || c == id);
        if !is_root {
            continue;
        }
        let covered = f.has_marker(|m| matches!(m, Marker::TxnBoundary | Marker::TxnExempt(_)));
        if covered {
            continue;
        }
        out.push(Violation {
            rule: "txn-discipline",
            file: f.file.clone(),
            line: f.line,
            message: format!(
                "`{}` reaches a mutating write with no transaction on the path: {}",
                f.qualified(),
                path_to_sink(model, graph, id)
            ),
        });
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out
}

/// One ordering anchor: within `owner::name`, the token `first` must
/// appear before the token `then`.
struct Anchor {
    owner: &'static str,
    name: &'static str,
    first: &'static str,
    then: &'static str,
    why: &'static str,
}

const ANCHORS: &[Anchor] = &[
    Anchor {
        owner: "Pager",
        name: "commit",
        first: ".file.sync(",
        then: ".journal.take(",
        why: "data must be durable before the journal is retired \
              (retiring first loses the rollback images for unsynced data)",
    },
    Anchor {
        owner: "BufferPool",
        name: "commit",
        first: "flush_dirty(",
        then: "pager.commit(",
        why: "dirty frames must reach the pager before its commit syncs the file",
    },
];

/// Statically checks commit ordering. With `require_anchors`, a missing
/// anchor function (or missing tokens) is itself a violation, so the
/// check cannot be silently refactored away.
pub fn check_ordering(model: &Model, require_anchors: bool) -> Vec<Violation> {
    let mut out = Vec::new();
    for anchor in ANCHORS {
        let found = model
            .fns
            .iter()
            .find(|f| f.owner.as_deref() == Some(anchor.owner) && f.name == anchor.name);
        let Some(f) = found else {
            if require_anchors {
                out.push(Violation {
                    rule: "txn-ordering",
                    file: "<workspace>".into(),
                    line: 0,
                    message: format!(
                        "ordering anchor `{}::{}` not found; update the anchors in \
                         crates/xtask/src/analyze/txn.rs if it moved",
                        anchor.owner, anchor.name
                    ),
                });
            }
            continue;
        };
        let first = f.body.find(anchor.first);
        let then = f.body.find(anchor.then);
        match (first, then) {
            (Some(a), Some(b)) if a < b => {}
            (Some(_), Some(_)) => out.push(Violation {
                rule: "txn-ordering",
                file: f.file.clone(),
                line: f.line,
                message: format!(
                    "`{}::{}` must run `{}` before `{}`: {}",
                    anchor.owner, anchor.name, anchor.first, anchor.then, anchor.why
                ),
            }),
            _ if require_anchors => out.push(Violation {
                rule: "txn-ordering",
                file: f.file.clone(),
                line: f.line,
                message: format!(
                    "`{}::{}` no longer contains the `{}` / `{}` tokens the ordering \
                     check anchors on; update crates/xtask/src/analyze/txn.rs",
                    anchor.owner, anchor.name, anchor.first, anchor.then
                ),
            }),
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::callgraph::Graph;
    use super::*;

    fn setup(src: &str) -> (Model, Graph) {
        let mut m = Model::default();
        m.add_file("crates/store/src/demo.rs", src).expect("parse");
        let g = Graph::build(&m);
        (m, g)
    }

    #[test]
    fn unguarded_root_is_flagged() {
        let (m, g) = setup(
            "struct P;\nimpl P {\n// analyze: txn-sink\nfn write_page(&mut self) {}\n}\n\
             fn naked(p: &mut P) { p.write_page(); }\n",
        );
        let v = run(&m, &g);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("naked"));
    }

    #[test]
    fn boundary_and_closure_idiom_cover() {
        let (m, g) = setup(
            "struct P;\nimpl P {\n// analyze: txn-sink\nfn write_page(&mut self) {}\n}\n\
             // analyze: txn-boundary\nfn transactional(p: &mut P) { helper(p); }\n\
             fn helper(p: &mut P) { p.write_page(); }\n\
             fn put(p: &mut P) { transactional(p); helper(p); }\n",
        );
        let v = run(&m, &g);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn exempt_root_is_fine() {
        let (m, g) = setup(
            "struct P;\nimpl P {\n// analyze: txn-sink\nfn write_page(&mut self) {}\n}\n\
             // analyze: txn-exempt(fresh file, nothing to protect)\n\
             fn create(p: &mut P) { p.write_page(); }\n",
        );
        let v = run(&m, &g);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn ordering_violation_detected() {
        let (m, _) = setup(
            "struct Pager;\nimpl Pager {\nfn commit(&mut self) {\n\
             self.journal.take();\nself.file.sync();\n}\n}\n",
        );
        let v = check_ordering(&m, false);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("before"));
    }

    #[test]
    fn missing_anchor_fails_workspace_runs_only() {
        let (m, _) = setup("fn unrelated() {}\n");
        assert!(check_ordering(&m, false).is_empty());
        assert_eq!(check_ordering(&m, true).len(), 2);
    }
}
