//! Discarded-`Result` analysis for `crates/store`.
//!
//! The workspace already denies `unused_must_use`, so a bare `foo()?;`
//! statement dropping a `Result` will not compile. What the compiler
//! cannot see are the two idioms that *launder* a `Result` away:
//!
//! * `let _ = fallible(…);`
//! * `fallible(…).ok();` in statement position
//!
//! On the storage crate both patterns hide I/O and corruption errors, so
//! they are zero-tolerance violations there (store files are recognised
//! by their `crates/store/src` path prefix, which the fixture mini-crates
//! mirror).

use super::model::Model;
use crate::rules::Violation;

/// True for files subject to the discard analysis.
fn in_scope(file: &str) -> bool {
    file.starts_with("crates/store/src/")
}

/// Runs the analysis over every non-test store function.
pub fn run(model: &Model) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in &model.fns {
        if f.is_test || !in_scope(&f.file) {
            continue;
        }
        let body_line = f.line + f.sig.bytes().filter(|&b| b == b'\n').count();
        scan_body(&f.body, body_line, &f.file, &mut out);
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out
}

fn scan_body(body: &str, start_line: usize, file: &str, out: &mut Vec<Violation>) {
    let line_at = |pos: usize| {
        start_line
            + body.as_bytes()[..pos]
                .iter()
                .filter(|&&b| b == b'\n')
                .count()
    };
    let mut from = 0;
    while let Some(pos) = body[from..].find("let _ =") {
        let at = from + pos;
        from = at + 7;
        // `let _x = …` is a named discard and fine; `let _ =` only.
        out.push(Violation {
            rule: "discarded-result",
            file: file.to_string(),
            line: line_at(at),
            message: "`let _ = …` discards a value in the storage crate; handle the \
                      `Result` or propagate it"
                .into(),
        });
    }
    let mut from = 0;
    while let Some(pos) = body[from..].find(".ok();") {
        let at = from + pos;
        from = at + 6;
        // Only statement position: `let x = f().ok();` binds the Option
        // for use and is fine. Scan back to the statement start and skip
        // when the value is assigned to anything.
        let stmt_start = body[..at]
            .rfind(|c| c == ';' || c == '{' || c == '}')
            .map(|p| p + 1)
            .unwrap_or(0);
        if body[stmt_start..at].contains('=') {
            continue;
        }
        out.push(Violation {
            rule: "discarded-result",
            file: file.to_string(),
            line: line_at(at),
            message: "`.ok();` swallows an error in the storage crate; handle the \
                      `Result` or propagate it"
                .into(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::model::Model;

    #[test]
    fn flags_both_idioms_in_store_scope() {
        let mut m = Model::default();
        m.add_file(
            "crates/store/src/demo.rs",
            "fn f() { let _ = fallible(); other().ok(); }\n",
        )
        .expect("parse");
        let v = run(&m);
        assert_eq!(v.len(), 2, "{v:?}");
    }

    #[test]
    fn out_of_scope_and_tests_are_ignored() {
        let mut m = Model::default();
        m.add_file(
            "crates/core/src/demo.rs",
            "fn f() { let _ = fallible(); }\n",
        )
        .expect("parse");
        m.add_file(
            "crates/store/src/demo.rs",
            "#[cfg(test)]\nmod tests {\n    fn t() { let _ = fallible(); }\n}\n",
        )
        .expect("parse");
        assert!(run(&m).is_empty());
    }

    #[test]
    fn ok_with_question_mark_is_fine() {
        let mut m = Model::default();
        m.add_file(
            "crates/store/src/demo.rs",
            "fn f() -> Option<u8> { let x = parse().ok()?; Some(x) }\n",
        )
        .expect("parse");
        assert!(run(&m).is_empty(), "`.ok()?` converts, not discards");
    }
}
