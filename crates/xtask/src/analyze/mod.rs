//! `cargo xtask analyze` — whole-workspace semantic analysis.
//!
//! The pipeline: [`model`] parses every source file into functions,
//! fields and impls; [`callgraph`] connects them; [`panic`], [`txn`],
//! [`lock`], [`taint`] and [`discard`] run the analyses; [`report`]
//! aggregates. The entry-point/trust vocabulary is the `// analyze:`
//! marker comments documented in DESIGN.md §10; the concurrency pass is
//! DESIGN.md §12; the untrusted-bytes taint pass is DESIGN.md §16.

pub mod callgraph;
pub mod discard;
pub mod lock;
pub mod model;
pub mod panic;
pub mod report;
pub mod taint;
pub mod txn;

use crate::walk::{rel, rust_files};
use report::Report;
use std::io;
use std::path::Path;

/// Builds the model from every `.rs` under `crates/*/src` and the root
/// `src/` of the workspace at `root` (the same scope as the token lints).
pub fn workspace_model(root: &Path) -> io::Result<model::Model> {
    let mut m = model::Model::default();
    for path in crate::rules::workspace_sources(root)? {
        let source = std::fs::read_to_string(&path)?;
        m.add_file(&rel(root, &path), &source)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    }
    Ok(m)
}

/// Builds a model from *every* `.rs` under `dir` — used by the fixture
/// tests, whose mini-crates mirror the `crates/<name>/src` layout.
pub fn dir_model(dir: &Path) -> io::Result<model::Model> {
    let mut m = model::Model::default();
    for path in rust_files(dir)? {
        let source = std::fs::read_to_string(&path)?;
        m.add_file(&rel(dir, &path), &source)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    }
    Ok(m)
}

/// Runs the analyses over a built model. `require_anchors` demands the
/// commit-ordering and lock-discipline anchors exist (on for workspace
/// runs, off for fixtures).
pub fn run_model(m: &model::Model, require_anchors: bool) -> Report {
    let graph = callgraph::Graph::build(m);
    let seeds = panic::all_seeds(m);
    let panic_report = panic::run(m, &graph, &seeds);
    let lock_report = lock::run(m, &graph, require_anchors);
    let mut hard = panic_report.recovery;
    hard.extend(txn::run(m, &graph));
    hard.extend(txn::check_ordering(m, require_anchors));
    hard.extend(discard::run(m));
    hard.extend(lock_report.hard);
    hard.extend(taint::run(m, require_anchors));
    let mut ratcheted = panic_report.ratcheted;
    ratcheted.extend(lock_report.census);
    Report { hard, ratcheted }
}

/// Convenience: model + analyses for a fixture directory.
pub fn run_dir(dir: &Path) -> io::Result<Report> {
    Ok(run_model(&dir_model(dir)?, false))
}
