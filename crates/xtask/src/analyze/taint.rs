//! Untrusted-bytes taint analysis: values decoded from raw on-disk bytes
//! must be validated before they steer memory or control flow.
//!
//! The vocabulary is three `// analyze:` markers from [`super::model`]:
//!
//! * `untrusted-source` — the function returns a value read straight from
//!   disk bytes (page buffers, journal records, segment/manifest header
//!   slots, posting-block sections). The function itself must be *total*
//!   (error, never panic, on any input — the panic pass and the decode
//!   fuzz harness enforce that side); its **result is tainted**.
//! * `validates(len|offset|pageid|count)` — a declared validation
//!   boundary: the function checks the listed quantities and its result
//!   is trusted. Its integer/byte-slice parameters are treated as tainted
//!   inside its own body, so the declared checks are themselves analyzed.
//! * `taint-exempt(<reason>)` — a reviewed leaf that intentionally works
//!   on raw values (branchless bit tricks, CRC folds) and is total over
//!   all inputs. The reason string is mandatory.
//!
//! Within each function body the pass replays, in byte order: `let`/`for`
//! bindings (a binding whose right-hand side mentions a tainted value or
//! calls a source becomes tainted; a clean rebinding clears), guard exits
//! (`if <comparison on tainted x> { return/break/Err … }` clears `x` from
//! the end of the block on), and the six sink shapes:
//!
//! * `taint-index` — tainted value inside an index/slice expression;
//! * `taint-alloc` — tainted value sizing `with_capacity` / `reserve` /
//!   `resize` / `vec![…; n]`;
//! * `taint-loop` — tainted range bound (`for … in a..b`) or `while`
//!   condition;
//! * `taint-arith` — tainted operand of `+ - * / % ^ << >>` (compound
//!   assignment included) outside a guard condition;
//! * `taint-pageid` — tainted value inside a `PageId(…)` constructor;
//! * `taint-escape` — tainted value passed to (or receiving) a resolved
//!   workspace function that declares no taint contract: the missing-
//!   validator case. Mark the callee `validates(…)` or validate first.
//!
//! Taint is cleared by `.min(…)` / `.clamp(…)`, by flowing through a
//! `validates`/`taint-exempt` call, or by a comparison guard that
//! diverges. Reading `.len()` / `.is_empty()` / bit-count methods of a
//! tainted value yields a clean result. Documented approximations: the
//! pass is lexical and intra-procedural (markers carry taint across
//! calls); arithmetic inside `if`/`while` conditions is allowed (the
//! comparison *is* the validation; overflow there is the panic pass's and
//! the fuzz harness's job); sinks inside a diverging guard block are
//! skipped (that arm is the rejection path); plain reassignment without
//! `let` is not tracked — shadow with `let` instead. The structure-aware
//! decode fuzz harness (`crates/store/tests/decode_fuzz.rs`) backstops
//! all of this dynamically. Triage guide: DESIGN.md §16.

use super::callgraph::{call_sites, local_types, resolve_site_typed};
use super::model::{FnItem, Marker, Model};
use crate::rules::Violation;
use std::collections::BTreeSet;
use std::ops::Range;

/// Runs the taint analysis; findings are zero-tolerance. With
/// `require_anchors` (workspace runs) at least one `untrusted-source`
/// marker must exist, so the pass cannot rot away silently.
pub fn run(model: &Model, require_anchors: bool) -> Vec<Violation> {
    let mut out = Vec::new();
    let any_source = model
        .fns
        .iter()
        .any(|f| f.has_marker(|m| matches!(m, Marker::UntrustedSource)));
    if require_anchors && !any_source {
        out.push(Violation {
            rule: "taint-anchor",
            file: "<workspace>".into(),
            line: 0,
            message: "no `untrusted-source` markers found; the taint pass has nothing \
                      to track — re-mark the decode seam (see DESIGN.md §16)"
                .into(),
        });
    }
    for f in &model.fns {
        if f.is_test
            || f.has_marker(|m| matches!(m, Marker::UntrustedSource | Marker::TaintExempt(_)))
        {
            continue;
        }
        analyze_fn(model, f, &mut out);
    }
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out
}

/// How one call site relates to the taint contract.
#[derive(Clone, Debug, PartialEq)]
enum Class {
    /// Resolves to an `untrusted-source` fn: the result is tainted.
    Source,
    /// Resolves to a `validates(…)`/`taint-exempt(…)` fn: the result is
    /// trusted and tainted arguments are fine.
    Boundary,
    /// Resolves to unannotated workspace code: tainted arguments escape.
    Plain(String),
    /// Std/external: no workspace edge, no contract to enforce.
    External,
}

/// One classified call site with its argument span.
struct Site {
    at: usize,
    name: String,
    recv_head: Option<String>,
    args: Option<Range<usize>>,
    class: Class,
}

/// One replay item, ordered by byte offset within the body.
enum Item {
    /// `let` binding: names become tainted iff the rhs span is.
    Bind {
        names: Vec<String>,
        rhs: Range<usize>,
    },
    /// `for <name> in <expr> {`: the binding follows the iterated expr;
    /// a tainted *range* bound is a `taint-loop` finding.
    ForBind { name: String, expr: Range<usize> },
    /// End of a diverging comparison guard: clear the compared idents.
    GuardClear { cond: Range<usize> },
    /// A sink to check against the taint state at this offset.
    Sink { kind: SinkKind, span: Range<usize> },
    /// Tainted use of `ident` adjacent to an arithmetic operator.
    Arith { ident: String },
    /// Call into unannotated workspace code: args/receiver must be clean.
    Escape {
        target: String,
        args: Range<usize>,
        recv_head: Option<String>,
    },
}

#[derive(Clone, Copy, Debug)]
enum SinkKind {
    Index,
    Alloc,
    PageId,
    While,
}

impl SinkKind {
    fn rule(self) -> &'static str {
        match self {
            SinkKind::Index => "taint-index",
            SinkKind::Alloc => "taint-alloc",
            SinkKind::PageId => "taint-pageid",
            SinkKind::While => "taint-loop",
        }
    }

    fn describe(self) -> &'static str {
        match self {
            SinkKind::Index => "as a slice index",
            SinkKind::Alloc => "as an allocation size",
            SinkKind::PageId => "as a page id",
            SinkKind::While => "as a loop bound",
        }
    }
}

fn analyze_fn(model: &Model, f: &FnItem, out: &mut Vec<Violation>) {
    let body = &f.body;
    if body.is_empty() {
        return;
    }
    let locals = local_types(f, model);
    let sites = classify_sites(model, f, &locals);

    let mut items: Vec<(usize, Item)> = Vec::new();
    scan_let_bindings(body, &mut items);
    scan_for_loops(body, &mut items);
    let (cond_spans, diverging) = scan_guards(body, &mut items);
    scan_whiles(body, &cond_spans, &mut items);
    scan_index_sinks(body, &mut items);
    scan_alloc_sinks(body, &mut items);
    scan_pageid_sinks(body, &mut items);
    scan_arith(body, &cond_spans, &mut items);
    for s in &sites {
        if let (Class::Plain(target), Some(args)) = (&s.class, &s.args) {
            items.push((
                s.at,
                Item::Escape {
                    target: target.clone(),
                    args: args.clone(),
                    recv_head: s.recv_head.clone(),
                },
            ));
        }
    }
    // The rejection arm of a diverging guard may mention the rejected
    // value (error messages); sinks there are not reachable misuse.
    items.retain(|(at, item)| {
        matches!(item, Item::GuardClear { .. }) || !diverging.iter().any(|d| d.contains(at))
    });
    items.sort_by_key(|(at, _)| *at);

    // Validators analyze their own declared checks: raw integer and byte
    // parameters start tainted.
    let mut tainted: BTreeSet<String> = BTreeSet::new();
    if f.has_marker(|m| matches!(m, Marker::Validates(_))) {
        for (name, ty) in &locals {
            if is_raw_param_type(ty) && param_names(f).contains(name) {
                tainted.insert(name.clone());
            }
        }
    }

    let body_line = f.line + f.sig.bytes().filter(|&b| b == b'\n').count();
    let line_at = |pos: usize| {
        body_line
            + body[..pos.min(body.len())]
                .bytes()
                .filter(|&b| b == b'\n')
                .count()
    };
    let mut push = |rule: &'static str, at: usize, message: String| {
        out.push(Violation {
            rule,
            file: f.file.clone(),
            line: line_at(at),
            message,
        });
    };

    for (at, item) in items {
        match item {
            Item::Bind { names, rhs } => match span_culprit(body, &rhs, &tainted, &sites) {
                Some(_) => tainted.extend(names),
                None => {
                    for n in &names {
                        tainted.remove(n);
                    }
                }
            },
            Item::ForBind { name, expr } => match span_culprit(body, &expr, &tainted, &sites) {
                Some(culprit) => {
                    if body[expr.clone()].contains("..") {
                        push(
                            "taint-loop",
                            at,
                            format!(
                                "`{}` bounds a loop with untrusted {culprit} \
                                     without validation",
                                f.qualified()
                            ),
                        );
                    }
                    tainted.insert(name);
                }
                None => {
                    tainted.remove(&name);
                }
            },
            Item::GuardClear { cond } => {
                let cleared: Vec<String> = tainted
                    .iter()
                    .filter(|n| mentions_ident(&body[cond.clone()], n))
                    .cloned()
                    .collect();
                for n in cleared {
                    tainted.remove(&n);
                }
            }
            Item::Sink { kind, span } => {
                if let Some(culprit) = span_culprit(body, &span, &tainted, &sites) {
                    push(
                        kind.rule(),
                        at,
                        format!(
                            "`{}` uses untrusted {culprit} {} without validation",
                            f.qualified(),
                            kind.describe()
                        ),
                    );
                }
            }
            Item::Arith { ident } => {
                if tainted.contains(&ident) {
                    push(
                        "taint-arith",
                        at,
                        format!(
                            "`{}` does arithmetic on untrusted `{ident}` without \
                             validation",
                            f.qualified()
                        ),
                    );
                }
            }
            Item::Escape {
                target,
                args,
                recv_head,
            } => {
                let culprit = span_culprit(body, &args, &tainted, &sites).or_else(|| {
                    recv_head
                        .filter(|h| tainted.contains(h))
                        .map(|h| format!("`{h}`"))
                });
                if let Some(culprit) = culprit {
                    push(
                        "taint-escape",
                        at,
                        format!(
                            "`{}` passes untrusted {culprit} to `{target}`, which \
                             declares no validation (mark it `validates(…)`/\
                             `taint-exempt(…)` or validate first)",
                            f.qualified()
                        ),
                    );
                }
            }
        }
    }
}

/// Classifies every call site in `f`'s body through the typed resolver —
/// like the lock pass, taint is zero-tolerance, so one phantom edge onto a
/// same-named method would be an unfixable finding.
fn classify_sites(
    model: &Model,
    f: &FnItem,
    locals: &std::collections::BTreeMap<String, String>,
) -> Vec<Site> {
    let body = &f.body;
    let mut out = Vec::new();
    for call in call_sites(body) {
        let targets = resolve_site_typed(model, f, &call, locals);
        let has = |pred: &dyn Fn(&Marker) -> bool| {
            targets.iter().any(|&id| model.fns[id].has_marker(pred))
        };
        let class = if has(&|m| matches!(m, Marker::UntrustedSource)) {
            Class::Source
        } else if has(&|m| matches!(m, Marker::Validates(_) | Marker::TaintExempt(_))) {
            Class::Boundary
        } else if let Some(&id) = targets.first() {
            Class::Plain(model.fns[id].qualified())
        } else {
            Class::External
        };
        out.push(Site {
            at: call.at,
            name: call.name.clone(),
            recv_head: call.recv.iter().find(|r| r.as_str() != "self").cloned(),
            args: args_span(body, call.at + call.name.len()),
            class,
        });
    }
    out
}

/// Integer and raw-byte parameter types a validator treats as tainted.
fn is_raw_param_type(ty: &str) -> bool {
    matches!(
        ty,
        "u8" | "u16"
            | "u32"
            | "u64"
            | "u128"
            | "usize"
            | "i8"
            | "i16"
            | "i32"
            | "i64"
            | "i128"
            | "isize"
    )
}

/// Declared parameter names of `f` (from the masked signature).
fn param_names(f: &FnItem) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    if let (Some(open), Some(close)) = (f.sig.find('('), f.sig.rfind(')')) {
        if open < close {
            for part in f.sig[open + 1..close].split(',') {
                if let Some((name, _)) = part.split_once(':') {
                    let name = name.trim().trim_start_matches("mut ").trim();
                    if !name.is_empty()
                        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                    {
                        out.insert(name.to_string());
                    }
                }
            }
        }
    }
    out
}

/// Results that are clean even when read off a tainted value.
const CLEAN_SUFFIXES: &[&str] = &[
    ".len()",
    ".is_empty()",
    ".count_ones()",
    ".count_zeros()",
    ".leading_zeros()",
    ".trailing_zeros()",
];

/// Why `span` is tainted: the first tainted identifier or source call in
/// it, unless a clearing construct (`.min(`/`.clamp(`, a boundary call)
/// covers the span.
fn span_culprit(
    body: &str,
    span: &Range<usize>,
    tainted: &BTreeSet<String>,
    sites: &[Site],
) -> Option<String> {
    let text = body.get(span.clone())?;
    if text.contains(".min(") || text.contains(".clamp(") {
        return None;
    }
    if sites
        .iter()
        .any(|s| span.contains(&s.at) && s.class == Class::Boundary)
    {
        return None;
    }
    if let Some(s) = sites
        .iter()
        .find(|s| span.contains(&s.at) && s.class == Class::Source)
    {
        return Some(format!("result of `{}(…)`", s.name));
    }
    for (at, ident) in idents(text) {
        if tainted.contains(ident)
            && !CLEAN_SUFFIXES
                .iter()
                .any(|c| text[at + ident.len()..].starts_with(c))
        {
            return Some(format!("`{ident}`"));
        }
    }
    None
}

/// True when `text` contains `ident` on word boundaries.
fn mentions_ident(text: &str, ident: &str) -> bool {
    idents(text).any(|(_, i)| i == ident)
}

/// `(offset, ident)` for every identifier token in `text`.
fn idents(text: &str) -> impl Iterator<Item = (usize, &str)> {
    let bytes = text.as_bytes();
    let mut i = 0;
    std::iter::from_fn(move || {
        while i < bytes.len() {
            let b = bytes[i];
            if b.is_ascii_alphabetic() || b == b'_' {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                return Some((start, &text[start..i]));
            }
            if b.is_ascii_digit() {
                // Skip numeric literals together with their suffix
                // (`0u8`, `1_000usize`) so the suffix is not an ident.
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                continue;
            }
            i += 1;
        }
        None
    })
}

/// Balanced-delimiter end (one past the closer) for the opener at `at`.
fn balanced(bytes: &[u8], at: usize) -> usize {
    let open = bytes[at];
    let close = match open {
        b'(' => b')',
        b'[' => b']',
        b'{' => b'}',
        _ => return at + 1,
    };
    let mut depth = 0usize;
    let mut i = at;
    while i < bytes.len() {
        if bytes[i] == open {
            depth += 1;
        } else if bytes[i] == close {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

/// The content span inside the call parens that follow `pos` (after the
/// called name), if any.
fn args_span(body: &str, pos: usize) -> Option<Range<usize>> {
    let bytes = body.as_bytes();
    let mut j = pos;
    while bytes.get(j).is_some_and(|b| b.is_ascii_whitespace()) {
        j += 1;
    }
    if bytes.get(j) != Some(&b'(') {
        return None;
    }
    let end = balanced(bytes, j);
    Some(j + 1..end.saturating_sub(1))
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Finds `kw` (plus a trailing space) at word boundaries, yielding the
/// offset just past the keyword and its space.
fn keyword_starts<'a>(body: &'a str, kw: &'a str) -> impl Iterator<Item = usize> + 'a {
    let bytes = body.as_bytes();
    let pat = format!("{kw} ");
    let mut from = 0;
    std::iter::from_fn(move || {
        while let Some(pos) = body[from..].find(&pat) {
            let at = from + pos;
            from = at + pat.len();
            if at == 0 || !is_ident_byte(bytes[at - 1]) {
                return Some(at + pat.len());
            }
        }
        None
    })
}

/// `let` bindings: plain idents, `Some(x)`/`Ok(x)` patterns, and tuple
/// patterns. The binding event carries the right-hand-side span up to the
/// statement's top-level `;`.
fn scan_let_bindings(body: &str, items: &mut Vec<(usize, Item)>) {
    let bytes = body.as_bytes();
    for after_let in keyword_starts(body, "let") {
        let rest = &body[after_let..];
        let rest = rest.strip_prefix("mut ").unwrap_or(rest);
        let pat_start = after_let + (body[after_let..].len() - rest.len());
        let mut names = Vec::new();
        let mut cursor;
        if let Some(inner) = rest
            .strip_prefix("Some(")
            .or_else(|| rest.strip_prefix("Ok("))
        {
            let Some(close) = inner.find(')') else {
                continue;
            };
            collect_pattern_names(&inner[..close], &mut names);
            cursor = pat_start + (rest.len() - inner.len()) + close + 1;
        } else if rest.starts_with('(') {
            let open = pat_start;
            let end = balanced(bytes, open);
            collect_pattern_names(&body[open + 1..end.saturating_sub(1)], &mut names);
            cursor = end;
        } else {
            let name: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if name.is_empty() {
                continue;
            }
            cursor = pat_start + name.len();
            names.push(name);
        }
        // Skip an optional `: Type` annotation up to `=`/`;` at top level.
        while cursor < bytes.len() && bytes[cursor] != b'=' && bytes[cursor] != b';' {
            match bytes[cursor] {
                b'(' | b'[' | b'{' => cursor = balanced(bytes, cursor),
                _ => cursor += 1,
            }
        }
        if bytes.get(cursor) != Some(&b'=') || names.is_empty() {
            continue;
        }
        let rhs_start = cursor + 1;
        let mut end = rhs_start;
        while end < bytes.len() && bytes[end] != b';' {
            match bytes[end] {
                b'(' | b'[' | b'{' => end = balanced(bytes, end),
                _ => end += 1,
            }
        }
        items.push((
            after_let,
            Item::Bind {
                names,
                rhs: rhs_start..end,
            },
        ));
    }
}

fn collect_pattern_names(pat: &str, names: &mut Vec<String>) {
    for part in pat.split(',') {
        let part = part
            .trim()
            .trim_start_matches("ref ")
            .trim_start_matches("mut ")
            .trim();
        if !part.is_empty()
            && part != "_"
            && part.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            names.push(part.to_string());
        }
    }
}

/// `for <name> in <expr> {` loops.
fn scan_for_loops(body: &str, items: &mut Vec<(usize, Item)>) {
    let bytes = body.as_bytes();
    for after_for in keyword_starts(body, "for") {
        let rest = &body[after_for..];
        let name: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if name.is_empty() {
            continue;
        }
        let after = rest[name.len()..].trim_start();
        let Some(expr_rel) = after.strip_prefix("in ") else {
            continue;
        };
        let expr_start = after_for + (rest.len() - expr_rel.len());
        // Condition runs to the loop `{` at top paren depth.
        let mut end = expr_start;
        let mut depth = 0usize;
        while end < bytes.len() {
            match bytes[end] {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth = depth.saturating_sub(1),
                b'{' if depth == 0 => break,
                _ => {}
            }
            end += 1;
        }
        items.push((
            after_for,
            Item::ForBind {
                name,
                expr: expr_start..end,
            },
        ));
    }
}

/// Comparison guards that diverge. Returns every `if`/`while` condition
/// span (arithmetic there is the validation itself) and the spans of
/// diverging guard blocks (sinks there sit on the rejection path).
fn scan_guards(
    body: &str,
    items: &mut Vec<(usize, Item)>,
) -> (Vec<Range<usize>>, Vec<Range<usize>>) {
    let bytes = body.as_bytes();
    let mut conds = Vec::new();
    let mut diverging = Vec::new();
    for after_if in keyword_starts(body, "if") {
        if body[after_if..].starts_with("let ") {
            continue;
        }
        let cond_start = after_if;
        let mut end = cond_start;
        let mut depth = 0usize;
        while end < bytes.len() {
            match bytes[end] {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth = depth.saturating_sub(1),
                b'{' if depth == 0 => break,
                _ => {}
            }
            end += 1;
        }
        if bytes.get(end) != Some(&b'{') {
            continue;
        }
        let cond = cond_start..end;
        let text = &body[cond.clone()];
        let compares =
            text.contains("==") || text.contains("!=") || text.contains('<') || text.contains('>');
        conds.push(cond.clone());
        if !compares {
            continue;
        }
        let block_end = balanced(bytes, end);
        let block = &body[end..block_end];
        let diverges = mentions_ident(block, "return")
            || mentions_ident(block, "break")
            || mentions_ident(block, "continue")
            || block.contains("Err(");
        if diverges {
            diverging.push(end..block_end);
            items.push((block_end, Item::GuardClear { cond }));
        }
    }
    (conds, diverging)
}

/// `while <cond> {` loops — a tainted condition is a tainted loop bound.
fn scan_whiles(body: &str, conds_out: &Vec<Range<usize>>, items: &mut Vec<(usize, Item)>) {
    let _ = conds_out;
    let bytes = body.as_bytes();
    for after_while in keyword_starts(body, "while") {
        if body[after_while..].starts_with("let ") {
            continue;
        }
        let mut end = after_while;
        let mut depth = 0usize;
        while end < bytes.len() {
            match bytes[end] {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth = depth.saturating_sub(1),
                b'{' if depth == 0 => break,
                _ => {}
            }
            end += 1;
        }
        items.push((
            after_while,
            Item::Sink {
                kind: SinkKind::While,
                span: after_while..end,
            },
        ));
    }
}

/// Index/slice expressions: `x[…]` where the `[` follows a value.
fn scan_index_sinks(body: &str, items: &mut Vec<(usize, Item)>) {
    let bytes = body.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' || i == 0 {
            continue;
        }
        let prev = bytes[i - 1];
        if !(is_ident_byte(prev) || prev == b')' || prev == b']') {
            continue;
        }
        let end = balanced(bytes, i);
        items.push((
            i,
            Item::Sink {
                kind: SinkKind::Index,
                span: i + 1..end.saturating_sub(1),
            },
        ));
    }
}

/// Allocation sizes: `with_capacity(…)`, `.reserve(…)`, `.resize(…)`,
/// `vec![…]`.
fn scan_alloc_sinks(body: &str, items: &mut Vec<(usize, Item)>) {
    let bytes = body.as_bytes();
    for pat in ["with_capacity(", ".reserve(", ".reserve_exact(", ".resize("] {
        let mut from = 0;
        while let Some(pos) = body[from..].find(pat) {
            let at = from + pos;
            from = at + pat.len();
            let open = at + pat.len() - 1;
            let end = balanced(bytes, open);
            items.push((
                at,
                Item::Sink {
                    kind: SinkKind::Alloc,
                    span: open + 1..end.saturating_sub(1),
                },
            ));
        }
    }
    let mut from = 0;
    while let Some(pos) = body[from..].find("vec![") {
        let at = from + pos;
        from = at + 5;
        let end = balanced(bytes, at + 4);
        items.push((
            at,
            Item::Sink {
                kind: SinkKind::Alloc,
                span: at + 5..end.saturating_sub(1),
            },
        ));
    }
}

/// `PageId(…)` constructions.
fn scan_pageid_sinks(body: &str, items: &mut Vec<(usize, Item)>) {
    let bytes = body.as_bytes();
    let mut from = 0;
    while let Some(pos) = body[from..].find("PageId(") {
        let at = from + pos;
        from = at + 7;
        if at > 0 && is_ident_byte(bytes[at - 1]) {
            continue;
        }
        let end = balanced(bytes, at + 6);
        items.push((
            at,
            Item::Sink {
                kind: SinkKind::PageId,
                span: at + 7..end.saturating_sub(1),
            },
        ));
    }
}

/// Identifier occurrences adjacent to arithmetic operators, outside
/// `if`/`while` conditions.
fn scan_arith(body: &str, conds: &[Range<usize>], items: &mut Vec<(usize, Item)>) {
    let bytes = body.as_bytes();
    for (at, ident) in idents(body) {
        if conds.iter().any(|c| c.contains(&at)) {
            continue;
        }
        if arith_before(bytes, at) || arith_after(bytes, at + ident.len()) {
            items.push((
                at,
                Item::Arith {
                    ident: ident.to_string(),
                },
            ));
        }
    }
}

/// True when the nearest non-space text before `at` is an arithmetic
/// operator (comparisons, references, logical ops and `->` excluded).
fn arith_before(bytes: &[u8], at: usize) -> bool {
    let mut i = at;
    while i > 0 && bytes[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    if i == 0 {
        return false;
    }
    let prev = bytes[i - 1];
    let prev2 = if i >= 2 { Some(bytes[i - 2]) } else { None };
    match prev {
        b'+' | b'*' | b'/' | b'%' | b'^' => prev2 != Some(prev) || prev == b'+',
        // `-` is arithmetic; `->` cannot directly precede a value ident.
        b'-' => true,
        b'<' => prev2 == Some(b'<'),
        b'>' => prev2 == Some(b'>') && (i < 3 || bytes[i - 3] != b'-'),
        b'=' => matches!(
            prev2,
            Some(b'+') | Some(b'-') | Some(b'*') | Some(b'/') | Some(b'%') | Some(b'^')
        ),
        _ => false,
    }
}

/// True when the nearest non-space text after `end` is an arithmetic
/// operator (comparisons, `..` ranges, and plain `=` excluded).
fn arith_after(bytes: &[u8], end: usize) -> bool {
    let mut i = end;
    // `?` propagates before the operator applies: `x? + 1`.
    while bytes
        .get(i)
        .is_some_and(|&b| b.is_ascii_whitespace() || b == b'?')
    {
        i += 1;
    }
    let Some(&next) = bytes.get(i) else {
        return false;
    };
    let next2 = bytes.get(i + 1).copied();
    match next {
        b'+' | b'*' | b'/' | b'%' | b'^' => next2 != Some(b'=') || true,
        b'-' => next2 != Some(b'>'),
        b'<' => next2 == Some(b'<'),
        b'>' => next2 == Some(b'>'),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Violation> {
        let mut m = Model::default();
        m.add_file("crates/store/src/demo.rs", src).expect("parse");
        run(&m, false)
    }

    const SOURCE: &str = "// analyze: untrusted-source\n\
                          fn read_raw(b: &[u8], at: usize) -> u64 { 0 }\n";

    #[test]
    fn tainted_index_is_flagged() {
        let v = findings(&format!(
            "{SOURCE}fn decode(b: &[u8]) -> u8 {{ let n = read_raw(b, 0); b[n] }}\n"
        ));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "taint-index");
        assert!(v[0].message.contains("`n`"), "{}", v[0].message);
    }

    #[test]
    fn guard_clears_taint() {
        let v = findings(&format!(
            "{SOURCE}fn decode(b: &[u8]) -> u8 {{ let n = read_raw(b, 0);\n\
             if n >= b.len() {{ return 0; }}\n b[n] }}\n"
        ));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn min_clamp_clears_taint() {
        let v = findings(&format!(
            "{SOURCE}fn decode(b: &[u8]) {{ let n = read_raw(b, 0);\n\
             let n = n.min(b.len());\n let v = Vec::with_capacity(n); }}\n"
        ));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn tainted_alloc_and_loop_and_arith_flagged() {
        let v = findings(&format!(
            "{SOURCE}fn decode(b: &[u8]) {{ let n = read_raw(b, 0);\n\
             let v = Vec::with_capacity(n);\n\
             for i in 0..n {{ }}\n\
             let m = n * 8;\n }}\n"
        ));
        let rules: Vec<&str> = v.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"taint-alloc"), "{v:?}");
        assert!(rules.contains(&"taint-loop"), "{v:?}");
        assert!(rules.contains(&"taint-arith"), "{v:?}");
    }

    #[test]
    fn validator_call_clears_and_escape_fires_without_one() {
        let with_validator = findings(&format!(
            "{SOURCE}// analyze: validates(count)\n\
             fn checked(n: u64) -> u64 {{ if n > 4096 {{ return 0; }} n }}\n\
             fn decode(b: &[u8]) {{ let n = checked(read_raw(b, 0));\n\
             let v = Vec::with_capacity(n); }}\n"
        ));
        assert!(with_validator.is_empty(), "{with_validator:?}");

        let without = findings(&format!(
            "{SOURCE}fn helper(n: u64) -> u64 {{ n }}\n\
             fn decode(b: &[u8]) {{ let n = read_raw(b, 0);\n let v = helper(n); }}\n"
        ));
        assert_eq!(without.len(), 1, "{without:?}");
        assert_eq!(without[0].rule, "taint-escape");
        assert!(
            without[0].message.contains("helper"),
            "{}",
            without[0].message
        );
    }

    #[test]
    fn source_call_in_sink_position_is_flagged() {
        let v = findings(&format!(
            "{SOURCE}fn root(b: &[u8]) -> PageId {{ PageId(read_raw(b, 0) - 1) }}\n"
        ));
        assert!(
            v.iter().any(|f| f.rule == "taint-pageid"),
            "direct source call inside PageId(…) must be flagged: {v:?}"
        );
    }

    #[test]
    fn exempt_leaf_and_clean_len_are_quiet() {
        let v = findings(&format!(
            "{SOURCE}// analyze: taint-exempt(branchless bit trick, total on all inputs)\n\
             fn select(w: u64) -> u64 {{ w & w - 1 }}\n\
             fn decode(b: &[u8]) {{ let w = read_raw(b, 0);\n\
             let s = select(w);\n let l = b.len(); }}\n"
        ));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn validator_params_are_tainted_inside_its_body() {
        let v = findings(
            "// analyze: validates(len)\n\
             fn bad_validator(b: &[u8], n: usize) -> u8 { b[n] }\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "taint-index");
    }

    #[test]
    fn anchor_required_on_workspace_runs() {
        let mut m = Model::default();
        m.add_file("crates/store/src/demo.rs", "fn f() {}\n")
            .expect("parse");
        assert!(run(&m, false).is_empty());
        let v = run(&m, true);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "taint-anchor");
    }

    #[test]
    fn shadowing_rebind_clears() {
        let v = findings(&format!(
            "{SOURCE}fn decode(b: &[u8]) {{ let n = read_raw(b, 0);\n\
             let n = 4usize;\n let v = Vec::with_capacity(n); }}\n"
        ));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn while_bound_from_source_is_flagged() {
        let v = findings(&format!(
            "{SOURCE}fn walk(b: &[u8]) {{ let end = read_raw(b, 4);\n\
             let mut off = 8u64;\n while off < end {{ off += 1; }} }}\n"
        ));
        assert!(
            v.iter().any(|f| f.rule == "taint-loop"),
            "tainted while bound must be flagged: {v:?}"
        );
    }
}
