//! Intra-workspace call graph over the [`super::model`].
//!
//! Call sites are extracted lexically from masked function bodies and
//! resolved to model functions:
//!
//! * `self.method(…)` — methods of the enclosing `impl` type; if the type
//!   has no such method, every workspace function with that name (the
//!   method may come from a trait default).
//! * `self.field.method(…)` — the struct field's type (wrappers like
//!   `Option<Box<dyn T>>` stripped). A trait-typed field resolves to the
//!   trait's own defaults *and* every `impl Trait for Type` implementor.
//! * `Type::method(…)` / `module::function(…)` — the named type's methods
//!   when `Type` is a workspace type; otherwise functions in the file
//!   whose stem matches the module segment, falling back to free
//!   functions of that name.
//! * `local.method(…)` — typed via `let local: T = …`, `let local =
//!   T::new(…)`, `let local = self.field…` (through reference-preserving
//!   calls like `.lock()`/`.take()`/`.as_mut()`), a destructuring
//!   `let T { field, .. } = …` pattern, or a `local: T` parameter;
//!   otherwise every workspace *method* of that name (deliberate
//!   over-approximation — safe for reachability). Method syntax never
//!   resolves to free functions.
//!
//! Calls that resolve to nothing in the workspace (std and other external
//! APIs) produce no edges: external calls are assumed panic-free, which is
//! part of the documented trust model (DESIGN.md §10). As a second,
//! deliberate precision/soundness tradeoff, a fixed list of ubiquitous
//! std combinator names ([`OPAQUE_STD_METHODS`]) never resolves through an
//! *unresolved* receiver: `items.iter().enumerate()` must not create an
//! edge to every workspace method that happens to be called `enumerate`.
//! Workspace methods sharing such a name are still reached through typed
//! receivers, which is how all of them are called today.

use super::model::{strip_wrappers, FnItem, Model};
use std::collections::{BTreeMap, BTreeSet};

/// The call graph: `edges[f]` are the model ids `f` may call.
#[derive(Debug, Default)]
pub struct Graph {
    /// Callee ids per function id.
    pub edges: Vec<Vec<usize>>,
    /// Caller ids per function id (transpose of `edges`).
    pub callers: Vec<Vec<usize>>,
}

impl Graph {
    /// Builds the graph for every function in the model.
    pub fn build(model: &Model) -> Graph {
        let mut edges: Vec<Vec<usize>> = Vec::with_capacity(model.fns.len());
        for f in &model.fns {
            let mut out = BTreeSet::new();
            let locals = local_types(f, model);
            for call in call_sites(&f.body) {
                resolve(model, f, &call, &locals, &mut out);
            }
            edges.push(out.into_iter().collect());
        }
        let mut callers: Vec<Vec<usize>> = vec![Vec::new(); model.fns.len()];
        for (from, outs) in edges.iter().enumerate() {
            for &to in outs {
                callers[to].push(from);
            }
        }
        Graph { edges, callers }
    }
}

/// One syntactic call site.
#[derive(Debug, PartialEq, Eq)]
pub struct CallSite {
    /// Called name (method or function).
    pub name: String,
    /// Receiver chain for method calls: `self.file.sync()` → `["self",
    /// "file"]`; `x.run()` → `["x"]`. Index projections are skipped:
    /// `self.shards[i].lock()` → `["self", "shards"]`. Empty for
    /// path/free calls.
    pub recv: Vec<String>,
    /// Path qualifier segments for `a::b::name(` calls (without `name`).
    pub path: Vec<String>,
    /// True when written as a method call (`.name(`).
    pub is_method: bool,
    /// Byte offset of the called name within the body — lets the lock
    /// pass relate call sites to guard live ranges.
    pub at: usize,
}

const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "fn", "let", "in", "as", "move",
    "unsafe", "break", "continue", "where", "impl", "dyn", "ref", "mut", "pub", "use", "mod",
    "struct", "enum", "trait", "type", "const", "static", "Some", "Ok", "Err", "None",
];

/// Extracts call sites from a masked body.
pub fn call_sites(body: &str) -> Vec<CallSite> {
    let bytes = body.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if !(b.is_ascii_alphabetic() || b == b'_') {
            i += 1;
            continue;
        }
        if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
            // Mid-identifier (e.g. a digit-led tail) — skip the rest.
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            continue;
        }
        let start = i;
        while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
        let name = &body[start..i];
        let mut j = i;
        while bytes.get(j).is_some_and(|b| b.is_ascii_whitespace()) {
            j += 1;
        }
        if bytes.get(j) != Some(&b'(') {
            continue;
        }
        if KEYWORDS.contains(&name) {
            continue;
        }
        // Tuple-struct / enum-variant constructors in UpperCamelCase that
        // are not known calls still resolve to nothing later; keep them.
        let (recv, path, is_method) = context_before(bytes, body, start);
        out.push(CallSite {
            name: name.to_string(),
            recv,
            path,
            is_method,
            at: start,
        });
    }
    out
}

/// Classifies what syntactically precedes the called identifier.
fn context_before(bytes: &[u8], body: &str, start: usize) -> (Vec<String>, Vec<String>, bool) {
    if start == 0 {
        return (Vec::new(), Vec::new(), false);
    }
    match bytes[start - 1] {
        b'.' => {
            // Walk the receiver chain backwards: ident(.ident)*, tolerating
            // rustfmt's multi-line chains (whitespace around the dots) —
            // any other shape (call results, indexing) is an opaque
            // receiver.
            let mut chain = Vec::new();
            let mut k = start - 1;
            loop {
                let mut end = k; // points at '.'
                while end > 0 && bytes[end - 1].is_ascii_whitespace() {
                    end -= 1;
                }
                // `self.shards[i].lock()` — skip the index projection so
                // the chain keeps the field name (the element type is what
                // matters for resolution).
                if end > 0 && bytes[end - 1] == b']' {
                    let mut depth = 0usize;
                    let mut p = end;
                    let mut matched = false;
                    while p > 0 {
                        p -= 1;
                        match bytes[p] {
                            b']' => depth += 1,
                            b'[' => {
                                depth -= 1;
                                if depth == 0 {
                                    matched = true;
                                    break;
                                }
                            }
                            _ => {}
                        }
                    }
                    if !matched {
                        return (Vec::new(), Vec::new(), true);
                    }
                    end = p;
                }
                let mut s = end;
                while s > 0 && (bytes[s - 1].is_ascii_alphanumeric() || bytes[s - 1] == b'_') {
                    s -= 1;
                }
                if s == end {
                    // `)`/`]`/`?` etc. — opaque receiver.
                    return (Vec::new(), Vec::new(), true);
                }
                chain.push(body[s..end].to_string());
                let mut p = s;
                while p > 0 && bytes[p - 1].is_ascii_whitespace() {
                    p -= 1;
                }
                if p > 0 && bytes[p - 1] == b'.' {
                    k = p - 1;
                } else {
                    chain.reverse();
                    return (chain, Vec::new(), true);
                }
            }
        }
        b':' if start >= 2 && bytes[start - 2] == b':' => {
            let mut segs = Vec::new();
            let mut k = start - 2;
            loop {
                let end = k;
                let mut s = end;
                while s > 0 && (bytes[s - 1].is_ascii_alphanumeric() || bytes[s - 1] == b'_') {
                    s -= 1;
                }
                if s == end {
                    break;
                }
                segs.push(body[s..end].to_string());
                if s >= 2 && bytes[s - 1] == b':' && bytes[s - 2] == b':' {
                    k = s - 2;
                } else {
                    break;
                }
            }
            segs.reverse();
            (Vec::new(), segs, false)
        }
        _ => (Vec::new(), Vec::new(), false),
    }
}

/// Std combinator names that never resolve through an unresolved receiver
/// (see the module docs for the tradeoff).
const OPAQUE_STD_METHODS: &[&str] = &[
    "all",
    "any",
    "append",
    "by_ref",
    "chain",
    "chunks",
    "clear",
    "cloned",
    "collect",
    "contains_key",
    "copied",
    "count",
    "cycle",
    "dedup",
    "drain",
    "entry",
    "enumerate",
    "extend",
    "filter",
    "filter_map",
    "find",
    "find_map",
    "flat_map",
    "flatten",
    "fold",
    "for_each",
    "fuse",
    "insert",
    "inspect",
    "iter",
    "iter_mut",
    "last",
    "map",
    "map_while",
    "max",
    "max_by_key",
    "min",
    "min_by_key",
    "next",
    "nth",
    "partition",
    "peekable",
    "pop",
    "position",
    "product",
    "push",
    "read",
    "remove",
    "resize",
    "retain",
    "rev",
    "scan",
    "skip",
    "skip_while",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "splice",
    "split_off",
    "step_by",
    "sum",
    "swap_remove",
    "take_while",
    "truncate",
    "unzip",
    "windows",
    "write",
    "zip",
];

/// Reference-preserving call suffixes: `self.journal.take()` still hands
/// out the `Journal` for typing purposes.
const PASS_THROUGH_SUFFIXES: &[&str] = &[
    ".lock()",
    ".take()",
    ".as_mut()",
    ".as_ref()",
    ".borrow_mut()",
    ".borrow()",
    ".clone()",
    ".unwrap()",
];

/// Strips pass-through suffixes, `?`, and index projections `[…]` from the
/// front of `tail`, returning the remainder.
fn strip_projections(mut tail: &str) -> &str {
    loop {
        let before = tail;
        for suffix in PASS_THROUGH_SUFFIXES {
            if let Some(t) = tail.strip_prefix(suffix) {
                tail = t;
                break;
            }
        }
        if let Some(t) = tail.strip_prefix('?') {
            tail = t;
        }
        // `self.shards[i]` — an index projection hands out the element.
        if tail.starts_with('[') {
            let bytes = tail.as_bytes();
            let mut depth = 0usize;
            let mut end = None;
            for (idx, &b) in bytes.iter().enumerate() {
                match b {
                    b'[' => depth += 1,
                    b']' => {
                        depth -= 1;
                        if depth == 0 {
                            end = Some(idx + 1);
                            break;
                        }
                    }
                    _ => {}
                }
            }
            if let Some(end) = end {
                tail = &tail[end..];
            }
        }
        if tail.len() == before.len() {
            break;
        }
    }
    tail
}

/// True when `t` is only a statement/block terminator — nothing but
/// projections followed the expression we typed.
fn terminated(t: &str) -> bool {
    let t = t.trim_start();
    t.is_empty()
        || t.starts_with(';')
        || t.starts_with('{')
        || t.starts_with(')')
        || t.starts_with(',')
        || t.starts_with('}')
        || t.starts_with("else")
}

/// The stripped field type when a `let` right-hand side is `self.<field>`
/// (optionally behind `&`/`&mut`, pass-through suffixes and index
/// projections, and followed only by a statement/block terminator).
fn self_field_rhs_type(rhs: &str, owner: Option<&str>, model: &Model) -> Option<String> {
    let owner = owner?;
    let rhs = rhs.trim_start().trim_start_matches('&').trim_start();
    let rhs = rhs.strip_prefix("mut ").unwrap_or(rhs).trim_start();
    let rest = rhs.strip_prefix("self.")?;
    let field: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if field.is_empty() {
        return None;
    }
    let tail = strip_projections(&rest[field.len()..]);
    if !terminated(tail) {
        return None;
    }
    model.fields.get(&(owner.to_string(), field)).cloned()
}

/// The return type of a method when a `let` right-hand side is
/// `self.<method>(…)` — `let shard = self.shard_for(id)?` carries the
/// `Result<&Mutex<Shard>>` return type through to `shard`.
fn self_method_rhs_type(rhs: &str, owner: Option<&str>, model: &Model) -> Option<String> {
    let owner = owner?;
    let rhs = rhs.trim_start().trim_start_matches('&').trim_start();
    let rhs = rhs.strip_prefix("mut ").unwrap_or(rhs).trim_start();
    let rest = rhs.strip_prefix("self.")?;
    let name: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    let after = rest[name.len()..].trim_start();
    if name.is_empty() || !after.starts_with('(') {
        return None;
    }
    // Skip the balanced argument list.
    let bytes = after.as_bytes();
    let mut depth = 0usize;
    let mut args_end = None;
    for (idx, &b) in bytes.iter().enumerate() {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    args_end = Some(idx + 1);
                    break;
                }
            }
            _ => {}
        }
    }
    let tail = strip_projections(&after[args_end?..]);
    if !terminated(tail) {
        return None;
    }
    let id = *model.methods_of(owner, &name).first()?;
    return_type_of(&model.fns[id].sig)
}

/// The stripped return type of a masked signature, unwrapping a top-level
/// `Result<…>` / `Option<…>`: `-> Result<&Mutex<Shard>>` → `Shard`.
pub fn return_type_of(sig: &str) -> Option<String> {
    let (_, ret) = sig.split_once("->")?;
    let ret = ret.split(" where ").next().unwrap_or(ret).trim();
    let inner = ["Result", "Option"].iter().find_map(|kw| {
        let rest = ret.strip_prefix(kw)?.trim_start();
        let rest = rest.strip_prefix('<')?;
        // Balanced up to the matching `>`, then the first type parameter.
        let bytes = rest.as_bytes();
        let mut depth = 1usize;
        let mut end = rest.len();
        for (idx, &b) in bytes.iter().enumerate() {
            match b {
                b'<' => depth += 1,
                b'>' if idx == 0 || bytes[idx - 1] != b'-' => {
                    depth -= 1;
                    if depth == 0 {
                        end = idx;
                        break;
                    }
                }
                _ => {}
            }
        }
        let inner = &rest[..end];
        Some(split_top_level(inner).first().map(|s| s.to_string())?)
    });
    let ty = strip_wrappers(inner.as_deref().unwrap_or(ret));
    // Only plain type names are useful for receiver typing — tuples,
    // lifetimes, and generic applications resolve to nothing anyway.
    (!ty.is_empty() && ty.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')).then_some(ty)
}

/// The type of a `let` right-hand side that is another, already-typed
/// local behind projections: `let guard = shard.lock();`.
fn local_rhs_type(rhs: &str, locals: &BTreeMap<String, String>) -> Option<String> {
    let rhs = rhs.trim_start().trim_start_matches('&').trim_start();
    let rhs = rhs.strip_prefix("mut ").unwrap_or(rhs).trim_start();
    let name: String = rhs
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        return None;
    }
    let tail = strip_projections(&rhs[name.len()..]);
    if !terminated(tail) {
        return None;
    }
    locals.get(&name).cloned()
}

/// Types of locals and parameters, scraped from the signature, simple
/// `let` forms, and `for` bindings in the body.
pub fn local_types(f: &FnItem, model: &Model) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    // Parameters: `name: Type` pairs inside the signature parens.
    if let (Some(open), Some(close)) = (f.sig.find('('), f.sig.rfind(')')) {
        if open < close {
            for part in split_top_level(&f.sig[open + 1..close]) {
                if let Some((name, ty)) = part.split_once(':') {
                    let name = name.trim().trim_start_matches("mut ").trim();
                    if name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                        && !name.is_empty()
                    {
                        out.insert(name.to_string(), strip_wrappers(ty));
                    }
                }
            }
        }
    }
    // Body scans insert types that later scans may depend on (`for s in
    // self.shards` before `let g = s.lock()` and vice versa) — iterate to
    // a fixpoint; chains are shallow so this converges in a pass or two.
    loop {
        let before = out.len();
        scan_let_bindings(f, model, &mut out);
        scan_for_bindings(f, model, &mut out);
        if out.len() == before {
            break;
        }
    }
    out
}

/// `let [mut] name: Type = …`, `let [mut] name = Type::…`, and the typed
/// right-hand-side forms (`self.field`, `self.method(…)`, another local).
fn scan_let_bindings(f: &FnItem, model: &Model, out: &mut BTreeMap<String, String>) {
    let body = &f.body;
    let bytes = body.as_bytes();
    let mut i = 0;
    while let Some(pos) = body[i..].find("let ") {
        let at = i + pos;
        i = at + 4;
        let boundary_ok =
            at == 0 || !bytes[at - 1].is_ascii_alphanumeric() && bytes[at - 1] != b'_';
        if !boundary_ok {
            continue;
        }
        let rest = &body[at + 4..];
        let rest = rest.strip_prefix("mut ").unwrap_or(rest);
        // `let Type { field, other: rename, .. } = …` — each binding gets
        // the field's declared (stripped) type on the named struct.
        {
            let first: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if first.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                let after_first = rest[first.len()..].trim_start();
                if let Some(pat_body) = after_first.strip_prefix('{') {
                    if let Some(close) = pat_body.find('}') {
                        for part in pat_body[..close].split(',') {
                            let part = part.trim();
                            if part.is_empty() || part == ".." {
                                continue;
                            }
                            let (fname, bind) = match part.split_once(':') {
                                Some((fname, bind)) => (fname.trim(), bind.trim()),
                                None => (part, part),
                            };
                            let bind = bind
                                .trim_start_matches("ref ")
                                .trim_start_matches("mut ")
                                .trim();
                            if !bind.is_empty()
                                && bind.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_')
                            {
                                if let Some(ty) =
                                    model.fields.get(&(first.clone(), fname.to_string()))
                                {
                                    out.insert(bind.to_string(), ty.clone());
                                }
                            }
                        }
                        continue;
                    }
                }
            }
        }
        // `let Some(name) = expr` / `let Ok(name) = expr`.
        let (pat_name, after_pat) = if let Some(inner) = rest
            .strip_prefix("Some(")
            .or_else(|| rest.strip_prefix("Ok("))
        {
            let Some(close) = inner.find(')') else {
                continue;
            };
            (inner[..close].trim().to_string(), &inner[close + 1..])
        } else {
            let name: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            let after = &rest[name.len()..];
            (name, after)
        };
        if pat_name.is_empty() {
            continue;
        }
        let after = after_pat.trim_start();
        if let Some(ty_rest) = after.strip_prefix(':') {
            let ty: String = ty_rest
                .chars()
                .take_while(|&c| c != '=' && c != ';')
                .collect();
            let stripped = strip_wrappers(&ty);
            if !stripped.is_empty() {
                out.insert(pat_name, stripped);
            }
        } else if let Some(eq_rest) = after.strip_prefix('=') {
            let rhs = eq_rest.trim_start();
            let first: String = rhs
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            let after_first = &rhs[first.len()..];
            if after_first.starts_with("::")
                && first.chars().next().is_some_and(|c| c.is_ascii_uppercase())
            {
                out.insert(pat_name, first);
            } else if let Some(ty) = self_field_rhs_type(rhs, f.owner.as_deref(), model) {
                out.insert(pat_name, ty);
            } else if let Some(ty) = self_method_rhs_type(rhs, f.owner.as_deref(), model) {
                out.insert(pat_name, ty);
            } else if let Some(ty) = local_rhs_type(rhs, &out) {
                out.insert(pat_name, ty);
            }
        }
    }
}

/// `for shard in self.shards.iter()` — the binding gets the field's
/// (element) type; `.iter()`/`.iter_mut()`/`.into_iter()` and `&`/`&mut`
/// are reference-preserving for typing purposes.
fn scan_for_bindings(f: &FnItem, model: &Model, out: &mut BTreeMap<String, String>) {
    let body = &f.body;
    let bytes = body.as_bytes();
    let mut i = 0;
    while let Some(pos) = body[i..].find("for ") {
        let at = i + pos;
        i = at + 4;
        let boundary_ok =
            at == 0 || !bytes[at - 1].is_ascii_alphanumeric() && bytes[at - 1] != b'_';
        if !boundary_ok {
            continue;
        }
        let rest = &body[at + 4..];
        let name: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if name.is_empty() {
            continue;
        }
        let after = rest[name.len()..].trim_start();
        let Some(expr) = after.strip_prefix("in ") else {
            continue;
        };
        let Some(brace) = expr.find('{') else {
            continue;
        };
        let mut expr = expr[..brace].trim();
        expr = expr.trim_start_matches('&').trim_start();
        expr = expr.strip_prefix("mut ").unwrap_or(expr).trim_start();
        for suffix in [".iter()", ".iter_mut()", ".into_iter()"] {
            expr = expr.strip_suffix(suffix).unwrap_or(expr);
        }
        if let Some(ty) = self_field_rhs_type(expr, f.owner.as_deref(), model) {
            out.insert(name, ty);
        } else if let Some(ty) = local_rhs_type(expr, out) {
            out.insert(name, ty);
        }
    }
}

/// Splits on top-level commas (ignoring nested `()`/`<>`/`[]`).
fn split_top_level(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0isize;
    let mut start = 0;
    let bytes = s.as_bytes();
    for (idx, &b) in bytes.iter().enumerate() {
        match b {
            b'(' | b'[' | b'<' => depth += 1,
            b')' | b']' => depth -= 1,
            b'>' if idx > 0 && bytes[idx - 1] != b'-' => depth -= 1,
            b',' if depth == 0 => {
                parts.push(&s[start..idx]);
                start = idx + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

/// Resolves one call site to model function ids — the lock pass's entry
/// point into the resolution rules above.
pub fn resolve_site(
    model: &Model,
    caller: &FnItem,
    call: &CallSite,
    locals: &BTreeMap<String, String>,
) -> Vec<usize> {
    let mut out = BTreeSet::new();
    resolve(model, caller, call, locals, &mut out);
    out.into_iter().collect()
}

/// Like [`resolve_site`], but without the unresolved-receiver
/// over-approximation: a method call whose receiver cannot be typed
/// contributes no edges at all. The lock pass resolves its call edges
/// through this — its rules are zero-tolerance, so one phantom edge onto
/// a same-named workspace method (`frames.len()` landing on `PPart::len`)
/// becomes an unfixable hard finding. The precision this costs is
/// backstopped dynamically by the ThreadSanitizer stress job.
pub fn resolve_site_typed(
    model: &Model,
    caller: &FnItem,
    call: &CallSite,
    locals: &BTreeMap<String, String>,
) -> Vec<usize> {
    if call.is_method && receiver_type(model, caller, call, locals).is_none() {
        return Vec::new();
    }
    resolve_site(model, caller, call, locals)
}

/// Types a method call's receiver chain, if the chain is one the model
/// can follow: `self`, `self.field`, a typed local, or a typed local's
/// field.
fn receiver_type(
    model: &Model,
    caller: &FnItem,
    call: &CallSite,
    locals: &BTreeMap<String, String>,
) -> Option<String> {
    let recv: Vec<&str> = call.recv.iter().map(String::as_str).collect();
    match recv.as_slice() {
        ["self"] => caller.owner.clone(),
        ["self", field] => caller
            .owner
            .as_ref()
            .and_then(|o| model.fields.get(&(o.clone(), field.to_string())).cloned()),
        [local] => locals.get(*local).cloned(),
        [local, field] => locals
            .get(*local)
            .and_then(|t| model.fields.get(&(t.clone(), field.to_string())).cloned()),
        _ => None,
    }
}

/// Ids of functions named `name` owned by `ty`, following trait
/// implementors when `ty` is a trait.
fn typed_targets(model: &Model, ty: &str, name: &str) -> Vec<usize> {
    let mut ids = model.methods_of(ty, name);
    if model.traits.contains(ty) {
        for implementor in model.impls.get(ty).map(Vec::as_slice).unwrap_or(&[]) {
            ids.extend(model.methods_of(implementor, name));
        }
    }
    ids.sort_unstable();
    ids.dedup();
    ids
}

fn resolve(
    model: &Model,
    caller: &FnItem,
    call: &CallSite,
    locals: &BTreeMap<String, String>,
    out: &mut BTreeSet<usize>,
) {
    let all_named = |model: &Model| -> Vec<usize> {
        model.by_name.get(&call.name).cloned().unwrap_or_default()
    };
    // Method syntax can only land on methods (inherent, trait, or trait
    // default) with a `self` receiver — never on free functions or
    // associated functions (`x.create(true)` cannot dispatch to
    // `Manifest::create(path, …)`).
    let all_methods = |model: &Model| -> Vec<usize> {
        all_named(model)
            .into_iter()
            .filter(|&id| {
                let f = &model.fns[id];
                f.owner.is_some() && f.has_self_receiver()
            })
            .collect()
    };
    if call.is_method {
        match receiver_type(model, caller, call, locals) {
            Some(ty) if model.known_types.contains(&ty) => {
                let ids: Vec<usize> = typed_targets(model, &ty, &call.name)
                    .into_iter()
                    .filter(|&id| model.fns[id].has_self_receiver())
                    .collect();
                if !ids.is_empty() {
                    out.extend(ids);
                } else if call.recv.first().map(String::as_str) == Some("self")
                    && call.recv.len() == 1
                {
                    // Possibly a trait-default method on self: fall back.
                    out.extend(all_methods(model));
                }
                // A known type without that method and a non-self receiver:
                // the call goes to a std method on a wrapper (e.g.
                // `Option::take`) — no edge.
            }
            Some(_) => {} // std/primitive type — external, no edge
            None => {
                // Unresolved receiver: over-approximate with every
                // workspace method of that name — except the ubiquitous
                // std combinators, which would wire iterator chains into
                // unrelated same-named workspace methods.
                if !OPAQUE_STD_METHODS.contains(&call.name.as_str()) {
                    out.extend(all_methods(model));
                }
            }
        }
        return;
    }
    if let Some(last) = call.path.last() {
        if model.known_types.contains(last) {
            out.extend(typed_targets(model, last, &call.name));
            return;
        }
        // Module-qualified free call: prefer functions in a file whose
        // stem matches the module segment.
        let in_module: Vec<usize> = all_named(model)
            .into_iter()
            .filter(|&id| {
                let f = &model.fns[id];
                f.owner.is_none()
                    && f.file
                        .rsplit('/')
                        .next()
                        .is_some_and(|stem| stem == format!("{last}.rs"))
            })
            .collect();
        if !in_module.is_empty() {
            out.extend(in_module);
            return;
        }
        if matches!(last.as_str(), "crate" | "self" | "super") {
            out.extend(
                all_named(model)
                    .into_iter()
                    .filter(|&id| model.fns[id].owner.is_none()),
            );
        }
        // Unknown external path (std::…): no edge.
        return;
    }
    // Bare call: free functions, same file first.
    let free: Vec<usize> = all_named(model)
        .into_iter()
        .filter(|&id| model.fns[id].owner.is_none())
        .collect();
    let same_file: Vec<usize> = free
        .iter()
        .copied()
        .filter(|&id| model.fns[id].file == caller.file)
        .collect();
    if !same_file.is_empty() {
        out.extend(same_file);
    } else {
        out.extend(free);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_method_and_path_calls() {
        let sites = call_sites("{ self.file.sync(); crate::ops::go(x); helper(); v.len(); }");
        let names: Vec<&str> = sites.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["sync", "go", "helper", "len"], "{sites:?}");
        assert_eq!(sites[0].recv, ["self", "file"]);
        assert_eq!(sites[1].path, ["crate", "ops"]);
        assert!(!sites[2].is_method);
    }

    #[test]
    fn keywords_and_macros_are_not_calls() {
        let sites = call_sites("{ if (x) { return (y); } assert!(z); vec![w]; }");
        assert!(sites.is_empty(), "{sites:?}");
    }

    #[test]
    fn iterator_next_on_unknown_receiver_resolves_nowhere() {
        // A bare `chunks.next()` inside one crate must not wire an edge to
        // an unrelated workspace method that happens to be named `next`
        // (e.g. a tokenizer) — `next` is an opaque std combinator.
        let mut m = Model::default();
        m.add_file(
            "crates/store/src/a.rs",
            "struct Tokenizer;\n\
             impl Tokenizer { fn next(&mut self) {} }\n\
             fn fan_out(items: &[u32]) { let mut chunks = items.chunks(4);\n    chunks.next(); }\n",
        )
        .expect("parse");
        let g = Graph::build(&m);
        let fan = m
            .fns
            .iter()
            .position(|f| f.name == "fan_out")
            .expect("fan_out");
        assert!(
            g.edges[fan].is_empty(),
            "fan_out must not reach Tokenizer::next: {:?}",
            g.edges[fan]
        );
    }

    #[test]
    fn method_calls_never_land_on_associated_functions() {
        // `OpenOptions::new().create(true)` has an opaque receiver; the
        // over-approximation may fan out to workspace *methods* named
        // `create`, but an associated function (`Manifest::create(path)`)
        // is not a method-dispatch target and must stay edge-free, or
        // every builder chain wires the whole constructor graph together.
        let mut m = Model::default();
        m.add_file(
            "crates/store/src/a.rs",
            "struct Manifest;\n\
             impl Manifest { fn create(path: u32) {} }\n\
             struct Cache;\n\
             impl Cache { fn create(&mut self, flag: bool) {} }\n\
             fn open_file(opts: u32) { let o = mystery(opts);\n    o.create(true); }\n",
        )
        .expect("parse");
        let g = Graph::build(&m);
        let open = m
            .fns
            .iter()
            .position(|f| f.name == "open_file")
            .expect("open_file");
        let targets: Vec<String> = g.edges[open]
            .iter()
            .map(|&id| m.fns[id].qualified())
            .collect();
        assert_eq!(targets, ["Cache::create"], "{targets:?}");
    }

    #[test]
    fn self_receiver_detection_reads_the_signature() {
        let mut m = Model::default();
        m.add_file(
            "crates/store/src/a.rs",
            "struct S;\n\
             impl S {\n\
             fn a(&self) {}\n\
             fn b(&mut self, x: u32) {}\n\
             fn c(self) {}\n\
             fn d(mut self) {}\n\
             fn e(&'a self) {}\n\
             fn f(self: Box<S>) {}\n\
             fn g() {}\n\
             fn h(path: u32) {}\n\
             fn i(selfish: u32) {}\n\
             }\n",
        )
        .expect("parse");
        for f in &m.fns {
            let expect = matches!(f.name.as_str(), "a" | "b" | "c" | "d" | "e" | "f");
            assert_eq!(f.has_self_receiver(), expect, "{}: `{}`", f.name, f.sig);
        }
    }

    #[test]
    fn typed_resolver_drops_unresolved_receivers() {
        // `entries.len()` on an untyped receiver over-approximates in the
        // full graph, but must contribute no edge under the typed resolver
        // the lock pass uses — a phantom edge there is a hard finding.
        let mut m = Model::default();
        m.add_file(
            "crates/store/src/a.rs",
            "struct Part;\n\
             impl Part { fn len(&self) {} }\n\
             fn walk(x: u32) { let entries = mystery(x);\n    entries.len(); }\n",
        )
        .expect("parse");
        let walk = &m.fns[m.fns.iter().position(|f| f.name == "walk").expect("walk")];
        let locals = local_types(walk, &m);
        let sites = call_sites(&walk.body);
        let site = sites.iter().find(|s| s.name == "len").expect("len site");
        assert!(!resolve_site(&m, walk, site, &locals).is_empty());
        assert!(
            resolve_site_typed(&m, walk, site, &locals).is_empty(),
            "typed resolver must not land on Part::len"
        );
    }

    #[test]
    fn resolves_field_receiver_through_trait() {
        let mut m = Model::default();
        m.add_file(
            "crates/store/src/a.rs",
            "trait Flush { fn flush(&mut self); }\n\
             struct Disk;\n\
             impl Flush for Disk { fn flush(&mut self) {} }\n\
             struct Holder { out: Box<dyn Flush> }\n\
             impl Holder { fn go(&mut self) { self.out.flush(); } }\n",
        )
        .expect("parse");
        let g = Graph::build(&m);
        let go = m.fns.iter().position(|f| f.name == "go").expect("go");
        let disk_flush = m
            .fns
            .iter()
            .position(|f| f.qualified() == "Disk::flush")
            .expect("impl");
        assert!(
            g.edges[go].contains(&disk_flush),
            "go must reach the trait implementor: {:?}",
            g.edges[go]
        );
    }

    #[test]
    fn lock_bound_local_resolves_through_field_type() {
        let mut m = Model::default();
        m.add_file(
            "crates/store/src/a.rs",
            "struct Inner { pager: Pager }\n\
             struct Pager;\n\
             impl Pager { fn commit(&mut self) {} }\n\
             struct Decoy;\n\
             impl Decoy { fn commit(&mut self) {} }\n\
             struct Pool { inner: Mutex<Inner> }\n\
             impl Pool { fn commit(&self) { let mut inner = self.inner.lock();\n    inner.pager.commit(); } }\n",
        )
        .expect("parse");
        let g = Graph::build(&m);
        let pool = m
            .fns
            .iter()
            .position(|f| f.qualified() == "Pool::commit")
            .expect("pool");
        let pager = m
            .fns
            .iter()
            .position(|f| f.qualified() == "Pager::commit")
            .expect("pager");
        let decoy = m
            .fns
            .iter()
            .position(|f| f.qualified() == "Decoy::commit")
            .expect("decoy");
        assert!(g.edges[pool].contains(&pager), "{:?}", g.edges[pool]);
        assert!(!g.edges[pool].contains(&decoy), "{:?}", g.edges[pool]);
    }

    #[test]
    fn if_let_some_field_binding_is_typed() {
        let mut m = Model::default();
        m.add_file(
            "crates/store/src/a.rs",
            "struct Journal;\n\
             impl Journal { fn sync(&mut self) {} }\n\
             struct Other;\n\
             impl Other { fn sync(&mut self) {} }\n\
             struct Pager { journal: Option<Journal> }\n\
             impl Pager { fn flush(&mut self) { if let Some(j) = &mut self.journal {\n    j.sync();\n} } }\n",
        )
        .expect("parse");
        let g = Graph::build(&m);
        let flush = m
            .fns
            .iter()
            .position(|f| f.qualified() == "Pager::flush")
            .expect("flush");
        let journal = m
            .fns
            .iter()
            .position(|f| f.qualified() == "Journal::sync")
            .expect("journal");
        let other = m
            .fns
            .iter()
            .position(|f| f.qualified() == "Other::sync")
            .expect("other");
        assert!(g.edges[flush].contains(&journal), "{:?}", g.edges[flush]);
        assert!(!g.edges[flush].contains(&other), "{:?}", g.edges[flush]);
    }

    #[test]
    fn struct_destructure_binds_field_types() {
        let mut m = Model::default();
        m.add_file(
            "crates/store/src/a.rs",
            "trait Vfs { fn delete(&self); }\n\
             struct RealVfs;\n\
             impl Vfs for RealVfs { fn delete(&self) {} }\n\
             fn delete() {}\n\
             struct Journal { vfs: Arc<dyn Vfs> }\n\
             impl Journal { fn commit(self) { let Journal { vfs, .. } = self;\n    vfs.delete(); } }\n",
        )
        .expect("parse");
        let g = Graph::build(&m);
        let commit = m
            .fns
            .iter()
            .position(|f| f.qualified() == "Journal::commit")
            .expect("commit");
        let real = m
            .fns
            .iter()
            .position(|f| f.qualified() == "RealVfs::delete")
            .expect("real");
        let free = m
            .fns
            .iter()
            .position(|f| f.owner.is_none() && f.name == "delete")
            .expect("free");
        assert!(g.edges[commit].contains(&real), "{:?}", g.edges[commit]);
        assert!(
            !g.edges[commit].contains(&free),
            "method call must not reach the free fn: {:?}",
            g.edges[commit]
        );
    }

    #[test]
    fn opaque_iterator_combinators_make_no_edges() {
        let mut m = Model::default();
        m.add_file(
            "crates/store/src/a.rs",
            "struct Tables;\n\
             impl Tables { fn enumerate(&self) {} }\n\
             fn walk(v: &Vec2) { for (i, x) in v.iter().enumerate() { x; } }\n",
        )
        .expect("parse");
        let g = Graph::build(&m);
        let walk = m.fns.iter().position(|f| f.name == "walk").expect("walk");
        let method = m
            .fns
            .iter()
            .position(|f| f.qualified() == "Tables::enumerate")
            .expect("m");
        assert!(
            !g.edges[walk].contains(&method),
            "opaque .enumerate() must stay external: {:?}",
            g.edges[walk]
        );
    }

    #[test]
    fn multiline_chain_receiver_resolves() {
        // rustfmt breaks long chains as `store\n    .put(...)`; the
        // whitespace before the dot must not make the receiver opaque.
        let mut m = Model::default();
        m.add_file(
            "crates/store/src/a.rs",
            "struct Store; impl Store { fn put(&mut self) {} }\n\
             struct Blob; impl Blob { fn put(&mut self) {} }\n\
             fn driver() {\n\
                 let mut store = Store::fresh();\n\
                 store\n\
                     .put();\n\
             }\n",
        )
        .expect("parse");
        let g = Graph::build(&m);
        let driver = m.fns.iter().position(|f| f.name == "driver").expect("d");
        let store_put = m
            .fns
            .iter()
            .position(|f| f.qualified() == "Store::put")
            .expect("sp");
        let blob_put = m
            .fns
            .iter()
            .position(|f| f.qualified() == "Blob::put")
            .expect("bp");
        assert!(
            g.edges[driver].contains(&store_put),
            "{:?}",
            g.edges[driver]
        );
        assert!(
            !g.edges[driver].contains(&blob_put),
            "multi-line chain over-approximated: {:?}",
            g.edges[driver]
        );
    }

    #[test]
    fn indexed_lock_guard_is_typed_through_the_field() {
        // Regression: `let guard = self.shards[i].lock()` must carry the
        // shard type through the index projection — previously the `[i]`
        // made the rhs untyped and `guard.hit(id)` over-approximated onto
        // every workspace method named `hit`.
        let mut m = Model::default();
        m.add_file(
            "crates/store/src/a.rs",
            "struct Shard; impl Shard { fn hit(&mut self, id: u32) {} }\n\
             struct Decoy; impl Decoy { fn hit(&mut self, id: u32) {} }\n\
             struct Pool { shards: Box<[Mutex<Shard>]> }\n\
             impl Pool { fn touch(&self, i: usize, id: u32) {\n\
                 let mut guard = self.shards[i].lock();\n\
                 guard.hit(id);\n\
             } }\n",
        )
        .expect("parse");
        let g = Graph::build(&m);
        let touch = m
            .fns
            .iter()
            .position(|f| f.qualified() == "Pool::touch")
            .expect("touch");
        let shard_hit = m
            .fns
            .iter()
            .position(|f| f.qualified() == "Shard::hit")
            .expect("shard");
        let decoy_hit = m
            .fns
            .iter()
            .position(|f| f.qualified() == "Decoy::hit")
            .expect("decoy");
        assert!(g.edges[touch].contains(&shard_hit), "{:?}", g.edges[touch]);
        assert!(
            !g.edges[touch].contains(&decoy_hit),
            "index projection must not erase the receiver type: {:?}",
            g.edges[touch]
        );
    }

    #[test]
    fn method_return_types_a_local() {
        // `let shard = self.shard_for(id)?` — the local carries the
        // method's (unwrapped) return type.
        let mut m = Model::default();
        m.add_file(
            "crates/store/src/a.rs",
            "struct Shard; impl Shard { fn evict(&mut self) {} }\n\
             struct Decoy; impl Decoy { fn evict(&mut self) {} }\n\
             struct Pool;\n\
             impl Pool {\n\
                 fn shard_for(&self, id: u32) -> Result<&Mutex<Shard>> { todo!() }\n\
                 fn trim(&self, id: u32) {\n\
                     let shard = self.shard_for(id)?;\n\
                     let mut guard = shard.lock();\n\
                     guard.evict();\n\
                 }\n\
             }\n",
        )
        .expect("parse");
        let g = Graph::build(&m);
        let trim = m
            .fns
            .iter()
            .position(|f| f.qualified() == "Pool::trim")
            .expect("trim");
        let shard_evict = m
            .fns
            .iter()
            .position(|f| f.qualified() == "Shard::evict")
            .expect("shard");
        let decoy_evict = m
            .fns
            .iter()
            .position(|f| f.qualified() == "Decoy::evict")
            .expect("decoy");
        assert!(g.edges[trim].contains(&shard_evict), "{:?}", g.edges[trim]);
        assert!(!g.edges[trim].contains(&decoy_evict), "{:?}", g.edges[trim]);
    }

    #[test]
    fn for_loop_binding_over_a_field_is_typed() {
        let mut m = Model::default();
        m.add_file(
            "crates/store/src/a.rs",
            "struct Shard; impl Shard { fn wipe(&mut self) {} }\n\
             struct Decoy; impl Decoy { fn wipe(&mut self) {} }\n\
             struct Pool { shards: Box<[Mutex<Shard>]> }\n\
             impl Pool { fn reset(&self) {\n\
                 for shard in self.shards.iter() {\n\
                     let mut guard = shard.lock();\n\
                     guard.wipe();\n\
                 }\n\
             } }\n",
        )
        .expect("parse");
        let g = Graph::build(&m);
        let reset = m
            .fns
            .iter()
            .position(|f| f.qualified() == "Pool::reset")
            .expect("reset");
        let shard_wipe = m
            .fns
            .iter()
            .position(|f| f.qualified() == "Shard::wipe")
            .expect("shard");
        let decoy_wipe = m
            .fns
            .iter()
            .position(|f| f.qualified() == "Decoy::wipe")
            .expect("decoy");
        assert!(g.edges[reset].contains(&shard_wipe), "{:?}", g.edges[reset]);
        assert!(
            !g.edges[reset].contains(&decoy_wipe),
            "{:?}",
            g.edges[reset]
        );
    }

    #[test]
    fn return_type_of_unwraps_result_and_wrappers() {
        assert_eq!(
            return_type_of("fn shard_for(&self) -> Result<&Mutex<Shard>>").as_deref(),
            Some("Shard")
        );
        assert_eq!(
            return_type_of("fn get(&self) -> Option<Arc<Page>>").as_deref(),
            Some("Page")
        );
        assert_eq!(return_type_of("fn go(&self)"), None);
        assert_eq!(
            return_type_of("fn pick(&self) -> Result<(u32, bool), Error>"),
            None,
            "tuple returns carry no single type"
        );
    }

    #[test]
    fn unresolved_receiver_over_approximates() {
        let mut m = Model::default();
        m.add_file(
            "crates/store/src/a.rs",
            "struct A; impl A { fn run(&self) {} }\n\
             fn driver(h: &H) { mystery().run(); }\n",
        )
        .expect("parse");
        let g = Graph::build(&m);
        let driver = m.fns.iter().position(|f| f.name == "driver").expect("d");
        let run = m.fns.iter().position(|f| f.name == "run").expect("r");
        assert!(g.edges[driver].contains(&run), "{:?}", g.edges[driver]);
    }
}
