//! Workspace invariant-audit tooling, as a library.
//!
//! The `xtask` binary (see `main.rs`) exposes two passes:
//!
//! * [`rules`] — token-level lints (`cargo xtask lint`) over
//!   [`lexer`]-masked source, ratcheted by [`baseline`].
//! * [`analyze`] — whole-workspace semantic analysis
//!   (`cargo xtask analyze`): a parsed item model, an intra-workspace call
//!   graph, and the panic-reachability / transaction-discipline /
//!   discarded-`Result` analyses built on top of them.
//!
//! Everything lives in a library crate so the integration tests under
//! `crates/xtask/tests/` can drive the analyses over fixture mini-crates.
#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analyze;
pub mod baseline;
pub mod lexer;
pub mod rules;
pub mod walk;
