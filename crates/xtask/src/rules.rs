//! The lint rule catalogue.
//!
//! Each rule yields per-file violation counts that feed the baseline
//! ratchet ([`crate::baseline`]). The catalogue (rule ids are the section
//! names in `baseline.toml`):
//!
//! | rule | scope | invariant |
//! |------|-------|-----------|
//! | `unwrap` | library crates | no `.unwrap()` / `.expect(` — errors must propagate |
//! | `as-cast` | `crates/store/src` | no bare `as` numeric casts in on-disk-format code |
//! | `missing-docs-attr` | every crate root | `#![warn(missing_docs)]` present |
//! | `error-impl` | library crates | every `pub …Error` type implements `std::error::Error` |
//! | `debug-assert-message` | whole workspace | every `debug_assert!` family call carries a message |
//! | `store-raw-fs` | `crates/store/src` | all disk I/O goes through `vfs.rs` — no direct `std::fs` / sync calls |
//! | `core-thread-discipline` | `crates/core/src` | no raw `thread::spawn` / lock types outside `par.rs`, the one audited fork/join seam |

use crate::lexer::{line_of, mask};
use crate::walk::{rel, rust_files};
use std::io;
use std::path::{Path, PathBuf};

/// The crates whose `src/` trees form the library surface (no binaries or
/// harnesses): panics here take down library consumers, so `unwrap` and
/// friends are ratcheted.
pub const LIB_CRATES: &[&str] = &["tree", "xml", "ted", "core", "diff", "store"];

/// All rule identifiers, in report order.
pub const RULES: &[&str] = &[
    "unwrap",
    "as-cast",
    "missing-docs-attr",
    "forbid-unsafe",
    "error-impl",
    "debug-assert-message",
    "store-raw-fs",
    "core-thread-discipline",
];

/// One lint finding.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Rule identifier (one of [`RULES`]).
    pub rule: &'static str,
    /// Repo-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

/// Runs every rule over the workspace at `root`.
pub fn run_all(root: &Path) -> io::Result<Vec<Violation>> {
    let mut violations = Vec::new();
    for krate in LIB_CRATES {
        let src = root.join("crates").join(krate).join("src");
        for path in rust_files(&src)? {
            let source = std::fs::read_to_string(&path)?;
            let masked = mask(&source);
            let file = rel(root, &path);
            unwrap_rule(&file, &masked, &mut violations);
            if *krate == "store" {
                as_cast_rule(&file, &masked, &mut violations);
                if !file.ends_with("vfs.rs") {
                    store_raw_fs_rule(&file, &masked, &mut violations);
                }
            }
            if *krate == "core" && !file.ends_with("par.rs") {
                core_thread_discipline_rule(&file, &masked, &mut violations);
            }
            error_impl_rule(root, krate, &file, &masked, &mut violations)?;
        }
    }
    for path in crate_roots(root)? {
        let source = std::fs::read_to_string(&path)?;
        let file = rel(root, &path);
        let masked = mask(&source);
        if !masked.contains("#![warn(missing_docs)]") {
            violations.push(Violation {
                rule: "missing-docs-attr",
                file: file.clone(),
                line: 1,
                message: "crate root lacks `#![warn(missing_docs)]`".into(),
            });
        }
        // The workspace has no unsafe code; every non-xtask crate root
        // must keep that locked in with `#![forbid(unsafe_code)]`.
        if !file.starts_with("crates/xtask") && !masked.contains("#![forbid(unsafe_code)]") {
            violations.push(Violation {
                rule: "forbid-unsafe",
                file,
                line: 1,
                message: "crate root lacks `#![forbid(unsafe_code)]`".into(),
            });
        }
    }
    for path in workspace_sources(root)? {
        let source = std::fs::read_to_string(&path)?;
        let masked = mask(&source);
        debug_assert_rule(&rel(root, &path), &masked, &mut violations);
    }
    violations.sort_by(|a, b| (a.rule, &a.file, a.line).cmp(&(b.rule, &b.file, b.line)));
    Ok(violations)
}

/// `crates/*/src/lib.rs` (or `main.rs` for pure binaries) plus the root
/// package's `src/lib.rs`.
fn crate_roots(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut roots = vec![root.join("src").join("lib.rs")];
    let crates_dir = root.join("crates");
    let mut names: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    names.sort();
    for dir in names {
        let lib = dir.join("src").join("lib.rs");
        let main = dir.join("src").join("main.rs");
        if lib.is_file() {
            roots.push(lib);
        } else if main.is_file() {
            roots.push(main);
        }
    }
    Ok(roots)
}

/// Every `.rs` under `crates/*/src` and the root `src/` — the scope of the
/// workspace-wide rules and of `cargo xtask analyze`.
pub fn workspace_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = rust_files(&root.join("src"))?;
    let crates_dir = root.join("crates");
    let mut dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    for dir in dirs {
        files.extend(rust_files(&dir.join("src"))?);
    }
    Ok(files)
}

fn unwrap_rule(file: &str, masked: &str, out: &mut Vec<Violation>) {
    for needle in [".unwrap()", ".expect("] {
        let mut from = 0;
        while let Some(pos) = masked[from..].find(needle) {
            let at = from + pos;
            out.push(Violation {
                rule: "unwrap",
                file: file.to_string(),
                line: line_of(masked, at),
                message: format!(
                    "`{}` in a library crate; propagate an error instead",
                    needle.trim_end_matches('(')
                ),
            });
            from = at + needle.len();
        }
    }
}

const NUMERIC_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

fn as_cast_rule(file: &str, masked: &str, out: &mut Vec<Violation>) {
    let mut from = 0;
    while let Some(pos) = masked[from..].find(" as ") {
        let at = from + pos;
        from = at + 4;
        let rest = &masked[at + 4..];
        let target: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if NUMERIC_TYPES.contains(&target.as_str()) {
            out.push(Violation {
                rule: "as-cast",
                file: file.to_string(),
                line: line_of(masked, at),
                message: format!(
                    "bare `as {target}` cast in on-disk-format code; use `From`/`TryFrom` \
                     or a checked helper"
                ),
            });
        }
    }
}

/// Crash-recovery guarantees hold only if every byte crosses the
/// [`Vfs`](../../store/src/vfs.rs) seam, where the fault injector can see
/// it. Outside `vfs.rs` (and `#[cfg(test)]` code, which may set up real
/// temp files), the store crate must not name `std::fs` or call the raw
/// sync syscalls directly.
fn store_raw_fs_rule(file: &str, masked: &str, out: &mut Vec<Violation>) {
    let scope_end = masked.find("#[cfg(test)]").unwrap_or(masked.len());
    let scope = &masked[..scope_end];
    for needle in ["std::fs", "OpenOptions", ".sync_all(", ".sync_data("] {
        let mut from = 0;
        while let Some(pos) = scope[from..].find(needle) {
            let at = from + pos;
            from = at + needle.len();
            out.push(Violation {
                rule: "store-raw-fs",
                file: file.to_string(),
                line: line_of(masked, at),
                message: format!(
                    "`{needle}` bypasses the VFS seam; route the I/O through `crate::vfs`"
                ),
            });
        }
    }
}

/// The query paths of `pqgram-core` stay spawn- and lock-free: every
/// fan-out goes through the one audited seam (`core/src/par.rs`, scoped
/// threads with a deterministic chunk-order merge), so determinism and
/// panic transparency are proved in one place instead of at every call
/// site. `#[cfg(test)]` code is exempt — tests may orchestrate threads to
/// exercise the seam from outside.
fn core_thread_discipline_rule(file: &str, masked: &str, out: &mut Vec<Violation>) {
    let scope_end = masked.find("#[cfg(test)]").unwrap_or(masked.len());
    let scope = &masked[..scope_end];
    for needle in [
        "thread::spawn(",
        "thread::scope(",
        "Mutex",
        "RwLock",
        "Condvar",
        "crossbeam",
    ] {
        let mut from = 0;
        while let Some(pos) = scope[from..].find(needle) {
            let at = from + pos;
            from = at + needle.len();
            out.push(Violation {
                rule: "core-thread-discipline",
                file: file.to_string(),
                line: line_of(scope, at),
                message: format!(
                    "`{needle}` in a core query path; all parallelism must go through \
                     `core/src/par.rs`, the audited fork/join seam"
                ),
            });
        }
    }
}

/// Public error types must implement `std::error::Error` so callers can box
/// and chain them.
fn error_impl_rule(
    root: &Path,
    krate: &str,
    file: &str,
    masked: &str,
    out: &mut Vec<Violation>,
) -> io::Result<()> {
    for kind in ["pub enum ", "pub struct "] {
        let mut from = 0;
        while let Some(pos) = masked[from..].find(kind) {
            let at = from + pos;
            from = at + kind.len();
            let name: String = masked[at + kind.len()..]
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !name.ends_with("Error") {
                continue;
            }
            if !crate_implements_error(root, krate, &name)? {
                out.push(Violation {
                    rule: "error-impl",
                    file: file.to_string(),
                    line: line_of(masked, at),
                    message: format!(
                        "public error type `{name}` does not implement `std::error::Error`"
                    ),
                });
            }
        }
    }
    Ok(())
}

fn crate_implements_error(root: &Path, krate: &str, name: &str) -> io::Result<bool> {
    let needle = format!("Error for {name}");
    for path in rust_files(&root.join("crates").join(krate).join("src"))? {
        let masked = mask(&std::fs::read_to_string(&path)?);
        let mut from = 0;
        while let Some(pos) = masked[from..].find(&needle) {
            let at = from + pos;
            from = at + needle.len();
            // Reject partial matches like `Error for MyErrorKind`.
            let after = masked[at + needle.len()..].chars().next();
            if !after.is_some_and(|c| c.is_ascii_alphanumeric() || c == '_') {
                return Ok(true);
            }
        }
    }
    Ok(false)
}

/// `debug_assert!(cond)` without a message tells the person staring at a
/// failed CI log nothing; require `debug_assert!(cond, "…")` (and the
/// 3-argument forms of `_eq`/`_ne`).
fn debug_assert_rule(file: &str, masked: &str, out: &mut Vec<Violation>) {
    for (macro_name, min_args) in [
        ("debug_assert!", 2usize),
        ("debug_assert_eq!", 3),
        ("debug_assert_ne!", 3),
    ] {
        let mut from = 0;
        while let Some(pos) = masked[from..].find(macro_name) {
            let at = from + pos;
            from = at + macro_name.len();
            // Guard against matching `debug_assert!` inside
            // `debug_assert_eq!` by requiring a non-ident boundary before.
            if at > 0 {
                let prev = masked.as_bytes()[at - 1];
                if prev.is_ascii_alphanumeric() || prev == b'_' {
                    continue;
                }
            }
            let args = top_level_args(&masked[at + macro_name.len()..]);
            if args > 0 && args < min_args {
                out.push(Violation {
                    rule: "debug-assert-message",
                    file: file.to_string(),
                    line: line_of(masked, at),
                    message: format!("`{macro_name}(…)` without a message"),
                });
            }
        }
    }
}

/// Number of top-level comma-separated arguments inside the delimiter that
/// follows (0 if no delimiter follows, e.g. a mention in a `use` path).
fn top_level_args(rest: &str) -> usize {
    let bytes = rest.as_bytes();
    let mut i = 0;
    while i < bytes.len() && (bytes[i] == b' ' || bytes[i] == b'\n') {
        i += 1;
    }
    let (open, close) = match bytes.get(i) {
        Some(b'(') => (b'(', b')'),
        Some(b'[') => (b'[', b']'),
        Some(b'{') => (b'{', b'}'),
        _ => return 0,
    };
    let mut depth = 0usize;
    let mut args = 0usize;
    let mut segment_has_content = false;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            _ if b == open || b == b'(' || b == b'[' || b == b'{' => depth += 1,
            _ if b == close || b == b')' || b == b']' || b == b'}' => {
                depth -= 1;
                if depth == 0 {
                    if segment_has_content {
                        args += 1;
                    }
                    return args;
                }
            }
            b',' if depth == 1 => {
                if segment_has_content {
                    args += 1;
                }
                segment_has_content = false;
            }
            b' ' | b'\n' | b'\t' | b'\r' => {}
            _ if depth >= 1 => segment_has_content = true,
            _ => {}
        }
        i += 1;
    }
    args
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_top_level_args() {
        assert_eq!(top_level_args("(a, b)"), 2);
        assert_eq!(top_level_args("(cond)"), 1);
        assert_eq!(top_level_args("(f(x, y))"), 1);
        assert_eq!(top_level_args("(a, (b, c), d)"), 3);
        assert_eq!(top_level_args("(a, b,)"), 2, "trailing comma");
        assert_eq!(top_level_args(";"), 0, "no delimiter");
    }

    #[test]
    fn unwrap_rule_finds_calls() {
        let mut v = Vec::new();
        unwrap_rule(
            "f.rs",
            "let x = y.unwrap();\nlet z = w.expect(  );\n",
            &mut v,
        );
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].line, 1);
        assert_eq!(v[1].line, 2);
    }

    #[test]
    fn as_cast_rule_ignores_non_numeric() {
        let mut v = Vec::new();
        as_cast_rule("f.rs", "let a = b as u32; let c = d as SomeType;", &mut v);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("as u32"));
    }

    #[test]
    fn store_raw_fs_rule_stops_at_test_code() {
        let mut v = Vec::new();
        store_raw_fs_rule(
            "f.rs",
            "use std::fs::File;\nlet f = OpenOptions::new();\nf.sync_all();\n\
             #[cfg(test)]\nmod tests { use std::fs; }\n",
            &mut v,
        );
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().all(|x| x.line <= 3));
    }

    #[test]
    fn core_thread_discipline_flags_raw_threading() {
        let mut v = Vec::new();
        core_thread_discipline_rule(
            "f.rs",
            "let h = std::thread::spawn(|| {});\nlet m = Mutex::new(0);\n\
             #[cfg(test)]\nmod tests { fn t() { std::thread::scope(|_| {}); } }\n",
            &mut v,
        );
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(
            v.iter().all(|x| x.line <= 2),
            "test module is exempt: {v:?}"
        );
    }

    #[test]
    fn debug_assert_rule_requires_message() {
        let mut v = Vec::new();
        debug_assert_rule(
            "f.rs",
            "debug_assert!(x);\ndebug_assert!(y, \"why\");\ndebug_assert_eq!(a, b);\n",
            &mut v,
        );
        assert_eq!(v.len(), 2, "{v:?}");
    }
}
