//! `cargo xtask` — workspace invariant-audit tooling.
//!
//! The only subcommand today is `lint`: a source-level lint pass enforcing
//! project-specific rules that `clippy` cannot express (see [`rules`] for
//! the rule catalogue). Violations are compared against a committed
//! baseline (`crates/xtask/baseline.toml`) with a *ratchet*: per rule and
//! file, the violation count may only decrease. The pass therefore lands
//! green on a codebase with existing debt and tightens automatically as
//! the debt is paid down.
//!
//! ```text
//! cargo xtask lint                     # audit against the baseline
//! cargo xtask lint --verbose           # also list every violation
//! cargo xtask lint --update-baseline   # re-ratchet after paying down debt
//! ```
//!
//! Exit codes: `0` clean, `1` baseline regression (or stale baseline),
//! `2` usage / I/O error.
#![warn(missing_docs)]

mod baseline;
mod lexer;
mod rules;
mod walk;

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut update = false;
    let mut verbose = false;
    let mut cmd: Option<&str> = None;
    for arg in &args {
        match arg.as_str() {
            "lint" if cmd.is_none() => cmd = Some("lint"),
            "--update-baseline" => update = true,
            "--verbose" | "-v" => verbose = true,
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("xtask: unknown argument `{other}`");
                print_usage();
                return ExitCode::from(2);
            }
        }
    }
    match cmd {
        Some("lint") => run_lint(update, verbose),
        _ => {
            print_usage();
            ExitCode::from(2)
        }
    }
}

fn print_usage() {
    eprintln!("usage: cargo xtask lint [--update-baseline] [--verbose]");
}

fn run_lint(update: bool, verbose: bool) -> ExitCode {
    let root = match walk::workspace_root() {
        Ok(root) => root,
        Err(e) => {
            eprintln!("xtask: cannot locate workspace root: {e}");
            return ExitCode::from(2);
        }
    };
    let violations = match rules::run_all(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("xtask: lint pass failed: {e}");
            return ExitCode::from(2);
        }
    };
    if verbose {
        for v in &violations {
            println!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
        }
    }

    let counts = baseline::counts_of(&violations);
    let baseline_path = baseline_path(&root);
    if update {
        if let Err(e) = baseline::save(&baseline_path, &counts) {
            eprintln!("xtask: cannot write baseline: {e}");
            return ExitCode::from(2);
        }
        println!(
            "xtask: baseline updated ({} violations across {} rule/file entries)",
            counts.total(),
            counts.len()
        );
        return ExitCode::SUCCESS;
    }

    let old = match baseline::load(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!(
                "xtask: cannot read {} ({e}); run `cargo xtask lint --update-baseline` once",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
    };
    let diff = baseline::compare(&old, &counts);
    for reg in &diff.regressions {
        eprintln!(
            "xtask: REGRESSION [{}] {}: {} violation(s), baseline allows {}",
            reg.rule, reg.file, reg.current, reg.allowed
        );
        for v in violations
            .iter()
            .filter(|v| v.rule == reg.rule && v.file == reg.file)
        {
            eprintln!("    {}:{}: {}", v.file, v.line, v.message);
        }
    }
    for imp in &diff.improvements {
        println!(
            "xtask: improved [{}] {}: {} -> {}",
            imp.rule, imp.file, imp.allowed, imp.current
        );
    }
    println!(
        "xtask: {} violation(s) across {} rules, baseline {}",
        counts.total(),
        rules::RULES.len(),
        if diff.regressions.is_empty() {
            "respected"
        } else {
            "violated"
        }
    );
    if !diff.regressions.is_empty() {
        eprintln!(
            "xtask: {} regression(s); fix them or (only for deliberate, reviewed debt) \
             re-ratchet with `cargo xtask lint --update-baseline`",
            diff.regressions.len()
        );
        return ExitCode::FAILURE;
    }
    if !diff.improvements.is_empty() {
        eprintln!(
            "xtask: baseline is stale ({} entries improved); run \
             `cargo xtask lint --update-baseline` to lock in the progress",
            diff.improvements.len()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn baseline_path(root: &std::path::Path) -> PathBuf {
    root.join("crates").join("xtask").join("baseline.toml")
}
