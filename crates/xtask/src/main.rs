//! `cargo xtask` — workspace invariant-audit tooling.
//!
//! Two subcommands:
//!
//! * `lint` — token-level lint pass with a ratcheted baseline
//!   (`crates/xtask/baseline.toml`); see [`xtask::rules`].
//! * `analyze` — whole-workspace semantic analysis: panic-reachability
//!   from annotated entry points, transaction discipline around storage
//!   writes, commit-ordering anchors, lock discipline (class order, I/O
//!   under guards, single-writer), and discarded-`Result` detection in
//!   the storage crate; see [`xtask::analyze`]. `panic-reach` findings
//!   and the `lock-discipline` acquisition census ratchet through the
//!   same baseline file; everything else is zero-tolerance.
//!
//! ```text
//! cargo xtask lint                        # audit tokens against the baseline
//! cargo xtask analyze                     # run the semantic analyses
//! cargo xtask <cmd> --verbose             # also list every finding
//! cargo xtask <cmd> --update-baseline     # re-ratchet after paying down debt
//! ```
//!
//! Exit codes: `0` clean, `1` findings / baseline regression (or stale
//! baseline), `2` usage / I/O error.
#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use xtask::{analyze, baseline, rules, walk};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut update = false;
    let mut verbose = false;
    let mut cmd: Option<&str> = None;
    for arg in &args {
        match arg.as_str() {
            "lint" if cmd.is_none() => cmd = Some("lint"),
            "analyze" if cmd.is_none() => cmd = Some("analyze"),
            "--update-baseline" => update = true,
            "--verbose" | "-v" => verbose = true,
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("xtask: unknown argument `{other}`");
                print_usage();
                return ExitCode::from(2);
            }
        }
    }
    match cmd {
        Some("lint") => run_lint(update, verbose),
        Some("analyze") => run_analyze(update, verbose),
        _ => {
            print_usage();
            ExitCode::from(2)
        }
    }
}

fn print_usage() {
    eprintln!("usage: cargo xtask <lint|analyze> [--update-baseline] [--verbose]");
}

fn workspace_root_or_exit() -> Result<PathBuf, ExitCode> {
    walk::workspace_root().map_err(|e| {
        eprintln!("xtask: cannot locate workspace root: {e}");
        ExitCode::from(2)
    })
}

fn run_lint(update: bool, verbose: bool) -> ExitCode {
    let root = match workspace_root_or_exit() {
        Ok(root) => root,
        Err(code) => return code,
    };
    let violations = match rules::run_all(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("xtask: lint pass failed: {e}");
            return ExitCode::from(2);
        }
    };
    if verbose {
        for v in &violations {
            println!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
        }
    }
    let counts = baseline::counts_of(&violations);
    ratchet(
        &root,
        rules::RULES,
        &counts,
        &violations,
        update,
        &format!(
            "{} violation(s) across {} rules",
            counts.total(),
            rules::RULES.len()
        ),
    )
}

fn run_analyze(update: bool, verbose: bool) -> ExitCode {
    let root = match workspace_root_or_exit() {
        Ok(root) => root,
        Err(code) => return code,
    };
    let model = match analyze::workspace_model(&root) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("xtask: cannot build the workspace model: {e}");
            return ExitCode::from(2);
        }
    };
    let report = analyze::run_model(&model, true);
    if verbose {
        println!(
            "xtask: analyze: {} fns in the model, {} hard finding(s), {} ratcheted",
            model.fns.len(),
            report.hard.len(),
            report.ratcheted.len()
        );
        for v in report.all() {
            println!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
        }
    }
    let mut failed = false;
    if !report.hard.is_empty() {
        for v in &report.hard {
            eprintln!(
                "xtask: ANALYZE [{}] {}:{}: {}",
                v.rule, v.file, v.line, v.message
            );
        }
        eprintln!(
            "xtask: {} semantic violation(s); these rules have no baseline — fix them",
            report.hard.len()
        );
        failed = true;
    }
    let counts = baseline::counts_of(&report.ratcheted);
    let code = ratchet(
        &root,
        &["panic-reach", "lock-discipline"],
        &counts,
        &report.ratcheted,
        update,
        &format!(
            "analyze: {} ratcheted finding(s) (panic-reach + lock-discipline census)",
            report.ratcheted.len()
        ),
    );
    if failed {
        ExitCode::FAILURE
    } else {
        code
    }
}

/// Shared ratchet flow: compare `counts` (covering exactly `owned_rules`)
/// against the committed baseline, or re-ratchet with `--update-baseline`.
fn ratchet(
    root: &Path,
    owned_rules: &[&str],
    counts: &baseline::Counts,
    violations: &[rules::Violation],
    update: bool,
    summary: &str,
) -> ExitCode {
    let path = baseline_path(root);
    if update {
        match baseline::update_subset(&path, owned_rules, counts) {
            Ok(merged) => {
                println!(
                    "xtask: baseline updated ({} violations across {} rule/file entries)",
                    merged.total(),
                    merged.len()
                );
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("xtask: cannot write baseline: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let mut old = match baseline::load(&path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!(
                "xtask: cannot read {} ({e}); run with `--update-baseline` once",
                path.display()
            );
            return ExitCode::from(2);
        }
    };
    old.retain_rules(|rule| owned_rules.contains(&rule));
    let diff = baseline::compare(&old, counts);
    for reg in &diff.regressions {
        eprintln!(
            "xtask: REGRESSION [{}] {}: {} violation(s), baseline allows {}",
            reg.rule, reg.file, reg.current, reg.allowed
        );
        for v in violations
            .iter()
            .filter(|v| v.rule == reg.rule && v.file == reg.file)
        {
            eprintln!("    {}:{}: {}", v.file, v.line, v.message);
        }
    }
    for imp in &diff.improvements {
        println!(
            "xtask: improved [{}] {}: {} -> {}",
            imp.rule, imp.file, imp.allowed, imp.current
        );
    }
    println!(
        "xtask: {summary}, baseline {}",
        if diff.regressions.is_empty() {
            "respected"
        } else {
            "violated"
        }
    );
    if !diff.regressions.is_empty() {
        eprintln!(
            "xtask: {} regression(s); fix them or (only for deliberate, reviewed debt) \
             re-ratchet with `--update-baseline`",
            diff.regressions.len()
        );
        return ExitCode::FAILURE;
    }
    if !diff.improvements.is_empty() {
        eprintln!(
            "xtask: baseline is stale ({} entries improved); run \
             `--update-baseline` to lock in the progress",
            diff.improvements.len()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn baseline_path(root: &Path) -> PathBuf {
    root.join("crates").join("xtask").join("baseline.toml")
}
