//! The ratcheted lint baseline.
//!
//! `baseline.toml` records, per rule and file, how many violations are
//! currently tolerated. The format is a TOML subset written and parsed by
//! this module (the workspace builds offline, so no external TOML crate):
//!
//! ```toml
//! [unwrap]
//! "crates/store/src/btree.rs" = 86
//! ```
//!
//! [`compare`] classifies the current counts against the stored ones:
//! a count above the stored allowance (or a file absent from the baseline)
//! is a *regression*; a count below it is an *improvement* that makes the
//! baseline stale until `--update-baseline` re-ratchets it downward.

use crate::rules::Violation;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// Violation counts keyed by `(rule, file)`, ordered for stable output.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Counts {
    map: BTreeMap<(String, String), usize>,
}

impl Counts {
    /// Sum of all per-entry counts.
    pub fn total(&self) -> usize {
        self.map.values().sum()
    }

    /// Number of `(rule, file)` entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// The allowance for `(rule, file)`, 0 if absent.
    pub fn get(&self, rule: &str, file: &str) -> usize {
        self.map
            .get(&(rule.to_string(), file.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Keeps only entries whose rule satisfies `pred`.
    pub fn retain_rules(&mut self, pred: impl Fn(&str) -> bool) {
        self.map.retain(|(rule, _), _| pred(rule));
    }

    /// Merges `other`'s entries into `self` (overwriting duplicates).
    pub fn merge(&mut self, other: Counts) {
        self.map.extend(other.map);
    }
}

/// Rewrites only the sections owned by `owned_rules` in the baseline at
/// `path`: entries for other rules are carried over untouched, so `cargo
/// xtask lint --update-baseline` and `cargo xtask analyze
/// --update-baseline` never clobber each other.
pub fn update_subset(path: &Path, owned_rules: &[&str], counts: &Counts) -> io::Result<Counts> {
    let mut merged = match load(path) {
        Ok(existing) => existing,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Counts::default(),
        Err(e) => return Err(e),
    };
    merged.retain_rules(|rule| !owned_rules.contains(&rule));
    merged.merge(counts.clone());
    save(path, &merged)?;
    Ok(merged)
}

/// Aggregates violations into per-`(rule, file)` counts.
pub fn counts_of(violations: &[Violation]) -> Counts {
    let mut map = BTreeMap::new();
    for v in violations {
        *map.entry((v.rule.to_string(), v.file.clone())).or_insert(0) += 1;
    }
    Counts { map }
}

/// One `(rule, file)` entry whose current count differs from its allowance.
#[derive(Clone, Debug)]
pub struct DiffEntry {
    /// Rule identifier.
    pub rule: String,
    /// Repo-relative file path.
    pub file: String,
    /// Count observed in this run.
    pub current: usize,
    /// Count the baseline allows.
    pub allowed: usize,
}

/// Result of [`compare`].
#[derive(Clone, Debug, Default)]
pub struct Diff {
    /// Entries whose count grew past the baseline (lint failure).
    pub regressions: Vec<DiffEntry>,
    /// Entries whose count shrank below the baseline (stale baseline).
    pub improvements: Vec<DiffEntry>,
}

/// Compares current counts against the stored baseline.
pub fn compare(old: &Counts, new: &Counts) -> Diff {
    let mut diff = Diff::default();
    let keys: std::collections::BTreeSet<&(String, String)> =
        old.map.keys().chain(new.map.keys()).collect();
    for key in keys {
        let allowed = old.get(&key.0, &key.1);
        let current = new.get(&key.0, &key.1);
        let entry = DiffEntry {
            rule: key.0.clone(),
            file: key.1.clone(),
            current,
            allowed,
        };
        if current > allowed {
            diff.regressions.push(entry);
        } else if current < allowed {
            diff.improvements.push(entry);
        }
    }
    diff
}

/// Serialises counts to the baseline file, one `[rule]` section per rule.
pub fn save(path: &Path, counts: &Counts) -> io::Result<()> {
    let mut text = String::from(
        "# Ratcheted lint baseline. Maintained by `cargo xtask lint --update-baseline`;\n\
         # counts may only decrease. See crates/xtask/src/rules.rs for the rules.\n",
    );
    let mut last_rule = "";
    for ((rule, file), count) in &counts.map {
        if rule != last_rule {
            text.push_str(&format!("\n[{rule}]\n"));
            last_rule = rule;
        }
        text.push_str(&format!("\"{file}\" = {count}\n"));
    }
    std::fs::write(path, text)
}

/// Parses a baseline file written by [`save`].
pub fn load(path: &Path) -> io::Result<Counts> {
    let text = std::fs::read_to_string(path)?;
    let mut map = BTreeMap::new();
    let mut rule = String::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(section) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            rule = section.to_string();
            continue;
        }
        let parse_err = || {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "{}:{}: malformed baseline line `{raw}`",
                    path.display(),
                    idx + 1
                ),
            )
        };
        let (key, value) = line.split_once('=').ok_or_else(parse_err)?;
        let file = key
            .trim()
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or_else(parse_err)?;
        let count: usize = value.trim().parse().map_err(|_| parse_err())?;
        if rule.is_empty() {
            return Err(parse_err());
        }
        map.insert((rule.clone(), file.to_string()), count);
    }
    Ok(Counts { map })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(entries: &[(&str, &str, usize)]) -> Counts {
        let mut map = BTreeMap::new();
        for (rule, file, n) in entries {
            map.insert((rule.to_string(), file.to_string()), *n);
        }
        Counts { map }
    }

    #[test]
    fn compare_classifies() {
        let old = counts(&[("unwrap", "a.rs", 3), ("unwrap", "b.rs", 1)]);
        let new = counts(&[
            ("unwrap", "a.rs", 2),
            ("unwrap", "b.rs", 1),
            ("as-cast", "c.rs", 1),
        ]);
        let diff = compare(&old, &new);
        assert_eq!(diff.improvements.len(), 1, "{diff:?}");
        assert_eq!(diff.improvements[0].file, "a.rs");
        assert_eq!(diff.regressions.len(), 1, "{diff:?}");
        assert_eq!(diff.regressions[0].file, "c.rs");
        assert_eq!(diff.regressions[0].allowed, 0);
    }

    #[test]
    fn save_load_round_trip() {
        let c = counts(&[("unwrap", "a.rs", 3), ("as-cast", "b.rs", 2)]);
        let dir = std::env::temp_dir().join("xtask-baseline-test");
        std::fs::create_dir_all(&dir).expect("tempdir");
        let path = dir.join("baseline.toml");
        save(&path, &c).expect("save");
        let back = load(&path).expect("load");
        assert_eq!(back, c);
        assert_eq!(back.get("unwrap", "a.rs"), 3);
        assert_eq!(back.get("missing", "a.rs"), 0);
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("xtask-baseline-test");
        std::fs::create_dir_all(&dir).expect("tempdir");
        let path = dir.join("bad.toml");
        std::fs::write(&path, "\"orphan\" = 1\n").expect("write");
        assert!(load(&path).is_err(), "entry before any [rule] section");
    }
}
