#![warn(missing_docs)]
#![forbid(unsafe_code)]
//! Heuristic tree diff: turn two document *versions* into an edit script.
//!
//! The paper's maintenance scenario assumes the application supplies the log
//! of edit operations. When only the two document versions exist (the
//! common case for file-based documents), a diff must derive a script. This
//! crate implements a Merkle-hash guided structural diff in the spirit of
//! XyDiff / change-detection systems (the paper's reference \[4\]):
//!
//! 1. every subtree gets a fingerprint (label + child fingerprints);
//! 2. per node, the child lists of the two versions are aligned on equal
//!    fingerprints with a longest-increasing-subsequence match
//!    (`O(n log n)` per child list, robust to repeated content);
//! 3. aligned-but-unequal pairs recurse, extra old children are deleted,
//!    extra new children are inserted (as whole subtrees), and label
//!    mismatches become renames.
//!
//! The script is applied to the old tree as it is produced (node ids stay in
//! the old tree's lineage) and returned as an [`EditLog`] — ready for the
//! incremental index maintenance. The result is **not guaranteed minimal**
//! (minimal edit scripts cost `O(n³)`); it is verified label-isomorphic and
//! is near-minimal for local changes.
//!
//! ```
//! use pqgram_tree::{LabelTable, Tree};
//! use pqgram_diff::sync;
//!
//! let mut labels = LabelTable::new();
//! let (a, b, c) = (labels.intern("a"), labels.intern("b"), labels.intern("c"));
//! let mut old = Tree::with_root(a);
//! let root = old.root();
//! old.add_child(root, b);
//!
//! let mut new = Tree::with_root(a);
//! let new_root = new.root();
//! new.add_child(new_root, c);
//!
//! let new_labels = labels.clone();
//! let log = sync(&mut old, &mut labels, &new, &new_labels).unwrap();
//! assert_eq!(log.len(), 1); // one rename b -> c
//! ```

use pqgram_tree::fingerprint::{arity_mark, combine, mix, Fingerprint, TUPLE_SEED};
use pqgram_tree::subtree::{delete_subtree, insert_subtree, Spec};
use pqgram_tree::{EditError, EditLog, EditOp, FxHashMap, LabelSym, LabelTable, NodeId, Tree};

/// Why a diff could not be computed.
#[derive(Debug, PartialEq, Eq)]
pub enum DiffError {
    /// The root labels differ; the edit model never edits the root
    /// (re-index from scratch instead).
    RootRelabeled,
    /// An edit failed to apply (internal invariant violation).
    Edit(EditError),
    /// The produced script did not converge to the target (would indicate a
    /// fingerprint collision; astronomically unlikely).
    Diverged,
}

impl std::fmt::Display for DiffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiffError::RootRelabeled => {
                write!(
                    f,
                    "the root label changed; the edit model cannot rename the root"
                )
            }
            DiffError::Edit(e) => write!(f, "derived edit failed to apply: {e}"),
            DiffError::Diverged => write!(f, "diff did not converge (fingerprint collision?)"),
        }
    }
}

impl std::error::Error for DiffError {}

impl From<EditError> for DiffError {
    fn from(e: EditError) -> Self {
        DiffError::Edit(e)
    }
}

/// Transforms `old` (in place) into a tree label-isomorphic to `new`,
/// returning the edit log. Labels of `new` are interned into `labels` (the
/// table `old` uses); `new_labels` is `new`'s own table.
pub fn sync(
    old: &mut Tree,
    labels: &mut LabelTable,
    new: &Tree,
    new_labels: &LabelTable,
) -> Result<EditLog, DiffError> {
    // Map every label of `new` into `old`'s table.
    let mut sym_map: FxHashMap<LabelSym, LabelSym> = FxHashMap::default();
    for n in new.preorder(new.root()) {
        let s = new.label(n);
        sym_map
            .entry(s)
            .or_insert_with(|| labels.intern(new_labels.name(s)));
    }

    if labels.fingerprint(old.label(old.root()))
        != labels.fingerprint(sym_map[&new.label(new.root())])
    {
        return Err(DiffError::RootRelabeled);
    }

    let new_hashes = subtree_hashes(new, |s| labels.fingerprint(sym_map[&s]));

    let mut log = EditLog::new();
    align(
        old,
        labels,
        new,
        &sym_map,
        &new_hashes,
        old.root(),
        new.root(),
        &mut log,
    )?;

    if !label_isomorphic(old, new, &sym_map) {
        return Err(DiffError::Diverged);
    }
    Ok(log)
}

/// Merkle fingerprints of every subtree of `tree` (indexed by slot).
fn subtree_hashes(tree: &Tree, label_fp: impl Fn(LabelSym) -> Fingerprint) -> Vec<Fingerprint> {
    let mut hashes = vec![0u64; tree.slot_count()];
    for node in tree.postorder(tree.root()) {
        let mut acc = combine(TUPLE_SEED, label_fp(tree.label(node)));
        for &c in tree.children(node) {
            acc = combine(acc, mix(hashes[c.index()]));
        }
        // Close the node with its arity: see `fingerprint::arity_mark`.
        hashes[node.index()] = combine(acc, arity_mark(tree.fanout(node)));
    }
    hashes
}

/// Recomputes the Merkle hash of one old-tree subtree on demand (the old
/// tree mutates during the diff, so old hashes cannot be precomputed once).
fn old_hash(tree: &Tree, labels: &LabelTable, node: NodeId) -> Fingerprint {
    // Iterative postorder accumulation over the (small) subtree.
    let mut memo: FxHashMap<NodeId, Fingerprint> = FxHashMap::default();
    for n in tree.postorder(node) {
        let mut acc = combine(TUPLE_SEED, labels.fingerprint(tree.label(n)));
        for &c in tree.children(n) {
            acc = combine(acc, mix(memo[&c]));
        }
        memo.insert(n, combine(acc, arity_mark(tree.fanout(n))));
    }
    memo[&node]
}

#[allow(clippy::too_many_arguments)]
fn align(
    old: &mut Tree,
    labels: &mut LabelTable,
    new: &Tree,
    sym_map: &FxHashMap<LabelSym, LabelSym>,
    new_hashes: &[Fingerprint],
    old_node: NodeId,
    new_node: NodeId,
    log: &mut EditLog,
) -> Result<(), DiffError> {
    // Label fix-up (the root is guaranteed equal by `sync`).
    let want = sym_map[&new.label(new_node)];
    if old.label(old_node) != want {
        log.push(old.apply_logged(EditOp::Rename {
            node: old_node,
            label: want,
        })?);
    }

    let old_children: Vec<NodeId> = old.children(old_node).to_vec();
    let new_children: Vec<NodeId> = new.children(new_node).to_vec();

    // Fingerprints of both child lists.
    let old_fps: Vec<Fingerprint> = old_children
        .iter()
        .map(|&c| old_hash(old, labels, c))
        .collect();
    let new_fps: Vec<Fingerprint> = new_children
        .iter()
        .map(|&c| new_hashes[c.index()])
        .collect();

    // Greedy hash assignment + LIS: a linearithmic common-subsequence
    // approximation that is exact when equal subtrees are unique.
    let matched = match_children(&old_fps, &new_fps);

    // Between consecutive matches, pair leftovers positionally; surplus old
    // children are deleted, surplus new children inserted.
    let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
    let mut deletions: Vec<NodeId> = Vec::new();
    let mut insertions: Vec<NodeId> = Vec::new(); // new-tree children
    {
        let mut oi = 0usize;
        let mut ni = 0usize;
        let anchors = matched
            .iter()
            .copied()
            .chain([(old_children.len(), new_children.len())]);
        for (ao, an) in anchors {
            let gap_old = &old_children[oi..ao];
            let gap_new = &new_children[ni..an];
            let paired = gap_old.len().min(gap_new.len());
            for k in 0..paired {
                pairs.push((gap_old[k], gap_new[k]));
            }
            deletions.extend_from_slice(&gap_old[paired..]);
            insertions.extend_from_slice(&gap_new[paired..]);
            oi = ao + 1;
            ni = an + 1;
        }
    }

    // 1. Remove surplus old subtrees (ids are stable under sibling shifts).
    for d in deletions {
        for entry in delete_subtree(old, d)? {
            log.push(entry);
        }
    }
    // 2. Insert surplus new subtrees at their final positions. After the
    //    deletions, the old child list contains exactly the counterparts of
    //    the kept new children, in matching relative order, so the target
    //    position equals the new-tree position.
    for ins in insertions {
        let pos = new.sibling_pos(ins).expect("child");
        let spec = capture_spec(new, ins, sym_map);
        let (_, entries) = insert_subtree(old, old_node, pos, &spec)?;
        for entry in entries {
            log.push(entry);
        }
    }
    // 3. Recurse into imperfectly-matched pairs (matched anchors are equal
    //    subtrees and need nothing).
    for (o, n) in pairs {
        align(old, labels, new, sym_map, new_hashes, o, n, log)?;
    }
    Ok(())
}

/// Matches equal fingerprints between two child lists, keeping a longest
/// increasing subsequence so matches never cross.
fn match_children(old_fps: &[Fingerprint], new_fps: &[Fingerprint]) -> Vec<(usize, usize)> {
    // hash -> queue of new positions (ascending).
    let mut by_hash: FxHashMap<Fingerprint, std::collections::VecDeque<usize>> =
        FxHashMap::default();
    for (i, &h) in new_fps.iter().enumerate() {
        by_hash.entry(h).or_default().push_back(i);
    }
    // Greedy assignment in old order.
    let mut candidate: Vec<(usize, usize)> = Vec::new(); // (old_idx, new_idx)
    for (oi, &h) in old_fps.iter().enumerate() {
        if let Some(queue) = by_hash.get_mut(&h) {
            if let Some(ni) = queue.pop_front() {
                candidate.push((oi, ni));
            }
        }
    }
    // LIS over the new indices.
    lis_by_second(&candidate)
}

/// Longest strictly-increasing subsequence of `pairs` by the second
/// component (first components are already ascending). `O(n log n)`.
fn lis_by_second(pairs: &[(usize, usize)]) -> Vec<(usize, usize)> {
    if pairs.is_empty() {
        return Vec::new();
    }
    // tails[k] = index into `pairs` of the smallest tail of an increasing
    // subsequence of length k+1.
    let mut tails: Vec<usize> = Vec::new();
    let mut prev: Vec<Option<usize>> = vec![None; pairs.len()];
    for (i, &(_, n)) in pairs.iter().enumerate() {
        let pos = tails.partition_point(|&t| pairs[t].1 < n);
        if pos > 0 {
            prev[i] = Some(tails[pos - 1]);
        }
        if pos == tails.len() {
            tails.push(i);
        } else {
            tails[pos] = i;
        }
    }
    let mut out = Vec::with_capacity(tails.len());
    let mut cur = tails.last().copied();
    while let Some(i) = cur {
        out.push(pairs[i]);
        cur = prev[i];
    }
    out.reverse();
    out
}

/// Captures a new-tree subtree as a [`Spec`] with labels mapped into the
/// old tree's table.
fn capture_spec(new: &Tree, node: NodeId, sym_map: &FxHashMap<LabelSym, LabelSym>) -> Spec {
    Spec {
        label: sym_map[&new.label(node)],
        children: new
            .children(node)
            .iter()
            .map(|&c| capture_spec(new, c, sym_map))
            .collect(),
    }
}

/// Structural equality with labels compared through the sym map.
fn label_isomorphic(old: &Tree, new: &Tree, sym_map: &FxHashMap<LabelSym, LabelSym>) -> bool {
    let mut stack = vec![(old.root(), new.root())];
    while let Some((o, n)) = stack.pop() {
        if old.label(o) != sym_map[&new.label(n)] || old.fanout(o) != new.fanout(n) {
            return false;
        }
        stack.extend(
            old.children(o)
                .iter()
                .copied()
                .zip(new.children(n).iter().copied()),
        );
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqgram_tree::generate::{random_tree, RandomTreeConfig};
    use pqgram_tree::{record_script, ScriptConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain(labels: &mut LabelTable, names: &[&str]) -> Tree {
        let mut t = Tree::with_root(labels.intern(names[0]));
        let mut cur = t.root();
        for n in &names[1..] {
            cur = t.add_child(cur, labels.intern(n));
        }
        t
    }

    #[test]
    fn identical_trees_need_no_edits() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lt = LabelTable::new();
        let mut old = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(80, 5));
        let new = old.clone();
        let new_lt = lt.clone();
        let log = sync(&mut old, &mut lt, &new, &new_lt).unwrap();
        assert!(log.is_empty());
    }

    #[test]
    fn single_rename_found() {
        let mut lt = LabelTable::new();
        let mut old = chain(&mut lt, &["a", "b", "c"]);
        let mut nlt = LabelTable::new();
        let new = chain(&mut nlt, &["a", "x", "c"]);
        let before = old.node_count();
        let log = sync(&mut old, &mut lt, &new, &nlt).unwrap();
        assert_eq!(log.len(), 1);
        assert!(matches!(log.ops()[0].op, EditOp::Rename { .. }));
        assert_eq!(old.node_count(), before);
    }

    #[test]
    fn root_relabel_rejected() {
        let mut lt = LabelTable::new();
        let mut old = chain(&mut lt, &["a", "b"]);
        let mut nlt = LabelTable::new();
        let new = chain(&mut nlt, &["z", "b"]);
        assert_eq!(
            sync(&mut old, &mut lt, &new, &nlt).unwrap_err(),
            DiffError::RootRelabeled
        );
    }

    #[test]
    fn added_and_removed_fields() {
        let mut lt = LabelTable::new();
        let a = lt.intern("article");
        let mut old = Tree::with_root(a);
        let or = old.root();
        for f in ["author", "title", "year"] {
            let n = old.add_child(or, lt.intern(f));
            old.add_child(n, lt.intern(&format!("{f}-value")));
        }
        let mut nlt = LabelTable::new();
        let mut new = Tree::with_root(nlt.intern("article"));
        let nr = new.root();
        for f in ["author", "booktitle", "year", "pages"] {
            let n = new.add_child(nr, nlt.intern(f));
            new.add_child(n, nlt.intern(&format!("{f}-value")));
        }
        // old: author title year; new: author booktitle year pages.
        let log = sync(&mut old, &mut lt, &new, &nlt).unwrap();
        // title→booktitle is a positional pair (2 renames: field + value);
        // pages(+value) is an insertion (2 ops). Allow the heuristic some
        // slack but catch regressions into delete-everything behaviour.
        assert!(log.len() <= 6, "script too long: {}", log.len());
        assert_eq!(old.node_count(), 9);
    }

    #[test]
    fn moved_subtree_is_delete_plus_insert() {
        let mut lt = LabelTable::new();
        let a = lt.intern("a");
        let (b, c, d) = (lt.intern("b"), lt.intern("c"), lt.intern("d"));
        let mut old = Tree::with_root(a);
        let or = old.root();
        let ob = old.add_child(or, b);
        old.add_child(ob, d);
        old.add_child(or, c);
        // new: subtree b(d) moved under c.
        let mut nlt = LabelTable::new();
        let mut new = Tree::with_root(nlt.intern("a"));
        let nr = new.root();
        let nc = new.add_child(nr, nlt.intern("c"));
        let nb = new.add_child(nc, nlt.intern("b"));
        new.add_child(nb, nlt.intern("d"));
        let log = sync(&mut old, &mut lt, &new, &nlt).unwrap();
        assert!(!log.is_empty());
        assert!(old.isomorphic(&{
            // Rebuild expected via the same labels table for comparison.
            let mut e = Tree::with_root(a);
            let er = e.root();
            let ec = e.add_child(er, c);
            let eb = e.add_child(ec, b);
            e.add_child(eb, d);
            e
        }));
    }

    #[test]
    fn log_rewinds_back_to_original() {
        for seed in 0..30u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut lt = LabelTable::new();
            let mut old = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(60, 5));
            let snapshot = old.clone();
            // Target: an edited copy (this also exercises non-trivial but
            // related structures).
            let mut target = old.clone();
            let alphabet: Vec<_> = lt.iter().map(|(s, _)| s).collect();
            record_script(&mut rng, &mut target, &ScriptConfig::new(10, alphabet));
            let target_labels = lt.clone();
            let log = sync(&mut old, &mut lt, &target, &target_labels).unwrap();
            assert!(old.isomorphic(&target), "seed {seed}");
            log.rewind(&mut old).unwrap();
            assert_eq!(
                old, snapshot,
                "seed {seed}: log must rewind to the original"
            );
        }
    }

    #[test]
    fn script_is_local_for_local_changes() {
        // One changed leaf in a 2000-node document must not trigger a
        // wholesale rewrite.
        let mut rng = StdRng::seed_from_u64(9);
        let mut lt = LabelTable::new();
        let mut old = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(2_000, 8));
        let mut target = old.clone();
        let leaf = target
            .preorder(target.root())
            .find(|&n| target.is_leaf(n))
            .unwrap();
        let z = lt.intern("zzz-new");
        target
            .apply(EditOp::Rename {
                node: leaf,
                label: z,
            })
            .unwrap();
        let tlt = lt.clone();
        let log = sync(&mut old, &mut lt, &target, &tlt).unwrap();
        assert!(
            log.len() <= 2,
            "expected a near-minimal script, got {}",
            log.len()
        );
    }

    #[test]
    fn lis_picks_longest_noncrossing() {
        let m = lis_by_second(&[(0, 5), (1, 1), (2, 2), (3, 0), (4, 3)]);
        assert_eq!(m, vec![(1, 1), (2, 2), (4, 3)]);
        assert!(lis_by_second(&[]).is_empty());
    }

    #[test]
    fn repeated_subtrees_match_in_order() {
        // Old: x x x ; New: x x — one deletion, no churn.
        let mut lt = LabelTable::new();
        let a = lt.intern("a");
        let x = lt.intern("x");
        let mut old = Tree::with_root(a);
        let or = old.root();
        for _ in 0..3 {
            old.add_child(or, x);
        }
        let mut nlt = LabelTable::new();
        let mut new = Tree::with_root(nlt.intern("a"));
        let nr = new.root();
        for _ in 0..2 {
            new.add_child(nr, nlt.intern("x"));
        }
        let log = sync(&mut old, &mut lt, &new, &nlt).unwrap();
        assert_eq!(log.len(), 1, "exactly one delete");
    }
}
