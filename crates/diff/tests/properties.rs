//! Property-based tests for the tree diff: convergence, rewindability and
//! compatibility with the incremental index maintenance, on arbitrary
//! (including completely unrelated) tree pairs.

use pqgram_diff::{sync, DiffError};
use pqgram_tree::generate::{random_tree, RandomTreeConfig};
use pqgram_tree::{LabelTable, Tree};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn names(t: &Tree, l: &LabelTable) -> Vec<String> {
    t.preorder(t.root())
        .map(|n| format!("{}/{}", l.name(t.label(n)), t.fanout(n)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Diffing two *independent* random trees must converge to a
    /// label-isomorphic result (or report RootRelabeled), and the log must
    /// rewind to the original.
    #[test]
    fn unrelated_trees_converge(
        seed_a in 0u64..1_000_000,
        seed_b in 0u64..1_000_000,
        n_a in 1usize..80,
        n_b in 1usize..80,
        alphabet in 1usize..6,
    ) {
        let mut rng_a = StdRng::seed_from_u64(seed_a);
        let mut lt = LabelTable::new();
        let mut old = random_tree(&mut rng_a, &mut lt, &RandomTreeConfig::new(n_a, alphabet));
        let snapshot = old.clone();
        let mut rng_b = StdRng::seed_from_u64(seed_b);
        let mut nlt = LabelTable::new();
        let new = random_tree(&mut rng_b, &mut nlt, &RandomTreeConfig::new(n_b, alphabet));

        match sync(&mut old, &mut lt, &new, &nlt) {
            Ok(log) => {
                prop_assert_eq!(names(&old, &lt), names(&new, &nlt));
                log.rewind(&mut old).unwrap();
                prop_assert_eq!(old, snapshot);
            }
            Err(DiffError::RootRelabeled) => {
                prop_assert_ne!(
                    lt.name(snapshot.label(snapshot.root())),
                    nlt.name(new.label(new.root()))
                );
            }
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error {e}"))),
        }
    }

    /// The diff-derived log drives the incremental index maintenance to the
    /// same index a rebuild produces.
    #[test]
    fn diff_logs_feed_maintenance(
        seed_a in 0u64..1_000_000,
        seed_b in 0u64..1_000_000,
        n in 2usize..60,
    ) {
        use pqgram_core::{build_index, PQParams};
        use pqgram_core::maintain::update_index;
        let params = PQParams::new(2, 3);
        let mut rng_a = StdRng::seed_from_u64(seed_a);
        let mut lt = LabelTable::new();
        let mut old = random_tree(&mut rng_a, &mut lt, &RandomTreeConfig::new(n, 4));
        let old_index = build_index(&old, &lt, params);
        let mut rng_b = StdRng::seed_from_u64(seed_b);
        // Same label prefix: roots always match.
        let new = random_tree(&mut rng_b, &mut lt.clone(), &RandomTreeConfig::new(n, 4));
        let new_labels = lt.clone();
        let log = match sync(&mut old, &mut lt, &new, &new_labels) {
            Ok(log) => log,
            Err(DiffError::RootRelabeled) => return Ok(()),
            Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
        };
        let updated = update_index(&old_index, &old, &lt, &log).unwrap().index;
        prop_assert_eq!(updated, build_index(&old, &lt, params));
    }
}
