//! Criterion benchmarks for the extension components: approximate join,
//! tree diff, streaming XML indexing, and the blob store.

use criterion::{criterion_group, criterion_main, Criterion};
use pqgram_core::join::{join, join_nested_loop};
use pqgram_core::{build_index, ForestIndex, PQParams, TreeId};
use pqgram_tree::generate::{dblp, random_tree, RandomTreeConfig};
use pqgram_tree::{record_script, LabelTable, ScriptConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_join(c: &mut Criterion) {
    let params = PQParams::new(2, 3);
    let mut rng = StdRng::seed_from_u64(1);
    let mut labels = LabelTable::new();
    let mut left = ForestIndex::new();
    let mut right = ForestIndex::new();
    for i in 0..150u64 {
        let t = random_tree(&mut rng, &mut labels, &RandomTreeConfig::new(60, 8));
        left.insert(TreeId(i), build_index(&t, &labels, params));
        let mut noisy = t.clone();
        let alphabet: Vec<_> = labels.iter().map(|(s, _)| s).collect();
        record_script(&mut rng, &mut noisy, &ScriptConfig::new(3, alphabet));
        right.insert(TreeId(1000 + i), build_index(&noisy, &labels, params));
    }
    let mut group = c.benchmark_group("approximate_join_150x150");
    group.sample_size(20);
    group.bench_function("inverted_index", |b| {
        b.iter(|| join(black_box(&left), black_box(&right), 0.4))
    });
    group.bench_function("nested_loop", |b| {
        b.iter(|| join_nested_loop(black_box(&left), black_box(&right), 0.4))
    });
    group.finish();
}

fn bench_diff(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut labels = LabelTable::new();
    let base = dblp(&mut rng, &mut labels, 20_000);
    let mut edited = base.clone();
    let alphabet: Vec<_> = labels.iter().map(|(s, _)| s).collect();
    record_script(&mut rng, &mut edited, &ScriptConfig::new(50, alphabet));
    let edited_labels = labels.clone();
    let mut group = c.benchmark_group("tree_diff_20k_nodes_50_edits");
    group.sample_size(20);
    group.bench_function("sync", |b| {
        b.iter(|| {
            let mut old = base.clone();
            let mut lt = labels.clone();
            pqgram_diff::sync(&mut old, &mut lt, &edited, &edited_labels).unwrap()
        })
    });
    group.finish();
}

fn bench_stream_vs_dom(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut labels = LabelTable::new();
    let tree = dblp(&mut rng, &mut labels, 20_000);
    let xml = pqgram_xml::write_document(&tree, &labels, &pqgram_xml::WriteOptions::default());
    let params = PQParams::default();
    let mut group = c.benchmark_group("xml_indexing_20k_nodes");
    group.throughput(criterion::Throughput::Bytes(xml.len() as u64));
    group.bench_function("stream_index", |b| {
        b.iter(|| {
            pqgram_xml::stream_index(
                black_box(&xml),
                params,
                &pqgram_xml::ParseOptions::default(),
            )
            .unwrap()
        })
    });
    group.bench_function("parse_then_build", |b| {
        b.iter(|| {
            let mut lt = LabelTable::new();
            let t = pqgram_xml::parse_document(black_box(&xml), &mut lt).unwrap();
            build_index(&t, &lt, params)
        })
    });
    group.finish();
}

fn bench_blob_store(c: &mut Criterion) {
    use pqgram_store::blob::BlobStore;
    use pqgram_store::buffer::BufferPool;
    use pqgram_store::Pager;
    let dir = std::env::temp_dir().join(format!("pqgram-bench-blob-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("blobs.db");
    std::fs::remove_file(&path).ok();
    let pool = BufferPool::new(Pager::create(&path).unwrap(), 1024);
    let blobs = BlobStore::open(&pool, 1).unwrap();
    let payload = vec![0x5au8; 64 * 1024];
    let mut key = 0u64;
    let mut group = c.benchmark_group("blob_store_64KiB");
    group.throughput(criterion::Throughput::Bytes(payload.len() as u64));
    group.bench_function("put", |b| {
        b.iter(|| {
            key += 1;
            blobs.put(key % 64, black_box(&payload)).unwrap()
        })
    });
    group.bench_function("get", |b| b.iter(|| blobs.get(black_box(1)).unwrap()));
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(
    benches,
    bench_join,
    bench_diff,
    bench_stream_vs_dom,
    bench_blob_store
);
criterion_main!(benches);
