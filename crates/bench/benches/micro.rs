//! Criterion micro-benchmarks backing the paper's complexity claims
//! (Section 8.2: the delta and profile-update functions are near-constant
//! per edit operation; the overall update is `O(|L|(log|T| + log|L|))`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pqgram_core::delta::accumulate_delta;
use pqgram_core::maintain::update_index;
use pqgram_core::table::DeltaTables;
use pqgram_core::update::apply_update;
use pqgram_core::{build_index, pq_distance, PQParams};
use pqgram_store::{BTree, Pager};
use pqgram_tree::generate::{dblp, xmark};
use pqgram_tree::{record_script, EditOp, LabelTable, LogOp, ScriptConfig, Tree};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn tree_of(nodes: usize, labels: &mut LabelTable, seed: u64) -> Tree {
    let mut rng = StdRng::seed_from_u64(seed);
    xmark(&mut rng, labels, nodes)
}

/// Profile/index construction cost — the dominant cost of lookups without a
/// precomputed index (Figure 13, left).
fn bench_index_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_build");
    for nodes in [1_000usize, 10_000, 100_000] {
        let mut labels = LabelTable::new();
        let tree = tree_of(nodes, &mut labels, 1);
        group.throughput(criterion::Throughput::Elements(tree.node_count() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &tree, |b, tree| {
            b.iter(|| build_index(black_box(tree), &labels, PQParams::default()))
        });
    }
    group.finish();
}

/// The delta function δ(Tₙ, ē) per operation kind, on a 100k-node tree —
/// near-constant regardless of tree size (Section 8.2).
fn bench_delta_fn(c: &mut Criterion) {
    let mut labels = LabelTable::new();
    let mut tree = tree_of(100_000, &mut labels, 2);
    let alphabet: Vec<_> = labels.iter().map(|(s, _)| s).collect();
    let mut rng = StdRng::seed_from_u64(3);
    let (log, _) = record_script(&mut rng, &mut tree, &ScriptConfig::new(300, alphabet));
    let params = PQParams::default();

    let of_kind = |pat: fn(&EditOp) -> bool| -> Vec<LogOp> {
        log.ops().iter().filter(|e| pat(&e.op)).cloned().collect()
    };
    let cases = [
        ("rename", of_kind(|o| matches!(o, EditOp::Rename { .. }))),
        ("delete", of_kind(|o| matches!(o, EditOp::Delete { .. }))),
        ("insert", of_kind(|o| matches!(o, EditOp::Insert { .. }))),
    ];
    let mut group = c.benchmark_group("delta_fn_100k_tree");
    for (name, entries) in cases {
        if entries.is_empty() {
            continue;
        }
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut tables = DeltaTables::new();
                for entry in &entries {
                    accumulate_delta(&mut tables, black_box(&tree), entry, params).unwrap();
                }
                tables
            })
        });
    }
    group.finish();
}

/// The profile update function U per log entry (rewind step).
fn bench_update_fn(c: &mut Criterion) {
    let mut labels = LabelTable::new();
    let mut tree = tree_of(50_000, &mut labels, 4);
    let alphabet: Vec<_> = labels.iter().map(|(s, _)| s).collect();
    let mut rng = StdRng::seed_from_u64(5);
    let (log, _) = record_script(&mut rng, &mut tree, &ScriptConfig::new(200, alphabet));
    let params = PQParams::default();
    let mut seeded = DeltaTables::new();
    for entry in log.ops() {
        accumulate_delta(&mut seeded, &tree, entry, params).unwrap();
    }
    c.bench_function("update_fn_rewind_200_ops", |b| {
        b.iter(|| {
            let mut tables = seeded.clone();
            for entry in log.ops().iter().rev() {
                apply_update(&mut tables, entry.op, params).unwrap();
            }
            tables
        })
    });
}

/// End-to-end incremental update vs full rebuild (Figure 13, right, as a
/// microbenchmark).
fn bench_incremental_vs_rebuild(c: &mut Criterion) {
    let mut labels = LabelTable::new();
    let mut tree = tree_of(100_000, &mut labels, 6);
    let old = build_index(&tree, &labels, PQParams::default());
    let alphabet: Vec<_> = labels.iter().map(|(s, _)| s).collect();
    let mut rng = StdRng::seed_from_u64(7);
    let (log, _) = record_script(&mut rng, &mut tree, &ScriptConfig::new(100, alphabet));

    let mut group = c.benchmark_group("maintenance_100k_tree_100_edits");
    group.sample_size(20);
    group.bench_function("incremental_update", |b| {
        b.iter(|| update_index(black_box(&old), &tree, &labels, &log).unwrap())
    });
    group.bench_function("full_rebuild", |b| {
        b.iter(|| build_index(black_box(&tree), &labels, PQParams::default()))
    });
    group.finish();
}

/// pq-gram distance between two indexed documents.
fn bench_distance(c: &mut Criterion) {
    let mut labels = LabelTable::new();
    let mut rng = StdRng::seed_from_u64(8);
    let a = dblp(&mut rng, &mut labels, 50_000);
    let b = dblp(&mut rng, &mut labels, 50_000);
    let (ia, ib) = (
        build_index(&a, &labels, PQParams::default()),
        build_index(&b, &labels, PQParams::default()),
    );
    c.bench_function("pq_distance_50k_vs_50k", |bch| {
        bch.iter(|| pq_distance(black_box(&ia), black_box(&ib)))
    });
}

/// B+-tree point operations (the index store's inner loop).
fn bench_btree(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("pqgram-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bench.db");
    std::fs::remove_file(&path).ok();
    let pool = pqgram_store::buffer::BufferPool::new(Pager::create(&path).unwrap(), 2048);
    let tree = BTree::open(&pool, 0).unwrap();
    for g in 0..100_000u64 {
        tree.insert((g % 16, g.wrapping_mul(0x9e37_79b9)), 1)
            .unwrap();
    }
    let mut group = c.benchmark_group("btree_100k_entries");
    let mut i = 0u64;
    group.bench_function("get", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            tree.get(((i % 16), (i % 100_000).wrapping_mul(0x9e37_79b9)))
                .unwrap()
        })
    });
    group.bench_function("insert_overwrite", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            tree.insert(((i % 16), (i % 100_000).wrapping_mul(0x9e37_79b9)), 2)
                .unwrap()
        })
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

/// XML parsing throughput.
fn bench_xml(c: &mut Criterion) {
    let mut labels = LabelTable::new();
    let tree = tree_of(20_000, &mut labels, 9);
    let xml = pqgram_xml::write_document(&tree, &labels, &pqgram_xml::WriteOptions::default());
    let mut group = c.benchmark_group("xml_parse");
    group.throughput(criterion::Throughput::Bytes(xml.len() as u64));
    group.bench_function("20k_node_document", |b| {
        b.iter(|| {
            let mut lt = LabelTable::new();
            pqgram_xml::parse_document(black_box(&xml), &mut lt).unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_index_build,
    bench_delta_fn,
    bench_update_fn,
    bench_incremental_vs_rebuild,
    bench_distance,
    bench_btree,
    bench_xml
);
criterion_main!(benches);
