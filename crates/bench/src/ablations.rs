//! Ablation studies for the design choices called out in `DESIGN.md`:
//! the `p, q` parameters, the structure-sharing `(P, Q)` delta tables, the
//! buffer-pool capacity, and the log preprocessing of Section 10.

use crate::datasets::{dblp_tree, xmark_tree};
use crate::report::Table;
use pqgram_core::delta::accumulate_delta;
use pqgram_core::table::DeltaTables;
use pqgram_core::{build_index, pq_distance, PQParams, TreeId};
use pqgram_store::buffer::BufferPool;
use pqgram_store::{IndexStore, Pager};
use pqgram_ted::tree_edit_distance;
use pqgram_tree::{optimize_log, record_script, LabelTable, ScriptConfig, ScriptMix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// **Ablation: the p,q parameters.** Index size, build time, incremental
/// update time and ranking quality (Kendall τ against the exact tree edit
/// distance) for a sweep of pq-gram shapes.
pub fn ablation_pq(nodes: usize) -> Table {
    let mut table = Table::new(
        "Ablation: p,q sweep",
        &[
            "p,q",
            "index_KB",
            "distinct",
            "build_ms",
            "update50_ms",
            "kendall_tau_vs_ted",
        ],
    );
    // Quality pool: variants of one base tree at growing edit distances.
    let mut lt_quality = LabelTable::new();
    let mut rng = StdRng::seed_from_u64(77);
    let base = pqgram_tree::generate::random_tree(
        &mut rng,
        &mut lt_quality,
        &pqgram_tree::generate::RandomTreeConfig::new(70, 5),
    );
    let alphabet_quality: Vec<_> = lt_quality.iter().map(|(s, _)| s).collect();
    let variants: Vec<(pqgram_tree::Tree, f64)> = (0..20usize)
        .map(|edits| {
            let mut t = base.clone();
            let mut cfg = ScriptConfig::new(edits, alphabet_quality.clone());
            cfg.max_adopted = 0;
            record_script(&mut rng, &mut t, &cfg);
            let ted = tree_edit_distance(&base, &t) as f64;
            (t, ted)
        })
        .collect();

    for (p, q) in [(1usize, 2usize), (2, 2), (2, 3), (3, 3), (4, 4)] {
        let params = PQParams::new(p, q);
        let mut labels = LabelTable::new();
        let mut tree = xmark_tree(900, &mut labels, nodes);

        let t = Instant::now();
        let index = build_index(&tree, &labels, params);
        let build = t.elapsed();

        let old = index.clone();
        let alphabet: Vec<_> = labels.iter().map(|(s, _)| s).collect();
        let mut rng2 = StdRng::seed_from_u64(9);
        let (log, _) = record_script(&mut rng2, &mut tree, &ScriptConfig::new(50, alphabet));
        let t = Instant::now();
        pqgram_core::maintain::update_index(&old, &tree, &labels, &log).expect("consistent");
        let update = t.elapsed();

        // Ranking quality.
        let base_idx = build_index(&base, &lt_quality, params);
        let pairs: Vec<(f64, f64)> = variants
            .iter()
            .map(|(t, ted)| {
                (
                    pq_distance(&base_idx, &build_index(t, &lt_quality, params))
                        .expect("same params"),
                    *ted,
                )
            })
            .collect();
        let (mut conc, mut disc) = (0i64, 0i64);
        for i in 0..pairs.len() {
            for j in i + 1..pairs.len() {
                let d = (pairs[i].0 - pairs[j].0) * (pairs[i].1 - pairs[j].1);
                if d > 0.0 {
                    conc += 1;
                } else if d < 0.0 {
                    disc += 1;
                }
            }
        }
        let tau = (conc - disc) as f64 / (conc + disc).max(1) as f64;

        table.row(vec![
            format!("{p},{q}"),
            format!("{:.1}", index.encoded_size() as f64 / 1024.0),
            index.distinct().to_string(),
            format!("{:.3}", build.as_secs_f64() * 1e3),
            format!("{:.3}", update.as_secs_f64() * 1e3),
            format!("{tau:.3}"),
        ]);
    }
    table
}

/// **Ablation: structure sharing in the (P,Q) tables** (Section 8.1). How
/// many pq-grams the delta tables hold vs. how many p-part / q-row entries
/// they store — the saving over materializing each gram individually.
pub fn ablation_sharing(nodes: usize) -> Table {
    let params = PQParams::default();
    let mut table = Table::new(
        "Ablation: (P,Q) table structure sharing (3,3-grams)",
        &[
            "edits",
            "grams",
            "p_parts",
            "q_rows",
            "tuple_entries_naive",
            "entries_shared",
            "saving",
        ],
    );
    let mut labels = LabelTable::new();
    let base = dblp_tree(901, &mut labels, nodes);
    let alphabet: Vec<_> = labels.iter().map(|(s, _)| s).collect();
    for edits in [10usize, 100, 1000] {
        let mut rng = StdRng::seed_from_u64(edits as u64);
        let mut tree = base.clone();
        let (log, _) = record_script(
            &mut rng,
            &mut tree,
            &ScriptConfig::new(edits, alphabet.clone()),
        );
        let mut tables = DeltaTables::new();
        for entry in log.ops() {
            accumulate_delta(&mut tables, &tree, entry, params).expect("consistent");
        }
        let grams = tables.q_len();
        let p_parts = tables.p_len();
        // Naive: every gram stored as its own (p+q)-label tuple.
        let naive = grams * params.len();
        // Shared: one p-part (p labels) per anchor + one q-row (q labels)
        // per gram.
        let shared = p_parts * params.p() + grams * params.q();
        table.row(vec![
            edits.to_string(),
            grams.to_string(),
            p_parts.to_string(),
            grams.to_string(),
            naive.to_string(),
            shared.to_string(),
            format!(
                "{:.0}%",
                100.0 * (1.0 - shared as f64 / naive.max(1) as f64)
            ),
        ]);
    }
    table
}

/// **Ablation: buffer pool capacity.** Time to bulk-load and range-scan a
/// persistent index as the pool shrinks below the working set.
pub fn ablation_pool(nodes: usize) -> Table {
    let params = PQParams::default();
    let mut labels = LabelTable::new();
    let tree = dblp_tree(902, &mut labels, nodes);
    let index = build_index(&tree, &labels, params);
    let mut table = Table::new(
        "Ablation: buffer pool capacity (bulk load + full scan)",
        &["pool_pages", "pool_MB", "load_ms", "scan_ms"],
    );
    let dir = std::env::temp_dir().join(format!("pqgram-ablation-{}", std::process::id()));
    std::fs::create_dir_all(&dir).ok();
    for capacity in [16usize, 64, 256, 1024, 4096] {
        let path = dir.join(format!("pool-{capacity}.db"));
        std::fs::remove_file(&path).ok();
        let pool = BufferPool::new(Pager::create(&path).expect("create"), capacity);
        let btree = pqgram_store::BTree::open(&pool, 0).expect("open");
        let t = Instant::now();
        for (gram, count) in index.iter() {
            btree.insert((1, gram), count).expect("insert");
        }
        pool.flush().expect("flush");
        let load = t.elapsed();
        let t = Instant::now();
        let mut rows = 0u64;
        btree
            .for_each_range((0, 0), (u64::MAX, u64::MAX), |_, _| {
                rows += 1;
                true
            })
            .expect("scan");
        let scan = t.elapsed();
        assert_eq!(rows as usize, index.distinct());
        table.row(vec![
            capacity.to_string(),
            format!("{:.1}", capacity as f64 * 4096.0 / (1024.0 * 1024.0)),
            format!("{:.3}", load.as_secs_f64() * 1e3),
            format!("{:.3}", scan.as_secs_f64() * 1e3),
        ]);
        std::fs::remove_file(&path).ok();
    }
    std::fs::remove_dir_all(&dir).ok();
    table
}

/// **Ablation: log preprocessing** (Section 10 future work). Update time
/// with the raw log vs. the optimized log on churn-heavy edit sequences.
pub fn ablation_logopt(nodes: usize) -> Table {
    let params = PQParams::default();
    let mut table = Table::new(
        "Ablation: log preprocessing (churn-heavy scripts)",
        &[
            "edits_raw",
            "edits_optimized",
            "raw_update_ms",
            "optimized_update_ms",
        ],
    );
    let mut labels = LabelTable::new();
    let base = xmark_tree(903, &mut labels, nodes);
    let alphabet: Vec<_> = labels.iter().map(|(s, _)| s).collect();
    for edits in [100usize, 500, 2000] {
        let mut rng = StdRng::seed_from_u64(edits as u64);
        let mut tree = base.clone();
        let old = build_index(&tree, &labels, params);
        // Realistic churn: half the edits are random, half are transient —
        // insert-then-delete of scratch nodes and rename flip-flops of hot
        // nodes (save/undo cycles), which the optimizer can eliminate.
        let mut cfg = ScriptConfig::new(edits / 2, alphabet.clone());
        cfg.mix = ScriptMix {
            insert: 2,
            delete: 2,
            rename: 3,
        };
        let (mut log, _) = record_script(&mut rng, &mut tree, &cfg);
        let scratch_label = alphabet[0];
        use rand::seq::IndexedRandom;
        let live: Vec<_> = tree.preorder(tree.root()).collect();
        for i in 0..edits / 4 {
            // Transient node: INS then immediate DEL.
            let &parent = live.choose(&mut rng).expect("non-empty");
            let node = tree.next_node_id();
            let k = rng.random_range(1..=tree.fanout(parent) + 1);
            log.push(
                tree.apply_logged(pqgram_tree::EditOp::Insert {
                    node,
                    label: scratch_label,
                    parent,
                    k,
                    m: k - 1,
                })
                .expect("valid"),
            );
            log.push(
                tree.apply_logged(pqgram_tree::EditOp::Delete { node })
                    .expect("valid"),
            );
            // Rename flip-flop on a hot node.
            let &hot = live.choose(&mut rng).expect("non-empty");
            if hot != tree.root() {
                let original = tree.label(hot);
                let other = alphabet[1 + i % (alphabet.len() - 1)];
                if other != original {
                    log.push(
                        tree.apply_logged(pqgram_tree::EditOp::Rename {
                            node: hot,
                            label: other,
                        })
                        .expect("valid"),
                    );
                    log.push(
                        tree.apply_logged(pqgram_tree::EditOp::Rename {
                            node: hot,
                            label: original,
                        })
                        .expect("valid"),
                    );
                }
            }
        }
        let (optimized, _) = optimize_log(&tree, &log);

        let t = Instant::now();
        let a = pqgram_core::maintain::update_index(&old, &tree, &labels, &log).expect("raw");
        let raw_ms = t.elapsed();
        let t = Instant::now();
        let b = pqgram_core::maintain::update_index(&old, &tree, &labels, &optimized)
            .expect("optimized");
        let opt_ms = t.elapsed();
        assert_eq!(a.index, b.index, "optimization must not change the result");
        table.row(vec![
            log.len().to_string(),
            optimized.len().to_string(),
            format!("{:.3}", raw_ms.as_secs_f64() * 1e3),
            format!("{:.3}", opt_ms.as_secs_f64() * 1e3),
        ]);
    }
    table
}

/// Smoke-level store ablation helper (used by tests): verify a round trip
/// through `IndexStore` at a tiny scale.
pub fn sanity_store_roundtrip() -> bool {
    let params = PQParams::default();
    let mut labels = LabelTable::new();
    let tree = dblp_tree(904, &mut labels, 500);
    let index = build_index(&tree, &labels, params);
    let dir = std::env::temp_dir().join(format!("pqgram-ablation-sanity-{}", std::process::id()));
    std::fs::create_dir_all(&dir).ok();
    let path = dir.join("sanity.pqg");
    std::fs::remove_file(&path).ok();
    let mut store = IndexStore::create(&path, params).expect("create");
    store.put_tree(TreeId(0), &index).expect("put");
    let ok = store.tree_index(TreeId(0)).expect("get").expect("present") == index;
    std::fs::remove_dir_all(&dir).ok();
    ok
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_smoke() {
        assert!(ablation_pq(800).render().contains("3,3"));
        assert!(ablation_sharing(2_000).render().contains("saving"));
        assert!(ablation_pool(2_000).render().contains("pool_pages"));
        assert!(ablation_logopt(1_500).render().contains("edits_raw"));
        assert!(sanity_store_roundtrip());
    }
}
