//! `concurrent-lookup` experiment: query throughput scaling with reader
//! threads, plus the parallel-vs-serial ingest pipeline.
//!
//! ```sh
//! cargo run --release -p pqgram-bench --bin concurrent_lookup            # full
//! cargo run --release -p pqgram-bench --bin concurrent_lookup -- --smoke # CI
//! ```
//!
//! Builds a skewed 1000-document XMark forest, ingests it through the
//! batched pipeline ([`pqgram_core::par::map`] profiling fan-out feeding
//! the [`IndexStore::put_trees`] single writer) at 1 and 4 threads, then
//! hands the store to an [`IndexStoreReader`] and drives a fixed lookup
//! workload from 1, 2, 4 and 8 concurrent reader threads. Emits
//! `bench_results/concurrent_lookup.csv` and `BENCH_concurrent_lookup.json`
//! (repo root) with aggregate QPS and p50/p99 per-lookup latency per thread
//! count. Every worker asserts its hits equal the serial answer, at every
//! thread count.
//!
//! A second ingest phase drives the segmented engine
//! ([`SegmentedIndexStore::put_trees_parallel`]): the same pre-profiled
//! batch is written serially (one worker, one segment) and with 4 workers
//! (four segments built concurrently, registered in one manifest commit).
//!
//! Scaling acceptance criteria — ≥ 3× aggregate QPS at 4 reader threads,
//! ≥ 2× ingest speedup at 4 profiling threads, and ≥ 1.8× segmented-ingest
//! speedup at 4 workers — are asserted when the host exposes at least 4
//! CPUs; on smaller hosts (1-core CI containers) the workload still runs
//! and the correctness assertions still hold, but the scaling bars are
//! reported without being enforced (recorded as `"scaling_asserted": false`
//! in the JSON). The host core count is recorded in the JSON, and a
//! baseline recorded with `"scaling_asserted": true` is **not** silently
//! downgraded: rerunning on a smaller host refuses to overwrite it unless
//! `--force` is passed.

use pqgram_bench::datasets::xmark_tree;
use pqgram_bench::experiments::query_variant;
use pqgram_bench::report::Table;
use pqgram_core::{build_index, PQParams, TreeId, TreeIndex};
use pqgram_store::{IndexStore, IndexStoreReader, SegmentedIndexStore};
use pqgram_tree::{LabelTable, Tree};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

const TAU: f64 = 0.8;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const INGEST_THREADS: usize = 4;
const QUERIES: usize = 8;
const BATCH: usize = 32;

fn ok<T, E: std::fmt::Display>(r: Result<T, E>, what: &str) -> T {
    match r {
        Ok(v) => v,
        Err(e) => panic!("{what}: {e}"),
    }
}

struct Row {
    threads: usize,
    ops: usize,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    speedup: f64,
}

/// The skewed forest of `store_lookup`: ~4% large documents carry most of
/// the nodes; small documents come first so queries derive from them.
fn skewed_forest(
    count: usize,
    small_pool: usize,
    big_pool: usize,
    labels: &mut LabelTable,
) -> Vec<Tree> {
    let big = (count / 25).max(1);
    let small = count - big;
    let per_small = (small_pool / small).max(16);
    let per_big = big_pool / big;
    (0..count)
        .map(|i| {
            let nodes = if i < small { per_small } else { per_big };
            xmark_tree(7_000 + i as u64, labels, nodes)
        })
        .collect()
}

fn remove_store(path: &Path) {
    std::fs::remove_file(path).ok();
    let mut journal = path.as_os_str().to_owned();
    journal.push("-journal");
    std::fs::remove_file(PathBuf::from(journal)).ok();
}

/// One full ingest: fan the pure profiling step out over `threads`, then
/// stream sorted batches into the single writer. Returns the wall time.
fn ingest(
    path: &Path,
    docs: &[(TreeId, Tree)],
    labels: &LabelTable,
    params: PQParams,
    threads: usize,
) -> Duration {
    remove_store(path);
    let t = Instant::now();
    let batch: Vec<(TreeId, TreeIndex)> = pqgram_core::par::map(docs, threads, |(id, tree)| {
        (*id, build_index(tree, labels, params))
    });
    let mut store = ok(IndexStore::create(path, params), "create store");
    for chunk in batch.chunks(BATCH) {
        ok(store.put_trees(chunk), "put_trees");
    }
    ok(store.flush(), "flush");
    t.elapsed()
}

/// One segmented ingest: write the pre-profiled batch through
/// [`SegmentedIndexStore::put_trees_parallel`] with `workers` concurrent
/// segment builders (one manifest commit registers them all). Profiling is
/// excluded — this measures the segment-build write path itself.
fn seg_ingest(
    dir: &Path,
    batch: &[(TreeId, TreeIndex)],
    params: PQParams,
    workers: usize,
) -> Duration {
    std::fs::remove_dir_all(dir).ok();
    ok(std::fs::create_dir_all(dir), "segmented work dir");
    let base = dir.join("forest.seg");
    let t = Instant::now();
    let mut store = ok(
        SegmentedIndexStore::create(&base, params),
        "create segmented store",
    );
    ok(
        store.put_trees_parallel(batch, workers),
        "put_trees_parallel",
    );
    let elapsed = t.elapsed();
    assert_eq!(
        ok(store.tree_ids(), "segmented tree_ids").len(),
        batch.len(),
        "segmented ingest lost trees"
    );
    elapsed
}

/// Median wall time of `reps` segmented ingests at the given worker count.
fn seg_ingest_median(
    dir: &Path,
    batch: &[(TreeId, TreeIndex)],
    params: PQParams,
    workers: usize,
    reps: usize,
) -> Duration {
    let mut times: Vec<Duration> = (0..reps)
        .map(|_| seg_ingest(dir, batch, params, workers))
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Median wall time of `reps` ingests at the given thread count.
fn ingest_median(
    path: &Path,
    docs: &[(TreeId, Tree)],
    labels: &LabelTable,
    params: PQParams,
    threads: usize,
    reps: usize,
) -> Duration {
    let mut times: Vec<Duration> = (0..reps)
        .map(|_| ingest(path, docs, labels, params, threads))
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Drives `total_ops` lookups split evenly across `threads` reader threads,
/// asserting every answer against the serial expectation. Returns
/// (aggregate QPS, p50 ms, p99 ms).
fn run_threads(
    reader: &IndexStoreReader,
    queries: &[TreeIndex],
    expected: &[Vec<pqgram_core::LookupHit>],
    total_ops: usize,
    threads: usize,
) -> (f64, f64, f64) {
    let per = total_ops / threads;
    let wall = Instant::now();
    let mut lats: Vec<Duration> = Vec::with_capacity(total_ops);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let reader = reader.clone();
                scope.spawn(move || {
                    let mut local = Vec::with_capacity(per);
                    for k in 0..per {
                        let qi = (w * per + k) % queries.len();
                        let t = Instant::now();
                        let (hits, stats) = ok(
                            reader.lookup_with_stats_threads(&queries[qi], TAU, 1),
                            "concurrent lookup",
                        );
                        local.push(t.elapsed());
                        assert!(stats.used_inverted, "τ = {TAU} must use the inverted plan");
                        assert_eq!(hits, expected[qi], "worker {w} op {k} diverged from serial");
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(local) => lats.extend(local),
                Err(_) => panic!("reader worker panicked"),
            }
        }
    });
    let wall = wall.elapsed();
    lats.sort_unstable();
    let p50 = lats[lats.len() / 2];
    let p99 = lats[(lats.len() * 99 / 100).min(lats.len() - 1)];
    (
        total_ops as f64 / wall.as_secs_f64().max(1e-9),
        p50.as_secs_f64() * 1e3,
        p99.as_secs_f64() * 1e3,
    )
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    path: &str,
    mode: &str,
    cores: usize,
    trees: usize,
    scaling_asserted: bool,
    serial_ms: f64,
    parallel_ms: f64,
    seg_serial_ms: f64,
    seg_parallel_ms: f64,
    rows: &[Row],
) {
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"experiment\": \"concurrent_lookup\",");
    let _ = writeln!(json, "  \"mode\": \"{mode}\",");
    let _ = writeln!(json, "  \"tau\": {TAU},");
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(json, "  \"trees\": {trees},");
    let _ = writeln!(json, "  \"scaling_asserted\": {scaling_asserted},");
    let _ = writeln!(
        json,
        "  \"ingest\": {{\"serial_ms\": {serial_ms:.3}, \"parallel_ms\": {parallel_ms:.3}, \
         \"threads\": {INGEST_THREADS}, \"speedup\": {:.2}}},",
        serial_ms / parallel_ms.max(1e-9),
    );
    let _ = writeln!(
        json,
        "  \"segmented_ingest\": {{\"serial_ms\": {seg_serial_ms:.3}, \"parallel_ms\": \
         {seg_parallel_ms:.3}, \"workers\": {INGEST_THREADS}, \"speedup\": {:.2}}},",
        seg_serial_ms / seg_parallel_ms.max(1e-9),
    );
    let _ = writeln!(json, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"threads\": {}, \"ops\": {}, \"qps\": {:.1}, \"p50_ms\": {:.3}, \
             \"p99_ms\": {:.3}, \"speedup\": {:.2}}}{comma}",
            r.threads, r.ops, r.qps, r.p50_ms, r.p99_ms, r.speedup,
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    ok(std::fs::write(path, json), "write json");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (count, small_pool, big_pool, total_ops, ingest_reps) = if smoke {
        (200, 8_000, 48_000, 48, 2)
    } else {
        (1_000, 40_000, 240_000, 240, 3)
    };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let work_dir =
        std::env::temp_dir().join(format!("pqgram-concurrent-lookup-{}", std::process::id()));
    ok(std::fs::create_dir_all(&work_dir), "work dir");
    let store_path = work_dir.join("forest.pqg");

    println!(
        "concurrent-lookup: reader scaling over a {count}-document forest \
         ({} scale, τ = {TAU}, {cores} core(s))",
        if smoke { "smoke" } else { "full" }
    );

    let params = PQParams::default();
    let mut labels = LabelTable::new();
    let trees = skewed_forest(count, small_pool, big_pool, &mut labels);
    let docs: Vec<(TreeId, Tree)> = trees
        .iter()
        .enumerate()
        .map(|(i, t)| (TreeId(i as u64), t.clone()))
        .collect();

    // Ingest: serial baseline vs the 4-thread profiling fan-out. Both feed
    // the same single writer; `crates/store/tests/parallel.rs` proves the
    // resulting files are byte-identical.
    let serial = ingest_median(&store_path, &docs, &labels, params, 1, ingest_reps);
    let parallel = ingest_median(
        &store_path,
        &docs,
        &labels,
        params,
        INGEST_THREADS,
        ingest_reps,
    );
    let serial_ms = serial.as_secs_f64() * 1e3;
    let parallel_ms = parallel.as_secs_f64() * 1e3;
    let ingest_speedup = serial_ms / parallel_ms.max(1e-9);
    println!(
        "  ingest: serial {serial_ms:.1} ms, {INGEST_THREADS}-thread {parallel_ms:.1} ms \
         ({ingest_speedup:.2}x)"
    );

    // Segmented ingest: the same batch, pre-profiled, written through the
    // memtable → segment path with 1 and 4 concurrent segment builders.
    let batch: Vec<(TreeId, TreeIndex)> = docs
        .iter()
        .map(|(id, tree)| (*id, build_index(tree, &labels, params)))
        .collect();
    let seg_dir = work_dir.join("segmented");
    let seg_serial = seg_ingest_median(&seg_dir, &batch, params, 1, ingest_reps);
    let seg_parallel = seg_ingest_median(&seg_dir, &batch, params, INGEST_THREADS, ingest_reps);
    drop(batch);
    let seg_serial_ms = seg_serial.as_secs_f64() * 1e3;
    let seg_parallel_ms = seg_parallel.as_secs_f64() * 1e3;
    let seg_speedup = seg_serial_ms / seg_parallel_ms.max(1e-9);
    println!(
        "  segmented ingest: serial {seg_serial_ms:.1} ms, {INGEST_THREADS}-worker \
         {seg_parallel_ms:.1} ms ({seg_speedup:.2}x)"
    );

    // Queries derive from small members; expected answers come from the
    // serial plan before any reader thread starts.
    let small = count - (count / 25).max(1);
    let queries: Vec<TreeIndex> = (0..QUERIES)
        .map(|k| {
            let variant = query_variant(&trees[(k * 13) % small], &mut labels, 11);
            build_index(&variant, &labels, params)
        })
        .collect();
    let store = ok(IndexStore::open(&store_path), "reopen store");
    let expected: Vec<Vec<pqgram_core::LookupHit>> = queries
        .iter()
        .map(|q| ok(store.lookup(q, TAU), "serial lookup"))
        .collect();
    assert!(
        expected.iter().any(|hits| !hits.is_empty()),
        "at least one query must match its source document"
    );
    let reader = store.into_reader();

    // Warm the buffer pool once so every thread count sees the same cache.
    for (q, want) in queries.iter().zip(&expected) {
        let (hits, _) = ok(reader.lookup_with_stats_threads(q, TAU, 1), "warmup");
        assert_eq!(&hits, want);
    }

    let mut rows: Vec<Row> = Vec::new();
    for &threads in &THREAD_COUNTS {
        let (qps, p50_ms, p99_ms) = run_threads(&reader, &queries, &expected, total_ops, threads);
        let speedup = rows.first().map_or(1.0, |base| qps / base.qps.max(1e-9));
        println!(
            "  {threads} thread(s): {qps:>8.1} qps, p50 {p50_ms:>7.3} ms, p99 {p99_ms:>7.3} ms \
             ({speedup:.2}x)"
        );
        rows.push(Row {
            threads,
            ops: total_ops,
            qps,
            p50_ms,
            p99_ms,
            speedup,
        });
    }
    ok(
        std::fs::remove_dir_all(&work_dir).map_err(|e| e.to_string()),
        "cleanup",
    );

    // Scaling acceptance criteria need real CPUs to be meaningful.
    let scaling_asserted = cores >= 4;
    if scaling_asserted {
        let four = rows
            .iter()
            .find(|r| r.threads == 4)
            .map_or(0.0, |r| r.speedup);
        assert!(
            four >= 3.0,
            "aggregate QPS at 4 reader threads only {four:.2}x the single-thread rate"
        );
        assert!(
            ingest_speedup >= 2.0,
            "{INGEST_THREADS}-thread ingest only {ingest_speedup:.2}x over serial"
        );
        assert!(
            seg_speedup >= 1.8,
            "{INGEST_THREADS}-worker segmented ingest only {seg_speedup:.2}x over serial"
        );
    } else {
        println!(
            "  (scaling assertions skipped: {cores} core(s) available, need >= 4; \
             correctness was still asserted on every lookup)"
        );
    }

    let mut table = Table::new(
        "concurrent-lookup: aggregate QPS and latency by reader threads",
        &["threads", "ops", "qps", "p50_ms", "p99_ms", "speedup"],
    );
    for r in &rows {
        table.row(vec![
            r.threads.to_string(),
            r.ops.to_string(),
            format!("{:.1}", r.qps),
            format!("{:.3}", r.p50_ms),
            format!("{:.3}", r.p99_ms),
            format!("{:.2}", r.speedup),
        ]);
    }
    print!("{}", table.render());
    match table.write_csv(&PathBuf::from("bench_results"), "concurrent_lookup") {
        Ok(path) => println!("   -> {}", path.display()),
        Err(e) => eprintln!("   (csv not written: {e})"),
    }
    // A baseline recorded on a real multi-core host (scaling_asserted:
    // true) must not be silently replaced by an unasserted run from a
    // 1-core container — that would erase the only enforced numbers.
    let json_path = "BENCH_concurrent_lookup.json";
    let force = std::env::args().any(|a| a == "--force");
    let baseline_asserted = std::fs::read_to_string(json_path)
        .map(|s| s.contains("\"scaling_asserted\": true"))
        .unwrap_or(false);
    if baseline_asserted && !scaling_asserted && !force {
        eprintln!(
            "refusing to overwrite {json_path}: the existing baseline was recorded with \
             scaling assertions enforced, but this host has only {cores} core(s) \
             (need >= 4). Pass --force to downgrade it anyway."
        );
        std::process::exit(1);
    }
    write_json(
        json_path,
        if smoke { "smoke" } else { "full" },
        cores,
        count,
        scaling_asserted,
        serial_ms,
        parallel_ms,
        seg_serial_ms,
        seg_parallel_ms,
        &rows,
    );
    println!("   -> {json_path}");
}
