//! `store-lookup` experiment: exhaustive forward-relation scan vs. the
//! inverted candidate-merge plan of the persistent store, the planner's
//! pruning stages vs. the unpruned merge (the pre-planner plan, kept as
//! an ablation), and the posting-block encoding vs. the row-per-posting
//! (format-v2) ablation.
//!
//! ```sh
//! cargo run --release -p pqgram-bench --bin store_lookup            # full
//! cargo run --release -p pqgram-bench --bin store_lookup -- --smoke # CI
//! cargo run --release -p pqgram-bench --bin store_lookup -- --smoke --no-compress
//! ```
//!
//! Builds forests of {16, 125, 1000, 10000} XMark documents (plus a
//! 100000-document row in full mode), stores them in an [`IndexStore`]
//! under both inverted-relation encodings, and looks up a locally edited
//! variant of one member with every plan. Document sizes are skewed, as
//! in real collections: ~4% of the documents are large and carry most of
//! the nodes, the rest are small. Content vocabularies are diversified
//! the way real corpora are: the query document shares its labels with a
//! small cluster of peers, every other small document draws from a
//! cluster-local vocabulary, and all documents overlap on a handful of
//! shared scaffold grams (see `tagged_xmark_tree`). The scan plan pays
//! for every row of every document; the unpruned merge pays for the
//! scaffold posting lists and verifies the whole collection; the planned
//! merge budget-skips the scaffold grams and verifies only the query's
//! cluster. Emits `bench_results/store_lookup.csv` and
//! `BENCH_store_lookup.json` (repo root) and asserts the acceptance
//! criteria: all plans and both encodings return identical hits at every
//! cardinality; `τ > 1` thresholds run the same candidate-merge plan
//! bit-identically to the exhaustive reference; at ≥1000 documents the
//! planned merge reads ≥10× fewer rows than the scan, reads ≥5× fewer
//! rows and verifies ≥5× fewer candidates than the unpruned merge, and
//! wins on wall clock, and the posting-block encoding keeps the inverted
//! relation ≥4× smaller on disk than row-per-posting without losing
//! probe speed.
//!
//! With `--no-compress` the probed store itself is built row-per-posting
//! (the ablation: format-v2 behaviour end to end); results go to
//! `*_nocompress` outputs and the compression criteria are skipped.

use pqgram_bench::datasets::tagged_xmark_tree;
use pqgram_bench::experiments::query_variant;
use pqgram_bench::report::Table;
use pqgram_core::{build_index, ForestIndex, PQParams, TreeId};
use pqgram_store::{IndexStore, InvertedEncoding, LookupPlan, RealVfs};
use pqgram_tree::{LabelTable, Tree};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const TAU: f64 = 0.8;
/// Thresholds above 1: the planner must run the same candidate-merge
/// plan (zero-overlap trees come from the totals relation, there is no
/// exhaustive fallback) and agree with the reference scan bit for bit.
const WIDE_TAUS: [f64; 2] = [1.2, 2.0];
const SMOKE_COUNTS: [usize; 4] = [16, 125, 1_000, 10_000];
const FULL_COUNTS: [usize; 5] = [16, 125, 1_000, 10_000, 100_000];
/// Documents sharing the query's vocabulary (the expected hit cluster).
const QUERY_CLUSTER: usize = 8;
/// Vocabulary-cluster size for every other small document.
const CLUSTER: usize = 100;

struct Row {
    trees: usize,
    nodes_total: usize,
    hits: usize,
    scan_rows: u64,
    inv_rows: u64,
    row_ratio: f64,
    scan_ms: f64,
    inv_ms: f64,
    speedup: f64,
    /// Inverted relation on disk, posting-block encoding (probed store
    /// when compressing; the reference build under `--no-compress`).
    inv_bytes: u64,
    /// Inverted relation on disk, row-per-posting encoding.
    raw_bytes: u64,
    /// `raw_bytes / inv_bytes`.
    compression: f64,
    /// Median candidate-merge wall time on the row-per-posting store.
    raw_inv_ms: f64,
    blocks_decoded: u64,
    /// Candidates whose distance the planned merge computed.
    verified: usize,
    /// Rows read / candidates verified by the unpruned merge (the plan
    /// exactly as it ran before the lookup planner existed).
    unpruned_rows: u64,
    unpruned_verified: usize,
    /// `unpruned_rows / inv_rows` and `unpruned_verified / verified`.
    prune_row_ratio: f64,
    prune_verify_ratio: f64,
    /// Planned-merge pruning stats: posting rows dropped by the size
    /// window, query grams skipped on the overlap budget, query grams the
    /// gram filter proved absent.
    rows_pruned_window: u64,
    grams_skipped_budget: usize,
    grams_skipped_filter: usize,
}

/// Median-of-`reps` wall time for one lookup closure.
fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (R, Duration) {
    let mut result = None;
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        result = Some(f());
        times.push(t.elapsed());
    }
    times.sort_unstable();
    (result.unwrap(), times[times.len() / 2])
}

/// The vocabulary tag of document `i`: the first [`QUERY_CLUSTER`]
/// documents share the query's tag, every later document belongs to a
/// [`CLUSTER`]-sized cluster with its own tag. Large documents get the
/// shared tag `big`: they are the collection's byte mass, and a common
/// vocabulary among them keeps the posting lists that dominate the
/// inverted relation long (the compression columns measure those).
fn doc_tag(i: usize, small: usize) -> String {
    if i >= small {
        "big".to_owned()
    } else if i < QUERY_CLUSTER {
        "q".to_owned()
    } else {
        format!("g{}", (i - QUERY_CLUSTER) / CLUSTER)
    }
}

/// The skewed forest: `count` documents, ~4% of them large (splitting
/// `big_pool` nodes between them), the rest small (splitting `small_pool`).
/// Small documents come first so `trees[0]` — the query's source — is
/// small and shares the `q` vocabulary tag with its cluster.
fn skewed_forest(
    count: usize,
    small_pool: usize,
    big_pool: usize,
    labels: &mut LabelTable,
) -> Vec<Tree> {
    let big = (count / 25).max(1);
    let small = count - big;
    // ≥ 56 nodes keeps the query's gram bag large enough that the overlap
    // budget (≈ bag/9 at τ = 0.8) covers every scaffold gram — about a
    // dozen once empty-hub pad windows and query-edit noise are counted.
    // One probed scaffold gram would surface the whole collection as
    // candidates, so the margin matters more than the exact pool split.
    let per_small = (small_pool / small).max(56);
    let per_big = big_pool / big;
    (0..count)
        .map(|i| {
            let nodes = if i < small { per_small } else { per_big };
            tagged_xmark_tree(2_000 + i as u64, labels, nodes, &doc_tag(i, small))
        })
        .collect()
}

fn build_store(
    path: &PathBuf,
    params: PQParams,
    forest: &ForestIndex,
    encoding: InvertedEncoding,
) -> IndexStore {
    std::fs::remove_file(path).ok();
    IndexStore::bulk_create_with_encoding(path, params, forest.iter(), Arc::new(RealVfs), encoding)
        .expect("bulk create")
}

fn run_count(
    count: usize,
    small_pool: usize,
    big_pool: usize,
    reps: usize,
    work_dir: &PathBuf,
    compress: bool,
) -> Row {
    let params = PQParams::default();
    let mut labels = LabelTable::new();
    let trees = skewed_forest(count, small_pool, big_pool, &mut labels);
    let nodes_total: usize = trees.iter().map(Tree::node_count).sum();
    let query_tree = query_variant(&trees[0], &mut labels, 11);
    let query = build_index(&query_tree, &labels, params);

    let mut forest = ForestIndex::new();
    for (i, t) in trees.iter().enumerate() {
        forest.insert(TreeId(i as u64), build_index(t, &labels, params));
    }
    // The probed store, plus a row-per-posting twin for the encoding
    // comparison columns (under `--no-compress` the probed store *is*
    // row-per-posting and serves both roles).
    let store_path = work_dir.join(format!("store-lookup-{count}.pqg"));
    let raw_path = work_dir.join(format!("store-lookup-{count}-raw.pqg"));
    let encoding = if compress {
        InvertedEncoding::PostingBlocks
    } else {
        InvertedEncoding::RowPerPosting
    };
    let store = build_store(&store_path, params, &forest, encoding);
    let raw = build_store(&raw_path, params, &forest, InvertedEncoding::RowPerPosting);

    let inv_bytes = store.relation_bytes().expect("bytes").inverted_total();
    let raw_bytes = raw.relation_bytes().expect("bytes").inverted_total();

    let ((scan_hits, scan_stats), scan_t) = best_of(reps, || {
        store
            .lookup_exhaustive_with_stats(&query, TAU)
            .expect("scan")
    });
    let ((inv_hits, inv_stats), inv_t) = best_of(reps, || {
        store.lookup_with_stats(&query, TAU).expect("inverted")
    });
    let ((unp_hits, unp_stats), _) = best_of(reps, || {
        store
            .lookup_unpruned_with_stats(&query, TAU, 1)
            .expect("unpruned")
    });
    let ((raw_hits, raw_stats), raw_t) =
        best_of(reps, || raw.lookup_with_stats(&query, TAU).expect("raw"));

    // τ > 1 thresholds: same candidate-merge plan, bit-identical to the
    // exhaustive reference (which admits every stored document).
    for tau in WIDE_TAUS {
        let (wide, wide_stats) = store.lookup_with_stats(&query, tau).expect("wide");
        let (reference, _) = store
            .lookup_exhaustive_with_stats(&query, tau)
            .expect("wide scan");
        assert!(wide_stats.used_inverted, "τ = {tau} must stay on the merge");
        assert_eq!(wide_stats.plan, LookupPlan::CandidateMerge);
        assert_eq!(
            wide, reference,
            "candidate merge diverged from the reference at τ = {tau}, {count} trees"
        );
        assert_eq!(wide.len(), store.tree_ids().expect("ids").len());
    }
    std::fs::remove_file(&store_path).ok();
    std::fs::remove_file(&raw_path).ok();

    assert!(
        inv_stats.used_inverted && raw_stats.used_inverted && unp_stats.used_inverted,
        "τ = {TAU} must use the inverted plan"
    );
    assert!(!scan_stats.used_inverted);
    assert_eq!(inv_hits, scan_hits, "plans disagree at {count} trees");
    assert_eq!(inv_hits, raw_hits, "encodings disagree at {count} trees");
    assert_eq!(inv_hits, unp_hits, "pruning changed answers at {count} trees");
    assert!(
        !inv_hits.is_empty(),
        "the query's source document must match"
    );
    assert_eq!(
        raw_stats.blocks_decoded, 0,
        "a row-per-posting store has no blocks to decode"
    );

    let scan_ms = scan_t.as_secs_f64() * 1e3;
    let inv_ms = inv_t.as_secs_f64() * 1e3;
    Row {
        trees: count,
        nodes_total,
        hits: inv_hits.len(),
        scan_rows: scan_stats.rows_read,
        inv_rows: inv_stats.rows_read,
        row_ratio: scan_stats.rows_read as f64 / inv_stats.rows_read.max(1) as f64,
        scan_ms,
        inv_ms,
        speedup: scan_ms / inv_ms.max(1e-9),
        inv_bytes,
        raw_bytes,
        compression: raw_bytes as f64 / inv_bytes.max(1) as f64,
        raw_inv_ms: raw_t.as_secs_f64() * 1e3,
        blocks_decoded: inv_stats.blocks_decoded,
        verified: inv_stats.verified,
        unpruned_rows: unp_stats.rows_read,
        unpruned_verified: unp_stats.verified,
        prune_row_ratio: unp_stats.rows_read as f64 / inv_stats.rows_read.max(1) as f64,
        prune_verify_ratio: unp_stats.verified as f64 / inv_stats.verified.max(1) as f64,
        rows_pruned_window: inv_stats.rows_pruned_window,
        grams_skipped_budget: inv_stats.grams_skipped_budget,
        grams_skipped_filter: inv_stats.grams_skipped_filter,
    }
}

fn write_json(path: &str, mode: &str, rows: &[Row]) {
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"experiment\": \"store_lookup\",");
    let _ = writeln!(json, "  \"mode\": \"{mode}\",");
    let _ = writeln!(json, "  \"tau\": {TAU},");
    let _ = writeln!(json, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"trees\": {}, \"nodes_total\": {}, \"hits\": {}, \
             \"scan_rows\": {}, \"inverted_rows\": {}, \"row_ratio\": {:.2}, \
             \"scan_ms\": {:.3}, \"inverted_ms\": {:.3}, \"speedup\": {:.2}, \
             \"inverted_bytes\": {}, \"row_per_posting_bytes\": {}, \
             \"compression\": {:.2}, \"row_per_posting_ms\": {:.3}, \
             \"blocks_decoded\": {}, \"verified\": {}, \
             \"unpruned_rows\": {}, \"unpruned_verified\": {}, \
             \"prune_row_ratio\": {:.2}, \"prune_verify_ratio\": {:.2}, \
             \"rows_pruned_window\": {}, \"grams_skipped_budget\": {}, \
             \"grams_skipped_filter\": {}}}{comma}",
            r.trees,
            r.nodes_total,
            r.hits,
            r.scan_rows,
            r.inv_rows,
            r.row_ratio,
            r.scan_ms,
            r.inv_ms,
            r.speedup,
            r.inv_bytes,
            r.raw_bytes,
            r.compression,
            r.raw_inv_ms,
            r.blocks_decoded,
            r.verified,
            r.unpruned_rows,
            r.unpruned_verified,
            r.prune_row_ratio,
            r.prune_verify_ratio,
            r.rows_pruned_window,
            r.grams_skipped_budget,
            r.grams_skipped_filter,
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    std::fs::write(path, json).expect("write json");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let compress = !std::env::args().any(|a| a == "--no-compress");
    // The small pool (and with it the query document) keeps the same size
    // at both scales; `--smoke` only shrinks the large documents, the
    // repetition count, and drops the 100k-document row.
    let (small_pool, big_pool, reps) = if smoke {
        (40_000, 240_000, 3)
    } else {
        (40_000, 720_000, 15)
    };
    let counts: &[usize] = if smoke { &SMOKE_COUNTS } else { &FULL_COUNTS };
    let work_dir = std::env::temp_dir().join(format!("pqgram-store-lookup-{}", std::process::id()));
    std::fs::create_dir_all(&work_dir).expect("work dir");

    println!(
        "store-lookup: scan vs inverted candidate-merge vs unpruned merge ({} scale, τ = {TAU}{})",
        if smoke { "smoke" } else { "full" },
        if compress {
            ""
        } else {
            ", --no-compress ablation"
        }
    );
    let mut rows = Vec::new();
    for &count in counts {
        let row = run_count(count, small_pool, big_pool, reps, &work_dir, compress);
        println!(
            "  {:>6} trees: scan {:>8} rows / {:>9.3} ms, planned {:>7} rows / {:>9.3} ms \
             ({:.1}x fewer rows, {:.1}x faster, {} hits); unpruned {:>8} rows / {:>6} verified \
             (planner: {:.1}x fewer rows, {:.1}x fewer verified); inverted relation {:>9} B vs \
             {:>9} B raw ({:.1}x smaller)",
            row.trees,
            row.scan_rows,
            row.scan_ms,
            row.inv_rows,
            row.inv_ms,
            row.row_ratio,
            row.speedup,
            row.hits,
            row.unpruned_rows,
            row.unpruned_verified,
            row.prune_row_ratio,
            row.prune_verify_ratio,
            row.inv_bytes,
            row.raw_bytes,
            row.compression,
        );
        rows.push(row);
    }
    std::fs::remove_dir_all(&work_dir).ok();

    // Acceptance criteria from ≥1000 documents on: the planned merge must
    // read ≥10× fewer rows than the scan, read ≥5× fewer rows and verify
    // ≥5× fewer candidates than the unpruned merge, and win on wall
    // clock; the posting-block encoding must keep the inverted relation
    // ≥4× smaller than row-per-posting without giving up probe speed
    // (25% jitter allowance on a sub-millisecond probe).
    for r in rows.iter().filter(|r| r.trees >= 1_000) {
        assert!(
            r.row_ratio >= 10.0,
            "inverted plan read only {:.1}x fewer rows than the scan at {} trees",
            r.row_ratio,
            r.trees,
        );
        assert!(
            r.prune_row_ratio >= 5.0,
            "planner cut rows only {:.1}x vs the unpruned merge at {} trees",
            r.prune_row_ratio,
            r.trees,
        );
        assert!(
            r.prune_verify_ratio >= 5.0,
            "planner cut verified candidates only {:.1}x vs the unpruned merge at {} trees",
            r.prune_verify_ratio,
            r.trees,
        );
        assert!(
            r.inv_ms < r.scan_ms,
            "inverted plan ({:.3} ms) not faster than scan ({:.3} ms) at {} trees",
            r.inv_ms,
            r.scan_ms,
            r.trees,
        );
        if compress {
            assert!(
                r.compression >= 4.0,
                "inverted relation only {:.2}x smaller than row-per-posting at {} trees",
                r.compression,
                r.trees,
            );
            // The 0.1 ms absolute slack keeps sub-millisecond probes from
            // tripping on scheduler jitter; a real decode regression is a
            // multiple, not 50 µs.
            assert!(
                r.inv_ms <= r.raw_inv_ms * 1.25 + 0.1,
                "posting-block probe ({:.3} ms) slower than row-per-posting ({:.3} ms) at {} trees",
                r.inv_ms,
                r.raw_inv_ms,
                r.trees,
            );
        }
    }

    let mut table = Table::new(
        "store-lookup: exhaustive scan vs planned candidate-merge vs unpruned merge",
        &[
            "trees",
            "nodes_total",
            "hits",
            "scan_rows",
            "inverted_rows",
            "row_ratio",
            "scan_ms",
            "inverted_ms",
            "speedup",
            "inverted_bytes",
            "row_per_posting_bytes",
            "compression",
            "row_per_posting_ms",
            "verified",
            "unpruned_rows",
            "unpruned_verified",
            "prune_row_ratio",
            "prune_verify_ratio",
            "rows_pruned_window",
            "grams_skipped_budget",
            "grams_skipped_filter",
        ],
    );
    for r in &rows {
        table.row(vec![
            r.trees.to_string(),
            r.nodes_total.to_string(),
            r.hits.to_string(),
            r.scan_rows.to_string(),
            r.inv_rows.to_string(),
            format!("{:.2}", r.row_ratio),
            format!("{:.3}", r.scan_ms),
            format!("{:.3}", r.inv_ms),
            format!("{:.2}", r.speedup),
            r.inv_bytes.to_string(),
            r.raw_bytes.to_string(),
            format!("{:.2}", r.compression),
            format!("{:.3}", r.raw_inv_ms),
            r.verified.to_string(),
            r.unpruned_rows.to_string(),
            r.unpruned_verified.to_string(),
            format!("{:.2}", r.prune_row_ratio),
            format!("{:.2}", r.prune_verify_ratio),
            r.rows_pruned_window.to_string(),
            r.grams_skipped_budget.to_string(),
            r.grams_skipped_filter.to_string(),
        ]);
    }
    print!("{}", table.render());
    let (csv_name, json_name) = if compress {
        ("store_lookup", "BENCH_store_lookup.json")
    } else {
        (
            "store_lookup_nocompress",
            "BENCH_store_lookup_nocompress.json",
        )
    };
    match table.write_csv(&PathBuf::from("bench_results"), csv_name) {
        Ok(path) => println!("   -> {}", path.display()),
        Err(e) => eprintln!("   (csv not written: {e})"),
    }
    write_json(
        json_name,
        match (smoke, compress) {
            (true, true) => "smoke",
            (false, true) => "full",
            (true, false) => "smoke-no-compress",
            (false, false) => "full-no-compress",
        },
        &rows,
    );
    println!("   -> {json_name}");
}
