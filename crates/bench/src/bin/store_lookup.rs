//! `store-lookup` experiment: exhaustive forward-relation scan vs. the
//! inverted candidate-merge plan of the persistent store, and the
//! posting-block encoding vs. the row-per-posting (format-v2) ablation.
//!
//! ```sh
//! cargo run --release -p pqgram-bench --bin store_lookup            # full
//! cargo run --release -p pqgram-bench --bin store_lookup -- --smoke # CI
//! cargo run --release -p pqgram-bench --bin store_lookup -- --smoke --no-compress
//! ```
//!
//! Builds forests of {16, 125, 1000, 10000} XMark documents, stores them
//! in an [`IndexStore`] under both inverted-relation encodings, and looks
//! up a locally edited variant of one member with every plan. Document
//! sizes are skewed, as in real collections: ~4% of the documents are
//! large and carry most of the nodes, the rest are small. The query
//! derives from a small member, so the scan plan pays for every row of
//! the large documents while the candidate-merge plan only touches the
//! posting lists of the query's grams. Emits
//! `bench_results/store_lookup.csv` and `BENCH_store_lookup.json` (repo
//! root) and asserts the acceptance criteria: all plans and both
//! encodings return identical hits at every cardinality; at ≥1000
//! documents the inverted plan reads ≥10× fewer B+-tree rows than the
//! scan and wins on wall clock, and the posting-block encoding keeps the
//! inverted relation ≥4× smaller on disk than row-per-posting without
//! losing probe speed.
//!
//! With `--no-compress` the probed store itself is built row-per-posting
//! (the ablation: format-v2 behaviour end to end); results go to
//! `*_nocompress` outputs and the compression criteria are skipped.

use pqgram_bench::datasets::xmark_tree;
use pqgram_bench::experiments::query_variant;
use pqgram_bench::report::Table;
use pqgram_core::{build_index, ForestIndex, PQParams, TreeId};
use pqgram_store::{IndexStore, InvertedEncoding, RealVfs};
use pqgram_tree::{LabelTable, Tree};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const TAU: f64 = 0.8;
const COUNTS: [usize; 4] = [16, 125, 1_000, 10_000];

struct Row {
    trees: usize,
    nodes_total: usize,
    hits: usize,
    scan_rows: u64,
    inv_rows: u64,
    row_ratio: f64,
    scan_ms: f64,
    inv_ms: f64,
    speedup: f64,
    /// Inverted relation on disk, posting-block encoding (probed store
    /// when compressing; the reference build under `--no-compress`).
    inv_bytes: u64,
    /// Inverted relation on disk, row-per-posting encoding.
    raw_bytes: u64,
    /// `raw_bytes / inv_bytes`.
    compression: f64,
    /// Median candidate-merge wall time on the row-per-posting store.
    raw_inv_ms: f64,
    blocks_decoded: u64,
}

/// Median-of-`reps` wall time for one lookup closure.
fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (R, Duration) {
    let mut result = None;
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        result = Some(f());
        times.push(t.elapsed());
    }
    times.sort_unstable();
    (result.unwrap(), times[times.len() / 2])
}

/// The skewed forest: `count` documents, ~4% of them large (splitting
/// `big_pool` nodes between them), the rest small (splitting `small_pool`).
/// Small documents come first so `trees[0]` — the query's source — is
/// small.
fn skewed_forest(
    count: usize,
    small_pool: usize,
    big_pool: usize,
    labels: &mut LabelTable,
) -> Vec<Tree> {
    let big = (count / 25).max(1);
    let small = count - big;
    let per_small = (small_pool / small).max(16);
    let per_big = big_pool / big;
    (0..count)
        .map(|i| {
            let nodes = if i < small { per_small } else { per_big };
            xmark_tree(2_000 + i as u64, labels, nodes)
        })
        .collect()
}

fn build_store(
    path: &PathBuf,
    params: PQParams,
    forest: &ForestIndex,
    encoding: InvertedEncoding,
) -> IndexStore {
    std::fs::remove_file(path).ok();
    IndexStore::bulk_create_with_encoding(path, params, forest.iter(), Arc::new(RealVfs), encoding)
        .expect("bulk create")
}

fn run_count(
    count: usize,
    small_pool: usize,
    big_pool: usize,
    reps: usize,
    work_dir: &PathBuf,
    compress: bool,
) -> Row {
    let params = PQParams::default();
    let mut labels = LabelTable::new();
    let trees = skewed_forest(count, small_pool, big_pool, &mut labels);
    let nodes_total: usize = trees.iter().map(Tree::node_count).sum();
    let query_tree = query_variant(&trees[0], &mut labels, 11);
    let query = build_index(&query_tree, &labels, params);

    let mut forest = ForestIndex::new();
    for (i, t) in trees.iter().enumerate() {
        forest.insert(TreeId(i as u64), build_index(t, &labels, params));
    }
    // The probed store, plus a row-per-posting twin for the encoding
    // comparison columns (under `--no-compress` the probed store *is*
    // row-per-posting and serves both roles).
    let store_path = work_dir.join(format!("store-lookup-{count}.pqg"));
    let raw_path = work_dir.join(format!("store-lookup-{count}-raw.pqg"));
    let encoding = if compress {
        InvertedEncoding::PostingBlocks
    } else {
        InvertedEncoding::RowPerPosting
    };
    let store = build_store(&store_path, params, &forest, encoding);
    let raw = build_store(&raw_path, params, &forest, InvertedEncoding::RowPerPosting);

    let inv_bytes = store.relation_bytes().expect("bytes").inverted_total();
    let raw_bytes = raw.relation_bytes().expect("bytes").inverted_total();

    let ((scan_hits, scan_stats), scan_t) = best_of(reps, || {
        store
            .lookup_exhaustive_with_stats(&query, TAU)
            .expect("scan")
    });
    let ((inv_hits, inv_stats), inv_t) = best_of(reps, || {
        store.lookup_with_stats(&query, TAU).expect("inverted")
    });
    let ((raw_hits, raw_stats), raw_t) =
        best_of(reps, || raw.lookup_with_stats(&query, TAU).expect("raw"));
    std::fs::remove_file(&store_path).ok();
    std::fs::remove_file(&raw_path).ok();

    assert!(
        inv_stats.used_inverted && raw_stats.used_inverted,
        "τ = {TAU} must use the inverted plan"
    );
    assert!(!scan_stats.used_inverted);
    assert_eq!(inv_hits, scan_hits, "plans disagree at {count} trees");
    assert_eq!(inv_hits, raw_hits, "encodings disagree at {count} trees");
    assert!(
        !inv_hits.is_empty(),
        "the query's source document must match"
    );
    assert_eq!(
        raw_stats.blocks_decoded, 0,
        "a row-per-posting store has no blocks to decode"
    );

    let scan_ms = scan_t.as_secs_f64() * 1e3;
    let inv_ms = inv_t.as_secs_f64() * 1e3;
    Row {
        trees: count,
        nodes_total,
        hits: inv_hits.len(),
        scan_rows: scan_stats.rows_read,
        inv_rows: inv_stats.rows_read,
        row_ratio: scan_stats.rows_read as f64 / inv_stats.rows_read.max(1) as f64,
        scan_ms,
        inv_ms,
        speedup: scan_ms / inv_ms.max(1e-9),
        inv_bytes,
        raw_bytes,
        compression: raw_bytes as f64 / inv_bytes.max(1) as f64,
        raw_inv_ms: raw_t.as_secs_f64() * 1e3,
        blocks_decoded: inv_stats.blocks_decoded,
    }
}

fn write_json(path: &str, mode: &str, rows: &[Row]) {
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"experiment\": \"store_lookup\",");
    let _ = writeln!(json, "  \"mode\": \"{mode}\",");
    let _ = writeln!(json, "  \"tau\": {TAU},");
    let _ = writeln!(json, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"trees\": {}, \"nodes_total\": {}, \"hits\": {}, \
             \"scan_rows\": {}, \"inverted_rows\": {}, \"row_ratio\": {:.2}, \
             \"scan_ms\": {:.3}, \"inverted_ms\": {:.3}, \"speedup\": {:.2}, \
             \"inverted_bytes\": {}, \"row_per_posting_bytes\": {}, \
             \"compression\": {:.2}, \"row_per_posting_ms\": {:.3}, \
             \"blocks_decoded\": {}}}{comma}",
            r.trees,
            r.nodes_total,
            r.hits,
            r.scan_rows,
            r.inv_rows,
            r.row_ratio,
            r.scan_ms,
            r.inv_ms,
            r.speedup,
            r.inv_bytes,
            r.raw_bytes,
            r.compression,
            r.raw_inv_ms,
            r.blocks_decoded,
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    std::fs::write(path, json).expect("write json");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let compress = !std::env::args().any(|a| a == "--no-compress");
    // The small pool (and with it the query document) keeps the same size
    // at both scales; `--smoke` only shrinks the large documents and the
    // repetition count.
    let (small_pool, big_pool, reps) = if smoke {
        (40_000, 240_000, 3)
    } else {
        (40_000, 720_000, 15)
    };
    let work_dir = std::env::temp_dir().join(format!("pqgram-store-lookup-{}", std::process::id()));
    std::fs::create_dir_all(&work_dir).expect("work dir");

    println!(
        "store-lookup: scan vs inverted candidate-merge ({} scale, τ = {TAU}{})",
        if smoke { "smoke" } else { "full" },
        if compress {
            ""
        } else {
            ", --no-compress ablation"
        }
    );
    let mut rows = Vec::new();
    for &count in &COUNTS {
        let row = run_count(count, small_pool, big_pool, reps, &work_dir, compress);
        println!(
            "  {:>5} trees: scan {:>8} rows / {:>9.3} ms, inverted {:>7} rows / {:>9.3} ms \
             ({:.1}x fewer rows, {:.1}x faster, {} hits); inverted relation {:>9} B vs \
             {:>9} B raw ({:.1}x smaller), raw probe {:>9.3} ms",
            row.trees,
            row.scan_rows,
            row.scan_ms,
            row.inv_rows,
            row.inv_ms,
            row.row_ratio,
            row.speedup,
            row.hits,
            row.inv_bytes,
            row.raw_bytes,
            row.compression,
            row.raw_inv_ms,
        );
        rows.push(row);
    }
    std::fs::remove_dir_all(&work_dir).ok();

    // Acceptance criteria from ≥1000 documents on: the candidate-merge
    // plan must read ≥10× fewer rows than the scan and win on wall clock;
    // the posting-block encoding must keep the inverted relation ≥4×
    // smaller than row-per-posting without giving up probe speed (25%
    // jitter allowance on a sub-millisecond probe).
    for r in rows.iter().filter(|r| r.trees >= 1_000) {
        assert!(
            r.row_ratio >= 10.0,
            "inverted plan read only {:.1}x fewer rows than the scan at {} trees",
            r.row_ratio,
            r.trees,
        );
        assert!(
            r.inv_ms < r.scan_ms,
            "inverted plan ({:.3} ms) not faster than scan ({:.3} ms) at {} trees",
            r.inv_ms,
            r.scan_ms,
            r.trees,
        );
        if compress {
            assert!(
                r.compression >= 4.0,
                "inverted relation only {:.2}x smaller than row-per-posting at {} trees",
                r.compression,
                r.trees,
            );
            assert!(
                r.inv_ms <= r.raw_inv_ms * 1.25,
                "posting-block probe ({:.3} ms) slower than row-per-posting ({:.3} ms) at {} trees",
                r.inv_ms,
                r.raw_inv_ms,
                r.trees,
            );
        }
    }

    let mut table = Table::new(
        "store-lookup: exhaustive scan vs inverted candidate-merge",
        &[
            "trees",
            "nodes_total",
            "hits",
            "scan_rows",
            "inverted_rows",
            "row_ratio",
            "scan_ms",
            "inverted_ms",
            "speedup",
            "inverted_bytes",
            "row_per_posting_bytes",
            "compression",
            "row_per_posting_ms",
        ],
    );
    for r in &rows {
        table.row(vec![
            r.trees.to_string(),
            r.nodes_total.to_string(),
            r.hits.to_string(),
            r.scan_rows.to_string(),
            r.inv_rows.to_string(),
            format!("{:.2}", r.row_ratio),
            format!("{:.3}", r.scan_ms),
            format!("{:.3}", r.inv_ms),
            format!("{:.2}", r.speedup),
            r.inv_bytes.to_string(),
            r.raw_bytes.to_string(),
            format!("{:.2}", r.compression),
            format!("{:.3}", r.raw_inv_ms),
        ]);
    }
    print!("{}", table.render());
    let (csv_name, json_name) = if compress {
        ("store_lookup", "BENCH_store_lookup.json")
    } else {
        (
            "store_lookup_nocompress",
            "BENCH_store_lookup_nocompress.json",
        )
    };
    match table.write_csv(&PathBuf::from("bench_results"), csv_name) {
        Ok(path) => println!("   -> {}", path.display()),
        Err(e) => eprintln!("   (csv not written: {e})"),
    }
    write_json(
        json_name,
        match (smoke, compress) {
            (true, true) => "smoke",
            (false, true) => "full",
            (true, false) => "smoke-no-compress",
            (false, false) => "full-no-compress",
        },
        &rows,
    );
    println!("   -> {json_name}");
}
