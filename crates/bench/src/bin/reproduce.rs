//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```sh
//! cargo run --release -p pqgram-bench --bin reproduce -- all
//! cargo run --release -p pqgram-bench --bin reproduce -- --full fig14-dblp
//! ```
//!
//! Subcommands: `fig13-lookup`, `fig13-update`, `fig14-size`, `fig14-dblp`,
//! `table2`, `all`. `--full` uses the larger scale (minutes instead of
//! seconds). CSVs are written to `bench_results/`.

use pqgram_bench::experiments::{self, Scale};
use pqgram_bench::report::Table;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let what: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let what = if what.is_empty() { vec!["all"] } else { what };

    let scale = if full { Scale::full() } else { Scale::quick() };
    let out_dir = PathBuf::from("bench_results");
    let work_dir = std::env::temp_dir().join(format!("pqgram-reproduce-{}", std::process::id()));
    std::fs::create_dir_all(&work_dir).expect("work dir");

    let run = |name: &str| what.contains(&"all") || what.contains(&name);
    let mut ran_any = false;
    let emit = |slug: &str, table: Table| {
        print!("{}", table.render());
        match table.write_csv(&out_dir, slug) {
            Ok(path) => println!("   -> {}", path.display()),
            Err(e) => eprintln!("   (csv not written: {e})"),
        }
    };

    println!(
        "pq-gram index experiment reproduction ({} scale)",
        if full { "full" } else { "quick" }
    );

    if run("fig13-lookup") {
        emit("fig13_lookup", experiments::fig13_lookup(&scale));
        ran_any = true;
    }
    if run("fig13-update") {
        emit("fig13_update", experiments::fig13_update(&scale));
        ran_any = true;
    }
    if run("fig14-size") {
        emit("fig14_size", experiments::fig14_size(&scale));
        ran_any = true;
    }
    if run("fig14-dblp") {
        emit("fig14_dblp", experiments::fig14_dblp(&scale));
        ran_any = true;
    }
    if run("table2") {
        emit("table2", experiments::table2(&scale, &work_dir));
        ran_any = true;
    }
    if run("quality") {
        emit(
            "quality",
            experiments::quality(if full { 400 } else { 150 }),
        );
        ran_any = true;
    }
    let abl_nodes = if full { 100_000 } else { 20_000 };
    if run("ablations") {
        emit(
            "ablation_pq",
            pqgram_bench::ablations::ablation_pq(abl_nodes),
        );
        emit(
            "ablation_sharing",
            pqgram_bench::ablations::ablation_sharing(abl_nodes),
        );
        emit(
            "ablation_pool",
            pqgram_bench::ablations::ablation_pool(abl_nodes),
        );
        emit(
            "ablation_logopt",
            pqgram_bench::ablations::ablation_logopt(abl_nodes),
        );
        ran_any = true;
    }
    std::fs::remove_dir_all(&work_dir).ok();

    if !ran_any {
        eprintln!(
            "unknown experiment {:?}; use fig13-lookup | fig13-update | fig14-size | \
             fig14-dblp | table2 | quality | ablations | all",
            what
        );
        std::process::exit(2);
    }
}
