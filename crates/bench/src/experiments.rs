//! Reproductions of every table and figure of the paper's evaluation
//! (Section 9), scaled to a laptop. See `DESIGN.md` §3 for the experiment
//! index and `EXPERIMENTS.md` for measured results and paper-vs-measured
//! discussion.

use crate::datasets::{dblp_tree, xmark_collection, xmark_tree};
use crate::report::Table;
use pqgram_core::{build_index, pq_distance, ForestIndex, PQParams, TreeId};
use pqgram_store::IndexStore;
use pqgram_tree::serial::tree_size_bytes;
use pqgram_tree::{record_script, LabelTable, ScriptConfig, Tree};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Experiment sizing. `quick` finishes in well under a minute; `full`
/// approaches the paper's scales as far as a laptop allows.
#[derive(Clone, Debug)]
pub struct Scale {
    /// Total nodes per collection in the lookup experiment.
    pub lookup_total_nodes: usize,
    /// Collection cardinalities for the lookup experiment.
    pub lookup_counts: Vec<usize>,
    /// Tree sizes for the update-vs-rebuild and index-size experiments.
    pub tree_sizes: Vec<usize>,
    /// Fixed log length for the update-vs-rebuild experiment.
    pub update_log_len: usize,
    /// DBLP document size for Figure 14 (right) and Table 2.
    pub dblp_nodes: usize,
    /// Edit-log lengths for Figure 14 (right).
    pub dblp_edit_counts: Vec<usize>,
    /// Edit-log lengths for Table 2.
    pub table2_edit_counts: Vec<usize>,
}

impl Scale {
    /// Sub-minute smoke scale.
    pub fn quick() -> Self {
        Scale {
            lookup_total_nodes: 60_000,
            lookup_counts: vec![16, 125, 1_000],
            tree_sizes: vec![1_000, 10_000, 100_000],
            update_log_len: 50,
            dblp_nodes: 200_000,
            dblp_edit_counts: vec![1, 10, 50, 100, 250, 500],
            table2_edit_counts: vec![1, 10, 100, 1_000],
        }
    }

    /// The closest laptop analogue of the paper's setup (tens of minutes).
    /// The DBLP-shaped document matches the paper's 11 M nodes.
    pub fn full() -> Self {
        Scale {
            lookup_total_nodes: 500_000,
            lookup_counts: vec![31, 250, 1_999],
            tree_sizes: vec![1_000, 10_000, 100_000, 1_000_000, 4_000_000],
            update_log_len: 50,
            dblp_nodes: 11_000_000,
            dblp_edit_counts: vec![1, 10, 100, 500, 1_000, 2_000],
            table2_edit_counts: vec![1, 10, 100, 1_000],
        }
    }
}

fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed())
}

fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// Derives a query document: a clone of `base` with a few local edits.
/// Shared with the `store_lookup` binary so both experiments query the
/// collections the same way.
pub fn query_variant(base: &Tree, labels: &mut LabelTable, seed: u64) -> Tree {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut q = base.clone();
    let alphabet: Vec<_> = labels.iter().map(|(s, _)| s).collect();
    let mut cfg = ScriptConfig::new(3, alphabet);
    cfg.max_adopted = 1;
    record_script(&mut rng, &mut q, &cfg);
    q
}

/// **Figure 13 (left)** — approximate lookup of one document in three
/// collections of similar total size but different cardinality, with a
/// precomputed index vs. computing the pq-grams on the fly (the VLDB 2005
/// baseline without a persistent index).
pub fn fig13_lookup(scale: &Scale) -> Table {
    let params = PQParams::default();
    let mut table = Table::new(
        "Figure 13 (left): lookup time, precomputed index vs on-the-fly",
        &[
            "trees",
            "nodes_total",
            "mem_index_ms",
            "disk_index_ms",
            "on_the_fly_ms",
            "slowdown",
        ],
    );
    let work_dir = std::env::temp_dir().join(format!("pqgram-fig13-{}", std::process::id()));
    std::fs::create_dir_all(&work_dir).expect("work dir");
    for (ci, &count) in scale.lookup_counts.iter().enumerate() {
        let mut labels = LabelTable::new();
        let trees = xmark_collection(
            1000 + ci as u64,
            &mut labels,
            count,
            scale.lookup_total_nodes,
        );
        let total_nodes: usize = trees.iter().map(Tree::node_count).sum();
        let query_tree = query_variant(&trees[0], &mut labels, 7);
        let query = build_index(&query_tree, &labels, params);

        // Precomputed index (built outside the timed section, as in the
        // paper: the index is maintained, not rebuilt per lookup).
        let mut forest = ForestIndex::new();
        for (i, t) in trees.iter().enumerate() {
            forest.insert(TreeId(i as u64), build_index(t, &labels, params));
        }
        let (hits, with_index) = time(|| forest.lookup(&query, 0.8).expect("same params"));
        assert!(!hits.is_empty(), "the query's source document must match");

        // The paper's actual setup: the precomputed index is *persistent*
        // (an RDBMS relation there, our B+-tree store here).
        let store_path = work_dir.join(format!("lookup-{count}.pqg"));
        std::fs::remove_file(&store_path).ok();
        let store =
            IndexStore::bulk_create(&store_path, params, forest.iter()).expect("bulk create");
        let (disk_hits, with_disk_index) =
            time(|| store.lookup(&query, 0.8).expect("store lookup"));
        assert_eq!(disk_hits.len(), hits.len());
        std::fs::remove_file(&store_path).ok();

        // On the fly: extract every tree's pq-grams during the lookup.
        let (_, on_the_fly) = time(|| {
            let mut found = 0usize;
            for t in &trees {
                let idx = build_index(t, &labels, params);
                if pq_distance(&query, &idx).expect("same params") < 0.8 {
                    found += 1;
                }
            }
            found
        });
        table.row(vec![
            count.to_string(),
            total_nodes.to_string(),
            ms(with_index),
            ms(with_disk_index),
            ms(on_the_fly),
            format!(
                "{:.1}x",
                on_the_fly.as_secs_f64() / with_disk_index.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    std::fs::remove_dir_all(&work_dir).ok();
    table
}

/// **Figure 13 (right)** — index construction from scratch vs incremental
/// update for a fixed-length log, over growing tree sizes. The paper's
/// claim: rebuild time is linear in the tree size while the update time is
/// nearly independent of it.
pub fn fig13_update(scale: &Scale) -> Table {
    let params = PQParams::default();
    let mut table = Table::new(
        "Figure 13 (right): index rebuild vs incremental update (log of 50 edits)",
        &["nodes", "rebuild_ms", "update_ms", "speedup"],
    );
    for (i, &nodes) in scale.tree_sizes.iter().enumerate() {
        let mut labels = LabelTable::new();
        let mut tree = xmark_tree(2000 + i as u64, &mut labels, nodes);
        let old_index = build_index(&tree, &labels, params);
        let alphabet: Vec<_> = labels.iter().map(|(s, _)| s).collect();
        let mut rng = StdRng::seed_from_u64(5);
        let (log, _) = record_script(
            &mut rng,
            &mut tree,
            &ScriptConfig::new(scale.update_log_len, alphabet),
        );

        let (rebuilt, rebuild) = time(|| build_index(&tree, &labels, params));
        let (outcome, update) = time(|| {
            pqgram_core::maintain::update_index(&old_index, &tree, &labels, &log)
                .expect("consistent log")
        });
        assert_eq!(outcome.index, rebuilt);
        table.row(vec![
            tree.node_count().to_string(),
            ms(rebuild),
            ms(update),
            format!(
                "{:.1}x",
                rebuild.as_secs_f64() / update.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    table
}

/// **Figure 14 (left)** — size of the index vs size of the document, for
/// 1,2- and 3,3-grams. The paper's claim: the index is significantly
/// smaller than the tree and grows sublinearly (duplicate pq-grams).
pub fn fig14_size(scale: &Scale) -> Table {
    let mut table = Table::new(
        "Figure 14 (left): document size vs index size",
        &[
            "nodes",
            "xml_KB",
            "binary_KB",
            "idx33_KB",
            "idx12_KB",
            "idx33_vs_xml",
            "distinct33_per_node",
        ],
    );
    for (i, &nodes) in scale.tree_sizes.iter().enumerate() {
        let mut labels = LabelTable::new();
        let tree = xmark_tree(3000 + i as u64, &mut labels, nodes);
        // The paper compares against the size of the XML document itself
        // (e.g. the 211 MB DBLP file); the compact binary tree encoding is
        // reported alongside as the lower bound of "tree size".
        let xml_bytes =
            pqgram_xml::write_document(&tree, &labels, &pqgram_xml::WriteOptions::default()).len();
        let tree_bytes = tree_size_bytes(&tree, &labels);
        let idx33 = build_index(&tree, &labels, PQParams::new(3, 3));
        let idx12 = build_index(&tree, &labels, PQParams::new(1, 2));
        let kb = |b: usize| format!("{:.1}", b as f64 / 1024.0);
        table.row(vec![
            tree.node_count().to_string(),
            kb(xml_bytes),
            kb(tree_bytes),
            kb(idx33.encoded_size()),
            kb(idx12.encoded_size()),
            format!("{:.2}", idx33.encoded_size() as f64 / xml_bytes as f64),
            format!("{:.3}", idx33.distinct() as f64 / tree.node_count() as f64),
        ]);
    }
    table
}

/// **Figure 14 (right)** — incremental update time over the number of edit
/// operations, on the DBLP-shaped document. The paper's claim: linear in
/// the log size.
pub fn fig14_dblp(scale: &Scale) -> Table {
    let params = PQParams::default();
    let mut labels = LabelTable::new();
    let base = dblp_tree(4000, &mut labels, scale.dblp_nodes);
    let old_index = build_index(&base, &labels, params);
    let mut table = Table::new(
        &format!(
            "Figure 14 (right): update time vs log size (DBLP-shaped, {} nodes)",
            base.node_count()
        ),
        &[
            "edits",
            "update_ms",
            "ms_per_edit",
            "plus_grams",
            "minus_grams",
        ],
    );
    let alphabet: Vec<_> = labels.iter().map(|(s, _)| s).collect();
    for &edits in &scale.dblp_edit_counts {
        let mut rng = StdRng::seed_from_u64(edits as u64);
        let mut tree = base.clone();
        let (log, _) = record_script(
            &mut rng,
            &mut tree,
            &ScriptConfig::new(edits, alphabet.clone()),
        );
        let (outcome, update) = time(|| {
            pqgram_core::maintain::update_index(&old_index, &tree, &labels, &log)
                .expect("consistent log")
        });
        table.row(vec![
            edits.to_string(),
            ms(update),
            format!("{:.4}", update.as_secs_f64() * 1e3 / edits as f64),
            outcome.delta.additions.len().to_string(),
            outcome.delta.removals.len().to_string(),
        ]);
    }
    table
}

/// **Table 2** — breakdown of the index update time by phase, against the
/// *persistent* index (the `I₀ \ I⁻ ⊎ I⁺` step runs on disk, as in the
/// paper's RDBMS setup).
pub fn table2(scale: &Scale, work_dir: &std::path::Path) -> Table {
    let params = PQParams::default();
    let mut labels = LabelTable::new();
    let base = dblp_tree(5000, &mut labels, scale.dblp_nodes);
    let initial = build_index(&base, &labels, params);
    let alphabet: Vec<_> = labels.iter().map(|(s, _)| s).collect();

    let mut table = Table::new(
        &format!(
            "Table 2: breakdown of the index update time (DBLP-shaped, {} nodes)",
            base.node_count()
        ),
        &["action", "1", "10", "100", "1000"],
    );
    let mut cols: Vec<[Duration; 5]> = Vec::new();
    for &edits in &scale.table2_edit_counts {
        let path = work_dir.join(format!("table2-{edits}.pqg"));
        std::fs::remove_file(&path).ok();
        let mut jp = path.as_os_str().to_owned();
        jp.push("-journal");
        std::fs::remove_file(std::path::PathBuf::from(jp)).ok();
        let mut store =
            IndexStore::bulk_create(&path, params, [(TreeId(0), &initial)]).expect("seed store");

        let mut rng = StdRng::seed_from_u64(edits as u64);
        let mut tree = base.clone();
        let (log, _) = record_script(
            &mut rng,
            &mut tree,
            &ScriptConfig::new(edits, alphabet.clone()),
        );
        let stats = store
            .update_from_log(TreeId(0), &tree, &labels, &log)
            .expect("consistent log");
        // Verify against an in-memory rebuild once (cheapest scale only).
        if edits == *scale.table2_edit_counts.first().expect("non-empty") {
            let stored = store.tree_index(TreeId(0)).expect("read").expect("present");
            assert_eq!(stored, build_index(&tree, &labels, params));
        }
        cols.push([
            stats.delta_plus,
            stats.lambda_plus,
            stats.delta_minus,
            stats.lambda_minus,
            stats.apply,
        ]);
        std::fs::remove_file(&path).ok();
    }
    let actions = [
        "delta_plus (Δn+)",
        "lambda_plus (I+)",
        "delta_minus (Δn-)",
        "lambda_minus (I-)",
        "apply (I0 \\ I- ⊎ I+)",
    ];
    for (ai, action) in actions.iter().enumerate() {
        let mut row = vec![action.to_string()];
        for col in &cols {
            row.push(format!("{:.3}ms", col[ai].as_secs_f64() * 1e3));
        }
        while row.len() < 5 {
            row.push(String::new());
        }
        table.row(row);
    }
    let mut total_row = vec!["total".to_string()];
    for col in &cols {
        let total: Duration = col.iter().sum();
        total_row.push(format!("{:.3}ms", total.as_secs_f64() * 1e3));
    }
    while total_row.len() < 5 {
        total_row.push(String::new());
    }
    table.row(total_row);
    table
}

/// **Approximation quality** (validating the VLDB 2005 substrate this paper
/// builds on): pq-gram distance vs. exact tree edit distance over documents
/// at controlled edit distances, for several document shapes.
pub fn quality(nodes: usize) -> Table {
    use pqgram_tree::generate::{random_tree, RandomTreeConfig};
    let params = PQParams::default();
    let mut table = Table::new(
        "Approximation quality: pq-gram distance vs exact tree edit distance",
        &["shape", "edits", "mean_pq_dist", "mean_ted", "kendall_tau"],
    );
    for shape in ["random", "xmark", "dblp"] {
        let mut rng = StdRng::seed_from_u64(6000);
        let mut labels = LabelTable::new();
        let base = match shape {
            "random" => random_tree(&mut rng, &mut labels, &RandomTreeConfig::new(nodes, 6)),
            "xmark" => xmark_tree(6001, &mut labels, nodes),
            _ => dblp_tree(6002, &mut labels, nodes),
        };
        let base_idx = build_index(&base, &labels, params);
        let alphabet: Vec<_> = labels.iter().map(|(s, _)| s).collect();
        let mut all_pairs: Vec<(f64, f64)> = Vec::new();
        for &edits in &[1usize, 4, 16, 64] {
            let mut pq_sum = 0.0;
            let mut ted_sum = 0.0;
            let reps = 5;
            for rep in 0..reps {
                let mut variant = base.clone();
                let mut cfg = ScriptConfig::new(edits, alphabet.clone());
                cfg.max_adopted = 1;
                let mut rng2 = StdRng::seed_from_u64((edits * 31 + rep) as u64);
                record_script(&mut rng2, &mut variant, &cfg);
                let pq = pq_distance(&base_idx, &build_index(&variant, &labels, params))
                    .expect("same params");
                let ted = pqgram_ted::tree_edit_distance(&base, &variant) as f64;
                pq_sum += pq;
                ted_sum += ted;
                all_pairs.push((pq, ted));
            }
            table.row(vec![
                shape.to_string(),
                edits.to_string(),
                format!("{:.4}", pq_sum / reps as f64),
                format!("{:.1}", ted_sum / reps as f64),
                String::new(),
            ]);
        }
        // Kendall tau across all variants of this shape.
        let (mut conc, mut disc) = (0i64, 0i64);
        for i in 0..all_pairs.len() {
            for j in i + 1..all_pairs.len() {
                let d = (all_pairs[i].0 - all_pairs[j].0) * (all_pairs[i].1 - all_pairs[j].1);
                if d > 0.0 {
                    conc += 1;
                } else if d < 0.0 {
                    disc += 1;
                }
            }
        }
        let tau = (conc - disc) as f64 / (conc + disc).max(1) as f64;
        table.row(vec![
            shape.to_string(),
            "all".into(),
            String::new(),
            String::new(),
            format!("{tau:.3}"),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The experiments must run end to end at a tiny scale (smoke test).
    #[test]
    fn experiments_smoke() {
        let scale = Scale {
            lookup_total_nodes: 3_000,
            lookup_counts: vec![4, 16],
            tree_sizes: vec![500, 2_000],
            update_log_len: 10,
            dblp_nodes: 3_000,
            dblp_edit_counts: vec![1, 5],
            table2_edit_counts: vec![1, 5],
        };
        let t = fig13_lookup(&scale);
        assert!(t.render().lines().count() > 4);
        fig13_update(&scale);
        fig14_size(&scale);
        fig14_dblp(&scale);
        let dir = std::env::temp_dir().join(format!("pqgram-exp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let t2 = table2(&scale, &dir);
        let rendered = t2.render();
        assert!(rendered.contains("delta_plus"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
