//! Dataset construction for the experiments.

use pqgram_tree::generate::{dblp, xmark};
use pqgram_tree::{LabelTable, Tree};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// An XMark-shaped document of roughly `nodes` nodes.
pub fn xmark_tree(seed: u64, labels: &mut LabelTable, nodes: usize) -> Tree {
    let mut rng = StdRng::seed_from_u64(seed);
    xmark(&mut rng, labels, nodes)
}

/// A DBLP-shaped document of roughly `nodes` nodes.
pub fn dblp_tree(seed: u64, labels: &mut LabelTable, nodes: usize) -> Tree {
    let mut rng = StdRng::seed_from_u64(seed);
    dblp(&mut rng, labels, nodes)
}

/// A collection of `count` XMark documents totalling roughly `total_nodes`
/// nodes — the forests of the lookup experiment (Figure 13, left).
pub fn xmark_collection(
    seed: u64,
    labels: &mut LabelTable,
    count: usize,
    total_nodes: usize,
) -> Vec<Tree> {
    let per_tree = (total_nodes / count).max(16);
    (0..count)
        .map(|i| xmark_tree(seed.wrapping_add(i as u64), labels, per_tree))
        .collect()
}
