//! Dataset construction for the experiments.

use pqgram_tree::generate::{dblp, xmark};
use pqgram_tree::{FxHashMap, LabelSym, LabelTable, Tree};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// An XMark-shaped document of roughly `nodes` nodes.
pub fn xmark_tree(seed: u64, labels: &mut LabelTable, nodes: usize) -> Tree {
    let mut rng = StdRng::seed_from_u64(seed);
    xmark(&mut rng, labels, nodes)
}

/// An XMark-shaped document whose labels below the top two levels are
/// suffixed with `@tag`, making its content vocabulary unique to that tag.
/// Only the root scaffold — `site` and its four hub children — keeps the
/// plain XMark names, so two documents with different tags overlap on a
/// handful of scaffold grams and nothing else. Collections mixing tags
/// model heterogeneous corpora, the regime the lookup planner's pruning
/// stages (gram filters, overlap budget, size window) are built for.
pub fn tagged_xmark_tree(seed: u64, labels: &mut LabelTable, nodes: usize, tag: &str) -> Tree {
    let base = xmark_tree(seed, labels, nodes);
    let mut out = Tree::with_root(base.label(base.root()));
    let mut mapped = vec![out.root(); base.slot_count()];
    let mut tagged: FxHashMap<LabelSym, LabelSym> = FxHashMap::default();
    // Preorder maps each parent before its children and preserves sibling
    // order, so `out` is an exact structural copy of `base`.
    let order: Vec<_> = base.preorder(base.root()).collect();
    for node in order {
        let Some(parent) = base.parent(node) else {
            continue;
        };
        let orig = base.label(node);
        let sym = if base.node_depth(node) < 2 {
            orig
        } else {
            *tagged.entry(orig).or_insert_with(|| {
                let name = format!("{}@{}", labels.name(orig), tag);
                labels.intern(&name)
            })
        };
        mapped[node.index()] = out.add_child(mapped[parent.index()], sym);
    }
    out
}

/// A DBLP-shaped document of roughly `nodes` nodes.
pub fn dblp_tree(seed: u64, labels: &mut LabelTable, nodes: usize) -> Tree {
    let mut rng = StdRng::seed_from_u64(seed);
    dblp(&mut rng, labels, nodes)
}

/// A collection of `count` XMark documents totalling roughly `total_nodes`
/// nodes — the forests of the lookup experiment (Figure 13, left).
pub fn xmark_collection(
    seed: u64,
    labels: &mut LabelTable,
    count: usize,
    total_nodes: usize,
) -> Vec<Tree> {
    let per_tree = (total_nodes / count).max(16);
    (0..count)
        .map(|i| xmark_tree(seed.wrapping_add(i as u64), labels, per_tree))
        .collect()
}
