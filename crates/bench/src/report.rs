//! Table printing and CSV output for the experiment harness.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A simple column-aligned results table that doubles as a CSV writer.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders the table for the terminal.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:>w$}  ", c, w = widths[i]);
            }
            let _ = writeln!(out);
        };
        line(&self.header, &widths, &mut out);
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            line(row, &widths, &mut out);
        }
        out
    }

    /// Writes the table as CSV into `dir/<slug>.csv`, returning the path.
    pub fn write_csv(&self, dir: &Path, slug: &str) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{slug}.csv"));
        let mut csv = String::new();
        let _ = writeln!(csv, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(csv, "{}", row.join(","));
        }
        std::fs::write(&path, csv)?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "20000".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("long-header"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn csv_roundtrip() {
        let mut t = Table::new("demo", &["x", "y"]);
        t.row(vec!["1".into(), "2".into()]);
        let dir = std::env::temp_dir().join(format!("pqgram-report-{}", std::process::id()));
        let path = t.write_csv(&dir, "demo").unwrap();
        let content = std::fs::read_to_string(path).unwrap();
        assert_eq!(content, "x,y\n1,2\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["x", "y"]);
        t.row(vec!["1".into()]);
    }
}
