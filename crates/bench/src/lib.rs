#![forbid(unsafe_code)]
//! Shared harness for the experiment reproduction (`reproduce` binary) and
//! the Criterion micro-benchmarks.
//!
//! The paper's evaluation (Section 9) consists of two figures with two
//! panels each and one table; [`experiments`] regenerates all of them at
//! laptop scale (the substitutions are documented in `DESIGN.md`). Results
//! are printed as aligned tables and written as CSV next to the workspace
//! root so `EXPERIMENTS.md` can reference them.
#![warn(missing_docs)]

pub mod ablations;
pub mod datasets;
pub mod experiments;
pub mod report;
