#![forbid(unsafe_code)]
//! `pqgram` — command-line interface to the pq-gram index.
//!
//! ```text
//! pqgram create  <store.pqg> [--p 3 --q 3] [--segmented]
//! pqgram add     <store.pqg> --id <n> <doc.xml>...
//! pqgram remove  <store.pqg> --id <n>
//! pqgram lookup  <store.pqg> <query.xml> [--tau 0.6] [--top-k K] [--top 10] [--stats]
//! pqgram stats   <store.pqg>
//! pqgram dist    <a.xml> <b.xml> [--p 3 --q 3] [--ted]
//! pqgram grams   <doc.xml> [--p 3 --q 3] [--limit 20]
//! pqgram gen     <xmark|dblp|random> [--nodes 10000] [--seed 1] [--out file.xml]
//!
//! # document store (documents + index, synced via tree diff)
//! pqgram init    <store.docs> [--p 3 --q 3]
//! pqgram put     <store.docs> --id <n> <doc.xml>
//! pqgram syncdoc <store.docs> --id <n> <new.xml>
//! pqgram get     <store.docs> --id <n> [--out file.xml]
//! pqgram find    <store.docs> <query.xml> [--tau 0.6] [--top 10]
//! pqgram diff    <a.xml> <b.xml>
//! ```
#![warn(missing_docs)]

mod args;

use args::Args;
use pqgram_core::{build_index, pq_distance, PQParams, TreeId};
use pqgram_store::document::{DocumentStore, SyncOutcome};
use pqgram_store::{
    IndexStore, LookupPlan, LookupStats, RelationBytes, SegmentedIndexStore, StoreCheck,
    MAIN_SOURCE, MEMTABLE_SOURCE,
};
use pqgram_tree::generate::{dblp, random_tree, xmark, RandomTreeConfig};
use pqgram_tree::{LabelTable, Tree};
use pqgram_xml::{parse_document, write_document, WriteOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "\
pqgram — incrementally maintainable pq-gram index (VLDB 2006)

USAGE:
  pqgram create  <store.pqg> [--p 3 --q 3]        create an index store
                 [--segmented]                    (memtable/segment layout)
  pqgram add     <store.pqg> --id <n> <doc.xml>…  index XML document(s)
                 [--threads N]                    (parallel profiling; on a
                                                  segmented store also
                                                  parallel segment builds)
  pqgram remove  <store.pqg> --id <n>             drop a document's index
  pqgram lookup  <store.pqg> <query.xml>          approximate lookup
                 [--tau 0.6] [--top 10] [--threads N]
                 [--top-k K]                      (k nearest, any distance)
                 [--stats]                        (pruning/access counters)
  pqgram stats   <store.pqg>                      store statistics
  pqgram dist    <a.xml> <b.xml> [--p --q] [--ted]  pairwise distance
  pqgram grams   <doc.xml> [--p --q] [--limit 20] dump pq-gram tuples
  pqgram gen     <xmark|dblp|random> [--nodes N] [--seed S] [--out F]

document store (documents + index in one file, synced via tree diff):
  pqgram init    <store.docs> [--p 3 --q 3]       create a document store
  pqgram put     <store.docs> --id <n> <doc.xml>  store + index a document
  pqgram syncdoc <store.docs> --id <n> <new.xml>  diff against the stored
                                                  version, update incrementally
  pqgram get     <store.docs> --id <n> [--out F]  dump a stored document
  pqgram find    <store.docs> <query.xml>         approximate lookup
  pqgram diff    <a.xml> <b.xml>                  show the derived edit script
  pqgram join    <left.pqg> <right.pqg> [--tau]   approximate join of stores
                 [--threads N] [--stats]          (parallel verification)
  pqgram show    <doc.xml> [--limit 50] [--dot]   render the document tree
  pqgram compact <store.pqg> <out.pqg>            rewrite a store compactly
  pqgram update  <store.pqg> --id <n> <old.xml> <new.xml>
                                                  incremental index update by
                                                  diffing two file versions
";

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let Some(command) = argv.next() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let args = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let result = match command.as_str() {
        "create" => cmd_create(&args),
        "add" => cmd_add(&args),
        "remove" => cmd_remove(&args),
        "lookup" => cmd_lookup(&args),
        "stats" => cmd_stats(&args),
        "dist" => cmd_dist(&args),
        "grams" => cmd_grams(&args),
        "gen" => cmd_gen(&args),
        "init" => cmd_init(&args),
        "put" => cmd_put(&args),
        "syncdoc" => cmd_syncdoc(&args),
        "get" => cmd_get(&args),
        "find" => cmd_find(&args),
        "diff" => cmd_diff(&args),
        "join" => cmd_join(&args),
        "show" => cmd_show(&args),
        "compact" => cmd_compact(&args),
        "update" => cmd_update(&args),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn params_from(args: &Args) -> Result<PQParams, String> {
    let p = args.opt_or::<usize>("p", 3)?;
    let q = args.opt_or::<usize>("q", 3)?;
    if p == 0 || q == 0 {
        return Err("p and q must be at least 1".into());
    }
    Ok(PQParams::new(p, q))
}

fn load_document(path: &str, labels: &mut LabelTable) -> Result<Tree, String> {
    let content = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_document(&content, labels).map_err(|e| format!("{path}: {e}"))
}

/// An index store of either on-disk layout. The two formats carry
/// distinct kind markers, so opening a path probes the single-file layout
/// first and falls back to the segmented manifest — commands work on both
/// without a flag.
enum AnyStore {
    Single(IndexStore),
    Segmented(SegmentedIndexStore),
}

impl AnyStore {
    fn open(path: &str) -> Result<AnyStore, String> {
        match IndexStore::open(Path::new(path)) {
            Ok(store) => Ok(AnyStore::Single(store)),
            Err(single_err) => match SegmentedIndexStore::open(Path::new(path)) {
                Ok(store) => Ok(AnyStore::Segmented(store)),
                Err(_) => Err(single_err.to_string()),
            },
        }
    }

    fn params(&self) -> PQParams {
        match self {
            AnyStore::Single(s) => s.params(),
            AnyStore::Segmented(s) => s.params(),
        }
    }

    // Segmented mutations buffer in an in-process memtable; the CLI is a
    // one-shot process, so every mutating command must flush before exit
    // or the change silently evaporates with the process.
    fn put_trees(
        &mut self,
        batch: &[(TreeId, pqgram_core::TreeIndex)],
        workers: usize,
    ) -> Result<(), String> {
        match self {
            AnyStore::Single(s) => s.put_trees(batch).map_err(|e| e.to_string()),
            AnyStore::Segmented(s) if workers > 1 => s
                .put_trees_parallel(batch, workers)
                .map_err(|e| e.to_string()),
            AnyStore::Segmented(s) => s
                .put_trees(batch)
                .and_then(|()| s.flush())
                .map_err(|e| e.to_string()),
        }
    }

    fn remove_tree(&mut self, id: TreeId) -> Result<bool, String> {
        match self {
            AnyStore::Single(s) => s.remove_tree(id).map_err(|e| e.to_string()),
            AnyStore::Segmented(s) => {
                let existed = s.remove_tree(id).map_err(|e| e.to_string())?;
                s.flush().map_err(|e| e.to_string())?;
                Ok(existed)
            }
        }
    }

    fn lookup_with_stats_threads(
        &self,
        query: &pqgram_core::TreeIndex,
        tau: f64,
        threads: usize,
    ) -> Result<(Vec<pqgram_core::LookupHit>, LookupStats), String> {
        match self {
            AnyStore::Single(s) => s
                .lookup_with_stats_threads(query, tau, threads)
                .map_err(|e| e.to_string()),
            AnyStore::Segmented(s) => s
                .lookup_with_stats_threads(query, tau, threads)
                .map_err(|e| e.to_string()),
        }
    }

    fn lookup_top_k_with_stats(
        &self,
        query: &pqgram_core::TreeIndex,
        k: usize,
    ) -> Result<(Vec<pqgram_core::LookupHit>, LookupStats), String> {
        match self {
            AnyStore::Single(s) => s.lookup_top_k_with_stats(query, k).map_err(|e| e.to_string()),
            AnyStore::Segmented(s) => {
                s.lookup_top_k_with_stats(query, k).map_err(|e| e.to_string())
            }
        }
    }

    fn tree_ids(&self) -> Result<Vec<TreeId>, String> {
        match self {
            AnyStore::Single(s) => s.tree_ids().map_err(|e| e.to_string()),
            AnyStore::Segmented(s) => s.tree_ids().map_err(|e| e.to_string()),
        }
    }

    fn tree_index(&self, id: TreeId) -> Result<Option<pqgram_core::TreeIndex>, String> {
        match self {
            AnyStore::Single(s) => s.tree_index(id).map_err(|e| e.to_string()),
            AnyStore::Segmented(s) => s.tree_index(id).map_err(|e| e.to_string()),
        }
    }

    fn verify(&self) -> Result<StoreCheck, String> {
        match self {
            AnyStore::Single(s) => s.verify().map_err(|e| e.to_string()),
            AnyStore::Segmented(s) => s.verify().map_err(|e| e.to_string()),
        }
    }
}

/// Per-relation on-disk footprint as one human-readable line.
fn describe_relation_bytes(b: &RelationBytes) -> String {
    let kib = |n: u64| format!("{:.1} KiB", n as f64 / 1024.0);
    format!(
        "forward {}, inverted {} (directory {} + blocks {}), totals {}, relations total {}",
        kib(b.forward),
        kib(b.inverted_total()),
        kib(b.inverted_directory),
        kib(b.posting_blocks),
        kib(b.totals),
        kib(b.total())
    )
}

/// `by_source` rendered as `memtable`, `seg <n>`, and `main` row counts.
fn describe_sources(stats: &LookupStats) -> String {
    stats
        .by_source
        .iter()
        .map(|&(source, rows)| match source {
            MEMTABLE_SOURCE => format!("memtable {rows}"),
            MAIN_SOURCE => format!("main {rows}"),
            seq => format!("seg {seq}: {rows}"),
        })
        .collect::<Vec<_>>()
        .join(", ")
}

fn cmd_create(args: &Args) -> Result<(), String> {
    let store_path = args.positional(0, "store.pqg")?;
    let params = params_from(args)?;
    if args.flag("segmented") {
        SegmentedIndexStore::create(Path::new(store_path), params).map_err(|e| e.to_string())?;
        println!("created segmented store {store_path} ({params}-grams)");
    } else {
        IndexStore::create(Path::new(store_path), params).map_err(|e| e.to_string())?;
        println!("created {store_path} ({params}-grams)");
    }
    Ok(())
}

fn cmd_add(args: &Args) -> Result<(), String> {
    let store_path = args.positional(0, "store.pqg")?;
    let docs = args.rest(1);
    if docs.is_empty() {
        return Err("missing <doc.xml>".into());
    }
    let first_id = args.opt::<u64>("id")?.ok_or("missing --id <n>")?;
    let threads = args.opt_or::<usize>("threads", 1)?;
    let mut store = AnyStore::open(store_path)?;
    let params = store.params();
    let mut labels = LabelTable::new();
    let mut trees = Vec::new();
    for (offset, doc) in docs.iter().enumerate() {
        let tree = load_document(doc, &mut labels)?;
        trees.push((TreeId(first_id + offset as u64), tree));
    }
    // Profile in parallel (pure and deterministic per document), then feed
    // the whole batch to the writer: one transaction on a single-file
    // store, one segment per worker on a segmented one.
    let batch: Vec<(TreeId, pqgram_core::TreeIndex)> =
        pqgram_core::par::map(&trees, threads, |(id, tree)| {
            (*id, build_index(tree, &labels, params))
        });
    store.put_trees(&batch, threads)?;
    for (((id, tree), (_, index)), doc) in trees.iter().zip(&batch).zip(docs) {
        println!(
            "indexed {doc} as tree {}: {} nodes, {} pq-grams ({} distinct)",
            id.0,
            tree.node_count(),
            index.total(),
            index.distinct()
        );
    }
    Ok(())
}

fn cmd_remove(args: &Args) -> Result<(), String> {
    let store_path = args.positional(0, "store.pqg")?;
    let id = args.opt::<u64>("id")?.ok_or("missing --id <n>")?;
    let mut store = AnyStore::open(store_path)?;
    if store.remove_tree(TreeId(id))? {
        println!("removed tree {id}");
        Ok(())
    } else {
        Err(format!("tree {id} is not in the store"))
    }
}

fn cmd_lookup(args: &Args) -> Result<(), String> {
    let store_path = args.positional(0, "store.pqg")?;
    let query_path = args.positional(1, "query.xml")?;
    let tau = args.opt_or::<f64>("tau", 0.6)?;
    let top = args.opt_or::<usize>("top", 10)?;
    let threads = args.opt_or::<usize>("threads", 1)?;
    let store = AnyStore::open(store_path)?;
    let mut labels = LabelTable::new();
    let query_tree = load_document(query_path, &mut labels)?;
    let query = build_index(&query_tree, &labels, store.params());
    let top_k = args.opt::<usize>("top-k")?;
    let (hits, stats) = match top_k {
        // --top-k: the k nearest trees regardless of any threshold, via
        // the heap-tightened planner bound.
        Some(k) => store.lookup_top_k_with_stats(&query, k)?,
        None => store.lookup_with_stats_threads(&query, tau, threads)?,
    };
    let plan = match stats.plan {
        LookupPlan::CandidateMerge => "inverted candidate-merge",
        LookupPlan::ExhaustiveReference => "exhaustive scan (reference)",
    };
    match top_k {
        Some(k) => eprintln!("plan: {plan} (top-k = {k})"),
        None => eprintln!("plan: {plan} (tau = {tau})"),
    }
    if args.flag("stats") {
        println!(
            "plan: {plan} ({} rows read, {} grams probed, {} candidates, {} verified)",
            stats.rows_read, stats.grams_probed, stats.candidates, stats.verified
        );
        println!(
            "pruning: {} sources considered, {} skipped by filter, {} skipped by size \
             window; {} grams skipped by filter, {} by overlap budget; {} rows pruned by \
             size window, {} filter false-positive probes",
            stats.sources_considered,
            stats.sources_skipped_filter,
            stats.sources_skipped_window,
            stats.grams_skipped_filter,
            stats.grams_skipped_budget,
            stats.rows_pruned_window,
            stats.filter_false_positive_probes
        );
        println!(
            "postings: {} blocks decoded ({} bytes), {} blocks skipped",
            stats.blocks_decoded, stats.bytes_decoded, stats.blocks_skipped
        );
        println!("rows by source: {}", describe_sources(&stats));
    }
    if hits.is_empty() {
        match top_k {
            Some(_) => println!("no documents in the store"),
            None => println!("no documents within distance {tau}"),
        }
        return Ok(());
    }
    println!("{:>8}  {:>10}", "tree", "distance");
    for hit in hits.iter().take(top) {
        println!("{:>8}  {:>10.4}", hit.tree_id.0, hit.distance);
    }
    if hits.len() > top {
        println!("… {} more below tau (raise --top)", hits.len() - top);
    }
    Ok(())
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    let store_path = args.positional(0, "store.pqg")?;
    let store = AnyStore::open(store_path)?;
    let ids = store.tree_ids()?;
    println!("store:      {store_path}");
    println!("params:     {}-grams", store.params());
    println!("documents:  {}", ids.len());
    match &store {
        AnyStore::Single(s) => {
            let rows = s.row_count().map_err(|e| e.to_string())?;
            let file_len = std::fs::metadata(store_path).map(|m| m.len()).unwrap_or(0);
            println!("index rows: {rows}");
            println!("file size:  {:.1} KiB", file_len as f64 / 1024.0);
            let bytes = s.relation_bytes().map_err(|e| e.to_string())?;
            println!("on disk:    {}", describe_relation_bytes(&bytes));
        }
        AnyStore::Segmented(s) => {
            println!(
                "layout:     segmented (generation {}, {} live segment(s), {} buffered \
                 memtable entries)",
                s.generation(),
                s.segment_count(),
                s.pending_entries()
            );
            let mut sum = RelationBytes::default();
            for (source, bytes) in s.relation_bytes().map_err(|e| e.to_string())? {
                let name = match source {
                    MAIN_SOURCE => "main".to_string(),
                    seq => format!("seg {seq}"),
                };
                println!("  {name:<9} {}", describe_relation_bytes(&bytes));
                sum.forward += bytes.forward;
                sum.inverted_directory += bytes.inverted_directory;
                sum.posting_blocks += bytes.posting_blocks;
                sum.totals += bytes.totals;
            }
            println!("  {:<9} {}", "all", describe_relation_bytes(&sum));
        }
    }
    if args.flag("verify") {
        let check = store.verify()?;
        println!(
            "integrity:  ok ({} trees; forward {} entries depth {}, inverted {} entries depth {}, \
             totals {} entries)",
            check.trees,
            check.forward.entries,
            check.forward.depth,
            check.inverted.entries,
            check.inverted.depth,
            check.totals.entries
        );
    }
    for id in ids.iter().take(20) {
        if let Some(idx) = store.tree_index(*id)? {
            println!(
                "  tree {:>6}: {:>8} grams ({} distinct)",
                id.0,
                idx.total(),
                idx.distinct()
            );
        }
    }
    if ids.len() > 20 {
        println!("  … {} more", ids.len() - 20);
    }
    Ok(())
}

fn cmd_dist(args: &Args) -> Result<(), String> {
    let a_path = args.positional(0, "a.xml")?;
    let b_path = args.positional(1, "b.xml")?;
    let params = params_from(args)?;
    let mut labels = LabelTable::new();
    let a = load_document(a_path, &mut labels)?;
    let b = load_document(b_path, &mut labels)?;
    let d = pq_distance(
        &build_index(&a, &labels, params),
        &build_index(&b, &labels, params),
    )
    .map_err(|e| e.to_string())?;
    println!("pq-gram distance ({params}-grams): {d:.6}");
    if args.flag("ted") {
        let ted = pqgram_ted::tree_edit_distance(&a, &b);
        println!("exact tree edit distance:        {ted}");
    }
    Ok(())
}

fn cmd_grams(args: &Args) -> Result<(), String> {
    let doc_path = args.positional(0, "doc.xml")?;
    let params = params_from(args)?;
    let limit = args.opt_or::<usize>("limit", 20)?;
    let mut labels = LabelTable::new();
    let tree = load_document(doc_path, &mut labels)?;
    let mut shown = 0usize;
    let mut total = 0usize;
    pqgram_core::for_each_gram(&tree, params, |ppart, qpart| {
        total += 1;
        if shown < limit {
            let fmt = |e: &pqgram_core::GramNode| labels.name(e.label()).to_string();
            let pp: Vec<_> = ppart.iter().map(fmt).collect();
            let qp: Vec<_> = qpart.iter().map(fmt).collect();
            println!("({} | {})", pp.join(","), qp.join(","));
            shown += 1;
        }
    });
    if total > shown {
        println!("… {} more ({} total)", total - shown, total);
    }
    Ok(())
}

fn cmd_gen(args: &Args) -> Result<(), String> {
    let kind = args.positional(0, "xmark|dblp|random")?;
    let nodes = args.opt_or::<usize>("nodes", 10_000)?;
    let seed = args.opt_or::<u64>("seed", 1)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut labels = LabelTable::new();
    let tree = match kind {
        "xmark" => xmark(&mut rng, &mut labels, nodes),
        "dblp" => dblp(&mut rng, &mut labels, nodes),
        "random" => random_tree(&mut rng, &mut labels, &RandomTreeConfig::new(nodes, 12)),
        other => return Err(format!("unknown generator {other:?} (xmark|dblp|random)")),
    };
    let xml = write_document(
        &tree,
        &labels,
        &WriteOptions {
            indent: None,
            declaration: true,
        },
    );
    match args.opt::<String>("out")? {
        Some(path) => {
            std::fs::write(&path, &xml).map_err(|e| format!("cannot write {path}: {e}"))?;
            println!(
                "wrote {} ({} nodes, {:.1} KiB)",
                path,
                tree.node_count(),
                xml.len() as f64 / 1024.0
            );
        }
        None => print!("{xml}"),
    }
    Ok(())
}

fn cmd_init(args: &Args) -> Result<(), String> {
    let store_path = args.positional(0, "store.docs")?;
    let params = params_from(args)?;
    DocumentStore::create(Path::new(store_path), params).map_err(|e| e.to_string())?;
    println!("created document store {store_path} ({params}-grams)");
    Ok(())
}

fn cmd_put(args: &Args) -> Result<(), String> {
    let store_path = args.positional(0, "store.docs")?;
    let doc = args.positional(1, "doc.xml")?;
    let id = args.opt::<u64>("id")?.ok_or("missing --id <n>")?;
    let mut store = DocumentStore::open(Path::new(store_path)).map_err(|e| e.to_string())?;
    let mut labels = LabelTable::new();
    let tree = load_document(doc, &mut labels)?;
    store
        .put(TreeId(id), &tree, &labels)
        .map_err(|e| e.to_string())?;
    println!(
        "stored {doc} as document {id} ({} nodes)",
        tree.node_count()
    );
    Ok(())
}

fn cmd_syncdoc(args: &Args) -> Result<(), String> {
    let store_path = args.positional(0, "store.docs")?;
    let doc = args.positional(1, "new.xml")?;
    let id = args.opt::<u64>("id")?.ok_or("missing --id <n>")?;
    let mut store = DocumentStore::open(Path::new(store_path)).map_err(|e| e.to_string())?;
    let mut labels = LabelTable::new();
    let tree = load_document(doc, &mut labels)?;
    match store
        .sync(TreeId(id), &tree, &labels)
        .map_err(|e| e.to_string())?
    {
        SyncOutcome::Incremental {
            script_len,
            optimized_len,
            stats,
        } => {
            println!(
                "synced document {id}: {script_len} derived edits ({optimized_len} after \
                 preprocessing), index updated incrementally in {:.2?} \
                 (+{} / -{} grams)",
                stats.total(),
                stats.plus_grams,
                stats.minus_grams,
            );
        }
        SyncOutcome::Reindexed => {
            println!("synced document {id}: root changed, re-indexed from scratch");
        }
    }
    Ok(())
}

fn cmd_get(args: &Args) -> Result<(), String> {
    let store_path = args.positional(0, "store.docs")?;
    let id = args.opt::<u64>("id")?.ok_or("missing --id <n>")?;
    let store = DocumentStore::open(Path::new(store_path)).map_err(|e| e.to_string())?;
    let Some((tree, labels)) = store.document(TreeId(id)).map_err(|e| e.to_string())? else {
        return Err(format!("document {id} is not in the store"));
    };
    let xml = write_document(
        &tree,
        &labels,
        &WriteOptions {
            indent: Some(2),
            declaration: true,
        },
    );
    match args.opt::<String>("out")? {
        Some(path) => {
            std::fs::write(&path, &xml).map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("wrote {path} ({} nodes)", tree.node_count());
        }
        None => print!("{xml}"),
    }
    Ok(())
}

fn cmd_find(args: &Args) -> Result<(), String> {
    let store_path = args.positional(0, "store.docs")?;
    let query_path = args.positional(1, "query.xml")?;
    let tau = args.opt_or::<f64>("tau", 0.6)?;
    let top = args.opt_or::<usize>("top", 10)?;
    let store = DocumentStore::open(Path::new(store_path)).map_err(|e| e.to_string())?;
    let mut labels = LabelTable::new();
    let query_tree = load_document(query_path, &mut labels)?;
    let query = build_index(&query_tree, &labels, store.params());
    let hits = store.lookup(&query, tau).map_err(|e| e.to_string())?;
    if hits.is_empty() {
        println!("no documents within distance {tau}");
        return Ok(());
    }
    println!("{:>8}  {:>10}", "doc", "distance");
    for hit in hits.iter().take(top) {
        println!("{:>8}  {:>10.4}", hit.tree_id.0, hit.distance);
    }
    Ok(())
}

fn cmd_diff(args: &Args) -> Result<(), String> {
    let a_path = args.positional(0, "a.xml")?;
    let b_path = args.positional(1, "b.xml")?;
    let mut labels = LabelTable::new();
    let mut a = load_document(a_path, &mut labels)?;
    let mut b_labels = LabelTable::new();
    let b = load_document(b_path, &mut b_labels)?;
    let log = pqgram_diff::sync(&mut a, &mut labels, &b, &b_labels).map_err(|e| e.to_string())?;
    println!(
        "{} edit operations transform {a_path} into {b_path}:",
        log.len()
    );
    for (i, entry) in log.ops().iter().enumerate().take(50) {
        use pqgram_tree::EditOp;
        // The log holds inverse operations; print the forward reading.
        let line = match entry.op {
            EditOp::Delete { node } => format!("INS {node:?}"),
            EditOp::Insert { node, .. } => format!("DEL {node:?}"),
            EditOp::Rename { node, label } => {
                format!("REN {node:?} (was {:?})", labels.name(label))
            }
        };
        println!("  {:>4}. {line}", i + 1);
    }
    if log.len() > 50 {
        println!("  … {} more", log.len() - 50);
    }
    Ok(())
}

fn cmd_join(args: &Args) -> Result<(), String> {
    let left_path = args.positional(0, "left.pqg")?;
    let right_path = args.positional(1, "right.pqg")?;
    let tau = args.opt_or::<f64>("tau", 0.5)?;
    let top = args.opt_or::<usize>("top", 20)?;
    let threads = args.opt_or::<usize>("threads", 1)?;
    let load = |path: &str| -> Result<pqgram_core::ForestIndex, String> {
        let store = IndexStore::open(Path::new(path)).map_err(|e| e.to_string())?;
        let mut forest = pqgram_core::ForestIndex::new();
        for id in store.tree_ids().map_err(|e| e.to_string())? {
            let idx = store
                .tree_index(id)
                .map_err(|e| e.to_string())?
                .expect("listed id present");
            forest.insert(id, idx);
        }
        Ok(forest)
    };
    let left = load(left_path)?;
    let right = load(right_path)?;
    let (pairs, stats) =
        pqgram_core::join_parallel(&left, &right, tau, threads).map_err(|e| e.to_string())?;
    let plan = if stats.used_filter {
        "inverted candidate filter"
    } else {
        "exhaustive nested scan"
    };
    // tau > 1 silently falls off the filtered plan; always say so on stderr.
    eprintln!("plan: {plan} (tau = {tau})");
    if args.flag("stats") {
        println!(
            "plan: {plan} ({} naive, {} candidates, {} verified)",
            stats.pairs_naive, stats.pairs_candidates, stats.pairs_verified
        );
    }
    println!(
        "join of {} x {} trees (tau = {tau}): {} pairs \
         ({} naive -> {} candidates -> {} verified)",
        left.len(),
        right.len(),
        pairs.len(),
        stats.pairs_naive,
        stats.pairs_candidates,
        stats.pairs_verified
    );
    println!("{:>8} {:>8} {:>10}", "left", "right", "distance");
    for p in pairs.iter().take(top) {
        println!("{:>8} {:>8} {:>10.4}", p.left.0, p.right.0, p.distance);
    }
    if pairs.len() > top {
        println!("… {} more (raise --top)", pairs.len() - top);
    }
    Ok(())
}

fn cmd_show(args: &Args) -> Result<(), String> {
    let doc_path = args.positional(0, "doc.xml")?;
    let limit = args.opt_or::<usize>("limit", 50)?;
    let mut labels = LabelTable::new();
    let tree = load_document(doc_path, &mut labels)?;
    if args.flag("dot") {
        print!("{}", pqgram_tree::render::render_dot(&tree, &labels, limit));
    } else {
        print!(
            "{}",
            pqgram_tree::render::render_text(&tree, &labels, tree.root(), limit)
        );
    }
    Ok(())
}

fn cmd_compact(args: &Args) -> Result<(), String> {
    let src = args.positional(0, "store.pqg")?;
    let dst = args.positional(1, "out.pqg")?;
    let store = IndexStore::open(Path::new(src)).map_err(|e| e.to_string())?;
    let compacted = store
        .compact_to(Path::new(dst))
        .map_err(|e| e.to_string())?;
    compacted.verify().map_err(|e| e.to_string())?;
    let before = std::fs::metadata(src).map(|m| m.len()).unwrap_or(0);
    let after = std::fs::metadata(dst).map(|m| m.len()).unwrap_or(0);
    println!(
        "compacted {src} ({:.1} KiB) -> {dst} ({:.1} KiB)",
        before as f64 / 1024.0,
        after as f64 / 1024.0
    );
    Ok(())
}

fn cmd_update(args: &Args) -> Result<(), String> {
    let store_path = args.positional(0, "store.pqg")?;
    let old_path = args.positional(1, "old.xml")?;
    let new_path = args.positional(2, "new.xml")?;
    let id = args.opt::<u64>("id")?.ok_or("missing --id <n>")?;
    let mut store = IndexStore::open(Path::new(store_path)).map_err(|e| e.to_string())?;
    // Parsing is deterministic, so re-parsing old.xml reproduces the exact
    // arena the stored index was built from.
    let mut labels = LabelTable::new();
    let mut tree = load_document(old_path, &mut labels)?;
    let mut new_labels = LabelTable::new();
    let new_tree = load_document(new_path, &mut new_labels)?;
    let log = pqgram_diff::sync(&mut tree, &mut labels, &new_tree, &new_labels)
        .map_err(|e| e.to_string())?;
    let (optimized, opt_stats) = pqgram_tree::optimize_log(&tree, &log);
    let stats = store
        .update_from_log(TreeId(id), &tree, &labels, &optimized)
        .map_err(|e| e.to_string())?;
    println!(
        "updated tree {id}: {} derived edits ({} after preprocessing)",
        opt_stats.original_len, opt_stats.optimized_len
    );
    println!("  {stats}");
    Ok(())
}
