//! Tiny dependency-free argument parser: positionals plus `--key value` /
//! `--flag` options.

use std::collections::BTreeMap;

/// Parsed command line: positional arguments and named options.
#[derive(Debug, Default, Clone)]
pub struct Args {
    positional: Vec<String>,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

/// Option names that take a value (everything else passed as `--x` is a
/// boolean flag).
const VALUED: &[&str] = &[
    "p", "q", "tau", "top", "top-k", "nodes", "seed", "out", "limit", "edits", "id", "threads",
];

impl Args {
    /// Parses raw arguments (without the program/subcommand names).
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Args, String> {
        let mut args = Args::default();
        let mut iter = raw.into_iter();
        while let Some(a) = iter.next() {
            if let Some(name) = a.strip_prefix("--") {
                if VALUED.contains(&name) {
                    let value = iter
                        .next()
                        .ok_or_else(|| format!("option --{name} requires a value"))?;
                    args.options.insert(name.to_string(), value);
                } else {
                    args.flags.push(name.to_string());
                }
            } else {
                args.positional.push(a);
            }
        }
        Ok(args)
    }

    /// The `i`-th positional argument, or an error naming it.
    pub fn positional(&self, i: usize, name: &str) -> Result<&str, String> {
        self.positional
            .get(i)
            .map(String::as_str)
            .ok_or_else(|| format!("missing <{name}>"))
    }

    /// All positional arguments from index `i` on.
    pub fn rest(&self, i: usize) -> &[String] {
        self.positional.get(i..).unwrap_or(&[])
    }

    /// An optional `--key value` parsed into `T`.
    pub fn opt<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.options.get(name) {
            None => Ok(None),
            Some(raw) => raw
                .parse::<T>()
                .map(Some)
                .map_err(|_| format!("invalid value {raw:?} for --{name}")),
        }
    }

    /// `--key value` with a default.
    pub fn opt_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        Ok(self.opt(name)?.unwrap_or(default))
    }

    /// True if `--name` was passed as a flag.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Args {
        Args::parse(words.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn positionals_and_options() {
        let a = parse(&["store.pqg", "--p", "2", "--tau", "0.5", "doc.xml", "--ted"]);
        assert_eq!(a.positional(0, "store").unwrap(), "store.pqg");
        assert_eq!(a.positional(1, "doc").unwrap(), "doc.xml");
        assert_eq!(a.opt::<usize>("p").unwrap(), Some(2));
        assert_eq!(a.opt_or::<f64>("tau", 1.0).unwrap(), 0.5);
        assert_eq!(a.opt_or::<usize>("q", 3).unwrap(), 3);
        assert!(a.flag("ted"));
        assert!(!a.flag("json"));
    }

    #[test]
    fn missing_positional_is_an_error() {
        let a = parse(&[]);
        assert!(a.positional(0, "store").unwrap_err().contains("store"));
    }

    #[test]
    fn valued_option_requires_value() {
        let err = Args::parse(["--p".to_string()]).unwrap_err();
        assert!(err.contains("--p"));
    }

    #[test]
    fn bad_value_reported() {
        let a = parse(&["--p", "abc"]);
        assert!(a.opt::<usize>("p").unwrap_err().contains("abc"));
    }

    #[test]
    fn rest_collects_tail() {
        let a = parse(&["cmd", "a.xml", "b.xml", "c.xml"]);
        assert_eq!(a.rest(1).len(), 3);
        assert!(a.rest(9).is_empty());
    }
}
