//! End-to-end tests driving the real `pqgram` binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_pqgram")
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn workdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pqgram-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn p(dir: &std::path::Path, name: &str) -> String {
    dir.join(name).to_string_lossy().into_owned()
}

#[test]
fn full_index_store_workflow() {
    let dir = workdir().join("flow1");
    std::fs::create_dir_all(&dir).unwrap();
    let a = p(&dir, "a.xml");
    let b = p(&dir, "b.xml");
    let store = p(&dir, "store.pqg");
    std::fs::remove_file(&store).ok();

    assert!(
        run(&["gen", "dblp", "--nodes", "800", "--seed", "1", "--out", &a])
            .status
            .success()
    );
    assert!(
        run(&["gen", "dblp", "--nodes", "800", "--seed", "2", "--out", &b])
            .status
            .success()
    );
    assert!(run(&["create", &store, "--p", "2", "--q", "3"])
        .status
        .success());
    let out = run(&["add", &store, "--id", "1", &a, &b]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("indexed"));

    let out = run(&["lookup", &store, &a, "--tau", "0.99"]);
    assert!(out.status.success());
    let text = stdout(&out);
    let first_hit = text.lines().nth(1).expect("at least one hit");
    assert!(
        first_hit.trim_start().starts_with('1'),
        "own document first: {text}"
    );
    assert!(first_hit.contains("0.0000"));

    let out = run(&["stats", &store]);
    assert!(stdout(&out).contains("documents:  2"), "{}", stdout(&out));

    assert!(run(&["remove", &store, "--id", "2"]).status.success());
    let out = run(&["stats", &store]);
    assert!(stdout(&out).contains("documents:  1"));
    // Removing again fails cleanly.
    let out = run(&["remove", &store, "--id", "2"]);
    assert!(!out.status.success());
}

#[test]
fn document_store_workflow_with_sync() {
    let dir = workdir().join("flow2");
    std::fs::create_dir_all(&dir).unwrap();
    let v1 = p(&dir, "v1.xml");
    let store = p(&dir, "docs.docs");
    std::fs::remove_file(&store).ok();

    assert!(
        run(&["gen", "xmark", "--nodes", "600", "--seed", "3", "--out", &v1])
            .status
            .success()
    );
    // v2: a small textual edit.
    let content = std::fs::read_to_string(&v1)
        .unwrap()
        .replace("cat0", "cat0x");
    let v2 = p(&dir, "v2.xml");
    std::fs::write(&v2, content).unwrap();

    assert!(run(&["init", &store]).status.success());
    assert!(run(&["put", &store, "--id", "7", &v1]).status.success());
    let out = run(&["syncdoc", &store, "--id", "7", &v2]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("derived edits"), "{}", stdout(&out));

    // Round-trip the stored document and confirm it matches v2's tree.
    let round = p(&dir, "round.xml");
    assert!(run(&["get", &store, "--id", "7", "--out", &round])
        .status
        .success());
    let out = run(&["dist", &v2, &round]);
    assert!(stdout(&out).contains("0.000000"), "{}", stdout(&out));

    let out = run(&["find", &store, &v2, "--tau", "0.5"]);
    assert!(stdout(&out).contains("0.0000"));
}

#[test]
fn diff_prints_script() {
    let dir = workdir().join("flow3");
    std::fs::create_dir_all(&dir).unwrap();
    let a = p(&dir, "a.xml");
    std::fs::write(&a, "<r><x>one</x><y/></r>").unwrap();
    let b = p(&dir, "b.xml");
    std::fs::write(&b, "<r><x>two</x><y/><z/></r>").unwrap();
    let out = run(&["diff", &a, &b]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("edit operations"), "{text}");
    assert!(text.contains("REN") || text.contains("INS"), "{text}");
}

#[test]
fn dist_with_ted() {
    let dir = workdir().join("flow4");
    std::fs::create_dir_all(&dir).unwrap();
    let a = p(&dir, "a.xml");
    std::fs::write(&a, "<r><x/><y/></r>").unwrap();
    let b = p(&dir, "b.xml");
    std::fs::write(&b, "<r><x/><z/></r>").unwrap();
    let out = run(&["dist", &a, &b, "--ted"]);
    let text = stdout(&out);
    assert!(text.contains("pq-gram distance"));
    assert!(
        text.contains("exact tree edit distance:        1"),
        "{text}"
    );
}

#[test]
fn errors_are_reported_not_panicked() {
    let out = run(&["lookup", "/nonexistent/store.pqg", "/nonexistent/query.xml"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("error:"));

    let out = run(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown command"));

    let out = run(&["gen", "nope"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown generator"));

    let out = run(&[]);
    assert!(!out.status.success());
}

#[test]
fn grams_dump_limited() {
    let dir = workdir().join("flow5");
    std::fs::create_dir_all(&dir).unwrap();
    let a = p(&dir, "a.xml");
    std::fs::write(&a, "<r><x/><y/><z/></r>").unwrap();
    let out = run(&["grams", &a, "--limit", "2", "--p", "2", "--q", "2"]);
    let text = stdout(&out);
    assert!(out.status.success());
    assert_eq!(
        text.lines().filter(|l| l.starts_with('(')).count(),
        2,
        "{text}"
    );
    assert!(text.contains("more"));
}

#[test]
fn file_based_incremental_update() {
    let dir = workdir().join("flow6");
    std::fs::create_dir_all(&dir).unwrap();
    let old = p(&dir, "old.xml");
    let newer = p(&dir, "new.xml");
    let store = p(&dir, "store.pqg");
    std::fs::remove_file(&store).ok();

    assert!(
        run(&["gen", "dblp", "--nodes", "1500", "--seed", "8", "--out", &old])
            .status
            .success()
    );
    let content = std::fs::read_to_string(&old)
        .unwrap()
        .replace("venue0", "venue0-renamed");
    std::fs::write(&newer, content).unwrap();

    assert!(run(&["create", &store]).status.success());
    assert!(run(&["add", &store, "--id", "3", &old]).status.success());
    let out = run(&["update", &store, "--id", "3", &old, &newer]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("derived edits"), "{}", stdout(&out));

    // The updated index must now match the new version exactly.
    let out = run(&["lookup", &store, &newer, "--tau", "0.1"]);
    let text = stdout(&out);
    assert!(text.contains("0.0000"), "{text}");
    // …and no longer match the old version at distance zero.
    let out = run(&["lookup", &store, &old, "--tau", "0.0001"]);
    assert!(stdout(&out).contains("no documents"), "{}", stdout(&out));
}
