//! A fast, non-cryptographic hasher for internal hash maps.
//!
//! The workspace deliberately avoids external utility crates; this is the
//! classic Fx multiply-rotate hash (as used by rustc) implemented in ~40
//! lines. HashDoS resistance is not required: keys are internal node ids,
//! interned label symbols and fingerprints, never attacker-controlled maps.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher; very fast for short fixed-size keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, i * 2);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&i), Some(&(i * 2)));
        }
    }

    #[test]
    fn hash_differs_for_nearby_keys() {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let b: BuildHasherDefault<FxHasher> = Default::default();
        let h1 = b.hash_one(1u64);
        let h2 = b.hash_one(2u64);
        assert_ne!(h1, h2);
    }

    #[test]
    fn byte_writes_equivalent_lengths_do_not_collide_trivially() {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let b: BuildHasherDefault<FxHasher> = Default::default();
        let h1 = b.hash_one([1u8, 2, 3].as_slice());
        let h2 = b.hash_one([3u8, 2, 1].as_slice());
        assert_ne!(h1, h2);
    }
}
