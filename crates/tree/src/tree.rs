//! Ordered labeled trees with stable node identifiers (Section 3.1).
//!
//! A [`Tree`] is an arena of node slots. [`NodeId`]s index the arena and are
//! **never reused**: deleting a node leaves a dead slot behind so that an edit
//! log recorded against an earlier version of the tree can still refer to the
//! node, and so that the node can be resurrected by the inverse insert with
//! the same identity — the paper's proofs equate nodes of different tree
//! versions by `(identifier, label)`.

use crate::label::LabelSym;
use std::fmt;

/// Identifier of a node, unique and stable within one [`Tree`] lineage.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    const NONE: u32 = u32::MAX;

    /// Raw arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a raw index (for deserialization).
    #[inline]
    pub fn from_index(index: usize) -> Self {
        let v = u32::try_from(index).expect("node index overflow");
        assert_ne!(v, Self::NONE, "node index collides with sentinel");
        NodeId(v)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[derive(Clone, PartialEq, Eq)]
struct Slot {
    label: LabelSym,
    /// Parent id, or `NodeId::NONE` packed as raw sentinel for the root/dead.
    parent: u32,
    children: Vec<NodeId>,
    alive: bool,
}

/// An ordered labeled tree.
///
/// Nodes are created through [`Tree::with_root`], [`Tree::add_child`] or the
/// edit operations in [`crate::edit`]. Structural navigation (`parent`,
/// `children`, `sibling_pos`, ancestor/descendant queries) is O(1) or output
/// sensitive.
#[derive(Clone)]
pub struct Tree {
    slots: Vec<Slot>,
    root: NodeId,
    alive: usize,
}

impl Tree {
    /// Creates a tree consisting of a single root node.
    pub fn with_root(label: LabelSym) -> Self {
        Tree {
            slots: vec![Slot {
                label,
                parent: NodeId::NONE,
                children: Vec::new(),
                alive: true,
            }],
            root: NodeId(0),
            alive: 1,
        }
    }

    /// The root node. The paper assumes the root is never edited.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of live nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.alive
    }

    /// Number of arena slots ever allocated (live + dead).
    #[inline]
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// True if `node` refers to a live node of this tree.
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        self.slots.get(node.index()).is_some_and(|s| s.alive)
    }

    /// The id the next allocated node will get.
    #[inline]
    pub fn next_node_id(&self) -> NodeId {
        NodeId::from_index(self.slots.len())
    }

    /// Label of a live node.
    #[inline]
    pub fn label(&self, node: NodeId) -> LabelSym {
        let s = &self.slots[node.index()];
        debug_assert!(s.alive, "label() on dead node {node:?}");
        s.label
    }

    /// Parent of a live node (`None` for the root).
    #[inline]
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        let s = &self.slots[node.index()];
        debug_assert!(s.alive, "parent() on dead node {node:?}");
        (s.parent != NodeId::NONE).then_some(NodeId(s.parent))
    }

    /// Children of a node, in sibling order.
    #[inline]
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.slots[node.index()].children
    }

    /// Fanout (number of children).
    #[inline]
    pub fn fanout(&self, node: NodeId) -> usize {
        self.children(node).len()
    }

    /// True if `node` has no children.
    #[inline]
    pub fn is_leaf(&self, node: NodeId) -> bool {
        self.children(node).is_empty()
    }

    /// 1-based position of `node` among its siblings (the paper's `k` such
    /// that `node` is the k-th child of its parent). Returns `None` for the
    /// root.
    pub fn sibling_pos(&self, node: NodeId) -> Option<usize> {
        let parent = self.parent(node)?;
        let pos = self
            .children(parent)
            .iter()
            .position(|&c| c == node)
            .expect("child list inconsistent with parent pointer");
        Some(pos + 1)
    }

    /// Ancestor of `node` at distance `dist` (`dist = 0` is the node itself,
    /// `1` the parent, …). `None` if the root is closer than `dist`.
    pub fn ancestor_at(&self, node: NodeId, dist: usize) -> Option<NodeId> {
        let mut cur = node;
        for _ in 0..dist {
            cur = self.parent(cur)?;
        }
        Some(cur)
    }

    /// Iterator over ancestors from the parent up to the root.
    pub fn ancestors(&self, node: NodeId) -> Ancestors<'_> {
        Ancestors {
            tree: self,
            cur: self.parent(node),
        }
    }

    /// The paper's `desc_d(n)`: `n` together with all descendants within
    /// distance `d`, in preorder. `desc_0(n) = {n}`.
    pub fn descendants_within(&self, node: NodeId, d: usize) -> Vec<NodeId> {
        let mut out = Vec::new();
        // (node, remaining depth budget)
        let mut stack = vec![(node, d)];
        while let Some((n, budget)) = stack.pop() {
            out.push(n);
            if budget > 0 {
                for &c in self.children(n).iter().rev() {
                    stack.push((c, budget - 1));
                }
            }
        }
        out
    }

    /// Preorder traversal of the subtree rooted at `node`.
    pub fn preorder(&self, node: NodeId) -> Preorder<'_> {
        Preorder {
            tree: self,
            stack: vec![node],
        }
    }

    /// Postorder traversal of the subtree rooted at `node`.
    /// (Left-to-right postorder, as used by Zhang–Shasha.)
    pub fn postorder(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        // Two-stack iterative postorder.
        let mut stack = vec![node];
        while let Some(n) = stack.pop() {
            out.push(n);
            stack.extend_from_slice(self.children(n));
        }
        out.reverse();
        out
    }

    /// Number of nodes in the subtree rooted at `node`.
    pub fn subtree_size(&self, node: NodeId) -> usize {
        self.preorder(node).count()
    }

    /// Length of the longest root-to-leaf path (a single node has depth 1).
    pub fn depth(&self) -> usize {
        let mut max = 0usize;
        let mut stack = vec![(self.root, 1usize)];
        while let Some((n, d)) = stack.pop() {
            max = max.max(d);
            for &c in self.children(n) {
                stack.push((c, d + 1));
            }
        }
        max
    }

    /// Depth of `node` below the root (root has depth 0).
    pub fn node_depth(&self, node: NodeId) -> usize {
        self.ancestors(node).count()
    }

    /// Appends a new child with `label` to `parent`, returning its id.
    pub fn add_child(&mut self, parent: NodeId, label: LabelSym) -> NodeId {
        debug_assert!(self.contains(parent), "add_child to dead node {parent:?}");
        let id = self.alloc(label, parent);
        self.slots[parent.index()].children.push(id);
        id
    }

    /// Inserts a new child with `label` under `parent` at 1-based position
    /// `pos` (existing children at `pos..` shift right). Unlike the INS edit
    /// operation this never re-parents existing children.
    pub fn insert_leaf_at(&mut self, parent: NodeId, pos: usize, label: LabelSym) -> NodeId {
        assert!(
            pos >= 1 && pos <= self.fanout(parent) + 1,
            "position out of range"
        );
        let id = self.alloc(label, parent);
        self.slots[parent.index()].children.insert(pos - 1, id);
        id
    }

    fn alloc(&mut self, label: LabelSym, parent: NodeId) -> NodeId {
        let id = NodeId::from_index(self.slots.len());
        self.slots.push(Slot {
            label,
            parent: parent.0,
            children: Vec::new(),
            alive: true,
        });
        self.alive += 1;
        id
    }

    // ----- internal mutators used by `edit::apply` -------------------------

    pub(crate) fn set_label(&mut self, node: NodeId, label: LabelSym) {
        debug_assert!(self.contains(node), "set_label on dead node {node:?}");
        self.slots[node.index()].label = label;
    }

    /// Implements `INS(n, v, k, m)` with an explicit node identity: creates
    /// (or resurrects) slot `node`, substitutes children `k..=m` of `parent`
    /// with it and re-parents them under `node`. Validity must have been
    /// checked by the caller.
    pub(crate) fn insert_node(
        &mut self,
        node: NodeId,
        label: LabelSym,
        parent: NodeId,
        k: usize,
        m: usize,
    ) {
        // Grow the arena with dead slots if the id is from a future version.
        while self.slots.len() <= node.index() {
            self.slots.push(Slot {
                label: LabelSym::NULL,
                parent: NodeId::NONE,
                children: Vec::new(),
                alive: false,
            });
        }
        let slot = &mut self.slots[node.index()];
        debug_assert!(!slot.alive, "insert of an already-live node");
        slot.label = label;
        slot.parent = parent.0;
        slot.alive = true;
        self.alive += 1;

        // Move children c_k..c_m of the parent under `node`.
        let moved: Vec<NodeId> = if m >= k {
            self.slots[parent.index()]
                .children
                .splice(k - 1..m, [node])
                .collect()
        } else {
            // Leaf insert: m = k - 1, nothing moves.
            self.slots[parent.index()].children.insert(k - 1, node);
            Vec::new()
        };
        for &c in &moved {
            self.slots[c.index()].parent = node.0;
        }
        self.slots[node.index()].children = moved;
    }

    /// Implements `DEL(n)`: removes `node` and splices its children into its
    /// parent's child list at `node`'s position. Validity must have been
    /// checked by the caller. The slot stays allocated (dead) so the id is
    /// never reused.
    pub(crate) fn delete_node(&mut self, node: NodeId) {
        let parent = self.parent(node).expect("cannot delete the root");
        let pos = self.sibling_pos(node).unwrap() - 1;
        let children = std::mem::take(&mut self.slots[node.index()].children);
        for &c in &children {
            self.slots[c.index()].parent = parent.0;
        }
        self.slots[parent.index()]
            .children
            .splice(pos..=pos, children);
        let slot = &mut self.slots[node.index()];
        slot.alive = false;
        slot.parent = NodeId::NONE;
        self.alive -= 1;
    }

    /// Checks all structural invariants; used by tests and debug assertions.
    pub fn validate(&self) -> Result<(), String> {
        if !self.contains(self.root) {
            return Err("root is dead".into());
        }
        if self.slots[self.root.index()].parent != NodeId::NONE {
            return Err("root has a parent".into());
        }
        let mut seen = vec![false; self.slots.len()];
        let mut count = 0usize;
        for n in self.preorder(self.root) {
            if seen[n.index()] {
                return Err(format!("node {n:?} reachable twice"));
            }
            seen[n.index()] = true;
            count += 1;
            for &c in self.children(n) {
                let cs = &self.slots[c.index()];
                if !cs.alive {
                    return Err(format!("dead child {c:?} of {n:?}"));
                }
                if cs.parent != n.0 {
                    return Err(format!("parent pointer of {c:?} disagrees with {n:?}"));
                }
            }
        }
        if count != self.alive {
            return Err(format!(
                "alive count {} but reachable {}",
                self.alive, count
            ));
        }
        for (i, s) in self.slots.iter().enumerate() {
            if s.alive && !seen[i] {
                return Err(format!("live node n{i} unreachable from root"));
            }
        }
        Ok(())
    }

    /// Structural + label equality ignoring node identities.
    pub fn isomorphic(&self, other: &Tree) -> bool {
        // Iterative to avoid stack overflow on deep trees.
        let mut stack = vec![(self.root, other.root)];
        while let Some((an, bn)) = stack.pop() {
            if self.label(an) != other.label(bn) || self.fanout(an) != other.fanout(bn) {
                return false;
            }
            stack.extend(
                self.children(an)
                    .iter()
                    .copied()
                    .zip(other.children(bn).iter().copied()),
            );
        }
        true
    }
}

impl PartialEq for Tree {
    /// Identity-aware equality: equal iff the same live `(id, label)` pairs
    /// with the same parent/child structure — the equality used in the
    /// paper's proofs.
    fn eq(&self, other: &Tree) -> bool {
        if self.root != other.root || self.alive != other.alive {
            return false;
        }
        for n in self.preorder(self.root) {
            if !other.contains(n)
                || self.label(n) != other.label(n)
                || self.children(n) != other.children(n)
            {
                return false;
            }
        }
        true
    }
}

impl Eq for Tree {}

impl fmt::Debug for Tree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn rec(t: &Tree, n: NodeId, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{:?}:{:?}", n, t.label(n))?;
            if !t.is_leaf(n) {
                write!(f, "(")?;
                for (i, &c) in t.children(n).iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    rec(t, c, f)?;
                }
                write!(f, ")")?;
            }
            Ok(())
        }
        rec(self, self.root, f)
    }
}

/// Iterator over a node's proper ancestors, closest first.
pub struct Ancestors<'t> {
    tree: &'t Tree,
    cur: Option<NodeId>,
}

impl Iterator for Ancestors<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let n = self.cur?;
        self.cur = self.tree.parent(n);
        Some(n)
    }
}

/// Preorder iterator (node before its children, siblings left to right).
pub struct Preorder<'t> {
    tree: &'t Tree,
    stack: Vec<NodeId>,
}

impl Iterator for Preorder<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let n = self.stack.pop()?;
        self.stack.extend(self.tree.children(n).iter().rev());
        Some(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::LabelTable;

    fn sample() -> (Tree, LabelTable, Vec<NodeId>) {
        // a(b c(e f) d)  — shaped like T0 of Figure 2.
        let mut lt = LabelTable::new();
        let a = lt.intern("a");
        let b = lt.intern("b");
        let c = lt.intern("c");
        let d = lt.intern("d");
        let e = lt.intern("e");
        let fl = lt.intern("f");
        let mut t = Tree::with_root(a);
        let n1 = t.root();
        let n2 = t.add_child(n1, b);
        let n3 = t.add_child(n1, c);
        let n4 = t.add_child(n1, d);
        let n5 = t.add_child(n3, e);
        let n6 = t.add_child(n3, fl);
        (t, lt, vec![n1, n2, n3, n4, n5, n6])
    }

    #[test]
    fn navigation() {
        let (t, _, n) = sample();
        assert_eq!(t.node_count(), 6);
        assert_eq!(t.parent(n[0]), None);
        assert_eq!(t.parent(n[4]), Some(n[2]));
        assert_eq!(t.children(n[0]), &[n[1], n[2], n[3]]);
        assert_eq!(t.sibling_pos(n[2]), Some(2));
        assert_eq!(t.sibling_pos(n[0]), None);
        assert_eq!(t.fanout(n[0]), 3);
        assert!(t.is_leaf(n[1]));
        assert!(!t.is_leaf(n[2]));
    }

    #[test]
    fn ancestors_and_distance() {
        let (t, _, n) = sample();
        assert_eq!(t.ancestor_at(n[4], 0), Some(n[4]));
        assert_eq!(t.ancestor_at(n[4], 1), Some(n[2]));
        assert_eq!(t.ancestor_at(n[4], 2), Some(n[0]));
        assert_eq!(t.ancestor_at(n[4], 3), None);
        let anc: Vec<_> = t.ancestors(n[4]).collect();
        assert_eq!(anc, vec![n[2], n[0]]);
        assert_eq!(t.node_depth(n[4]), 2);
    }

    #[test]
    fn descendants_within() {
        let (t, _, n) = sample();
        assert_eq!(t.descendants_within(n[0], 0), vec![n[0]]);
        assert_eq!(t.descendants_within(n[0], 1), vec![n[0], n[1], n[2], n[3]]);
        assert_eq!(
            t.descendants_within(n[0], 2),
            vec![n[0], n[1], n[2], n[4], n[5], n[3]]
        );
        assert_eq!(t.descendants_within(n[2], 1), vec![n[2], n[4], n[5]]);
    }

    #[test]
    fn traversals() {
        let (t, _, n) = sample();
        let pre: Vec<_> = t.preorder(t.root()).collect();
        assert_eq!(pre, vec![n[0], n[1], n[2], n[4], n[5], n[3]]);
        let post = t.postorder(t.root());
        assert_eq!(post, vec![n[1], n[4], n[5], n[2], n[3], n[0]]);
        assert_eq!(t.subtree_size(n[2]), 3);
        assert_eq!(t.depth(), 3);
    }

    #[test]
    fn insert_and_delete_node_roundtrip() {
        let (mut t, mut lt, n) = sample();
        let orig = t.clone();
        let x = lt.intern("x");
        let id = t.next_node_id();
        // insert x as 2nd child of root adopting children 2..=3 (c and d)
        t.insert_node(id, x, n[0], 2, 3);
        t.validate().unwrap();
        assert_eq!(t.children(n[0]), &[n[1], id]);
        assert_eq!(t.children(id), &[n[2], n[3]]);
        assert_eq!(t.parent(n[2]), Some(id));
        assert_eq!(t.node_count(), 7);

        t.delete_node(id);
        t.validate().unwrap();
        assert_eq!(t, orig);
    }

    #[test]
    fn leaf_insert_via_insert_node() {
        let (mut t, mut lt, n) = sample();
        let x = lt.intern("x");
        let id = t.next_node_id();
        // m = k - 1: pure leaf insert at position 2
        t.insert_node(id, x, n[0], 2, 1);
        t.validate().unwrap();
        assert_eq!(t.children(n[0]), &[n[1], id, n[2], n[3]]);
        assert!(t.is_leaf(id));
    }

    #[test]
    fn delete_leaf() {
        let (mut t, _, n) = sample();
        t.delete_node(n[1]);
        t.validate().unwrap();
        assert_eq!(t.children(n[0]), &[n[2], n[3]]);
        assert!(!t.contains(n[1]));
        assert_eq!(t.node_count(), 5);
    }

    #[test]
    fn isomorphism_ignores_ids_equality_does_not() {
        let (t1, _, _) = sample();
        let (mut t2, _, _) = sample();
        assert!(t1.isomorphic(&t2));
        assert_eq!(t1, t2);
        // Delete + re-add an identical-looking leaf: isomorphic, not equal.
        let root = t2.root();
        let first = t2.children(root)[0];
        let lbl = t2.label(first);
        t2.delete_node(first);
        t2.insert_leaf_at(root, 1, lbl);
        assert!(t1.isomorphic(&t2));
        assert_ne!(t1, t2);
    }

    #[test]
    fn validate_detects_corruption() {
        let (mut t, _, n) = sample();
        // Manually corrupt a parent pointer.
        t.slots[n[4].index()].parent = n[0].0;
        assert!(t.validate().is_err());
    }

    #[test]
    fn deep_tree_no_stack_overflow() {
        let mut lt = LabelTable::new();
        let a = lt.intern("a");
        let mut t = Tree::with_root(a);
        let mut cur = t.root();
        for _ in 0..100_000 {
            cur = t.add_child(cur, a);
        }
        assert_eq!(t.depth(), 100_001);
        assert_eq!(t.preorder(t.root()).count(), 100_001);
        t.validate().unwrap();
        let t2 = t.clone();
        assert!(t.isomorphic(&t2));
        assert_eq!(t, t2);
    }
}
