//! Human-readable tree rendering: indented text and Graphviz DOT.
//!
//! Debugging aids for everything in this workspace that manipulates trees —
//! edit scripts, diffs, delta regions. Kept allocation-light and safe for
//! large trees (iterative traversals, output size capped by the caller).

use crate::label::LabelTable;
use crate::tree::{NodeId, Tree};
use std::fmt::Write;

/// Renders the subtree under `node` as an indented outline:
///
/// ```text
/// article (n0)
/// ├── author (n1)
/// │   └── N. Augsten (n3)
/// └── title (n2)
/// ```
///
/// `max_nodes` caps the output (a trailing `…` line marks truncation).
pub fn render_text(tree: &Tree, labels: &LabelTable, node: NodeId, max_nodes: usize) -> String {
    let mut out = String::new();
    // Stack of (node, prefix, is_last, depth); root handled specially.
    let _ = writeln!(out, "{} ({:?})", labels.name(tree.label(node)), node);
    let mut emitted = 1usize;
    let mut stack: Vec<(NodeId, String, bool)> = Vec::new();
    let kids = tree.children(node);
    for (i, &c) in kids.iter().enumerate().rev() {
        stack.push((c, String::new(), i == kids.len() - 1));
    }
    while let Some((n, prefix, is_last)) = stack.pop() {
        if emitted >= max_nodes {
            let _ = writeln!(out, "{prefix}…");
            break;
        }
        let branch = if is_last { "└── " } else { "├── " };
        let _ = writeln!(
            out,
            "{prefix}{branch}{} ({:?})",
            labels.name(tree.label(n)),
            n
        );
        emitted += 1;
        let child_prefix = format!("{prefix}{}", if is_last { "    " } else { "│   " });
        let kids = tree.children(n);
        for (i, &c) in kids.iter().enumerate().rev() {
            stack.push((c, child_prefix.clone(), i == kids.len() - 1));
        }
    }
    out
}

/// Renders the whole tree as a Graphviz DOT digraph (`max_nodes` cap).
pub fn render_dot(tree: &Tree, labels: &LabelTable, max_nodes: usize) -> String {
    let mut out = String::from("digraph tree {\n  node [shape=box, fontname=\"monospace\"];\n");
    for (emitted, n) in tree.preorder(tree.root()).enumerate() {
        if emitted >= max_nodes {
            let _ = writeln!(out, "  truncated [label=\"…\", shape=plaintext];");
            break;
        }
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\"];",
            n.index(),
            escape_dot(labels.name(tree.label(n)))
        );
        if let Some(p) = tree.parent(n) {
            let _ = writeln!(out, "  n{} -> n{};", p.index(), n.index());
        }
    }
    out.push_str("}\n");
    out
}

fn escape_dot(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Tree, LabelTable) {
        let mut lt = LabelTable::new();
        let mut t = Tree::with_root(lt.intern("article"));
        let a = t.add_child(t.root(), lt.intern("author"));
        t.add_child(a, lt.intern("N. Augsten"));
        t.add_child(t.root(), lt.intern("title"));
        (t, lt)
    }

    #[test]
    fn text_outline_shape() {
        let (t, lt) = sample();
        let text = render_text(&t, &lt, t.root(), 100);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("article"));
        assert!(lines[1].contains("├── author"));
        assert!(lines[2].contains("│   └── N. Augsten"));
        assert!(lines[3].contains("└── title"));
    }

    #[test]
    fn text_truncates() {
        let (t, lt) = sample();
        let text = render_text(&t, &lt, t.root(), 2);
        assert!(text.contains('…'));
        assert!(text.lines().count() <= 4);
    }

    #[test]
    fn dot_is_well_formed() {
        let (t, lt) = sample();
        let dot = render_dot(&t, &lt, 100);
        assert!(dot.starts_with("digraph tree {"));
        assert!(dot.trim_end().ends_with('}'));
        assert_eq!(dot.matches(" -> ").count(), 3);
        assert!(dot.contains("label=\"N. Augsten\""));
    }

    #[test]
    fn dot_escapes_quotes() {
        let mut lt = LabelTable::new();
        let t = Tree::with_root(lt.intern("say \"hi\""));
        let dot = render_dot(&t, &lt, 10);
        assert!(dot.contains("say \\\"hi\\\""));
    }

    #[test]
    fn subtree_rendering() {
        let (t, lt) = sample();
        let author = t.children(t.root())[0];
        let text = render_text(&t, &lt, author, 100);
        assert!(text.starts_with("author"));
        assert_eq!(text.lines().count(), 2);
    }
}
