//! Random edit-script generation — the update workloads of Section 9.
//!
//! [`record_script`] applies a random but always-valid sequence of forward
//! edit operations to a tree and records the log of inverse operations, i.e.
//! it produces exactly the input triple of the paper's maintenance problem:
//! the resulting tree `Tₙ` and the log `L = (ē₁, …, ēₙ)` (the original `T₀`
//! is assumed to be thrown away).

use crate::edit::{EditLog, EditOp};
use crate::label::LabelSym;
use crate::tree::{NodeId, Tree};
use rand::seq::IndexedRandom;
use rand::Rng;

/// Relative weights of the three edit operations in a generated script.
#[derive(Clone, Copy, Debug)]
pub struct ScriptMix {
    /// Weight of `INS` operations.
    pub insert: u32,
    /// Weight of `DEL` operations.
    pub delete: u32,
    /// Weight of `REN` operations.
    pub rename: u32,
}

impl Default for ScriptMix {
    /// Equal thirds.
    fn default() -> Self {
        ScriptMix {
            insert: 1,
            delete: 1,
            rename: 1,
        }
    }
}

/// Configuration for [`record_script`].
#[derive(Clone, Debug)]
pub struct ScriptConfig {
    /// Number of edit operations to apply.
    pub ops: usize,
    /// Operation mix.
    pub mix: ScriptMix,
    /// Labels to draw from for inserts and renames (must be non-empty;
    /// renames need at least two labels to always make progress).
    pub alphabet: Vec<LabelSym>,
    /// Cap on the number of children an insert adopts (keeps deltas local,
    /// like real document edits). `0` means inserts are always leaf inserts.
    pub max_adopted: usize,
}

impl ScriptConfig {
    /// A sensible default configuration over the given alphabet.
    pub fn new(ops: usize, alphabet: Vec<LabelSym>) -> Self {
        ScriptConfig {
            ops,
            mix: ScriptMix::default(),
            alphabet,
            max_adopted: 3,
        }
    }
}

/// Applies up to `cfg.ops` random valid edits to `tree` and returns the log
/// of inverse operations (plus the applied forward operations, for
/// debugging and for oracle tests that replay intermediate versions).
///
/// The root is never edited, matching the paper's assumption. If the tree
/// and mix cannot support further operations (e.g. a delete-only mix on a
/// single-node tree), the script ends early with fewer operations. Panics
/// if the alphabet is empty.
pub fn record_script<R: Rng + ?Sized>(
    rng: &mut R,
    tree: &mut Tree,
    cfg: &ScriptConfig,
) -> (EditLog, Vec<EditOp>) {
    assert!(!cfg.alphabet.is_empty(), "alphabet must not be empty");
    let mut live: Vec<NodeId> = tree.preorder(tree.root()).collect();
    let mut log = EditLog::new();
    let mut forward = Vec::with_capacity(cfg.ops);

    let total = cfg.mix.insert + cfg.mix.delete + cfg.mix.rename;
    assert!(total > 0, "mix weights must not all be zero");

    let mut failed_attempts = 0usize;
    while forward.len() < cfg.ops {
        if failed_attempts > 300 {
            // No applicable operation exists for this tree/mix (e.g. only
            // deletes requested and only the root remains): stop early.
            break;
        }
        let roll = rng.random_range(0..total);
        let op = if roll < cfg.mix.insert {
            gen_insert(rng, tree, &live, cfg)
        } else if roll < cfg.mix.insert + cfg.mix.delete {
            gen_delete(rng, tree, &live)
        } else {
            gen_rename(rng, tree, &live, cfg)
        };
        let Some(op) = op else {
            failed_attempts += 1;
            continue;
        };
        failed_attempts = 0;
        let inverse = tree
            .apply_logged(op)
            .expect("generated operation must be valid");
        match op {
            EditOp::Insert { node, .. } => live.push(node),
            EditOp::Delete { node } => {
                let idx = live
                    .iter()
                    .position(|&n| n == node)
                    .expect("live list out of sync");
                live.swap_remove(idx);
            }
            EditOp::Rename { .. } => {}
        }
        log.push(inverse);
        forward.push(op);
    }
    (log, forward)
}

fn gen_insert<R: Rng + ?Sized>(
    rng: &mut R,
    tree: &Tree,
    live: &[NodeId],
    cfg: &ScriptConfig,
) -> Option<EditOp> {
    let &parent = live.choose(rng)?;
    let f = tree.fanout(parent);
    let k = rng.random_range(1..=f + 1);
    let max_m = (k - 1 + cfg.max_adopted).min(f);
    let m = rng.random_range(k - 1..=max_m);
    let label = *cfg.alphabet.choose(rng)?;
    Some(EditOp::Insert {
        node: tree.next_node_id(),
        label,
        parent,
        k,
        m,
    })
}

fn gen_delete<R: Rng + ?Sized>(rng: &mut R, tree: &Tree, live: &[NodeId]) -> Option<EditOp> {
    if live.len() <= 1 {
        return None;
    }
    let &node = live.choose(rng)?;
    if node == tree.root() {
        return None;
    }
    Some(EditOp::Delete { node })
}

fn gen_rename<R: Rng + ?Sized>(
    rng: &mut R,
    tree: &Tree,
    live: &[NodeId],
    cfg: &ScriptConfig,
) -> Option<EditOp> {
    let &node = live.choose(rng)?;
    if node == tree.root() {
        return None;
    }
    let current = tree.label(node);
    let label = *cfg.alphabet.choose(rng)?;
    if label == current {
        return None;
    }
    Some(EditOp::Rename { node, label })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{random_tree, RandomTreeConfig};
    use crate::label::LabelTable;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(seed: u64, nodes: usize) -> (Tree, LabelTable, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut lt = LabelTable::new();
        let tree = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(nodes, 8));
        (tree, lt, rng)
    }

    #[test]
    fn script_is_valid_and_rewindable() {
        for seed in 0..20 {
            let (mut tree, lt, mut rng) = setup(seed, 60);
            let orig = tree.clone();
            let alphabet: Vec<_> = lt.iter().map(|(s, _)| s).collect();
            let cfg = ScriptConfig::new(25, alphabet);
            let (log, forward) = record_script(&mut rng, &mut tree, &cfg);
            assert_eq!(log.len(), 25);
            assert_eq!(forward.len(), 25);
            tree.validate().unwrap();
            log.rewind(&mut tree).unwrap();
            tree.validate().unwrap();
            assert_eq!(tree, orig, "seed {seed}: rewind must restore T0");
        }
    }

    #[test]
    fn script_respects_mix() {
        let (mut tree, lt, mut rng) = setup(7, 200);
        let alphabet: Vec<_> = lt.iter().map(|(s, _)| s).collect();
        let mut cfg = ScriptConfig::new(50, alphabet);
        cfg.mix = ScriptMix {
            insert: 1,
            delete: 0,
            rename: 0,
        };
        let (_, forward) = record_script(&mut rng, &mut tree, &cfg);
        assert!(forward.iter().all(|op| matches!(op, EditOp::Insert { .. })));
        assert_eq!(tree.node_count(), 250);
    }

    #[test]
    fn rename_only_scripts_preserve_structure() {
        let (mut tree, lt, mut rng) = setup(9, 100);
        let shape_before: Vec<_> = tree.preorder(tree.root()).collect();
        let alphabet: Vec<_> = lt.iter().map(|(s, _)| s).collect();
        let mut cfg = ScriptConfig::new(30, alphabet);
        cfg.mix = ScriptMix {
            insert: 0,
            delete: 0,
            rename: 1,
        };
        record_script(&mut rng, &mut tree, &cfg);
        let shape_after: Vec<_> = tree.preorder(tree.root()).collect();
        assert_eq!(shape_before, shape_after);
    }

    #[test]
    fn delete_heavy_script_never_deletes_root() {
        let (mut tree, lt, mut rng) = setup(11, 40);
        let alphabet: Vec<_> = lt.iter().map(|(s, _)| s).collect();
        let mut cfg = ScriptConfig::new(35, alphabet);
        cfg.mix = ScriptMix {
            insert: 0,
            delete: 1,
            rename: 0,
        };
        let (_, forward) = record_script(&mut rng, &mut tree, &cfg);
        assert_eq!(forward.len(), 35);
        assert_eq!(tree.node_count(), 5);
        assert!(tree.contains(tree.root()));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::generate::{random_tree, RandomTreeConfig};
    use crate::label::LabelTable;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// Any recorded script rewinds exactly, regardless of size, mix or
        /// adoption width — the foundational contract of the edit model.
        #[test]
        fn prop_record_then_rewind_is_identity(
            seed in 0u64..1_000_000,
            nodes in 1usize..100,
            ops in 0usize..40,
            mix_sel in 0u8..5,
            adopted in 0usize..5,
            alphabet in 1usize..7,
        ) {
            let mix = match mix_sel {
                0 => ScriptMix { insert: 1, delete: 0, rename: 0 },
                1 => ScriptMix { insert: 0, delete: 1, rename: 0 },
                2 => ScriptMix { insert: 0, delete: 0, rename: 1 },
                3 => ScriptMix { insert: 1, delete: 1, rename: 0 },
                _ => ScriptMix::default(),
            };
            let alphabet = if mix_sel == 2 || mix_sel == 4 { alphabet.max(2) } else { alphabet };
            let mut rng = StdRng::seed_from_u64(seed);
            let mut lt = LabelTable::new();
            let mut tree = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(nodes, alphabet));
            let snapshot = tree.clone();
            let syms: Vec<_> = lt.iter().map(|(s, _)| s).collect();
            let mut cfg = ScriptConfig::new(ops.min(nodes.saturating_sub(2).max(1)), syms);
            cfg.mix = mix;
            cfg.max_adopted = adopted;
            let (log, forward) = record_script(&mut rng, &mut tree, &cfg);
            prop_assert_eq!(log.len(), forward.len());
            tree.validate().unwrap();
            log.rewind(&mut tree).unwrap();
            prop_assert_eq!(tree, snapshot);
        }
    }
}
