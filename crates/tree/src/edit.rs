//! Tree edit operations and edit logs (Section 3.1).
//!
//! The three standard node edit operations of Zhang & Shasha transform a tree
//! `Tᵢ` into `Tⱼ`:
//!
//! * `INS(n, v, k, m)` — insert node `n` as the k-th child of `v`,
//!   substituting children `c_k..c_m` of `v` which become children of `n`
//!   (with `m = k − 1` the insert is a leaf insert);
//! * `DEL(n)` — delete `n`, splicing its children into its parent's child
//!   list at `n`'s position;
//! * `REN(n, l′)` — change the label of `n` to `l′ ≠ l`.
//!
//! Every application returns the **inverse** operation, so that recording a
//! sequence of forward edits yields the *log* `L = (ē₁, …, ēₙ)` of inverse
//! operations the incremental index maintenance consumes.

use crate::label::LabelSym;
use crate::tree::{NodeId, Tree};
use std::fmt;

/// A tree edit operation (forward or inverse — the set is closed under
/// inversion).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EditOp {
    /// `INS(n, v, k, m)`: insert `node` with `label` as the k-th child of
    /// `parent`, adopting the former children `k..=m` (1-based, inclusive;
    /// `m == k - 1` inserts a leaf).
    Insert {
        /// The node being created (must not be live in the tree).
        node: NodeId,
        /// Its label.
        label: LabelSym,
        /// The parent gaining the node.
        parent: NodeId,
        /// 1-based insertion position among the parent's children.
        k: usize,
        /// Last adopted child position (`k − 1` for a leaf insert).
        m: usize,
    },
    /// `DEL(n)`: delete `node`, promoting its children.
    Delete {
        /// The node being removed.
        node: NodeId,
    },
    /// `REN(n, l')`: relabel `node` to `label`.
    Rename {
        /// The node being relabeled.
        node: NodeId,
        /// The new label (must differ from the current one).
        label: LabelSym,
    },
}

impl EditOp {
    /// The node this operation creates, removes or relabels.
    pub fn target(&self) -> NodeId {
        match *self {
            EditOp::Insert { node, .. } | EditOp::Delete { node } | EditOp::Rename { node, .. } => {
                node
            }
        }
    }
}

/// Why an edit operation cannot be applied to a given tree.
///
/// Definition 4 of the paper makes the delta function total by mapping
/// non-applicable operations to the empty set, so this error doubles as the
/// "otherwise" branch of that definition.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EditError {
    /// Referenced node does not exist (or is dead) in the tree.
    MissingNode(NodeId),
    /// Insert of a node id that is already live in the tree.
    NodeExists(NodeId),
    /// The paper assumes the root node is never edited.
    RootEdit,
    /// Child range `k..=m` invalid for the parent's fanout.
    BadRange {
        /// Requested first adopted position.
        k: usize,
        /// Requested last adopted position.
        m: usize,
        /// The parent's actual fanout.
        fanout: usize,
    },
    /// Rename to the label the node already has (`l ≠ l'` is required).
    SameLabel,
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            EditError::MissingNode(n) => write!(f, "node {n:?} does not exist in the tree"),
            EditError::NodeExists(n) => write!(f, "node {n:?} already exists in the tree"),
            EditError::RootEdit => write!(f, "the root node must not be edited"),
            EditError::BadRange { k, m, fanout } => {
                write!(f, "child range {k}..={m} invalid for fanout {fanout}")
            }
            EditError::SameLabel => write!(f, "rename requires a different label"),
        }
    }
}

impl std::error::Error for EditError {}

/// Identity anchor of a logged `INS` operation.
///
/// A log entry `INS(n, v, k, m)` is *defined on* one intermediate tree
/// version; when the delta function later evaluates it on the final tree
/// `Tₙ` (Section 6), sibling positions under `v` may have shifted, so the
/// positional range `k..=m` alone would re-bind to different children. The
/// paper's Lemma 1/Lemma 3 treat `C = {c_k, …, c_m}` as a fixed *node set*
/// (nodes are (id, label) pairs); the anchor records that identity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InsertAnchor {
    /// Non-leaf insert: the exact children the node adopts, in order.
    Adopted(Box<[NodeId]>),
    /// Leaf insert: the neighboring siblings of the insertion gap
    /// (`None` at the ends of the child list).
    Gap {
        /// Sibling immediately left of the gap.
        pred: Option<NodeId>,
        /// Sibling immediately right of the gap.
        succ: Option<NodeId>,
    },
}

/// One log entry: an inverse edit operation plus, for inserts, the identity
/// anchor captured when the entry was recorded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogOp {
    /// The inverse edit operation (positional form, valid on the tree
    /// version it was recorded against).
    pub op: EditOp,
    /// Identity anchor; always `Some` for `Insert`, `None` otherwise.
    pub anchor: Option<InsertAnchor>,
}

impl LogOp {
    /// Wraps an operation with its anchor. `Insert` entries require an
    /// anchor; `Delete`/`Rename` must not carry one.
    pub fn new(op: EditOp, anchor: Option<InsertAnchor>) -> Self {
        match op {
            EditOp::Insert { .. } => {
                assert!(anchor.is_some(), "logged inserts need an identity anchor")
            }
            _ => assert!(anchor.is_none(), "only inserts carry an anchor"),
        }
        LogOp { op, anchor }
    }
}

/// A log of inverse edit operations `(ē₁, …, ēₙ)`.
///
/// Entry `i` (0-based `i-1`) undoes forward edit `eᵢ`; applying the entries
/// **in reverse order** to `Tₙ` reconstructs `T₀`. Build entries with
/// [`Tree::apply_logged`], which captures the insert anchors.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct EditLog {
    ops: Vec<LogOp>,
}

impl EditLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the inverse of the forward edit that was just applied.
    pub fn push(&mut self, inverse: LogOp) {
        self.ops.push(inverse);
    }

    /// Number of logged operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if nothing was logged.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The inverse operations `ē₁, …, ēₙ` in log order.
    pub fn ops(&self) -> &[LogOp] {
        &self.ops
    }

    /// Applies the whole log to `tree` (in reverse order), rewinding `Tₙ`
    /// back to `T₀`.
    pub fn rewind(&self, tree: &mut Tree) -> Result<(), EditError> {
        for entry in self.ops.iter().rev() {
            apply(tree, entry.op)?;
        }
        Ok(())
    }
}

impl FromIterator<LogOp> for EditLog {
    fn from_iter<I: IntoIterator<Item = LogOp>>(iter: I) -> Self {
        EditLog {
            ops: iter.into_iter().collect(),
        }
    }
}

/// Checks whether `op` is applicable to `tree` — the "∃ Tᵢ : Tᵢ = ē(Tⱼ)"
/// condition of Definition 4.
pub fn check(tree: &Tree, op: EditOp) -> Result<(), EditError> {
    match op {
        EditOp::Insert {
            node, parent, k, m, ..
        } => {
            if tree.contains(node) {
                return Err(EditError::NodeExists(node));
            }
            if !tree.contains(parent) {
                return Err(EditError::MissingNode(parent));
            }
            let f = tree.fanout(parent);
            // 1 <= k, k - 1 <= m <= f  (m = k - 1 means leaf insert).
            if k < 1 || k > f + 1 || m + 1 < k || m > f {
                return Err(EditError::BadRange { k, m, fanout: f });
            }
            Ok(())
        }
        EditOp::Delete { node } => {
            if !tree.contains(node) {
                return Err(EditError::MissingNode(node));
            }
            if node == tree.root() {
                return Err(EditError::RootEdit);
            }
            Ok(())
        }
        EditOp::Rename { node, label } => {
            if !tree.contains(node) {
                return Err(EditError::MissingNode(node));
            }
            if tree.label(node) == label {
                return Err(EditError::SameLabel);
            }
            Ok(())
        }
    }
}

/// Applies `op` to `tree`, returning the inverse operation.
///
/// * inverse of `INS(n, v, k, m)` is `DEL(n)`;
/// * inverse of `DEL(n)` is `INS(n, v, k, k + f_n − 1)` where `n` was the
///   k-th child of `v` with fanout `f_n`;
/// * inverse of `REN(n, l′)` is `REN(n, l)`.
pub fn apply(tree: &mut Tree, op: EditOp) -> Result<EditOp, EditError> {
    check(tree, op)?;
    Ok(match op {
        EditOp::Insert {
            node,
            label,
            parent,
            k,
            m,
        } => {
            tree.insert_node(node, label, parent, k, m);
            EditOp::Delete { node }
        }
        EditOp::Delete { node } => {
            let parent = tree.parent(node).expect("checked: not root");
            let k = tree.sibling_pos(node).expect("checked: not root");
            let f = tree.fanout(node);
            let label = tree.label(node);
            tree.delete_node(node);
            EditOp::Insert {
                node,
                label,
                parent,
                k,
                m: k + f - 1,
            }
        }
        EditOp::Rename { node, label } => {
            let old = tree.label(node);
            tree.set_label(node, label);
            EditOp::Rename { node, label: old }
        }
    })
}

impl Tree {
    /// Applies an edit operation, returning its inverse. See [`apply`].
    pub fn apply(&mut self, op: EditOp) -> Result<EditOp, EditError> {
        apply(self, op)
    }

    /// Applies an edit operation and returns a *log entry* for its inverse:
    /// the inverse operation plus, when the inverse is an insert, the
    /// identity anchor ([`InsertAnchor`]) the incremental index maintenance
    /// needs to evaluate the entry on a different tree version.
    pub fn apply_logged(&mut self, op: EditOp) -> Result<LogOp, EditError> {
        check(self, op)?;
        let anchor = match op {
            EditOp::Delete { node } => {
                // Inverse is INS(node, v, k, m): it re-adopts node's current
                // children, or — if node is a leaf — re-enters the gap
                // between node's current neighbors.
                let children = self.children(node);
                if children.is_empty() {
                    let parent = self.parent(node).expect("checked: not root");
                    let siblings = self.children(parent);
                    let pos = self.sibling_pos(node).expect("checked: not root");
                    Some(InsertAnchor::Gap {
                        pred: (pos > 1).then(|| siblings[pos - 2]),
                        succ: siblings.get(pos).copied(),
                    })
                } else {
                    Some(InsertAnchor::Adopted(children.into()))
                }
            }
            EditOp::Insert { .. } | EditOp::Rename { .. } => None,
        };
        let inverse = apply(self, op).expect("checked above");
        Ok(LogOp {
            op: inverse,
            anchor,
        })
    }

    /// Checks applicability without mutating. See [`check`].
    pub fn check_edit(&self, op: EditOp) -> Result<(), EditError> {
        check(self, op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::LabelTable;

    /// Builds the tree T0 = a(b c(e f) d) of Figure 2.
    fn figure2_t0() -> (Tree, LabelTable, Vec<NodeId>) {
        let mut lt = LabelTable::new();
        let syms: Vec<_> = ["a", "b", "c", "d", "e", "f"]
            .iter()
            .map(|s| lt.intern(s))
            .collect();
        let mut t = Tree::with_root(syms[0]);
        let n1 = t.root();
        let n2 = t.add_child(n1, syms[1]);
        let n3 = t.add_child(n1, syms[2]);
        let n4 = t.add_child(n1, syms[3]);
        let n5 = t.add_child(n3, syms[4]);
        let n6 = t.add_child(n3, syms[5]);
        (t, lt, vec![n1, n2, n3, n4, n5, n6])
    }

    #[test]
    fn figure2_sequence() {
        // Figure 2: T0 --e1=INS((n7,g),n6,1,0)--> T1 --e2=DEL(n3)--> T2
        //              --e3=REN(n2,s)--> T3
        let (mut t, mut lt, n) = figure2_t0();
        let g = lt.intern("g");
        let s = lt.intern("s");
        let n7 = t.next_node_id();

        let i1 = t
            .apply(EditOp::Insert {
                node: n7,
                label: g,
                parent: n[5],
                k: 1,
                m: 0,
            })
            .unwrap();
        assert_eq!(i1, EditOp::Delete { node: n7 });
        assert_eq!(t.children(n[5]), &[n7]);

        let old_c = t.label(n[2]);
        let i2 = t.apply(EditOp::Delete { node: n[2] }).unwrap();
        // n3 was 2nd child of n1 with fanout 2 -> INS(n3, n1, 2, 3)
        assert_eq!(
            i2,
            EditOp::Insert {
                node: n[2],
                label: old_c,
                parent: n[0],
                k: 2,
                m: 3
            }
        );
        assert_eq!(t.children(n[0]), &[n[1], n[4], n[5], n[3]]);

        let i3 = t
            .apply(EditOp::Rename {
                node: n[1],
                label: s,
            })
            .unwrap();
        assert_eq!(
            i3,
            EditOp::Rename {
                node: n[1],
                label: lt.lookup("b").unwrap()
            }
        );

        // Rewind the log and recover T0 exactly (identity-aware equality).
        let (orig, _, _) = figure2_t0();
        let log: EditLog = [
            LogOp::new(i1, None),
            LogOp::new(i2, Some(InsertAnchor::Adopted([n[4], n[5]].into()))),
            LogOp::new(i3, None),
        ]
        .into_iter()
        .collect();
        log.rewind(&mut t).unwrap();
        assert_eq!(t, orig);
    }

    #[test]
    fn insert_rejects_live_node() {
        let (mut t, mut lt, n) = figure2_t0();
        let x = lt.intern("x");
        let err = t
            .apply(EditOp::Insert {
                node: n[1],
                label: x,
                parent: n[0],
                k: 1,
                m: 0,
            })
            .unwrap_err();
        assert_eq!(err, EditError::NodeExists(n[1]));
    }

    #[test]
    fn insert_rejects_bad_ranges() {
        let (mut t, mut lt, n) = figure2_t0();
        let x = lt.intern("x");
        let id = t.next_node_id();
        for (k, m) in [(0, 0), (5, 4), (1, 4), (3, 1)] {
            let err = t
                .apply(EditOp::Insert {
                    node: id,
                    label: x,
                    parent: n[0],
                    k,
                    m,
                })
                .unwrap_err();
            assert!(
                matches!(err, EditError::BadRange { .. }),
                "k={k} m={m}: {err:?}"
            );
        }
        // Full adoption of all 3 children is fine.
        t.apply(EditOp::Insert {
            node: id,
            label: x,
            parent: n[0],
            k: 1,
            m: 3,
        })
        .unwrap();
        assert_eq!(t.children(n[0]), &[id]);
    }

    #[test]
    fn delete_rejects_root_and_missing() {
        let (mut t, _, n) = figure2_t0();
        assert_eq!(
            t.apply(EditOp::Delete { node: n[0] }).unwrap_err(),
            EditError::RootEdit
        );
        let ghost = NodeId::from_index(99);
        assert_eq!(
            t.apply(EditOp::Delete { node: ghost }).unwrap_err(),
            EditError::MissingNode(ghost)
        );
    }

    #[test]
    fn rename_rejects_same_label() {
        let (mut t, _, n) = figure2_t0();
        let cur = t.label(n[1]);
        assert_eq!(
            t.apply(EditOp::Rename {
                node: n[1],
                label: cur
            })
            .unwrap_err(),
            EditError::SameLabel
        );
    }

    #[test]
    fn double_inverse_is_identity() {
        let (mut t, mut lt, n) = figure2_t0();
        let orig = t.clone();
        let x = lt.intern("x");
        let ops = [
            EditOp::Insert {
                node: t.next_node_id(),
                label: x,
                parent: n[2],
                k: 1,
                m: 2,
            },
            EditOp::Rename {
                node: n[3],
                label: x,
            },
            EditOp::Delete { node: n[1] },
        ];
        let mut inverses = Vec::new();
        for op in ops {
            inverses.push(t.apply(op).unwrap());
        }
        for inv in inverses.into_iter().rev() {
            t.apply(inv).unwrap();
        }
        assert_eq!(t, orig);
        t.validate().unwrap();
    }

    #[test]
    fn delete_then_inverse_restores_adopted_children() {
        let (mut t, _, n) = figure2_t0();
        let orig = t.clone();
        let inv = t.apply(EditOp::Delete { node: n[2] }).unwrap();
        assert_eq!(t.node_count(), 5);
        t.apply(inv).unwrap();
        assert_eq!(t, orig);
    }

    #[test]
    fn log_rewind_order_matters() {
        // Two dependent edits: insert x under root, then rename it.
        let (mut t, mut lt, _) = figure2_t0();
        let orig = t.clone();
        let x = lt.intern("x");
        let y = lt.intern("y");
        let id = t.next_node_id();
        let mut log = EditLog::new();
        log.push(
            t.apply_logged(EditOp::Insert {
                node: id,
                label: x,
                parent: t.root(),
                k: 1,
                m: 3,
            })
            .unwrap(),
        );
        log.push(
            t.apply_logged(EditOp::Rename { node: id, label: y })
                .unwrap(),
        );
        assert_eq!(log.len(), 2);
        log.rewind(&mut t).unwrap();
        assert_eq!(t, orig);
    }

    #[test]
    fn apply_logged_captures_anchors() {
        let (mut t, _, n) = figure2_t0();
        // Delete the inner node n3 (children n5, n6): anchor = Adopted.
        let entry = t.apply_logged(EditOp::Delete { node: n[2] }).unwrap();
        assert!(matches!(entry.op, EditOp::Insert { .. }));
        assert_eq!(
            entry.anchor,
            Some(InsertAnchor::Adopted([n[4], n[5]].into()))
        );
        // Delete the (now promoted) leaf n5: gap between n2 and n6.
        let entry = t.apply_logged(EditOp::Delete { node: n[4] }).unwrap();
        assert_eq!(
            entry.anchor,
            Some(InsertAnchor::Gap {
                pred: Some(n[1]),
                succ: Some(n[5])
            })
        );
        // Delete the first leaf: no predecessor.
        let entry = t.apply_logged(EditOp::Delete { node: n[1] }).unwrap();
        assert_eq!(
            entry.anchor,
            Some(InsertAnchor::Gap {
                pred: None,
                succ: Some(n[5])
            })
        );
        // Rename carries no anchor.
        let lbl = t.label(n[3]);
        let entry = t.apply_logged(EditOp::Delete { node: n[3] }).unwrap();
        let _ = lbl;
        assert!(matches!(entry.anchor, Some(InsertAnchor::Gap { .. })));
    }

    #[test]
    #[should_panic(expected = "identity anchor")]
    fn log_op_insert_requires_anchor() {
        let (_, mut lt, n) = figure2_t0();
        let x = lt.intern("x");
        LogOp::new(
            EditOp::Insert {
                node: NodeId::from_index(50),
                label: x,
                parent: n[0],
                k: 1,
                m: 0,
            },
            None,
        );
    }
}
