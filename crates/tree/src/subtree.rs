//! Subtree edit operations (Section 10, future work).
//!
//! The paper's index maintenance is defined over the three *node* edit
//! operations; its conclusion notes that operations on whole subtrees —
//! deletion, insertion, move — "are simulated by a sequence of node edit
//! operations". This module implements that simulation: each subtree
//! operation expands into a sequence of valid node edits, applies them, and
//! returns the corresponding log entries, so the incremental index
//! maintenance works on subtree-edited documents unchanged.

use crate::edit::{EditError, EditOp, LogOp};
use crate::label::LabelSym;
use crate::tree::{NodeId, Tree};

/// A description of a subtree to insert: a label and its children, nested.
///
/// ```
/// use pqgram_tree::{subtree::Spec, LabelTable, Tree};
/// let mut lt = LabelTable::new();
/// let spec = Spec::node(lt.intern("person"), vec![
///     Spec::leaf(lt.intern("name")),
///     Spec::leaf(lt.intern("email")),
/// ]);
/// let mut t = Tree::with_root(lt.intern("people"));
/// let parent = t.root();
/// let (root, log) = pqgram_tree::subtree::insert_subtree(&mut t, parent, 1, &spec).unwrap();
/// assert_eq!(t.label(root), lt.intern("person"));
/// assert_eq!(log.len(), 3); // one INS per node
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Spec {
    /// Label of this node.
    pub label: LabelSym,
    /// Child subtrees, in sibling order.
    pub children: Vec<Spec>,
}

impl Spec {
    /// A leaf spec.
    pub fn leaf(label: LabelSym) -> Spec {
        Spec {
            label,
            children: Vec::new(),
        }
    }

    /// An inner-node spec.
    pub fn node(label: LabelSym, children: Vec<Spec>) -> Spec {
        Spec { label, children }
    }

    /// Number of nodes this spec describes.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(Spec::size).sum::<usize>()
    }

    /// Captures the subtree of `tree` rooted at `node` as a spec.
    pub fn capture(tree: &Tree, node: NodeId) -> Spec {
        Spec {
            label: tree.label(node),
            children: tree
                .children(node)
                .iter()
                .map(|&c| Spec::capture(tree, c))
                .collect(),
        }
    }
}

/// Inserts a whole subtree described by `spec` as the `pos`-th child of
/// `parent` (1-based), as a sequence of leaf `INS` operations (top-down,
/// each node inserted as a leaf and then populated). Returns the root of
/// the new subtree and the log entries, in application order.
pub fn insert_subtree(
    tree: &mut Tree,
    parent: NodeId,
    pos: usize,
    spec: &Spec,
) -> Result<(NodeId, Vec<LogOp>), EditError> {
    let mut log = Vec::with_capacity(spec.size());
    let root = insert_rec(tree, parent, pos, spec, &mut log)?;
    Ok((root, log))
}

fn insert_rec(
    tree: &mut Tree,
    parent: NodeId,
    pos: usize,
    spec: &Spec,
    log: &mut Vec<LogOp>,
) -> Result<NodeId, EditError> {
    let node = tree.next_node_id();
    log.push(tree.apply_logged(EditOp::Insert {
        node,
        label: spec.label,
        parent,
        k: pos,
        m: pos - 1,
    })?);
    for (i, child) in spec.children.iter().enumerate() {
        insert_rec(tree, node, i + 1, child, log)?;
    }
    Ok(node)
}

/// Deletes the whole subtree rooted at `node` (which must not be the root),
/// as a sequence of `DEL` operations (bottom-up: leaves first). Returns the
/// log entries in application order.
pub fn delete_subtree(tree: &mut Tree, node: NodeId) -> Result<Vec<LogOp>, EditError> {
    if !tree.contains(node) {
        return Err(EditError::MissingNode(node));
    }
    if node == tree.root() {
        return Err(EditError::RootEdit);
    }
    // Postorder: every node is a leaf by the time it is deleted — each DEL
    // is a plain node edit with no child adoption.
    let order = tree.postorder(node);
    let mut log = Vec::with_capacity(order.len());
    for n in order {
        log.push(tree.apply_logged(EditOp::Delete { node: n })?);
    }
    Ok(log)
}

/// Moves the subtree rooted at `node` to become the `pos`-th child of
/// `new_parent`, simulated as capture + delete + re-insert (the moved nodes
/// get fresh identities, as the node-edit model requires — a node id never
/// refers to two tree locations over its lifetime). Returns the new subtree
/// root and the log entries.
///
/// Fails if `new_parent` lies inside the moved subtree or if `node` is the
/// root.
pub fn move_subtree(
    tree: &mut Tree,
    node: NodeId,
    new_parent: NodeId,
    pos: usize,
) -> Result<(NodeId, Vec<LogOp>), EditError> {
    if !tree.contains(node) {
        return Err(EditError::MissingNode(node));
    }
    if !tree.contains(new_parent) {
        return Err(EditError::MissingNode(new_parent));
    }
    if node == tree.root() {
        return Err(EditError::RootEdit);
    }
    // new_parent must not be inside the moved subtree.
    let mut cur = Some(new_parent);
    while let Some(n) = cur {
        if n == node {
            return Err(EditError::BadRange {
                k: pos,
                m: pos,
                fanout: tree.fanout(new_parent),
            });
        }
        cur = tree.parent(n);
    }
    let spec = Spec::capture(tree, node);
    let mut log = delete_subtree(tree, node)?;
    // Positions may have shifted if node and new_parent share the parent;
    // the caller-provided pos refers to the post-delete child list.
    let (new_root, insert_log) = insert_subtree(tree, new_parent, pos, &spec)?;
    log.extend(insert_log);
    Ok((new_root, log))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edit::EditLog;
    use crate::label::LabelTable;

    fn sample() -> (Tree, LabelTable, Vec<NodeId>) {
        // a(b c(e f) d)
        let mut lt = LabelTable::new();
        let syms: Vec<_> = ["a", "b", "c", "d", "e", "f"]
            .iter()
            .map(|s| lt.intern(s))
            .collect();
        let mut t = Tree::with_root(syms[0]);
        let n1 = t.root();
        let n2 = t.add_child(n1, syms[1]);
        let n3 = t.add_child(n1, syms[2]);
        let n4 = t.add_child(n1, syms[3]);
        let n5 = t.add_child(n3, syms[4]);
        let n6 = t.add_child(n3, syms[5]);
        (t, lt, vec![n1, n2, n3, n4, n5, n6])
    }

    #[test]
    fn insert_subtree_builds_structure_and_log_rewinds() {
        let (mut t, mut lt, n) = sample();
        let orig = t.clone();
        let spec = Spec::node(
            lt.intern("x"),
            vec![
                Spec::leaf(lt.intern("y")),
                Spec::node(lt.intern("z"), vec![Spec::leaf(lt.intern("w"))]),
            ],
        );
        let (root, log) = insert_subtree(&mut t, n[0], 2, &spec).unwrap();
        t.validate().unwrap();
        assert_eq!(t.node_count(), 10);
        assert_eq!(t.sibling_pos(root), Some(2));
        assert_eq!(Spec::capture(&t, root), spec);
        assert_eq!(log.len(), 4);
        let log: EditLog = log.into_iter().collect();
        log.rewind(&mut t).unwrap();
        assert_eq!(t, orig);
    }

    #[test]
    fn delete_subtree_removes_all_and_log_rewinds() {
        let (mut t, _, n) = sample();
        let orig = t.clone();
        let log = delete_subtree(&mut t, n[2]).unwrap();
        t.validate().unwrap();
        assert_eq!(t.node_count(), 3);
        assert!(!t.contains(n[2]) && !t.contains(n[4]) && !t.contains(n[5]));
        assert_eq!(log.len(), 3);
        let log: EditLog = log.into_iter().collect();
        log.rewind(&mut t).unwrap();
        assert_eq!(t, orig);
    }

    #[test]
    fn delete_subtree_rejects_root_and_missing() {
        let (mut t, _, n) = sample();
        assert_eq!(
            delete_subtree(&mut t, n[0]).unwrap_err(),
            EditError::RootEdit
        );
        let mut t2 = t.clone();
        delete_subtree(&mut t2, n[1]).unwrap();
        assert_eq!(
            delete_subtree(&mut t2, n[1]).unwrap_err(),
            EditError::MissingNode(n[1])
        );
    }

    #[test]
    fn move_subtree_relocates_and_log_rewinds() {
        let (mut t, _, n) = sample();
        let orig = t.clone();
        // Move c(e f) under b.
        let (new_root, log) = move_subtree(&mut t, n[2], n[1], 1).unwrap();
        t.validate().unwrap();
        assert_eq!(t.node_count(), 6);
        assert_eq!(t.parent(new_root), Some(n[1]));
        assert_eq!(t.children(t.root()).len(), 2);
        assert_eq!(t.fanout(new_root), 2);
        let log: EditLog = log.into_iter().collect();
        log.rewind(&mut t).unwrap();
        assert_eq!(t, orig);
    }

    #[test]
    fn move_into_own_subtree_rejected() {
        let (mut t, _, n) = sample();
        // c into its own child e.
        assert!(move_subtree(&mut t, n[2], n[4], 1).is_err());
        // node into itself.
        assert!(move_subtree(&mut t, n[2], n[2], 1).is_err());
        t.validate().unwrap();
    }

    #[test]
    fn spec_size_and_capture_roundtrip() {
        let (t, _, n) = sample();
        let spec = Spec::capture(&t, n[0]);
        assert_eq!(spec.size(), 6);
        let mut t2 = Tree::with_root(spec.label);
        let root = t2.root();
        for (i, child) in spec.children.iter().enumerate() {
            insert_subtree(&mut t2, root, i + 1, child).unwrap();
        }
        assert!(t.isomorphic(&t2));
    }
}
