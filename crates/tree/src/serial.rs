//! Compact binary serialization of trees.
//!
//! Used to persist generated datasets and to measure *document size* for the
//! index-size experiment (Figure 14, left): the paper compares the size of
//! the pq-gram index against the size of the tree itself, so we need a
//! byte-honest tree encoding.
//!
//! Format (all integers LEB128 varints):
//!
//! ```text
//! magic "PQTR" | version | label-count | (len, utf8-bytes)*
//! node-count   | preorder (label-index, fanout)*
//! ```
//!
//! Node identifiers are not preserved — a deserialized tree gets fresh,
//! dense, preorder ids. Persist edit logs only together with the arena they
//! were recorded against.

use crate::label::{LabelSym, LabelTable};
use crate::tree::{NodeId, Tree};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"PQTR";
const VERSION: u64 = 1;

/// Writes a LEB128 varint.
pub fn write_varint<W: Write + ?Sized>(w: &mut W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

/// Reads a LEB128 varint.
pub fn read_varint<R: Read + ?Sized>(r: &mut R) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        let b = byte[0];
        if shift >= 64 || (shift == 63 && b > 1) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint overflow",
            ));
        }
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Serializes `tree` (with its label table) to `w`.
pub fn write_tree<W: Write + ?Sized>(
    w: &mut W,
    tree: &Tree,
    labels: &LabelTable,
) -> io::Result<()> {
    w.write_all(MAGIC)?;
    write_varint(w, VERSION)?;
    write_varint(w, labels.len() as u64)?;
    for (_, name) in labels.iter() {
        write_varint(w, name.len() as u64)?;
        w.write_all(name.as_bytes())?;
    }
    write_varint(w, tree.node_count() as u64)?;
    for n in tree.preorder(tree.root()) {
        write_varint(w, tree.label(n).index() as u64)?;
        write_varint(w, tree.fanout(n) as u64)?;
    }
    Ok(())
}

/// Deserializes a tree and its label table from `r`.
pub fn read_tree<R: Read + ?Sized>(r: &mut R) -> io::Result<(Tree, LabelTable)> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("bad magic"));
    }
    if read_varint(r)? != VERSION {
        return Err(bad("unsupported version"));
    }
    let label_count = read_varint(r)? as usize;
    let mut labels = LabelTable::new();
    let mut syms = Vec::with_capacity(label_count);
    let mut buf = Vec::new();
    for _ in 0..label_count {
        let len = read_varint(r)? as usize;
        buf.resize(len, 0);
        r.read_exact(&mut buf)?;
        let name = std::str::from_utf8(&buf).map_err(|_| bad("label not utf8"))?;
        syms.push(labels.intern(name));
    }
    let node_count = read_varint(r)? as usize;
    if node_count == 0 {
        return Err(bad("empty tree"));
    }
    let sym_at = |idx: u64| -> io::Result<LabelSym> {
        syms.get(idx as usize)
            .copied()
            .ok_or_else(|| bad("label index out of range"))
    };

    let root_label = sym_at(read_varint(r)?)?;
    let root_fanout = read_varint(r)? as usize;
    let mut tree = Tree::with_root(root_label);
    // Stack of (parent, remaining children to read).
    let mut stack: Vec<(NodeId, usize)> = vec![(tree.root(), root_fanout)];
    let mut read_nodes = 1usize;
    while let Some(&mut (parent, ref mut remaining)) = stack.last_mut() {
        if *remaining == 0 {
            stack.pop();
            continue;
        }
        *remaining -= 1;
        if read_nodes >= node_count {
            return Err(bad("truncated node stream"));
        }
        let label = sym_at(read_varint(r)?)?;
        let fanout = read_varint(r)? as usize;
        let id = tree.add_child(parent, label);
        read_nodes += 1;
        stack.push((id, fanout));
    }
    if read_nodes != node_count {
        return Err(bad("node count mismatch"));
    }
    Ok((tree, labels))
}

/// Serialized size in bytes without materializing the buffer.
pub fn tree_size_bytes(tree: &Tree, labels: &LabelTable) -> usize {
    struct CountingSink(usize);
    impl Write for CountingSink {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0 += buf.len();
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }
    let mut sink = CountingSink(0);
    write_tree(&mut sink, tree, labels).expect("counting sink cannot fail");
    sink.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{dblp, random_tree, xmark, RandomTreeConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, 1 << 20, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v).unwrap();
            assert_eq!(read_varint(&mut buf.as_slice()).unwrap(), v);
        }
    }

    #[test]
    fn varint_rejects_overflow() {
        let buf = [0xffu8; 11];
        assert!(read_varint(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn tree_roundtrip_is_isomorphic() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lt = LabelTable::new();
        for gen in 0..3 {
            let tree = match gen {
                0 => random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(300, 7)),
                1 => xmark(&mut rng, &mut lt, 2_000),
                _ => dblp(&mut rng, &mut lt, 2_000),
            };
            let mut buf = Vec::new();
            write_tree(&mut buf, &tree, &lt).unwrap();
            let (back, back_labels) = read_tree(&mut buf.as_slice()).unwrap();
            back.validate().unwrap();
            assert_eq!(back.node_count(), tree.node_count());
            // Isomorphic modulo label table renumbering: compare by name.
            let names = |t: &Tree, l: &LabelTable| -> Vec<String> {
                t.preorder(t.root())
                    .map(|n| format!("{}/{}", l.name(t.label(n)), t.fanout(n)))
                    .collect()
            };
            assert_eq!(names(&tree, &lt), names(&back, &back_labels));
        }
    }

    #[test]
    fn size_matches_buffer_len() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut lt = LabelTable::new();
        let tree = xmark(&mut rng, &mut lt, 1_000);
        let mut buf = Vec::new();
        write_tree(&mut buf, &tree, &lt).unwrap();
        assert_eq!(tree_size_bytes(&tree, &lt), buf.len());
    }

    #[test]
    fn read_rejects_garbage() {
        assert!(read_tree(&mut b"NOPE".as_slice()).is_err());
        assert!(read_tree(&mut b"PQTR".as_slice()).is_err());
        // Valid header, truncated body.
        let mut lt = LabelTable::new();
        let tree = Tree::with_root(lt.intern("a"));
        let mut buf = Vec::new();
        write_tree(&mut buf, &tree, &lt).unwrap();
        buf.truncate(buf.len() - 1);
        assert!(read_tree(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn single_node_roundtrip() {
        let mut lt = LabelTable::new();
        let tree = Tree::with_root(lt.intern("only"));
        let mut buf = Vec::new();
        write_tree(&mut buf, &tree, &lt).unwrap();
        let (back, bl) = read_tree(&mut buf.as_slice()).unwrap();
        assert_eq!(back.node_count(), 1);
        assert_eq!(bl.name(back.label(back.root())), "only");
    }
}

// ---- edit log serialization -------------------------------------------

/// Magic for serialized edit logs.
const LOG_MAGIC: &[u8; 4] = b"PQLG";

use crate::edit::{EditLog, EditOp, InsertAnchor, LogOp};

/// Serializes an edit log (including insert anchors) to `w`.
///
/// Node ids are written as raw arena indices: a log is only meaningful
/// together with the tree lineage it was recorded against, exactly like the
/// in-memory representation.
pub fn write_log<W: Write + ?Sized>(w: &mut W, log: &EditLog) -> io::Result<()> {
    w.write_all(LOG_MAGIC)?;
    write_varint(w, VERSION)?;
    write_varint(w, log.len() as u64)?;
    for entry in log.ops() {
        match entry.op {
            EditOp::Rename { node, label } => {
                write_varint(w, 0)?;
                write_varint(w, node.index() as u64)?;
                write_varint(w, label.index() as u64)?;
            }
            EditOp::Delete { node } => {
                write_varint(w, 1)?;
                write_varint(w, node.index() as u64)?;
            }
            EditOp::Insert {
                node,
                label,
                parent,
                k,
                m,
            } => {
                write_varint(w, 2)?;
                write_varint(w, node.index() as u64)?;
                write_varint(w, label.index() as u64)?;
                write_varint(w, parent.index() as u64)?;
                write_varint(w, k as u64)?;
                // m = k - 1 is legal, bias by +1 so the varint stays unsigned.
                write_varint(w, (m + 1) as u64)?;
                match entry.anchor.as_ref().expect("log inserts carry an anchor") {
                    InsertAnchor::Adopted(run) => {
                        write_varint(w, 1 + run.len() as u64)?;
                        for n in run.iter() {
                            write_varint(w, n.index() as u64)?;
                        }
                    }
                    InsertAnchor::Gap { pred, succ } => {
                        write_varint(w, 0)?;
                        let opt = |v: &Option<NodeId>| match v {
                            None => 0u64,
                            Some(n) => n.index() as u64 + 1,
                        };
                        write_varint(w, opt(pred))?;
                        write_varint(w, opt(succ))?;
                    }
                }
            }
        }
    }
    Ok(())
}

/// Deserializes an edit log written by [`write_log`].
pub fn read_log<R: Read + ?Sized>(r: &mut R) -> io::Result<EditLog> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != LOG_MAGIC {
        return Err(bad("bad log magic"));
    }
    if read_varint(r)? != VERSION {
        return Err(bad("unsupported log version"));
    }
    let len = read_varint(r)? as usize;
    let node = |v: u64| NodeId::from_index(v as usize);
    let mut entries = Vec::with_capacity(len.min(1 << 20));
    for _ in 0..len {
        let entry = match read_varint(r)? {
            0 => LogOp::new(
                EditOp::Rename {
                    node: node(read_varint(r)?),
                    label: LabelSym::from_index(read_varint(r)? as usize),
                },
                None,
            ),
            1 => LogOp::new(
                EditOp::Delete {
                    node: node(read_varint(r)?),
                },
                None,
            ),
            2 => {
                let n = node(read_varint(r)?);
                let label = LabelSym::from_index(read_varint(r)? as usize);
                let parent = node(read_varint(r)?);
                let k = read_varint(r)? as usize;
                let m_biased = read_varint(r)? as usize;
                if m_biased == 0 {
                    return Err(bad("invalid m"));
                }
                let anchor = match read_varint(r)? {
                    0 => {
                        let opt = |v: u64| (v > 0).then(|| node(v - 1));
                        InsertAnchor::Gap {
                            pred: opt(read_varint(r)?),
                            succ: opt(read_varint(r)?),
                        }
                    }
                    adopted_plus_1 => {
                        let count = (adopted_plus_1 - 1) as usize;
                        if count == 0 {
                            return Err(bad("adopted run must be non-empty"));
                        }
                        let mut run = Vec::with_capacity(count.min(1 << 16));
                        for _ in 0..count {
                            run.push(node(read_varint(r)?));
                        }
                        InsertAnchor::Adopted(run.into())
                    }
                };
                LogOp::new(
                    EditOp::Insert {
                        node: n,
                        label,
                        parent,
                        k,
                        m: m_biased - 1,
                    },
                    Some(anchor),
                )
            }
            t => return Err(bad(&format!("unknown op tag {t}"))),
        };
        entries.push(entry);
    }
    Ok(entries.into_iter().collect())
}

#[cfg(test)]
mod log_tests {
    use super::*;
    use crate::generate::{random_tree, RandomTreeConfig};
    use crate::label::LabelTable;
    use crate::script::{record_script, ScriptConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn log_roundtrip_preserves_everything() {
        for seed in 0..15u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut lt = LabelTable::new();
            let mut tree = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(50, 5));
            let snapshot = tree.clone();
            let alphabet: Vec<_> = lt.iter().map(|(s, _)| s).collect();
            let (log, _) = record_script(&mut rng, &mut tree, &ScriptConfig::new(20, alphabet));
            let mut buf = Vec::new();
            write_log(&mut buf, &log).unwrap();
            let back = read_log(&mut buf.as_slice()).unwrap();
            assert_eq!(back, log, "seed {seed}");
            // And the deserialized log rewinds the tree identically.
            back.rewind(&mut tree).unwrap();
            assert_eq!(tree, snapshot);
        }
    }

    #[test]
    fn empty_log_roundtrip() {
        let mut buf = Vec::new();
        write_log(&mut buf, &EditLog::new()).unwrap();
        assert!(read_log(&mut buf.as_slice()).unwrap().is_empty());
    }

    #[test]
    fn log_read_rejects_garbage() {
        assert!(read_log(&mut b"XXXX".as_slice()).is_err());
        assert!(read_log(&mut b"PQLG".as_slice()).is_err());
        let mut lt = LabelTable::new();
        let mut tree = Tree::with_root(lt.intern("a"));
        let x = lt.intern("x");
        let mut log = EditLog::new();
        let id = tree.next_node_id();
        log.push(
            tree.apply_logged(crate::edit::EditOp::Insert {
                node: id,
                label: x,
                parent: tree.root(),
                k: 1,
                m: 0,
            })
            .unwrap(),
        );
        let mut buf = Vec::new();
        write_log(&mut buf, &log).unwrap();
        buf.truncate(buf.len() - 1);
        assert!(read_log(&mut buf.as_slice()).is_err());
    }
}
