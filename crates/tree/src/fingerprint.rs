//! Karp–Rabin label fingerprints (Section 3.2 of the paper).
//!
//! The pq-gram index does not store node labels — which in XML documents can
//! be arbitrarily long — but a fixed-width fingerprint `h(l)` that is unique
//! with high probability. The only operation the index ever performs on
//! labels is an equality check, for which fingerprints suffice.
//!
//! We implement the classic Karp–Rabin scheme: the label bytes are read as the
//! coefficients of a polynomial which is evaluated at a fixed base modulo a
//! large prime. Two different labels collide with probability ≈ `len / P`,
//! negligible for realistic label sets.

/// A 64-bit Karp–Rabin fingerprint of a label.
pub type Fingerprint = u64;

/// Mersenne prime `2^61 - 1`; fits products of two 61-bit residues in `u128`.
const P: u128 = (1 << 61) - 1;
/// Evaluation point for the Karp–Rabin polynomial (a fixed random odd value).
const BASE: u128 = 0x2d35_8dcc_aa6c_78a5 % P;

/// Fingerprint reserved for the *null label* `*` of the extended tree
/// (Definition 1). Matches the paper's example hash table where `h(*) = 0`.
pub const NULL_FINGERPRINT: Fingerprint = 0;

/// Computes the Karp–Rabin fingerprint of a label.
///
/// The result is guaranteed to be non-zero so that it can never collide with
/// [`NULL_FINGERPRINT`]; real labels and the null node are always
/// distinguishable.
pub fn karp_rabin(label: &str) -> Fingerprint {
    let mut acc: u128 = 0;
    for &b in label.as_bytes() {
        // Horner evaluation: acc = acc * BASE + (b + 1)  (mod P).
        // `b + 1` keeps leading NUL bytes significant.
        acc = mul_mod(acc, BASE) + (b as u128 + 1);
        if acc >= P {
            acc -= P;
        }
    }
    // Mix in the length so that e.g. "a" and "a\0" (after the +1 shift: labels
    // that are prefixes under the accumulator) stay distinct, then ensure
    // non-zero.
    acc = mul_mod(acc, BASE) + (label.len() as u128 % P) + 1;
    acc %= P;
    if acc == 0 {
        1
    } else {
        acc as u64
    }
}

/// Incrementally combines label fingerprints into a tuple fingerprint
/// (Horner evaluation over the same field as [`karp_rabin`]).
///
/// The pq-gram index stores one fixed-width value per pq-gram: the paper
/// concatenates the fixed-width hashes of the `p + q` labels; we fold them
/// with the same Karp–Rabin polynomial instead, which keeps the value at 64
/// bits for any `p, q` while remaining position-sensitive. Start from
/// [`TUPLE_SEED`] and fold each label fingerprint in order.
#[inline]
pub fn combine(acc: Fingerprint, label_fp: Fingerprint) -> Fingerprint {
    let v = mul_mod(acc as u128, BASE) + label_fp as u128 + 1;
    (v % P) as u64
}

/// Initial accumulator for [`combine`].
pub const TUPLE_SEED: Fingerprint = 0x5eed;

/// A fanout token for Merkle-style subtree fingerprints.
///
/// [`combine`] is an affine fold, so hashing a node as
/// `fold(label, child-hashes…)` alone is ambiguous: child sequences
/// *flatten* and differently-bracketed trees collide systematically (e.g.
/// `a(a(a a))` vs `a(a a(a))`). Appending `arity_mark(fanout)` after the
/// children delimits nodes; additionally every *child hash* must pass
/// through the non-linear [`mix`] before folding — under a purely affine
/// fold, hash differences telescope through the levels and cancel
/// *identically*, markers or not.
#[inline]
pub fn arity_mark(fanout: usize) -> Fingerprint {
    ((fanout as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1) % ((1 << 61) - 1)
}

/// Non-linear 64-bit permutation (the splitmix64 finalizer). Apply to child
/// hashes before [`combine`]-folding them into a parent's Merkle hash; see
/// [`arity_mark`] for why linearity is fatal there.
#[inline]
pub fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[inline]
fn mul_mod(a: u128, b: u128) -> u128 {
    let prod = a * b;
    // Fast reduction modulo 2^61 - 1.
    let reduced = (prod & P) + (prod >> 61);
    if reduced >= P {
        reduced - P
    } else {
        reduced
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        assert_eq!(karp_rabin("article"), karp_rabin("article"));
    }

    #[test]
    fn distinct_for_small_alphabet() {
        let labels = ["a", "b", "c", "d", "aa", "ab", "ba", "", " ", "article"];
        let fps: HashSet<_> = labels.iter().map(|l| karp_rabin(l)).collect();
        assert_eq!(fps.len(), labels.len());
    }

    #[test]
    fn never_null() {
        for l in ["", "x", "\0", "\0\0", "long label with spaces"] {
            assert_ne!(karp_rabin(l), NULL_FINGERPRINT);
        }
    }

    #[test]
    fn no_collisions_over_many_generated_labels() {
        let mut fps = HashSet::new();
        for i in 0..50_000u32 {
            assert!(
                fps.insert(karp_rabin(&format!("label-{i}"))),
                "collision at {i}"
            );
        }
    }

    #[test]
    fn order_sensitive() {
        assert_ne!(karp_rabin("ab"), karp_rabin("ba"));
    }

    #[test]
    fn length_sensitive() {
        assert_ne!(karp_rabin("a"), karp_rabin("aa"));
        assert_ne!(karp_rabin(""), karp_rabin("\0"));
    }
}
