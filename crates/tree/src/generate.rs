//! Workload generators — substitutes for the paper's datasets.
//!
//! The paper evaluates on synthetic XML produced by `xmlgen` (the XMark
//! benchmark) and on the DBLP bibliography (211 MB, 11 M nodes). Neither is
//! shipped here, so this module generates documents with the same *shape
//! statistics* the experiments depend on — label hierarchy, fanout skew and
//! value-vocabulary reuse — at laptop-friendly scales:
//!
//! * [`random_tree`] — uniform random recursive trees for property tests;
//! * [`xmark`] — XMark-schema-shaped auction documents;
//! * [`dblp`] — DBLP-schema-shaped bibliography documents.

use crate::label::{LabelSym, LabelTable};
use crate::tree::{NodeId, Tree};
use rand::seq::IndexedRandom;
use rand::Rng;

/// Configuration for [`random_tree`].
#[derive(Clone, Debug)]
pub struct RandomTreeConfig {
    /// Total number of nodes (≥ 1).
    pub nodes: usize,
    /// Number of distinct labels to intern/draw (≥ 1).
    pub alphabet: usize,
    /// Prefix for generated label names (so multiple generators can share a
    /// [`LabelTable`] without colliding).
    pub label_prefix: &'static str,
}

impl RandomTreeConfig {
    /// `nodes` nodes over `alphabet` distinct labels.
    pub fn new(nodes: usize, alphabet: usize) -> Self {
        RandomTreeConfig {
            nodes,
            alphabet,
            label_prefix: "l",
        }
    }
}

/// Generates a uniform random recursive tree: each new node attaches to a
/// uniformly chosen existing node. Expected depth is `O(log n)`, fanout is
/// skewed — a reasonable stand-in for document trees in property tests.
pub fn random_tree<R: Rng + ?Sized>(
    rng: &mut R,
    labels: &mut LabelTable,
    cfg: &RandomTreeConfig,
) -> Tree {
    assert!(cfg.nodes >= 1 && cfg.alphabet >= 1);
    let alphabet: Vec<LabelSym> = (0..cfg.alphabet)
        .map(|i| labels.intern(&format!("{}{}", cfg.label_prefix, i)))
        .collect();
    let mut tree = Tree::with_root(alphabet[0]);
    let mut nodes: Vec<NodeId> = Vec::with_capacity(cfg.nodes);
    nodes.push(tree.root());
    while nodes.len() < cfg.nodes {
        let &parent = nodes.choose(rng).expect("non-empty");
        let label = *alphabet.choose(rng).expect("non-empty");
        nodes.push(tree.add_child(parent, label));
    }
    tree
}

/// Adds `tag(value)` under `parent`: an element node with a single value
/// leaf. Returns the element node.
fn kv(t: &mut Tree, parent: NodeId, tag: LabelSym, value: LabelSym) -> NodeId {
    let e = t.add_child(parent, tag);
    t.add_child(e, value);
    e
}

/// A Zipf-ish sampler over a word vocabulary: word `i` is drawn with weight
/// `1 / (i + 1)`. Reused values create duplicate pq-grams, which drives the
/// sublinear index growth of Figure 14 (left).
struct Vocabulary {
    words: Vec<LabelSym>,
    /// Cumulative weights scaled to u32 for cheap sampling.
    cumulative: Vec<f64>,
}

impl Vocabulary {
    fn new(labels: &mut LabelTable, prefix: &str, size: usize) -> Self {
        let words: Vec<LabelSym> = (0..size)
            .map(|i| labels.intern(&format!("{prefix}{i}")))
            .collect();
        let mut cumulative = Vec::with_capacity(size);
        let mut acc = 0.0f64;
        for i in 0..size {
            acc += 1.0 / (i as f64 + 1.0);
            cumulative.push(acc);
        }
        Vocabulary { words, cumulative }
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> LabelSym {
        let total = *self.cumulative.last().expect("non-empty vocabulary");
        let x = rng.random_range(0.0..total);
        let idx = self.cumulative.partition_point(|&c| c < x);
        self.words[idx.min(self.words.len() - 1)]
    }
}

/// Generates an XMark-shaped auction site document with roughly
/// `target_nodes` nodes (the actual count lands within a few percent).
///
/// Shape: `site(regions(africa…(item*)) people(person*) open_auctions(…)
/// closed_auctions(…))`, with items, persons and auctions replicated until
/// the node budget is exhausted. Value leaves draw from Zipf vocabularies.
pub fn xmark<R: Rng + ?Sized>(rng: &mut R, labels: &mut LabelTable, target_nodes: usize) -> Tree {
    let s = |labels: &mut LabelTable, n: &str| labels.intern(n);
    let site = s(labels, "site");
    let regions = s(labels, "regions");
    let region_names: Vec<LabelSym> = [
        "africa",
        "asia",
        "australia",
        "europe",
        "namerica",
        "samerica",
    ]
    .iter()
    .map(|r| s(labels, r))
    .collect();
    let item = s(labels, "item");
    let location = s(labels, "location");
    let quantity = s(labels, "quantity");
    let name = s(labels, "name");
    let payment = s(labels, "payment");
    let description = s(labels, "description");
    let text = s(labels, "text");
    let shipping = s(labels, "shipping");
    let incategory = s(labels, "incategory");
    let people = s(labels, "people");
    let person = s(labels, "person");
    let emailaddress = s(labels, "emailaddress");
    let phone = s(labels, "phone");
    let address = s(labels, "address");
    let street = s(labels, "street");
    let city = s(labels, "city");
    let country = s(labels, "country");
    let zipcode = s(labels, "zipcode");
    let profile = s(labels, "profile");
    let interest = s(labels, "interest");
    let open_auctions = s(labels, "open_auctions");
    let open_auction = s(labels, "open_auction");
    let initial = s(labels, "initial");
    let bidder = s(labels, "bidder");
    let date = s(labels, "date");
    let time = s(labels, "time");
    let increase = s(labels, "increase");
    let current = s(labels, "current");
    let itemref = s(labels, "itemref");
    let seller = s(labels, "seller");
    let closed_auctions = s(labels, "closed_auctions");
    let closed_auction = s(labels, "closed_auction");
    let price = s(labels, "price");
    let buyer = s(labels, "buyer");

    let words = Vocabulary::new(labels, "w", 500);
    let numbers = Vocabulary::new(labels, "num", 200);
    let names = Vocabulary::new(labels, "pname", 300);
    let cats = Vocabulary::new(labels, "cat", 50);

    let mut t = Tree::with_root(site);
    let root = t.root();
    let regions_n = t.add_child(root, regions);
    let region_nodes: Vec<NodeId> = region_names
        .iter()
        .map(|&r| t.add_child(regions_n, r))
        .collect();
    let people_n = t.add_child(root, people);
    let open_n = t.add_child(root, open_auctions);
    let closed_n = t.add_child(root, closed_auctions);

    // One "round" adds one item, one person and (every other round) one
    // auction; loop until the budget is spent.
    let mut round = 0usize;
    while t.node_count() + 16 < target_nodes {
        round += 1;
        // Item under a random region.
        let &region = region_nodes.choose(rng).expect("non-empty");
        let it = t.add_child(region, item);
        kv(&mut t, it, location, country);
        kv(&mut t, it, quantity, numbers.sample(rng));
        kv(&mut t, it, name, words.sample(rng));
        kv(&mut t, it, payment, words.sample(rng));
        let desc = t.add_child(it, description);
        let txt = t.add_child(desc, text);
        for _ in 0..rng.random_range(1..=4) {
            t.add_child(txt, words.sample(rng));
        }
        if rng.random_bool(0.6) {
            t.add_child(it, shipping);
        }
        for _ in 0..rng.random_range(1..=3) {
            kv(&mut t, it, incategory, cats.sample(rng));
        }

        if t.node_count() + 14 >= target_nodes {
            break;
        }
        // Person.
        let p = t.add_child(people_n, person);
        kv(&mut t, p, name, names.sample(rng));
        kv(&mut t, p, emailaddress, names.sample(rng));
        if rng.random_bool(0.5) {
            kv(&mut t, p, phone, numbers.sample(rng));
        }
        if rng.random_bool(0.4) {
            let a = t.add_child(p, address);
            kv(&mut t, a, street, words.sample(rng));
            kv(&mut t, a, city, words.sample(rng));
            kv(&mut t, a, country, words.sample(rng));
            kv(&mut t, a, zipcode, numbers.sample(rng));
        }
        if rng.random_bool(0.5) {
            let pr = t.add_child(p, profile);
            for _ in 0..rng.random_range(0..=3) {
                kv(&mut t, pr, interest, cats.sample(rng));
            }
        }

        if t.node_count() + 18 >= target_nodes {
            break;
        }
        // Auctions.
        if round.is_multiple_of(2) {
            let a = t.add_child(open_n, open_auction);
            kv(&mut t, a, initial, numbers.sample(rng));
            for _ in 0..rng.random_range(0..=4) {
                let b = t.add_child(a, bidder);
                kv(&mut t, b, date, numbers.sample(rng));
                kv(&mut t, b, time, numbers.sample(rng));
                kv(&mut t, b, increase, numbers.sample(rng));
            }
            kv(&mut t, a, current, numbers.sample(rng));
            t.add_child(a, itemref);
            kv(&mut t, a, seller, names.sample(rng));
        } else {
            let a = t.add_child(closed_n, closed_auction);
            kv(&mut t, a, seller, names.sample(rng));
            kv(&mut t, a, buyer, names.sample(rng));
            t.add_child(a, itemref);
            kv(&mut t, a, price, numbers.sample(rng));
            kv(&mut t, a, date, numbers.sample(rng));
        }
    }
    t
}

/// Generates a DBLP-shaped bibliography with roughly `target_nodes` nodes.
///
/// Shape: `dblp(article|inproceedings*)`, each publication with `author+`,
/// `title`, `year`, venue, `pages`, `ee`, `url` children whose value leaves
/// draw from Zipf vocabularies (author names and venues repeat heavily, as
/// in the real DBLP).
pub fn dblp<R: Rng + ?Sized>(rng: &mut R, labels: &mut LabelTable, target_nodes: usize) -> Tree {
    let dblp = labels.intern("dblp");
    let article = labels.intern("article");
    let inproceedings = labels.intern("inproceedings");
    let author = labels.intern("author");
    let title = labels.intern("title");
    let year = labels.intern("year");
    let journal = labels.intern("journal");
    let booktitle = labels.intern("booktitle");
    let pages = labels.intern("pages");
    let ee = labels.intern("ee");
    let url = labels.intern("url");

    let authors = Vocabulary::new(labels, "auth", 1_000);
    let titlewords = Vocabulary::new(labels, "tw", 1_500);
    let venues = Vocabulary::new(labels, "venue", 120);
    let years: Vec<LabelSym> = (1960..2007)
        .map(|y| labels.intern(&y.to_string()))
        .collect();
    let pageranges = Vocabulary::new(labels, "pp", 600);
    let urls = Vocabulary::new(labels, "u", 800);

    let mut t = Tree::with_root(dblp);
    let root = t.root();
    while t.node_count() + 24 < target_nodes {
        let is_article = rng.random_bool(0.45);
        let pub_n = t.add_child(root, if is_article { article } else { inproceedings });
        for _ in 0..rng.random_range(1..=4) {
            kv(&mut t, pub_n, author, authors.sample(rng));
        }
        let ti = t.add_child(pub_n, title);
        for _ in 0..rng.random_range(3..=8) {
            t.add_child(ti, titlewords.sample(rng));
        }
        kv(&mut t, pub_n, year, *years.choose(rng).expect("non-empty"));
        let venue_tag = if is_article { journal } else { booktitle };
        kv(&mut t, pub_n, venue_tag, venues.sample(rng));
        kv(&mut t, pub_n, pages, pageranges.sample(rng));
        if rng.random_bool(0.8) {
            kv(&mut t, pub_n, ee, urls.sample(rng));
        }
        if rng.random_bool(0.3) {
            kv(&mut t, pub_n, url, urls.sample(rng));
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_tree_has_requested_size() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lt = LabelTable::new();
        for n in [1, 2, 10, 500] {
            let t = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(n, 4));
            assert_eq!(t.node_count(), n);
            t.validate().unwrap();
        }
    }

    #[test]
    fn random_tree_is_deterministic_per_seed() {
        let mk = || {
            let mut rng = StdRng::seed_from_u64(42);
            let mut lt = LabelTable::new();
            random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(100, 5))
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn xmark_lands_near_target() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lt = LabelTable::new();
        for target in [200usize, 2_000, 20_000] {
            let t = xmark(&mut rng, &mut lt, target);
            t.validate().unwrap();
            let n = t.node_count();
            assert!(n <= target, "overshoot: {n} > {target}");
            assert!(n * 10 >= target * 8, "undershoot: {n} << {target}");
        }
    }

    #[test]
    fn xmark_has_schema_roots() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut lt = LabelTable::new();
        let t = xmark(&mut rng, &mut lt, 1_000);
        assert_eq!(lt.name(t.label(t.root())), "site");
        let top: Vec<&str> = t
            .children(t.root())
            .iter()
            .map(|&c| lt.name(t.label(c)))
            .collect();
        assert_eq!(
            top,
            vec!["regions", "people", "open_auctions", "closed_auctions"]
        );
    }

    #[test]
    fn dblp_lands_near_target_and_reuses_values() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut lt = LabelTable::new();
        let t = dblp(&mut rng, &mut lt, 50_000);
        t.validate().unwrap();
        let n = t.node_count();
        assert!(n <= 50_000 && n * 10 >= 8 * 50_000);
        // Zipf reuse: far fewer distinct labels than nodes.
        assert!(lt.len() < n / 3, "labels {} vs nodes {n}", lt.len());
    }

    #[test]
    fn vocabulary_prefers_low_ranks() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut lt = LabelTable::new();
        let v = Vocabulary::new(&mut lt, "w", 100);
        let first = v.words[0];
        let hits = (0..10_000).filter(|_| v.sample(&mut rng) == first).count();
        // Weight of rank 0 is 1/H(100) ≈ 0.19.
        assert!(hits > 1_000, "rank-0 sampled only {hits}/10000 times");
    }
}
