#![warn(missing_docs)]
#![forbid(unsafe_code)]
//! Ordered labeled trees with stable node identity, tree edit operations and
//! workload generators.
//!
//! This crate is the data-model substrate of the `pqgram` workspace, a
//! reproduction of *Augsten, Böhlen, Gamper: "An Incrementally Maintainable
//! Index for Approximate Lookups in Hierarchical Data" (VLDB 2006)*.
//!
//! The paper models hierarchical data (Section 3.1) as directed, acyclic,
//! connected graphs with ordered siblings, where every node is an
//! *(identifier, label)* pair. Identifiers are unique within a tree and stable
//! across edit operations — the correctness proofs of the incremental index
//! maintenance depend on being able to equate nodes of different versions of
//! the same document. [`Tree`] implements exactly this model: an arena of node
//! slots whose indices are never reused, interned labels, and the three
//! standard node edit operations `INS`, `DEL`, `REN` of Zhang & Shasha with
//! their inverses ([`EditOp`]).
//!
//! # Quick example
//!
//! ```
//! use pqgram_tree::{Tree, LabelTable, EditOp};
//!
//! let mut labels = LabelTable::new();
//! let (a, b, c) = (labels.intern("a"), labels.intern("b"), labels.intern("c"));
//!
//! // build   a
//! //        / \
//! //       b   c
//! let mut tree = Tree::with_root(a);
//! let root = tree.root();
//! let nb = tree.add_child(root, b);
//! let _nc = tree.add_child(root, c);
//!
//! // rename b -> c and remember the inverse operation
//! let inverse = tree.apply(EditOp::Rename { node: nb, label: c }).unwrap();
//! assert_eq!(tree.label(nb), c);
//! // undo
//! tree.apply(inverse).unwrap();
//! assert_eq!(tree.label(nb), b);
//! ```

pub mod edit;
pub mod fingerprint;
pub mod generate;
pub mod hash;
pub mod label;
pub mod optimize;
pub mod render;
pub mod script;
pub mod serial;
pub mod subtree;
pub mod tree;

pub use edit::{EditError, EditLog, EditOp, InsertAnchor, LogOp};
pub use fingerprint::{karp_rabin, Fingerprint};
pub use hash::{FxHashMap, FxHashSet};
pub use label::{LabelSym, LabelTable};
pub use optimize::{optimize_log, OptimizeStats};
pub use script::{record_script, ScriptConfig, ScriptMix};
pub use tree::{NodeId, Tree};
