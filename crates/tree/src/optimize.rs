//! Log preprocessing: eliminating redundant edit operations
//! (Section 10, future work).
//!
//! "Later edit operations in the log might undo earlier ones. In future we
//! will investigate how the log can be preprocessed in order to eliminate
//! redundant edit operations." — this module implements that preprocessing
//! with three provably safe rewrites, given the resulting tree `Tₙ` and the
//! log (the same inputs the index maintenance has):
//!
//! 1. **Adjacent create/destroy cancellation.** A forward `INS(x, …)`
//!    immediately followed by `DEL(x)` is a net identity on the tree (the
//!    delete releases exactly the children the insert adopted); the log pair
//!    `(DEL(x), INS(x, …))` at adjacent positions is removed. Applied to a
//!    fixpoint, so nested create/destroy brackets collapse.
//! 2. **Dead renames.** If the log contains `DEL(x)` (i.e. the forward
//!    sequence *created* `x`, so `x ∉ T₀`), every `REN(x, ·)` entry is
//!    dropped: during the rewind `x` is deleted anyway and no other
//!    operation reads labels.
//! 3. **Rename collapse.** Of several `REN(x, ·)` entries only the earliest
//!    (whose argument is `x`'s original label `l₁`) matters for `T₀`; later
//!    ones are dropped. If the log also re-creates `x` (`INS(x, …)` from a
//!    forward delete), the insert's label is rewritten to `l₁` and the
//!    rename dropped entirely; if `x ∈ Tₙ` already carries `l₁`, the rename
//!    is a net identity and dropped.
//!
//! Every rewrite preserves the rewind result (`T₀`) *and* keeps the log a
//! valid inverse edit sequence, so the incremental index maintenance accepts
//! the optimized log unchanged — validated by the oracle tests here and in
//! `pqgram-core`.

use crate::edit::{EditLog, EditOp, LogOp};
use crate::label::LabelSym;
use crate::tree::{NodeId, Tree};
use crate::FxHashMap;

/// What [`optimize_log`] did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptimizeStats {
    /// Entries in the input log.
    pub original_len: usize,
    /// Entries in the optimized log.
    pub optimized_len: usize,
    /// Adjacent `INS`/`DEL` pairs cancelled (rule 1), counted in pairs.
    pub cancelled_pairs: usize,
    /// `REN` entries dropped by rules 2 and 3.
    pub dropped_renames: usize,
    /// `INS` entries whose label was rewritten (rule 3).
    pub rewritten_inserts: usize,
}

/// Preprocesses `log` against the resulting tree `tree` (= `Tₙ`), returning
/// an equivalent, usually shorter log.
pub fn optimize_log(tree: &Tree, log: &EditLog) -> (EditLog, OptimizeStats) {
    let mut stats = OptimizeStats {
        original_len: log.len(),
        ..Default::default()
    };
    let cancelled = cancel_adjacent_pairs(log.ops().to_vec(), &mut stats);
    let mut entries: Vec<Option<LogOp>> = cancelled.into_iter().map(Some).collect();
    drop_and_collapse_renames(tree, &mut entries, &mut stats);

    let out: EditLog = entries.into_iter().flatten().collect();
    stats.optimized_len = out.len();
    (out, stats)
}

/// Rule 1 to a fixpoint: remove `(DEL(x), INS(x, …))` at adjacent live
/// positions. Matched-bracket elimination: after a pair cancels, the new
/// stack top is adjacent to the next entry, so nested brackets collapse in
/// one pass.
fn cancel_adjacent_pairs(entries: Vec<LogOp>, stats: &mut OptimizeStats) -> Vec<LogOp> {
    let mut out: Vec<LogOp> = Vec::with_capacity(entries.len());
    for entry in entries {
        let cancels = matches!(
            (out.last().map(|p| &p.op), &entry.op),
            (Some(EditOp::Delete { node: a }), EditOp::Insert { node: b, .. }) if a == b
        );
        if cancels {
            out.pop();
            stats.cancelled_pairs += 1;
        } else {
            out.push(entry);
        }
    }
    out
}

/// Rules 2 and 3.
fn drop_and_collapse_renames(
    tree: &Tree,
    entries: &mut [Option<LogOp>],
    stats: &mut OptimizeStats,
) {
    // Index the per-node entry kinds. The first rename's label is captured
    // here so the rewrite loop never has to re-read (and prove live) the
    // entry behind a stored position.
    #[derive(Default)]
    struct PerNode {
        /// positions of REN(x, ·) entries, ascending.
        renames: Vec<usize>,
        /// label argument of the earliest rename (x's original label).
        first_label: Option<LabelSym>,
        /// position of the DEL(x) entry (forward insert), if any.
        del: Option<usize>,
        /// position of the INS(x, …) entry (forward delete), if any.
        ins: Option<usize>,
    }
    let mut by_node: FxHashMap<NodeId, PerNode> = FxHashMap::default();
    for (i, slot) in entries.iter().enumerate() {
        let Some(entry) = slot else { continue };
        let per = by_node.entry(entry.op.target()).or_default();
        match entry.op {
            EditOp::Rename { label, .. } => {
                per.first_label.get_or_insert(label);
                per.renames.push(i);
            }
            EditOp::Delete { .. } => per.del = Some(i),
            EditOp::Insert { .. } => per.ins = Some(i),
        }
    }

    let clear = |entries: &mut [Option<LogOp>], i: usize| {
        if let Some(slot) = entries.get_mut(i) {
            *slot = None;
        }
    };
    for (node, per) in by_node {
        let Some(original_label) = per.first_label else {
            continue; // no renames for this node
        };
        // Rule 2: x does not exist in T0 — its labels never matter.
        if per.del.is_some() {
            for &i in &per.renames {
                clear(entries, i);
                stats.dropped_renames += 1;
            }
            continue;
        }
        // Rule 3: only the earliest rename (the original label) matters.
        let mut positions = per.renames.iter().copied();
        let Some(first) = positions.next() else {
            continue;
        };
        for i in positions {
            clear(entries, i);
            stats.dropped_renames += 1;
        }
        match per.ins {
            Some(ins_pos) => {
                // The rewind re-creates x; bake the original label into the
                // insert and drop the rename.
                if let Some(entry) = entries.get_mut(ins_pos).and_then(Option::as_mut) {
                    if let EditOp::Insert { label, .. } = &mut entry.op {
                        if *label != original_label {
                            *label = original_label;
                            stats.rewritten_inserts += 1;
                        }
                    }
                }
                clear(entries, first);
                stats.dropped_renames += 1;
            }
            None => {
                // x survives into Tn. If its label is already the original,
                // the remaining rename is a net identity.
                if tree.contains(node) && tree.label(node) == original_label {
                    clear(entries, first);
                    stats.dropped_renames += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{random_tree, RandomTreeConfig};
    use crate::label::LabelTable;
    use crate::script::{record_script, ScriptConfig, ScriptMix};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample() -> (Tree, LabelTable, Vec<NodeId>) {
        let mut lt = LabelTable::new();
        let syms: Vec<_> = ["a", "b", "c", "d", "e", "f"]
            .iter()
            .map(|s| lt.intern(s))
            .collect();
        let mut t = Tree::with_root(syms[0]);
        let n1 = t.root();
        let n2 = t.add_child(n1, syms[1]);
        let n3 = t.add_child(n1, syms[2]);
        let n4 = t.add_child(n1, syms[3]);
        let n5 = t.add_child(n3, syms[4]);
        let n6 = t.add_child(n3, syms[5]);
        (t, lt, vec![n1, n2, n3, n4, n5, n6])
    }

    /// Rewinding the original and the optimized log must yield the same T0.
    fn assert_equivalent(tree: &Tree, log: &EditLog, optimized: &EditLog) {
        let mut a = tree.clone();
        log.rewind(&mut a).expect("original rewinds");
        let mut b = tree.clone();
        optimized.rewind(&mut b).expect("optimized rewinds");
        assert_eq!(a, b, "rewind results differ");
    }

    #[test]
    fn insert_then_delete_cancels() {
        let (mut t, mut lt, n) = sample();
        let x = lt.intern("x");
        let mut log = EditLog::new();
        let id = t.next_node_id();
        log.push(
            t.apply_logged(EditOp::Insert {
                node: id,
                label: x,
                parent: n[0],
                k: 2,
                m: 3,
            })
            .unwrap(),
        );
        log.push(t.apply_logged(EditOp::Delete { node: id }).unwrap());
        let (opt, stats) = optimize_log(&t, &log);
        assert!(opt.is_empty());
        assert_eq!(stats.cancelled_pairs, 1);
        assert_equivalent(&t, &log, &opt);
    }

    #[test]
    fn nested_create_destroy_brackets_collapse() {
        let (mut t, mut lt, n) = sample();
        let x = lt.intern("x");
        let mut log = EditLog::new();
        let a = t.next_node_id();
        log.push(
            t.apply_logged(EditOp::Insert {
                node: a,
                label: x,
                parent: n[0],
                k: 1,
                m: 0,
            })
            .unwrap(),
        );
        let b = t.next_node_id();
        log.push(
            t.apply_logged(EditOp::Insert {
                node: b,
                label: x,
                parent: a,
                k: 1,
                m: 0,
            })
            .unwrap(),
        );
        log.push(t.apply_logged(EditOp::Delete { node: b }).unwrap());
        log.push(t.apply_logged(EditOp::Delete { node: a }).unwrap());
        let (opt, stats) = optimize_log(&t, &log);
        assert!(
            opt.is_empty(),
            "nested brackets should fully cancel: {opt:?}"
        );
        assert_eq!(stats.cancelled_pairs, 2);
        assert_equivalent(&t, &log, &opt);
    }

    #[test]
    fn rename_chain_collapses_to_one() {
        let (mut t, mut lt, n) = sample();
        let (x, y, z) = (lt.intern("x"), lt.intern("y"), lt.intern("z"));
        let mut log = EditLog::new();
        for l in [x, y, z] {
            log.push(
                t.apply_logged(EditOp::Rename {
                    node: n[1],
                    label: l,
                })
                .unwrap(),
            );
        }
        let (opt, stats) = optimize_log(&t, &log);
        assert_eq!(opt.len(), 1);
        assert_eq!(stats.dropped_renames, 2);
        assert_equivalent(&t, &log, &opt);
    }

    #[test]
    fn rename_roundtrip_vanishes() {
        let (mut t, mut lt, n) = sample();
        let x = lt.intern("x");
        let original = t.label(n[1]);
        let mut log = EditLog::new();
        log.push(
            t.apply_logged(EditOp::Rename {
                node: n[1],
                label: x,
            })
            .unwrap(),
        );
        log.push(
            t.apply_logged(EditOp::Rename {
                node: n[1],
                label: original,
            })
            .unwrap(),
        );
        let (opt, _) = optimize_log(&t, &log);
        assert!(opt.is_empty(), "a rename round trip is a net identity");
        assert_equivalent(&t, &log, &opt);
    }

    #[test]
    fn rename_then_delete_bakes_label_into_insert() {
        let (mut t, mut lt, n) = sample();
        let x = lt.intern("x");
        let original = t.label(n[1]);
        let mut log = EditLog::new();
        log.push(
            t.apply_logged(EditOp::Rename {
                node: n[1],
                label: x,
            })
            .unwrap(),
        );
        log.push(t.apply_logged(EditOp::Delete { node: n[1] }).unwrap());
        let (opt, stats) = optimize_log(&t, &log);
        assert_eq!(opt.len(), 1, "only the insert remains");
        match opt.ops()[0].op {
            EditOp::Insert { label, .. } => assert_eq!(label, original),
            ref other => panic!("expected insert, got {other:?}"),
        }
        assert_eq!(stats.rewritten_inserts, 1);
        assert_equivalent(&t, &log, &opt);
    }

    #[test]
    fn renames_of_forward_inserted_node_are_dead() {
        let (mut t, mut lt, n) = sample();
        let (x, y) = (lt.intern("x"), lt.intern("y"));
        let mut log = EditLog::new();
        let id = t.next_node_id();
        log.push(
            t.apply_logged(EditOp::Insert {
                node: id,
                label: x,
                parent: n[0],
                k: 1,
                m: 0,
            })
            .unwrap(),
        );
        log.push(
            t.apply_logged(EditOp::Rename { node: id, label: y })
                .unwrap(),
        );
        let (opt, stats) = optimize_log(&t, &log);
        assert_eq!(opt.len(), 1, "the DEL entry for the created node remains");
        assert!(matches!(opt.ops()[0].op, EditOp::Delete { .. }));
        assert_eq!(stats.dropped_renames, 1);
        assert_equivalent(&t, &log, &opt);
    }

    #[test]
    fn random_scripts_stay_equivalent() {
        for seed in 0..60u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut lt = LabelTable::new();
            let mut tree = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(40, 4));
            let alphabet: Vec<_> = lt.iter().map(|(s, _)| s).collect();
            let mut cfg = ScriptConfig::new(30, alphabet);
            // Bias toward churn so the rules actually fire.
            cfg.mix = ScriptMix {
                insert: 2,
                delete: 2,
                rename: 3,
            };
            let (log, _) = record_script(&mut rng, &mut tree, &cfg);
            let (opt, stats) = optimize_log(&tree, &log);
            assert!(opt.len() <= log.len());
            assert_eq!(stats.original_len, log.len());
            assert_eq!(stats.optimized_len, opt.len());
            assert_equivalent(&tree, &log, &opt);
        }
    }
}
