//! Interned node labels.
//!
//! Trees store compact [`LabelSym`] handles; the [`LabelTable`] owns the
//! strings and their Karp–Rabin fingerprints. A table is typically shared by
//! a whole forest so that equal labels in different documents intern to the
//! same symbol.

use crate::fingerprint::{karp_rabin, Fingerprint, NULL_FINGERPRINT};
use crate::hash::FxHashMap;
use std::fmt;

/// Interned label handle, unique per [`LabelTable`].
///
/// The all-ones value is reserved for the *null label* `*` used by the
/// extended tree of Definition 1; it never corresponds to an interned string.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LabelSym(u32);

impl LabelSym {
    /// The null label `*` (label of the null nodes `•` in the extended tree).
    pub const NULL: LabelSym = LabelSym(u32::MAX);

    /// Returns `true` for the null label.
    #[inline]
    pub fn is_null(self) -> bool {
        self == Self::NULL
    }

    /// Raw index of an interned label; panics on [`LabelSym::NULL`].
    #[inline]
    pub fn index(self) -> usize {
        debug_assert!(!self.is_null(), "index() on LabelSym::NULL");
        self.0 as usize
    }

    /// Reconstructs a symbol from a raw index (for deserialization).
    #[inline]
    pub fn from_index(index: usize) -> Self {
        let v = u32::try_from(index).expect("label index overflow");
        assert_ne!(v, u32::MAX, "label index collides with NULL");
        LabelSym(v)
    }
}

impl fmt::Debug for LabelSym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "*")
        } else {
            write!(f, "l{}", self.0)
        }
    }
}

/// Owns label strings and maps them to stable [`LabelSym`] handles and
/// fingerprints.
#[derive(Default, Clone)]
pub struct LabelTable {
    names: Vec<Box<str>>,
    fingerprints: Vec<Fingerprint>,
    by_name: FxHashMap<Box<str>, LabelSym>,
}

impl LabelTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its symbol. Idempotent.
    pub fn intern(&mut self, name: &str) -> LabelSym {
        if let Some(&sym) = self.by_name.get(name) {
            return sym;
        }
        let sym = LabelSym::from_index(self.names.len());
        let boxed: Box<str> = name.into();
        self.names.push(boxed.clone());
        self.fingerprints.push(karp_rabin(name));
        self.by_name.insert(boxed, sym);
        sym
    }

    /// Looks up an already-interned label.
    pub fn lookup(&self, name: &str) -> Option<LabelSym> {
        self.by_name.get(name).copied()
    }

    /// The string for `sym`; `"*"` for the null label.
    pub fn name(&self, sym: LabelSym) -> &str {
        if sym.is_null() {
            "*"
        } else {
            &self.names[sym.index()]
        }
    }

    /// The Karp–Rabin fingerprint for `sym` ([`NULL_FINGERPRINT`] for `*`).
    #[inline]
    pub fn fingerprint(&self, sym: LabelSym) -> Fingerprint {
        if sym.is_null() {
            NULL_FINGERPRINT
        } else {
            self.fingerprints[sym.index()]
        }
    }

    /// Number of interned labels.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no label has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(sym, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (LabelSym, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (LabelSym::from_index(i), n.as_ref()))
    }
}

impl fmt::Debug for LabelTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LabelTable")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = LabelTable::new();
        let a1 = t.intern("a");
        let a2 = t.intern("a");
        assert_eq!(a1, a2);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn distinct_labels_distinct_syms() {
        let mut t = LabelTable::new();
        assert_ne!(t.intern("a"), t.intern("b"));
    }

    #[test]
    fn name_roundtrip() {
        let mut t = LabelTable::new();
        let s = t.intern("inproceedings");
        assert_eq!(t.name(s), "inproceedings");
        assert_eq!(t.lookup("inproceedings"), Some(s));
        assert_eq!(t.lookup("article"), None);
    }

    #[test]
    fn null_label() {
        let t = LabelTable::new();
        assert_eq!(t.name(LabelSym::NULL), "*");
        assert_eq!(t.fingerprint(LabelSym::NULL), NULL_FINGERPRINT);
        assert!(LabelSym::NULL.is_null());
    }

    #[test]
    fn fingerprints_match_direct_computation() {
        let mut t = LabelTable::new();
        let s = t.intern("dblp");
        assert_eq!(t.fingerprint(s), karp_rabin("dblp"));
    }

    #[test]
    fn iter_returns_in_order() {
        let mut t = LabelTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        let got: Vec<_> = t.iter().collect();
        assert_eq!(got, vec![(a, "a"), (b, "b")]);
    }
}
