//! Algorithm 1: the end-to-end incremental index update.
//!
//! Input — exactly the paper's application scenario (Figure 5):
//! * the *old index* `I₀` of the original document `T₀`;
//! * the *resulting tree* `Tₙ` after a sequence of edits;
//! * the *log* `L = (ē₁, …, ēₙ)` of inverse edit operations.
//!
//! `T₀` and all intermediate versions are **not** available and are never
//! reconstructed. The update runs in three steps:
//!
//! 1. `Δₙ⁺ = ⋃ₖ δ(Tₙ, ēₖ)` — evaluate the delta function of every log
//!    entry on `Tₙ` (Theorem 1) and collect the result in the `(P, Q)`
//!    tables; project to `I⁺ = λ(Δₙ⁺)`.
//! 2. Apply the profile update function for `ēₙ, …, ē₁` in turn, morphing
//!    the tables into `Δₙ⁻` (Theorem 2); project to `I⁻ = λ(Δₙ⁻)`.
//! 3. `Iₙ = I₀ \ I⁻ ⊎ I⁺` (Lemma 2).
//!
//! Every step is timed separately so the Table 2 breakdown of the paper can
//! be reproduced ([`UpdateStats`]).

use crate::delta::accumulate_delta;
use crate::index::{GramKey, TreeIndex};
use crate::params::PQParams;
use crate::table::{DeltaTables, TableError};
use crate::update::apply_update;
use pqgram_tree::{EditLog, LabelTable, Tree};
use std::fmt;
use std::time::{Duration, Instant};

/// Why an incremental update failed. All variants indicate a mismatch
/// between index, tree and log — the update never partially applies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MaintainError {
    /// The index was built with parameters the incremental maintenance does
    /// not support (`q = 1`; see [`PQParams::supports_incremental`]).
    UnsupportedParams(PQParams),
    /// The log edits the root, which the paper's model forbids.
    RootEdit,
    /// A log entry carries arguments no valid recording can produce.
    InvalidOp(pqgram_tree::EditOp),
    /// The `(P, Q)` tables became inconsistent — the log does not belong to
    /// this tree.
    Table(TableError),
    /// `I⁻` asked to remove a gram the old index does not contain — the old
    /// index does not belong to this tree/log.
    InconsistentIndex(GramKey),
}

impl fmt::Display for MaintainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaintainError::UnsupportedParams(p) => {
                write!(f, "incremental maintenance requires q >= 2, got {p}")
            }
            MaintainError::RootEdit => write!(f, "the log must not edit the root node"),
            MaintainError::InvalidOp(op) => write!(f, "malformed log entry {op:?}"),
            MaintainError::Table(e) => write!(f, "delta tables inconsistent: {e}"),
            MaintainError::InconsistentIndex(k) => {
                write!(f, "old index lacks gram {k:#x} scheduled for removal")
            }
        }
    }
}

impl std::error::Error for MaintainError {}

impl From<TableError> for MaintainError {
    fn from(e: TableError) -> Self {
        MaintainError::Table(e)
    }
}

/// Wall-clock breakdown of one incremental update — the rows of Table 2.
#[derive(Clone, Copy, Debug, Default)]
pub struct UpdateStats {
    /// Number of log entries processed.
    pub ops: usize,
    /// Log entries whose delta was empty on `Tₙ` (not applicable there).
    pub skipped_deltas: usize,
    /// Time to compute `Δₙ⁺` (delta function on `Tₙ` for every log entry).
    pub delta_plus: Duration,
    /// Time to project `I⁺ = λ(Δₙ⁺)`.
    pub lambda_plus: Duration,
    /// Time to rewind the tables to `Δₙ⁻` (profile update function).
    pub delta_minus: Duration,
    /// Time to project `I⁻ = λ(Δₙ⁻)`.
    pub lambda_minus: Duration,
    /// Time to apply `I₀ \ I⁻ ⊎ I⁺`.
    pub apply: Duration,
    /// `|Δₙ⁺|` in pq-grams.
    pub plus_grams: usize,
    /// `|Δₙ⁻|` in pq-grams.
    pub minus_grams: usize,
}

impl UpdateStats {
    /// Total wall time of the update.
    pub fn total(&self) -> Duration {
        self.delta_plus + self.lambda_plus + self.delta_minus + self.lambda_minus + self.apply
    }
}

impl fmt::Display for UpdateStats {
    /// One-line human-readable summary (Table 2 in miniature).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ops ({} inapplicable on Tn): Δ+ {} grams in {:.3?}, Δ- {} grams in {:.3?},              λ {:.3?}, apply {:.3?}, total {:.3?}",
            self.ops,
            self.skipped_deltas,
            self.plus_grams,
            self.delta_plus,
            self.minus_grams,
            self.delta_minus,
            self.lambda_plus + self.lambda_minus,
            self.apply,
            self.total()
        )
    }
}

/// The bag-level difference between old and new index.
#[derive(Clone, Debug, Default)]
pub struct IndexDelta {
    /// `I⁺ = λ(Δₙ⁺)`: fingerprints to add (bag, duplicates meaningful).
    pub additions: Vec<GramKey>,
    /// `I⁻ = λ(Δₙ⁻)`: fingerprints to remove.
    pub removals: Vec<GramKey>,
}

/// Result of a successful incremental update.
#[derive(Clone, Debug)]
pub struct UpdateOutcome {
    /// The new index `Iₙ`.
    pub index: TreeIndex,
    /// The applied bag difference.
    pub delta: IndexDelta,
    /// Timing breakdown.
    pub stats: UpdateStats,
}

/// Computes `I⁺`/`I⁻` from the resulting tree and the log only (steps 1–2 of
/// Algorithm 1). Useful when the index lives elsewhere (e.g. on disk in
/// `pqgram-store`) and the caller applies the delta itself.
pub fn compute_index_delta(
    tree: &Tree,
    labels: &LabelTable,
    log: &EditLog,
    params: PQParams,
) -> Result<(IndexDelta, UpdateStats), MaintainError> {
    if !params.supports_incremental() {
        return Err(MaintainError::UnsupportedParams(params));
    }
    for entry in log.ops() {
        if entry.op.target() == tree.root() {
            return Err(MaintainError::RootEdit);
        }
        if let pqgram_tree::EditOp::Insert { k, m, .. } = entry.op {
            // Guard table arithmetic against absurd positional arguments
            // (hand-crafted logs): positions fit u32 and `m ≥ k − 1`.
            const LIMIT: usize = u32::MAX as usize / 4;
            if k == 0 || m + 1 < k || k > LIMIT || m > LIMIT {
                return Err(MaintainError::InvalidOp(entry.op));
            }
        }
    }
    let mut stats = UpdateStats {
        ops: log.len(),
        ..Default::default()
    };
    let mut tables = DeltaTables::new();

    // Step 1: Δₙ⁺ = ⋃ δ(Tₙ, ēᵢ).
    let t = Instant::now();
    for entry in log.ops() {
        if !accumulate_delta(&mut tables, tree, entry, params)? {
            stats.skipped_deltas += 1;
        }
    }
    stats.delta_plus = t.elapsed();

    // I⁺ = λ(Δₙ⁺).
    let t = Instant::now();
    let additions = tables.lambda(labels);
    stats.lambda_plus = t.elapsed();
    stats.plus_grams = additions.len();

    // Step 2: rewind through the log — U(…U(Δₙ⁺, ēₙ)…, ē₁) = Δₙ⁻.
    let t = Instant::now();
    for entry in log.ops().iter().rev() {
        apply_update(&mut tables, entry.op, params)?;
    }
    stats.delta_minus = t.elapsed();

    // I⁻ = λ(Δₙ⁻).
    let t = Instant::now();
    let removals = tables.lambda(labels);
    stats.lambda_minus = t.elapsed();
    stats.minus_grams = removals.len();

    Ok((
        IndexDelta {
            additions,
            removals,
        },
        stats,
    ))
}

/// Algorithm 1: `updateIndex(I₀, Tₙ, L) → Iₙ`.
///
/// The old index is not modified; on success the new index is returned
/// together with the applied delta and the timing breakdown.
pub fn update_index(
    old_index: &TreeIndex,
    tree: &Tree,
    labels: &LabelTable,
    log: &EditLog,
) -> Result<UpdateOutcome, MaintainError> {
    let params = old_index.params();
    let (delta, mut stats) = compute_index_delta(tree, labels, log, params)?;

    // Step 3: Iₙ = I₀ \ I⁻ ⊎ I⁺. `I⁻ ⊆ I₀` (Lemma 2), so removing before
    // adding can never underflow on a consistent input.
    let t = Instant::now();
    let mut index = old_index.clone();
    for &key in &delta.removals {
        if !index.remove(key) {
            return Err(MaintainError::InconsistentIndex(key));
        }
    }
    for &key in &delta.additions {
        index.add(key);
    }
    stats.apply = t.elapsed();

    Ok(UpdateOutcome {
        index,
        delta,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::build_index;
    use pqgram_tree::generate::{random_tree, RandomTreeConfig};
    use pqgram_tree::{record_script, EditOp, LabelTable, ScriptConfig, ScriptMix};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn scenario(
        seed: u64,
        nodes: usize,
        ops: usize,
        mix: ScriptMix,
    ) -> (Tree, Tree, LabelTable, EditLog) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut lt = LabelTable::new();
        let mut tree = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(nodes, 5));
        let t0 = tree.clone();
        let alphabet: Vec<_> = lt.iter().map(|(s, _)| s).collect();
        let mut cfg = ScriptConfig::new(ops, alphabet);
        cfg.mix = mix;
        let (log, _) = record_script(&mut rng, &mut tree, &cfg);
        (t0, tree, lt, log)
    }

    fn check(seed: u64, nodes: usize, ops: usize, mix: ScriptMix, params: PQParams) {
        let (t0, tn, lt, log) = scenario(seed, nodes, ops, mix);
        let old_index = build_index(&t0, &lt, params);
        let outcome =
            update_index(&old_index, &tn, &lt, &log).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let expected = build_index(&tn, &lt, params);
        assert_eq!(outcome.index, expected, "seed {seed} params {params:?}");
    }

    #[test]
    fn incremental_equals_rebuild_rename_only() {
        for seed in 0..10 {
            check(
                seed,
                60,
                12,
                ScriptMix {
                    insert: 0,
                    delete: 0,
                    rename: 1,
                },
                PQParams::new(3, 3),
            );
        }
    }

    #[test]
    fn incremental_equals_rebuild_insert_only() {
        for seed in 0..10 {
            check(
                seed,
                60,
                12,
                ScriptMix {
                    insert: 1,
                    delete: 0,
                    rename: 0,
                },
                PQParams::new(3, 3),
            );
        }
    }

    #[test]
    fn incremental_equals_rebuild_delete_only() {
        for seed in 0..10 {
            check(
                seed,
                60,
                12,
                ScriptMix {
                    insert: 0,
                    delete: 1,
                    rename: 0,
                },
                PQParams::new(3, 3),
            );
        }
    }

    #[test]
    fn incremental_equals_rebuild_mixed() {
        for seed in 0..25 {
            check(seed, 80, 20, ScriptMix::default(), PQParams::new(3, 3));
        }
    }

    #[test]
    fn incremental_equals_rebuild_other_params() {
        for params in [
            PQParams::new(1, 2),
            PQParams::new(2, 2),
            PQParams::new(2, 4),
            PQParams::new(4, 3),
        ] {
            for seed in 0..8 {
                check(seed, 50, 15, ScriptMix::default(), params);
            }
        }
    }

    #[test]
    fn empty_log_is_identity() {
        let (t0, _, lt, _) = scenario(1, 40, 0, ScriptMix::default());
        let params = PQParams::new(3, 3);
        let idx = build_index(&t0, &lt, params);
        let outcome = update_index(&idx, &t0, &lt, &EditLog::new()).unwrap();
        assert_eq!(outcome.index, idx);
        assert!(outcome.delta.additions.is_empty());
        assert!(outcome.delta.removals.is_empty());
    }

    #[test]
    fn q1_params_rejected() {
        let (t0, tn, lt, log) = scenario(2, 40, 5, ScriptMix::default());
        let idx = build_index(&t0, &lt, PQParams::new(3, 1));
        assert_eq!(
            update_index(&idx, &tn, &lt, &log).unwrap_err(),
            MaintainError::UnsupportedParams(PQParams::new(3, 1))
        );
    }

    #[test]
    fn root_edit_rejected() {
        let (t0, tn, mut lt, _) = scenario(3, 40, 0, ScriptMix::default());
        let idx = build_index(&t0, &lt, PQParams::new(3, 3));
        let z = lt.intern("zzz");
        let log: EditLog = [pqgram_tree::LogOp::new(
            EditOp::Rename {
                node: tn.root(),
                label: z,
            },
            None,
        )]
        .into_iter()
        .collect();
        assert_eq!(
            update_index(&idx, &tn, &lt, &log).unwrap_err(),
            MaintainError::RootEdit
        );
    }

    #[test]
    fn mismatched_index_detected() {
        // Update a foreign index with a log: the removals cannot all apply.
        let (_, tn, lt, log) = scenario(4, 60, 10, ScriptMix::default());
        let (other, _, other_lt, _) = scenario(99, 60, 0, ScriptMix::default());
        let params = PQParams::new(3, 3);
        let foreign = build_index(&other, &other_lt, params);
        // Either an explicit error or (astronomically unlikely) a wrong
        // index; assert the error.
        match update_index(&foreign, &tn, &lt, &log) {
            Err(MaintainError::InconsistentIndex(_)) | Err(MaintainError::Table(_)) => {}
            other => panic!("expected inconsistency, got {other:?}"),
        }
    }

    #[test]
    fn stats_are_populated() {
        let (t0, tn, lt, log) = scenario(5, 100, 15, ScriptMix::default());
        let params = PQParams::new(3, 3);
        let idx = build_index(&t0, &lt, params);
        let outcome = update_index(&idx, &tn, &lt, &log).unwrap();
        let s = outcome.stats;
        assert_eq!(s.ops, 15);
        assert_eq!(s.plus_grams, outcome.delta.additions.len());
        assert_eq!(s.minus_grams, outcome.delta.removals.len());
        assert!(s.total() >= s.delta_plus);
        assert!(s.plus_grams > 0 && s.minus_grams > 0);
    }

    #[test]
    fn deep_chain_edits() {
        // Regression guard for ancestor-chain handling: edits at the bottom
        // of a deep unary chain.
        let mut lt = LabelTable::new();
        let labels: Vec<_> = (0..8).map(|i| lt.intern(&format!("d{i}"))).collect();
        let mut t = Tree::with_root(labels[0]);
        let mut cur = t.root();
        for i in 1..60 {
            cur = t.add_child(cur, labels[i % 8]);
        }
        let t0 = t.clone();
        let params = PQParams::new(4, 2);
        let idx = build_index(&t0, &lt, params);
        let mut rng = StdRng::seed_from_u64(7);
        let mut cfg = ScriptConfig::new(12, labels.clone());
        cfg.max_adopted = 1;
        let (log, _) = record_script(&mut rng, &mut t, &cfg);
        let outcome = update_index(&idx, &t, &lt, &log).unwrap();
        assert_eq!(outcome.index, build_index(&t, &lt, params));
    }
}

#[cfg(test)]
mod invalid_op_tests {
    use super::*;
    use crate::index::build_index;
    use pqgram_tree::{EditOp, InsertAnchor, LabelTable, LogOp};

    #[test]
    fn absurd_insert_positions_rejected() {
        let mut lt = LabelTable::new();
        let mut t = Tree::with_root(lt.intern("a"));
        let b = lt.intern("b");
        t.add_child(t.root(), b);
        let idx = build_index(&t, &lt, PQParams::default());
        for (k, m) in [(0usize, 0usize), (5, 2), (usize::MAX / 2, usize::MAX / 2)] {
            let log: EditLog = [LogOp::new(
                EditOp::Insert {
                    node: pqgram_tree::NodeId::from_index(50),
                    label: b,
                    parent: t.root(),
                    k,
                    m,
                },
                Some(InsertAnchor::Gap {
                    pred: None,
                    succ: None,
                }),
            )]
            .into_iter()
            .collect();
            assert!(
                matches!(
                    update_index(&idx, &t, &lt, &log),
                    Err(MaintainError::InvalidOp(_))
                ),
                "k={k} m={m} must be rejected"
            );
        }
    }
}
