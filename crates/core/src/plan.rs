//! Lookup planning: lossless pruning bounds derived from the pq-gram
//! distance formula.
//!
//! Every pruning decision of the persistent lookup path goes through
//! [`LookupPlanner`], which knows only the query bag size `n = |I(Q)|` and
//! the distance bound the caller wants satisfied. The planner answers one
//! kind of question: *given partial knowledge of a stored tree `T` (an
//! upper bound on the bag overlap, or its bag size, or a bag-size range
//! covering a whole source), could `T` still satisfy the bound?* Whenever
//! the answer is no, the tree (or gram probe, or entire source) is skipped
//! without ever computing its exact distance.
//!
//! All answers reduce to one identity. The pq-gram distance is
//! `d = 1 − 2·s / (n + m)` with `s = |I(Q) ∩ I(T)|` and `m = |I(T)|`,
//! which is decreasing in `s` and (for fixed `s`) increasing in `m`, while
//! `s ≤ min(n, m)` always. So the *smallest distance compatible with a
//! constraint* is reached by pushing `s` to its cap and `m` down onto `s`
//! — and that minimum is computed by the **same**
//! [`overlap_distance`] call the verification phase uses, with the same
//! integer inputs and the same float operations. IEEE-754 division and
//! subtraction are correctly rounded and therefore monotone in their real
//! arguments (all intermediate integers stay far below 2⁵³, so the casts
//! are exact), which turns the real-number monotonicity into a float-level
//! guarantee: if the planner rejects, the verified distance could not have
//! satisfied the bound. Pruning is lossless by construction, with no
//! epsilon anywhere.
//!
//! Two bound shapes are supported ([`Bound`]): the threshold lookup admits
//! `d < τ` (strict, matching the paper's `dist(Q, T) < τ`), and the top-k
//! lookup admits `d ≤ b` where `b` is the current worst distance kept by
//! the result heap — non-strict, because a tree at exactly `b` can still
//! displace a kept result with a larger tree id. A top-k bound only ever
//! tightens ([`LookupPlanner::tighten_to`]), so decisions made under an
//! earlier, looser bound remain conservative.

use crate::join::overlap_distance;

/// A distance bound a lookup result must satisfy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Bound {
    /// Admit distances strictly below the threshold (`d < τ`).
    Below(f64),
    /// Admit distances at or below the cutoff (`d ≤ b`) — the top-k shape,
    /// where equality still matters for tie-breaking on tree ids.
    AtMost(f64),
}

impl Bound {
    /// Does `distance` satisfy the bound? (`NaN` satisfies nothing.)
    #[inline]
    pub fn admits(self, distance: f64) -> bool {
        match self {
            Bound::Below(tau) => distance < tau,
            Bound::AtMost(b) => distance <= b,
        }
    }
}

/// The unified lookup planner: one bound, every pruning decision.
///
/// The same planner drives every `τ` — there is no separate plan for
/// `τ > 1`. At such thresholds [`LookupPlanner::admits_overlap`] reports
/// that even a zero-overlap tree satisfies the bound (its distance is
/// exactly 1), which the lookup answers by enumerating the trees the
/// candidate merge cannot see from the totals relation instead of falling
/// back to an exhaustive scan; see [`LookupPlanner::needs_zero_overlap`].
#[derive(Clone, Copy, Debug)]
pub struct LookupPlanner {
    query_total: u64,
    bound: Bound,
}

impl LookupPlanner {
    /// Planner for a threshold lookup: admit `d < tau`.
    pub fn threshold(query_total: u64, tau: f64) -> Self {
        LookupPlanner {
            query_total,
            bound: Bound::Below(tau),
        }
    }

    /// Planner for a top-k lookup. Starts at `d ≤ 1` (every pq-gram
    /// distance is within 1, so nothing is pruned until the result heap
    /// fills) and tightens via [`LookupPlanner::tighten_to`].
    pub fn nearest(query_total: u64) -> Self {
        LookupPlanner {
            query_total,
            bound: Bound::AtMost(1.0),
        }
    }

    /// The current bound.
    pub fn bound(&self) -> Bound {
        self.bound
    }

    /// The query bag size `|I(Q)|` the planner was built for.
    pub fn query_total(&self) -> u64 {
        self.query_total
    }

    /// Tightens an [`Bound::AtMost`] bound to `b` (no-op if `b` is not
    /// smaller, or for threshold bounds — a threshold never moves).
    pub fn tighten_to(&mut self, b: f64) {
        if let Bound::AtMost(cur) = self.bound {
            if b < cur {
                self.bound = Bound::AtMost(b);
            }
        }
    }

    /// Does an exactly computed `distance` satisfy the bound?
    #[inline]
    pub fn admits_distance(&self, distance: f64) -> bool {
        self.bound.admits(distance)
    }

    /// Could a tree whose bag overlap with the query is at most `o_max`
    /// satisfy the bound, for *some* bag size? The minimum distance is
    /// reached at `s = min(o_max, n)` and `m = max(s, 1)` (stored bags are
    /// never empty).
    #[inline]
    pub fn admits_overlap(&self, o_max: u64) -> bool {
        let s = o_max.min(self.query_total);
        self.bound
            .admits(overlap_distance(s, self.query_total, s.max(1)))
    }

    /// Could a tree with bag size `total` satisfy the bound? The overlap
    /// cap is `min(n, total)`; this is the size filter of
    /// [`crate::join::size_filter`] generalised to both bound shapes.
    #[inline]
    pub fn admits_total(&self, total: u64) -> bool {
        let s = total.min(self.query_total);
        self.bound
            .admits(overlap_distance(s, self.query_total, total))
    }

    /// Could *any* tree with bag size in `[lo, hi]` satisfy the bound?
    /// The feasible bag sizes form one contiguous window around `n`
    /// (distance at the overlap cap falls toward `m = n` and rises past
    /// it), so clamping `n` into the range tests its best member. An empty
    /// range (`lo > hi`, e.g. a source with no trees) admits nothing.
    #[inline]
    pub fn admits_total_range(&self, lo: u64, hi: u64) -> bool {
        lo <= hi && self.admits_total(self.query_total.clamp(lo, hi))
    }

    /// Must zero-overlap trees be enumerated? True when even `s = 0`
    /// satisfies the bound (`τ > 1`, or a top-k heap still accepting
    /// distance-1 results) — such trees never surface from any posting
    /// probe, so the lookup reports them from the totals relation.
    #[inline]
    pub fn needs_zero_overlap(&self) -> bool {
        self.admits_overlap(0)
    }

    /// The largest overlap mass `U` such that a tree whose entire overlap
    /// fits in `U` can be pruned: probes may skip query grams whose summed
    /// multiplicities stay within this budget, because any tree appearing
    /// *only* in skipped grams has overlap ≤ `U` and cannot satisfy the
    /// bound. Trees that do surface elsewhere carry the skipped mass as
    /// slack (`admits_overlap(observed + U)`) until their exact overlap is
    /// recovered. `0` means no probe may be skipped.
    pub fn overlap_budget(&self) -> u64 {
        let n = self.query_total;
        if self.admits_overlap(0) {
            return 0;
        }
        if !self.admits_overlap(n) {
            // Nothing satisfies the bound (τ ≤ 0): every probe is skippable.
            return n;
        }
        // Smallest admitting overlap in [1, n]; admits_overlap is monotone.
        let (mut lo, mut hi) = (1u64, n);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.admits_overlap(mid) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TAUS: [f64; 8] = [0.0, 0.1, 0.3, 0.5, 0.8, 1.0, 1.2, 2.0];

    /// The lossless-pruning contract, brute-forced: whenever a concrete
    /// `(s, n, m)` satisfies the bound, every planner answer consistent
    /// with it must admit.
    #[test]
    fn pruning_never_loses_a_satisfying_tree() {
        for &tau in &TAUS {
            for n in 0u64..30 {
                let planner = LookupPlanner::threshold(n, tau);
                for m in 1u64..40 {
                    for s in 0..=n.min(m) {
                        let d = overlap_distance(s, n, m);
                        if planner.admits_distance(d) {
                            for o_max in s..=(n + 2) {
                                assert!(
                                    planner.admits_overlap(o_max),
                                    "tau {tau} n {n} m {m} s {s} o_max {o_max}"
                                );
                            }
                            assert!(planner.admits_total(m), "tau {tau} n {n} m {m} s {s}");
                            assert!(
                                planner.admits_total_range(m.saturating_sub(3), m + 3),
                                "tau {tau} n {n} m {m}"
                            );
                            if s > 0 {
                                assert!(
                                    s > planner.overlap_budget(),
                                    "budget {} must not cover satisfying overlap {s} \
                                     (tau {tau} n {n})",
                                    planner.overlap_budget()
                                );
                            } else {
                                // Zero-overlap trees are invisible to every
                                // probe; the planner must demand the
                                // totals-relation sweep instead.
                                assert!(planner.needs_zero_overlap(), "tau {tau} n {n} m {m}");
                            }
                        }
                    }
                }
            }
        }
    }

    /// The budget is tight: an overlap exactly at the budget can never
    /// satisfy the bound, for either bound shape.
    #[test]
    fn overlap_budget_is_sound_and_maximal() {
        for &tau in &TAUS {
            for n in 0u64..60 {
                for planner in [
                    LookupPlanner::threshold(n, tau),
                    LookupPlanner {
                        query_total: n,
                        bound: Bound::AtMost(tau),
                    },
                ] {
                    let b = planner.overlap_budget();
                    assert!(!planner.admits_overlap(b) || b == 0);
                    if b > 0 {
                        assert!(!planner.admits_overlap(b));
                    }
                    if b < n {
                        // One more unit of overlap could satisfy the bound
                        // (maximality), unless nothing at all does.
                        if planner.admits_overlap(n) {
                            assert!(planner.admits_overlap(b + 1), "tau {tau} n {n} budget {b}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn thresholds_above_one_admit_zero_overlap() {
        let p = LookupPlanner::threshold(25, 1.2);
        assert!(p.needs_zero_overlap());
        assert_eq!(p.overlap_budget(), 0, "nothing may be skipped");
        // Every bag size is feasible.
        assert!(p.admits_total(1));
        assert!(p.admits_total(1 << 31));
        // τ ≤ 1 never needs the zero-overlap sweep: distance-1 trees miss.
        assert!(!LookupPlanner::threshold(25, 1.0).needs_zero_overlap());
        assert!(!LookupPlanner::threshold(25, 0.5).needs_zero_overlap());
    }

    #[test]
    fn empty_ranges_admit_nothing() {
        let p = LookupPlanner::threshold(10, 0.8);
        assert!(!p.admits_total_range(5, 4));
        assert!(!p.admits_total_range(u64::MAX, 0));
        assert!(p.admits_total_range(10, 10));
    }

    #[test]
    fn top_k_bounds_only_tighten() {
        let mut p = LookupPlanner::nearest(20);
        assert!(p.needs_zero_overlap(), "d = 1 results count until k fill");
        assert!(p.admits_distance(1.0));
        p.tighten_to(0.5);
        assert!(!p.admits_distance(0.7));
        assert!(p.admits_distance(0.5), "top-k bounds are non-strict");
        p.tighten_to(0.8); // looser: ignored
        assert!(!p.admits_distance(0.7));
        let mut t = LookupPlanner::threshold(20, 0.9);
        t.tighten_to(0.1); // thresholds never move
        assert!(t.admits_distance(0.7));
    }

    /// The planner's size answer agrees with the classic size filter on
    /// every input where the filter is defined to be tight (`τ > 0`), since
    /// both run the same float expression.
    #[test]
    fn threshold_size_answers_match_size_filter() {
        use crate::join::size_filter;
        for &tau in &TAUS[1..] {
            for n in 0u64..50 {
                let p = LookupPlanner::threshold(n, tau);
                for m in 1u64..80 {
                    assert_eq!(
                        p.admits_total(m),
                        size_filter(n, m, tau),
                        "tau {tau} n {n} m {m}"
                    );
                }
            }
        }
    }
}
