#![warn(missing_docs)]
#![forbid(unsafe_code)]
//! The pq-gram index and its incremental maintenance — the primary
//! contribution of *Augsten, Böhlen, Gamper: "An Incrementally Maintainable
//! Index for Approximate Lookups in Hierarchical Data" (VLDB 2006)*.
//!
//! # Overview
//!
//! The *pq-grams* of a tree are all its subtree patterns of a specific shape
//! (Definition 1): `p` nodes on an ancestor path ending in an *anchor* node,
//! plus `q` contiguous children of the anchor, where the tree is conceptually
//! extended with null nodes so that every node anchors at least one pq-gram.
//!
//! * [`profile`] enumerates pq-grams and computes profiles (Definition 2);
//! * [`index`] holds the pq-gram index — the bag of label-tuple fingerprints
//!   (Definition 3) — the pq-gram distance, and approximate lookups over
//!   forests;
//! * [`matrix`] implements the p-/q-matrix representation and the operators
//!   of Section 7 (`P⁺`, `P⁻`, replacement, windows `Q^{k..m}`, diagonal
//!   replacement `A ∥ B`, `D(n)`);
//! * [`table`] is the `(P, Q)` table pair of Section 8.1 that stores delta
//!   pq-grams with structure-shared p-parts and q-matrix rows;
//! * [`delta`] computes the delta function `δ(T, ē)` (Definition 4,
//!   Algorithm 2);
//! * [`update`] applies the profile update function `U` to the table pair
//!   (Definition 5, Algorithms 3–4);
//! * [`mod@join`] implements approximate joins over forests with lossless
//!   size/candidate pruning (the Guha et al. scenario of the related work);
//! * [`par`] is the workspace's only sanctioned threading seam: a
//!   deterministic fork/join fan-out used by parallel index construction,
//!   parallel lookups and parallel candidate verification;
//! * [`maintain`] is Algorithm 1: the end-to-end incremental index update
//!   from the old index, the resulting tree and the log of inverse edit
//!   operations, with the per-phase timing breakdown of Table 2;
//! * [`mod@reference`] contains deliberately naive oracle implementations used
//!   by the test suites to validate Theorems 1 and 2 and Lemma 2.
//!
//! # Quick example
//!
//! ```
//! use pqgram_core::{build_index, maintain::update_index, PQParams};
//! use pqgram_tree::{record_script, LabelTable, ScriptConfig, Tree};
//! use pqgram_tree::generate::{random_tree, RandomTreeConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let mut labels = LabelTable::new();
//! let mut tree = random_tree(&mut rng, &mut labels, &RandomTreeConfig::new(200, 6));
//! let params = PQParams::new(2, 3);
//!
//! // Index the original document T0 …
//! let old_index = build_index(&tree, &labels, params);
//!
//! // … the document evolves (we only keep the log of inverse operations) …
//! let alphabet: Vec<_> = labels.iter().map(|(s, _)| s).collect();
//! let (log, _) = record_script(&mut rng, &mut tree, &ScriptConfig::new(20, alphabet));
//!
//! // … and the index is updated from (old index, resulting tree, log) only.
//! let updated = update_index(&old_index, &tree, &labels, &log).unwrap().index;
//! assert_eq!(updated, build_index(&tree, &labels, params));
//! ```

pub mod canonical;
pub mod delta;
pub mod forest;
pub mod gram;
pub mod index;
pub mod join;
pub mod maintain;
pub mod matrix;
pub mod par;
pub mod params;
pub mod plan;
pub mod profile;
pub mod reference;
pub mod table;
pub mod topk;
pub mod update;

pub use canonical::{build_unordered_index, canonicalize, unordered_fingerprint};
pub use forest::Forest;
pub use gram::{GramNode, PQGram};
pub use index::{
    build_forest_index_parallel, build_index, pq_distance, ForestIndex, GramKey, LookupHit,
    ParamsMismatch, TreeId, TreeIndex,
};
pub use join::{
    join, join_parallel, overlap_distance, size_filter, InvertedIndex, JoinPair, JoinStats,
};
pub use maintain::{update_index, IndexDelta, MaintainError, UpdateOutcome, UpdateStats};
pub use params::PQParams;
pub use plan::{Bound, LookupPlanner};
pub use profile::{compute_profile, for_each_gram, Profile};
pub use topk::TopK;
