//! The p-matrix / q-matrix representation of pq-grams and its operators
//! (Section 7 of the paper).
//!
//! For an anchor node with `f` children, all `f + q − 1` pq-grams share one
//! p-part and differ only in their q-part — a sliding window over the null-
//! padded child sequence. The paper represents them as:
//!
//! * a 1×p **p-matrix** `P(a) = (a_{p−1}, …, a_1, a)` with the operators of
//!   Figure 9: `P^{+n,i}` (insert an ancestor), `P^{−a_i}` (delete one),
//!   `P^{a_i/m}` (replace one) — here [`PPart`];
//! * an `(f+q−1)×q` **q-matrix** whose inverse diagonals are the children,
//!   with the operators of Figure 10: the window `Q^{k..m}`, the diagonal
//!   replacement `A ∥ B` and the single-diagonal constructor `D(n)` — here
//!   [`QBlock`].
//!
//! A [`QBlock`] stores the matrix (or a window of it) as its *extended
//! sequence*: `q − 1` left-context entries, the diagonal entries, and `q − 1`
//! right-context entries; row `r` of the block is the length-`q` window of
//! the sequence starting at offset `r − first_row`. This one representation
//! subsumes all four leaf special cases of Section 7.2, which are exercised
//! individually in the tests below.
//!
//! Entries are **labels** (with [`LabelSym::NULL`] for `•`), exactly like the
//! hashed rows the paper stores (Section 8.1): all matrix operators are
//! positional and never need node identities.

use pqgram_tree::LabelSym;

/// A q-matrix row: `q` labels.
pub type QRow = Vec<LabelSym>;

/// The p-part `(a_{p−1}, …, a_1, a)` of the pq-grams of one anchor, with the
/// operators of Figure 9.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PPart(Vec<LabelSym>);

impl PPart {
    /// Wraps a label vector of length `p` (front = farthest ancestor).
    pub fn new(labels: Vec<LabelSym>) -> Self {
        assert!(!labels.is_empty(), "p-part must have length ≥ 1");
        PPart(labels)
    }

    /// The labels, farthest ancestor first, anchor last.
    #[inline]
    pub fn labels(&self) -> &[LabelSym] {
        &self.0
    }

    /// `p`.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Never empty (`p ≥ 1`).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `P^{+n,i}`: insert label `n` as the entry at distance `i` from the
    /// anchor slot; entries further than `i` shift one away and the farthest
    /// drops out (Figure 9). With `i = 0` the new node becomes the anchor
    /// (used for the p-parts of grams anchored at a freshly inserted node).
    pub fn insert(&self, n: LabelSym, i: usize) -> PPart {
        let p = self.len();
        assert!(i < p, "insert distance {i} out of range for p={p}");
        let mut out = Vec::with_capacity(p);
        out.extend_from_slice(&self.0[1..p - i]); // former distances p-2 ..= i
        out.push(n); // distance i
        out.extend_from_slice(&self.0[p - i..]); // distances i-1 ..= 0
        PPart(out)
    }

    /// `P^{−a_i}`: delete the entry at distance `i ≥ 1`; farther entries
    /// shift one closer and a null enters from the front (Figure 9).
    pub fn delete(&self, i: usize) -> PPart {
        let p = self.len();
        assert!(
            (1..p).contains(&i),
            "delete distance {i} out of range for p={p}"
        );
        let mut out = Vec::with_capacity(p);
        out.push(LabelSym::NULL);
        out.extend_from_slice(&self.0[..p - 1 - i]); // distances p-1 ..= i+1
        out.extend_from_slice(&self.0[p - i..]); // distances i-1 ..= 0
        PPart(out)
    }

    /// `P^{a_i/m}`: replace the label at distance `i` (`i = 0` replaces the
    /// anchor) — Figure 9.
    pub fn replace(&self, i: usize, m: LabelSym) -> PPart {
        let p = self.len();
        assert!(i < p, "replace distance {i} out of range for p={p}");
        let mut out = self.0.clone();
        out[p - 1 - i] = m;
        PPart(out)
    }
}

/// A q-matrix or a contiguous window of one, in extended-sequence form.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct QBlock {
    /// Row number of the first row of this block (1-based, matching the
    /// paper's `Q^{k..m}` indexing).
    first_row: u32,
    /// `q − 1` left context labels, then the diagonals, then `q − 1` right
    /// context labels. For leaf blocks: `q` nulls.
    seq: Vec<LabelSym>,
    /// Window width `q ≥ 2`.
    q: usize,
    /// Canonical 1×q all-null matrix of a leaf anchor (Definition 7).
    leaf: bool,
}

impl QBlock {
    /// The full q-matrix of an anchor with children `diag` (labels, left to
    /// right). An empty `diag` yields the canonical leaf matrix.
    pub fn full(diag: &[LabelSym], q: usize) -> QBlock {
        assert!(q >= 2, "QBlock requires q >= 2");
        if diag.is_empty() {
            return QBlock::leaf(q);
        }
        let mut seq = vec![LabelSym::NULL; q - 1];
        seq.extend_from_slice(diag);
        seq.extend(std::iter::repeat_n(LabelSym::NULL, q - 1));
        QBlock {
            first_row: 1,
            seq,
            q,
            leaf: false,
        }
    }

    /// The canonical 1×q all-null matrix of a leaf anchor.
    pub fn leaf(q: usize) -> QBlock {
        assert!(q >= 2, "QBlock requires q >= 2");
        QBlock {
            first_row: 1,
            seq: vec![LabelSym::NULL; q],
            q,
            leaf: true,
        }
    }

    /// `D(n)`: a fresh q×q matrix whose only diagonal is `n` (Figure 10).
    pub fn d(n: LabelSym, q: usize) -> QBlock {
        QBlock::full(&[n], q)
    }

    /// Reassembles a window `Q^{k..m}` (rows `k ..= m+q−1`) from its stored
    /// rows. `rows` must be the contiguous row contents in ascending order;
    /// adjacent rows must overlap consistently. A single all-null row at row
    /// 1 is interpreted as the leaf matrix.
    pub fn from_rows(first_row: u32, rows: &[QRow], q: usize) -> QBlock {
        assert!(q >= 2, "QBlock requires q >= 2");
        assert!(!rows.is_empty(), "window must contain at least one row");
        for r in rows {
            assert_eq!(r.len(), q, "row width must be q");
        }
        if rows.len() == 1 && first_row == 1 && rows[0].iter().all(|l| l.is_null()) {
            return QBlock::leaf(q);
        }
        let mut seq = rows[0].clone();
        for w in rows.windows(2) {
            debug_assert_eq!(w[0][1..], w[1][..q - 1], "inconsistent adjacent rows");
        }
        seq.extend(rows[1..].iter().map(|r| r[q - 1]));
        QBlock {
            first_row,
            seq,
            q,
            leaf: false,
        }
    }

    /// First row number of this block.
    #[inline]
    pub fn first_row(&self) -> u32 {
        self.first_row
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        if self.leaf {
            1
        } else {
            self.seq.len() - self.q + 1
        }
    }

    /// Number of the last row.
    pub fn last_row(&self) -> u32 {
        self.first_row + self.row_count() as u32 - 1
    }

    /// The diagonal entries of this block (the children covered by the
    /// window). Empty for leaf blocks and zero-width insert windows.
    pub fn diagonals(&self) -> &[LabelSym] {
        if self.leaf {
            &[]
        } else {
            &self.seq[self.q - 1..self.seq.len() - (self.q - 1)]
        }
    }

    /// `A ∥ B`: replaces the diagonals of `self` with `diag`, keeping
    /// `self`'s contexts and first row (Figure 10 and the four special cases
    /// of Section 7.2). If the result carries no diagonal and no non-null
    /// context, it canonicalizes to the leaf matrix.
    pub fn replace_diagonals(&self, diag: &[LabelSym]) -> QBlock {
        let q = self.q;
        let nulls = vec![LabelSym::NULL; q - 1];
        let (left, right): (&[LabelSym], &[LabelSym]) = if self.leaf {
            // (•…•) ∥ A = A: a leaf gains the diagonals with null context.
            (&nulls, &nulls)
        } else {
            (&self.seq[..q - 1], &self.seq[self.seq.len() - (q - 1)..])
        };
        let all_null = |s: &[LabelSym]| s.iter().all(|l| l.is_null());
        if diag.is_empty() && all_null(left) && all_null(right) {
            // A ∥ (•…•) with all-null context: the anchor becomes a leaf.
            return QBlock::leaf(q);
        }
        let mut seq = Vec::with_capacity(2 * (q - 1) + diag.len());
        seq.extend_from_slice(left);
        seq.extend_from_slice(diag);
        seq.extend_from_slice(right);
        let first_row = if self.leaf { 1 } else { self.first_row };
        QBlock {
            first_row,
            seq,
            q,
            leaf: false,
        }
    }

    /// Iterates the rows of this block as `(row_number, row)`.
    pub fn rows(&self) -> impl Iterator<Item = (u32, QRow)> + '_ {
        let count = self.row_count();
        (0..count).map(move |i| {
            if self.leaf {
                (1, vec![LabelSym::NULL; self.q])
            } else {
                (self.first_row + i as u32, self.seq[i..i + self.q].to_vec())
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqgram_tree::LabelTable;

    fn syms(lt: &mut LabelTable, names: &[&str]) -> Vec<LabelSym> {
        names
            .iter()
            .map(|n| {
                if *n == "*" {
                    LabelSym::NULL
                } else {
                    lt.intern(n)
                }
            })
            .collect()
    }

    // ---- PPart / Figure 9 --------------------------------------------------

    #[test]
    fn ppart_insert_at_distance() {
        let mut lt = LabelTable::new();
        let v = syms(&mut lt, &["*", "a", "b"]); // (•, a, b): anchor b under a
        let n = lt.intern("n");
        // Insert n as parent of the anchor (distance 1): (a, n, b).
        let got = PPart::new(v.clone()).insert(n, 1);
        assert_eq!(got.labels(), syms(&mut lt, &["a", "n", "b"]));
        // Insert n at distance 2: (a, …) shifts out, (n, a, …)? No: entries
        // farther than 2 drop; (•,a,b) → (n at distance 2): (n, a, b)? The
        // former distance-2 entry • drops out: (n, a, b) is wrong — a stays
        // at distance 1: result (n, a, b).
        let got = PPart::new(v.clone()).insert(n, 2);
        assert_eq!(got.labels(), syms(&mut lt, &["n", "a", "b"]));
        // i = 0: the new node becomes the anchor.
        let got = PPart::new(v).insert(n, 0);
        assert_eq!(got.labels(), syms(&mut lt, &["a", "b", "n"]));
    }

    #[test]
    fn ppart_delete_at_distance() {
        let mut lt = LabelTable::new();
        let v = syms(&mut lt, &["a", "b", "c"]);
        let got = PPart::new(v.clone()).delete(1);
        assert_eq!(got.labels(), syms(&mut lt, &["*", "a", "c"]));
        let got = PPart::new(v).delete(2);
        assert_eq!(got.labels(), syms(&mut lt, &["*", "b", "c"]));
    }

    #[test]
    fn ppart_replace() {
        let mut lt = LabelTable::new();
        let v = syms(&mut lt, &["a", "b", "c"]);
        let m = lt.intern("m");
        assert_eq!(
            PPart::new(v.clone()).replace(0, m).labels(),
            syms(&mut lt, &["a", "b", "m"])
        );
        assert_eq!(
            PPart::new(v.clone()).replace(1, m).labels(),
            syms(&mut lt, &["a", "m", "c"])
        );
        assert_eq!(
            PPart::new(v).replace(2, m).labels(),
            syms(&mut lt, &["m", "b", "c"])
        );
    }

    #[test]
    fn ppart_insert_then_delete_loses_farthest() {
        let mut lt = LabelTable::new();
        let v = PPart::new(syms(&mut lt, &["a", "b", "c"]));
        let n = lt.intern("n");
        let there = v.insert(n, 1);
        assert_eq!(there.labels(), syms(&mut lt, &["b", "n", "c"]));
        let back = there.delete(1);
        // The farthest ancestor was pushed out and is replaced by •.
        assert_eq!(back.labels(), syms(&mut lt, &["*", "b", "c"]));
    }

    // ---- QBlock / Figure 10 ------------------------------------------------

    #[test]
    fn full_matrix_rows_match_definition7() {
        // Anchor with children (c1, c2), q = 3 → 4 rows.
        let mut lt = LabelTable::new();
        let d = syms(&mut lt, &["c1", "c2"]);
        let m = QBlock::full(&d, 3);
        let rows: Vec<_> = m.rows().collect();
        let r = |lt: &mut LabelTable, names: &[&str]| syms(lt, names);
        assert_eq!(
            rows,
            vec![
                (1, r(&mut lt, &["*", "*", "c1"])),
                (2, r(&mut lt, &["*", "c1", "c2"])),
                (3, r(&mut lt, &["c1", "c2", "*"])),
                (4, r(&mut lt, &["c2", "*", "*"])),
            ]
        );
        assert_eq!(m.diagonals(), d.as_slice());
        assert_eq!(m.last_row(), 4);
    }

    #[test]
    fn leaf_matrix_is_one_null_row() {
        let m = QBlock::leaf(3);
        let rows: Vec<_> = m.rows().collect();
        assert_eq!(rows, vec![(1, vec![LabelSym::NULL; 3])]);
        assert!(m.diagonals().is_empty());
        assert_eq!(QBlock::full(&[], 3), m);
    }

    #[test]
    fn d_constructor() {
        let mut lt = LabelTable::new();
        let n = lt.intern("n");
        let m = QBlock::d(n, 3);
        assert_eq!(m.row_count(), 3);
        assert_eq!(m.diagonals(), &[n]);
    }

    #[test]
    fn window_from_rows_roundtrip() {
        let mut lt = LabelTable::new();
        let d = syms(&mut lt, &["c1", "c2", "c3", "c4"]);
        let m = QBlock::full(&d, 3);
        // Window Q^{2..2}: rows 2..=4 (child c2 plus context).
        let rows: Vec<QRow> = m.rows().skip(1).take(3).map(|(_, r)| r).collect();
        let w = QBlock::from_rows(2, &rows, 3);
        assert_eq!(w.first_row(), 2);
        assert_eq!(w.diagonals(), &d[1..2]);
        let back: Vec<_> = w.rows().map(|(_, r)| r).collect();
        assert_eq!(back, rows);
    }

    #[test]
    fn replace_diagonals_general_case() {
        // Q^{2..2} of children (c1, c2, c3), q=2: rows 2..3, diag c2.
        let mut lt = LabelTable::new();
        let d = syms(&mut lt, &["c1", "c2", "c3"]);
        let m = QBlock::full(&d, 2);
        let rows: Vec<QRow> = m
            .rows()
            .filter(|(r, _)| (2..=3).contains(r))
            .map(|(_, r)| r)
            .collect();
        let w = QBlock::from_rows(2, &rows, 2);
        assert_eq!(w.diagonals(), &d[1..2]);
        // Replace c2 by (x, y): contexts c1 / c3 kept, rows renumber 2..=4.
        let xy = syms(&mut lt, &["x", "y"]);
        let repl = w.replace_diagonals(&xy);
        assert_eq!(repl.first_row(), 2);
        let got: Vec<_> = repl.rows().collect();
        assert_eq!(
            got,
            vec![
                (2, syms(&mut lt, &["c1", "x"])),
                (3, syms(&mut lt, &["x", "y"])),
                (4, syms(&mut lt, &["y", "c3"]))
            ]
        );
    }

    // ---- The four special cases of Section 7.2 ------------------------------

    #[test]
    fn special_case_leaf_window_gains_diagonals() {
        // (•…•) ∥ A = A: a leaf anchor gains children.
        let mut lt = LabelTable::new();
        let d = syms(&mut lt, &["x", "y"]);
        let got = QBlock::leaf(3).replace_diagonals(&d);
        assert_eq!(got, QBlock::full(&d, 3));
    }

    #[test]
    fn special_case_all_null_context_collapses_to_leaf() {
        // A ∥ (•…•) = (•…•) when all non-diagonal entries of A are null.
        let mut lt = LabelTable::new();
        let only = syms(&mut lt, &["only"]);
        let m = QBlock::full(&only, 3); // anchor whose single child goes away
        let got = m.replace_diagonals(&[]);
        assert_eq!(got, QBlock::leaf(3));
    }

    #[test]
    fn special_case_nonnull_context_keeps_window() {
        // A ∥ (•…•) deletes the diagonals when non-null context remains.
        let mut lt = LabelTable::new();
        let d = syms(&mut lt, &["c1", "c2", "c3"]);
        let m = QBlock::full(&d, 2);
        let rows: Vec<QRow> = m
            .rows()
            .filter(|(r, _)| (2..=3).contains(r))
            .map(|(_, r)| r)
            .collect();
        let w = QBlock::from_rows(2, &rows, 2);
        let got = w.replace_diagonals(&[]);
        assert_eq!(got.row_count(), 1);
        let r: Vec<_> = got.rows().collect();
        assert_eq!(r, vec![(2, syms(&mut lt, &["c1", "c3"]))]);
    }

    #[test]
    fn special_case_insert_into_window_splices_diagonal() {
        // Children (c1, c2), q = 3: take window Q^{2..2} (rows 2..=4, diag
        // c2) and splice a new first diagonal n before c2 — the situation of
        // rewinding DEL(n) where n re-adopts c2.
        let mut lt = LabelTable::new();
        let d = syms(&mut lt, &["c1", "c2"]);
        let m = QBlock::full(&d, 3);
        let rows: Vec<QRow> = m
            .rows()
            .filter(|(r, _)| (2..=4).contains(r))
            .map(|(_, r)| r)
            .collect();
        let w = QBlock::from_rows(2, &rows, 3);
        let n = lt.intern("n");
        let mut new_diag = vec![n];
        new_diag.extend_from_slice(w.diagonals());
        let spliced = w.replace_diagonals(&new_diag);
        assert_eq!(spliced.row_count(), 4);
        let got: Vec<_> = spliced.rows().collect();
        assert_eq!(
            got,
            vec![
                (2, syms(&mut lt, &["*", "c1", "n"])),
                (3, syms(&mut lt, &["c1", "n", "c2"])),
                (4, syms(&mut lt, &["n", "c2", "*"])),
                (5, syms(&mut lt, &["c2", "*", "*"])),
            ]
        );
    }

    #[test]
    fn from_rows_single_null_row_at_one_is_leaf() {
        let rows = vec![vec![LabelSym::NULL; 3]];
        let b = QBlock::from_rows(1, &rows, 3);
        assert_eq!(b, QBlock::leaf(3));
    }
}
