//! pq-gram shape parameters.

use std::fmt;

/// The `p` and `q` of a pq-gram (Definition 1): `p` nodes on the ancestor
/// path (including the anchor), `q` contiguous children of the anchor.
///
/// The paper uses 3,3-grams throughout and 1,2-grams in the index-size
/// experiment. Distance computation works for any `p, q ≥ 1`; the
/// *incremental maintenance* additionally requires `q ≥ 2`, because with
/// `q = 1` a q-matrix window carries no sibling context and the profile
/// update function cannot decide locally whether a node that lost its only
/// child became a leaf (see `crate::update`).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct PQParams {
    p: usize,
    q: usize,
}

impl PQParams {
    /// Creates parameters; panics unless `p ≥ 1` and `q ≥ 1`.
    pub fn new(p: usize, q: usize) -> Self {
        assert!(p >= 1, "p must be at least 1");
        assert!(q >= 1, "q must be at least 1");
        PQParams { p, q }
    }

    /// Non-panicking constructor: `None` unless `p ≥ 1` and `q ≥ 1`. Use
    /// this when the parameters come from untrusted input, e.g. a store
    /// file header read during recovery.
    // analyze: validates(count)
    pub fn try_new(p: usize, q: usize) -> Option<Self> {
        (p >= 1 && q >= 1).then_some(PQParams { p, q })
    }

    /// Stem length (ancestors + anchor).
    #[inline]
    pub fn p(self) -> usize {
        self.p
    }

    /// Base width (contiguous children window).
    #[inline]
    pub fn q(self) -> usize {
        self.q
    }

    /// Total nodes per pq-gram.
    #[inline]
    pub fn len(self) -> usize {
        self.p + self.q
    }

    /// Always `false`: a pq-gram has at least two nodes.
    #[inline]
    pub fn is_empty(self) -> bool {
        false
    }

    /// True iff the incremental maintenance supports these parameters.
    #[inline]
    pub fn supports_incremental(self) -> bool {
        self.q >= 2
    }
}

impl Default for PQParams {
    /// The paper's default: 3,3-grams.
    fn default() -> Self {
        PQParams::new(3, 3)
    }
}

impl fmt::Debug for PQParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{},{}-grams", self.p, self.q)
    }
}

impl fmt::Display for PQParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{},{}", self.p, self.q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let p = PQParams::new(2, 3);
        assert_eq!((p.p(), p.q(), p.len()), (2, 3, 5));
        assert!(p.supports_incremental());
        assert!(!PQParams::new(3, 1).supports_incremental());
        assert_eq!(PQParams::default(), PQParams::new(3, 3));
    }

    #[test]
    fn try_new_screens_zero_parameters() {
        assert_eq!(PQParams::try_new(2, 3), Some(PQParams::new(2, 3)));
        assert_eq!(PQParams::try_new(0, 3), None);
        assert_eq!(PQParams::try_new(3, 0), None);
    }

    #[test]
    #[should_panic(expected = "p must be at least 1")]
    fn zero_p_rejected() {
        PQParams::new(0, 3);
    }

    #[test]
    #[should_panic(expected = "q must be at least 1")]
    fn zero_q_rejected() {
        PQParams::new(3, 0);
    }
}
