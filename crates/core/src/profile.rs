//! pq-gram profiles (Definition 2) and streaming gram enumeration.
//!
//! [`for_each_gram`] walks the tree once and emits every pq-gram of the
//! null-extended tree `T'` without materializing anything per gram — the
//! index builder folds each gram straight into a fingerprint. For a tree
//! with `n` nodes there are exactly `1 + Σ_non-leaf (f + q − 1) + #leaves − …`
//! grams; more usefully: every node anchors `max(f + q − 1, 1)` grams, so
//! the total is `Σ_a max(f_a + q − 1, 1)`.
//!
//! [`compute_profile`] materializes the profile as a set of node-level
//! [`PQGram`]s; it is used by the reference implementations and tests (the
//! incremental machinery never needs a full profile).

use crate::gram::{GramNode, PQGram};
use crate::params::PQParams;
use pqgram_tree::{FxHashSet, NodeId, Tree};

/// The pq-gram profile of a tree: the set of all its pq-grams.
pub type Profile = FxHashSet<PQGram>;

/// Calls `f(ppart, qpart)` for every pq-gram of `tree`.
///
/// `ppart` has length `p` (`(a_{p-1}, …, a_1, anchor)`, null-padded at the
/// front), `qpart` has length `q` (a window of the anchor's children with
/// `q − 1` null nodes of padding on each side; a single all-null window for
/// leaves). The slices are reused between calls — clone if you keep them.
pub fn for_each_gram<F>(tree: &Tree, params: PQParams, mut f: F)
where
    F: FnMut(&[GramNode], &[GramNode]),
{
    let (p, q) = (params.p(), params.q());
    // Ancestor chain from the root down to the current node (inclusive).
    let mut path: Vec<GramNode> = Vec::new();
    let mut ppart: Vec<GramNode> = vec![GramNode::Null; p];
    let mut window: Vec<GramNode> = vec![GramNode::Null; q];

    // Iterative DFS; `Frame::Leave` pops the path.
    enum Step {
        Enter(NodeId),
        Leave,
    }
    let mut stack = vec![Step::Enter(tree.root())];
    while let Some(step) = stack.pop() {
        let node = match step {
            Step::Leave => {
                path.pop();
                continue;
            }
            Step::Enter(n) => n,
        };
        path.push(GramNode::Node(node, tree.label(node)));

        // p-part: last p entries of the path, null-padded at the front.
        for (i, slot) in ppart.iter_mut().enumerate() {
            let need_depth = p - 1 - i; // distance of this slot from anchor
            *slot = if need_depth < path.len() {
                path[path.len() - 1 - need_depth]
            } else {
                GramNode::Null
            };
        }

        let children = tree.children(node);
        if children.is_empty() {
            window.fill(GramNode::Null);
            f(&ppart, &window);
        } else {
            // Slide a q-window over (•^{q-1}, c_1 … c_f, •^{q-1}).
            let fanout = children.len();
            for start in 0..fanout + q - 1 {
                for (t, slot) in window.iter_mut().enumerate() {
                    // extended index of this slot: start + t, children occupy
                    // extended positions q-1 .. q-1+fanout-1.
                    let ext = start + t;
                    *slot = if ext >= q - 1 && ext < q - 1 + fanout {
                        let c = children[ext - (q - 1)];
                        GramNode::Node(c, tree.label(c))
                    } else {
                        GramNode::Null
                    };
                }
                f(&ppart, &window);
            }
        }

        stack.push(Step::Leave);
        for &c in children.iter().rev() {
            stack.push(Step::Enter(c));
        }
    }
}

/// Materializes the profile `P(T)` (Definition 2).
pub fn compute_profile(tree: &Tree, params: PQParams) -> Profile {
    let mut profile = Profile::default();
    for_each_gram(tree, params, |ppart, qpart| {
        profile.insert(PQGram::new(ppart, qpart));
    });
    profile
}

/// Number of pq-grams of `tree` (= profile size; duplicates cannot occur at
/// node level).
pub fn gram_count(tree: &Tree, params: PQParams) -> u64 {
    let q = params.q() as u64;
    tree.preorder(tree.root())
        .map(|n| {
            let f = tree.fanout(n) as u64;
            if f == 0 {
                1
            } else {
                f + q - 1
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqgram_tree::LabelTable;

    /// Builds the tree T0 of Figure 2 with the labels implied by Figure 4 /
    /// Example 5: a(c b(e f) c). Returns (tree, labels, node ids n1..n6).
    pub(crate) fn paper_t0() -> (Tree, LabelTable, Vec<NodeId>) {
        let mut lt = LabelTable::new();
        let a = lt.intern("a");
        let b = lt.intern("b");
        let c = lt.intern("c");
        let e = lt.intern("e");
        let f = lt.intern("f");
        let mut t = Tree::with_root(a);
        let n1 = t.root();
        let n2 = t.add_child(n1, c);
        let n3 = t.add_child(n1, b);
        let n4 = t.add_child(n1, c);
        let n5 = t.add_child(n3, e);
        let n6 = t.add_child(n3, f);
        (t, lt, vec![n1, n2, n3, n4, n5, n6])
    }

    fn g(tree: &Tree, ids: &[Option<NodeId>], p: usize) -> PQGram {
        let entries: Vec<GramNode> = ids
            .iter()
            .map(|&id| match id {
                None => GramNode::Null,
                Some(n) => GramNode::Node(n, tree.label(n)),
            })
            .collect();
        PQGram::new(&entries[..p], &entries[p..])
    }

    #[test]
    fn example1_count() {
        // "The total number of pq-grams of T0 is 13." (p = q = 3)
        let (t, _, _) = paper_t0();
        assert_eq!(gram_count(&t, PQParams::new(3, 3)), 13);
        assert_eq!(compute_profile(&t, PQParams::new(3, 3)).len(), 13);
    }

    #[test]
    fn example2_profile_p0() {
        let (t, _, n) = paper_t0();
        let (n1, n2, n3, n4, n5, n6) = (
            Some(n[0]),
            Some(n[1]),
            Some(n[2]),
            Some(n[3]),
            Some(n[4]),
            Some(n[5]),
        );
        let x = None;
        let expected: Profile = [
            g(&t, &[x, x, n1, x, x, n2], 3),
            g(&t, &[x, x, n1, x, n2, n3], 3),
            g(&t, &[x, x, n1, n2, n3, n4], 3),
            g(&t, &[x, x, n1, n3, n4, x], 3),
            g(&t, &[x, x, n1, n4, x, x], 3),
            g(&t, &[x, n1, n2, x, x, x], 3),
            g(&t, &[x, n1, n3, x, x, n5], 3),
            g(&t, &[x, n1, n3, x, n5, n6], 3),
            g(&t, &[x, n1, n3, n5, n6, x], 3),
            g(&t, &[x, n1, n3, n6, x, x], 3),
            g(&t, &[n1, n3, n5, x, x, x], 3),
            g(&t, &[n1, n3, n6, x, x, x], 3),
            g(&t, &[x, n1, n4, x, x, x], 3),
        ]
        .into_iter()
        .collect();
        assert_eq!(compute_profile(&t, PQParams::new(3, 3)), expected);
    }

    #[test]
    fn example4_grams_anchored_at_root() {
        // P(n1) ∘ Q(n1) from Example 4: five grams with anchor n1.
        let (t, _, n) = paper_t0();
        let profile = compute_profile(&t, PQParams::new(3, 3));
        let anchored: Vec<_> = profile
            .iter()
            .filter(|g| g.anchor().id() == Some(n[0]))
            .collect();
        assert_eq!(anchored.len(), 5);
        // All share the same p-part (•, •, n1).
        for g in anchored {
            assert_eq!(g.ppart()[0], GramNode::Null);
            assert_eq!(g.ppart()[1], GramNode::Null);
            assert_eq!(g.ppart()[2].id(), Some(n[0]));
        }
    }

    #[test]
    fn single_node_tree_has_one_gram() {
        let mut lt = LabelTable::new();
        let t = Tree::with_root(lt.intern("a"));
        let params = PQParams::new(3, 3);
        let profile = compute_profile(&t, params);
        assert_eq!(profile.len(), 1);
        let gram = profile.iter().next().unwrap();
        assert_eq!(gram.ppart()[2].id(), Some(t.root()));
        assert!(gram.qpart().iter().all(|e| e.is_null()));
        assert!(gram.ppart()[..2].iter().all(|e| e.is_null()));
    }

    #[test]
    fn q1_and_p1_grams() {
        let (t, _, _) = paper_t0();
        // q = 1: each node window is exactly one child (or one null for a
        // leaf): root has 3, n3 has 2, leaves have 1 → 3 + 1 + 2 + 1 + 1 + 1.
        assert_eq!(compute_profile(&t, PQParams::new(1, 1)).len(), 9);
        // p = 1, q = 2: every node anchors max(f+1, 1) grams: 4+1+3+1+1+1.
        assert_eq!(compute_profile(&t, PQParams::new(1, 2)).len(), 11);
    }

    #[test]
    fn gram_count_matches_enumeration_on_generated_trees() {
        use pqgram_tree::generate::{random_tree, RandomTreeConfig};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(3);
        let mut lt = LabelTable::new();
        for _ in 0..5 {
            let t = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(120, 5));
            for params in [
                PQParams::new(3, 3),
                PQParams::new(2, 2),
                PQParams::new(1, 2),
            ] {
                let mut emitted = 0u64;
                for_each_gram(&t, params, |pp, qp| {
                    assert_eq!(pp.len(), params.p());
                    assert_eq!(qp.len(), params.q());
                    emitted += 1;
                });
                assert_eq!(emitted, gram_count(&t, params));
                assert_eq!(compute_profile(&t, params).len() as u64, emitted);
            }
        }
    }

    #[test]
    fn anchor_is_never_null_and_labels_match_ids() {
        let (t, _, _) = paper_t0();
        for_each_gram(&t, PQParams::new(3, 2), |pp, qp| {
            let anchor = pp[pp.len() - 1];
            assert!(!anchor.is_null());
            for e in pp.iter().chain(qp) {
                if let GramNode::Node(id, l) = e {
                    assert_eq!(t.label(*id), *l);
                }
            }
        });
    }

    #[test]
    fn deep_tree_enumeration_does_not_overflow_stack() {
        let mut lt = LabelTable::new();
        let a = lt.intern("a");
        let mut t = Tree::with_root(a);
        let mut cur = t.root();
        for _ in 0..50_000 {
            cur = t.add_child(cur, a);
        }
        // 50,000 unary nodes anchor f+q-1 = 3 grams each, the leaf anchors 1.
        assert_eq!(gram_count(&t, PQParams::new(3, 3)), 50_000 * 3 + 1);
        let mut count = 0u64;
        for_each_gram(&t, PQParams::new(3, 3), |_, _| count += 1);
        assert_eq!(count, 50_000 * 3 + 1);
    }
}
