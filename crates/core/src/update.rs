//! The profile update function `U` on the `(P, Q)` tables
//! (Definition 5, Table 1, Algorithms 3 and 4).
//!
//! `U(p_j, ē)` replaces, inside a stored set of pq-grams of the current tree
//! `T_j`, the new grams `δ(T_j, ē)` by the old grams `δ(T_i, e)` of the tree
//! `T_i = ē(T_j)` — *without access to either tree*: everything needed is in
//! the tables and the operation itself. Iterating `U` over the log converts
//! `Δₙ⁺` into `Δₙ⁻` (Theorem 2).
//!
//! Besides the gram rewrites of Table 1, the implementation maintains the
//! coordinates of the *untouched* entries, as Section 8.4 prescribes: when an
//! edit changes a child list, the row numbers of later q-matrix rows and the
//! `sibPos` of later siblings shift, and re-parented children get their
//! `parId` updated.

use crate::matrix::QBlock;
use crate::params::PQParams;
use crate::table::{DeltaTables, PEntry, TableError};
use pqgram_tree::{EditOp, LabelSym, NodeId};

/// Applies `U(·, op)` to the tables in place.
///
/// Requires `params.supports_incremental()` (checked by the caller) and that
/// the tables contain `δ(T_j, op)` — guaranteed by Lemma 7 when the tables
/// were seeded with `Δₙ⁺` and `U` is applied in reverse log order. A missing
/// entry therefore means the log does not belong to the tree/index and is
/// reported as an error.
pub fn apply_update(
    tables: &mut DeltaTables,
    op: EditOp,
    params: PQParams,
) -> Result<(), TableError> {
    debug_assert!(
        params.supports_incremental(),
        "apply_update requires incremental-capable params, got {params:?}"
    );
    match op {
        EditOp::Rename { node, label } => rename(tables, node, label, params),
        EditOp::Delete { node } => delete(tables, node, params),
        EditOp::Insert {
            node,
            label,
            parent,
            k,
            m,
        } => insert(tables, node, label, parent, k as u32, m as u32, params),
    }
}

/// `U` for `ē = REN(n, l′)` (Algorithm 3, case 1).
fn rename(
    tables: &mut DeltaTables,
    n: NodeId,
    new_label: LabelSym,
    params: PQParams,
) -> Result<(), TableError> {
    let (p, q) = (params.p() as u32, params.q() as u32);
    let t = tables.p_entry_required(n)?.clone();
    let v = t.parent.expect("log must not edit the root");
    let k = t.sib_pos;

    // Q ← Q \ Q^{k..k}(v) ∪ [Q^{k..k}(v) ∥ D((id(n), l′))]
    let window_rows = tables.take_q_range(v, k, k + q - 1)?;
    let window = QBlock::from_rows(k, &window_rows, q as usize);
    debug_assert_eq!(
        window.diagonals().len(),
        1,
        "rename window has exactly one diagonal"
    );
    for (r, row) in window.replace_diagonals(&[new_label]).rows() {
        tables.insert_q_row(v, r, row)?;
    }

    // s ← subStr(ppart, 1, p−1) ∘ l′ ; changePParts(P, n, s, p−1).
    let mut s = t.ppart.clone();
    s[p as usize - 1] = new_label;
    change_pparts(tables, n, &s, p as usize - 1)
}

/// `U` for `ē = DEL(n)` (Algorithm 3, case 2).
fn delete(tables: &mut DeltaTables, n: NodeId, params: PQParams) -> Result<(), TableError> {
    let (p, q) = (params.p(), params.q() as u32);
    let t = tables.p_entry_required(n)?.clone();
    let v = t.parent.expect("log must not edit the root");
    let k = t.sib_pos;

    // Q ← Q \ [Q^{k..k}(v) ∪ Q(n)] ∪ [Q^{k..k}(v) ∥ Q(n)]
    let window_rows = tables.take_q_range(v, k, k + q - 1)?;
    let window = QBlock::from_rows(k, &window_rows, q as usize);
    let n_rows = tables.take_q_all(n);
    if n_rows.is_empty() || n_rows[0].0 != 1 || n_rows.last().unwrap().0 != n_rows.len() as u32 {
        return Err(TableError::MissingQRows(n, 1, n_rows.len() as u32));
    }
    let n_row_contents: Vec<_> = n_rows.into_iter().map(|(_, r)| r).collect();
    let n_matrix = QBlock::from_rows(1, &n_row_contents, q as usize);
    // `g` is the fanout of n. Rows of v after the window shift by g − 1
    // (the window grows from q rows to g + q − 1 rows).
    let g = n_matrix.diagonals().len() as i64;
    tables.shift_q_rows(v, k + q - 1, g - 1);
    for (r, row) in window.replace_diagonals(n_matrix.diagonals()).rows() {
        tables.insert_q_row(v, r, row)?;
    }

    // s ← λ(•) ∘ subStr(ppart, 1, p−1) ; changePParts(P, n, s, p−1), then
    // drop n's own entry.
    let mut s = Vec::with_capacity(p);
    s.push(LabelSym::NULL);
    s.extend_from_slice(&t.ppart[..p - 1]);
    change_pparts(tables, n, &s, p - 1)?;

    // Structural bookkeeping (Section 8.4): n's children move under v at
    // positions k…, later siblings of v shift by g − 1.
    let kids: Vec<(NodeId, u32)> = tables
        .children_in_p(n)
        .iter()
        .map(|&c| {
            (
                c,
                tables.p_entry(c).expect("children index in sync").sib_pos,
            )
        })
        .collect();
    tables.shift_sib_pos(v, k, g - 1);
    for (c, pos) in kids {
        tables.set_parent_pos(c, Some(v), k + pos - 1)?;
    }
    tables.remove_p(n);
    Ok(())
}

/// `U` for `ē = INS(n, v, k, m)` (Algorithm 3, case 3).
fn insert(
    tables: &mut DeltaTables,
    n: NodeId,
    label: LabelSym,
    v: NodeId,
    k: u32,
    m: u32,
    params: PQParams,
) -> Result<(), TableError> {
    let (p, q) = (params.p(), params.q() as u32);
    let pv = tables.p_entry_required(v)?.clone();

    // Extract the window Q^{k..m}(v). When v is a leaf (k = 1, m = 0) the
    // stored representation is the canonical 1×q null row.
    let v_is_leaf = tables.q_rows(v).is_some_and(|rows| {
        rows.len() == 1 && rows.get(&1).is_some_and(|r| r.iter().all(|l| l.is_null()))
    });
    let window = if v_is_leaf {
        tables.take_q_range(v, 1, 1)?;
        QBlock::leaf(q as usize)
    } else {
        let rows = tables.take_q_range(v, k, m + q - 1)?;
        QBlock::from_rows(k, &rows, q as usize)
    };
    let moved_diag = window.diagonals().to_vec(); // labels of c_k … c_m

    // Q ← … ∪ [Q^{k..m}(v) ∥ D_v(n)] ∪ [D_n(•) ∥ Q^{k..m}(v)]
    // Rows of v after the old window shift by k − m (window shrinks from
    // m−k+q rows to q rows).
    if !v_is_leaf {
        tables.shift_q_rows(v, m + q - 1, k as i64 - m as i64);
    }
    for (r, row) in window.replace_diagonals(&[label]).rows() {
        tables.insert_q_row(v, r, row)?;
    }
    for (r, row) in QBlock::full(&moved_diag, q as usize).rows() {
        tables.insert_q_row(n, r, row)?;
    }

    // s ← subStr(ppart(v), 2, p) ∘ λ(n): the p-part of the new node n.
    let mut s = pv.ppart[1..].to_vec();
    s.push(label);

    // For each stored child c of v in the moved range: rewrite the p-parts
    // of c's subtree within distance p − 2 (they gain n as an ancestor).
    let moved: Vec<(NodeId, u32)> = tables
        .children_in_p(v)
        .iter()
        .filter_map(|&c| {
            let pos = tables.p_entry(c).expect("children index in sync").sib_pos;
            (k..=m).contains(&pos).then_some((c, pos))
        })
        .collect();
    if p >= 2 {
        for &(c, _) in &moved {
            let c_label = *tables
                .p_entry_required(c)?
                .ppart
                .last()
                .expect("ppart never empty");
            let mut s_c = s[1..].to_vec();
            s_c.push(c_label);
            change_pparts(tables, c, &s_c, p - 2)?;
        }
    }

    // Structural bookkeeping: moved children now live under n; later
    // siblings of v shift by −(m − k); n itself enters P at position k.
    for &(c, pos) in &moved {
        tables.set_parent_pos(c, Some(n), pos - k + 1)?;
    }
    tables.shift_sib_pos(v, m, k as i64 - m as i64);
    tables.insert_p(
        n,
        PEntry {
            parent: Some(v),
            sib_pos: k,
            ppart: s,
        },
    )
}

/// Algorithm 4: rewrites the p-parts of `n` and of its stored descendants
/// within distance `d`. For an anchor `x` at distance `i ≤ d` from `n`, the
/// first `p − i` labels (the part at or above `n`) are replaced by the last
/// `p − i` labels of `s`; the `i` labels strictly below `n` are invariant.
fn change_pparts(
    tables: &mut DeltaTables,
    n: NodeId,
    s: &[LabelSym],
    d: usize,
) -> Result<(), TableError> {
    let p = s.len();
    let mut level: Vec<NodeId> = vec![n];
    for i in 0..=d.min(p - 1) {
        let mut next = Vec::new();
        for &x in &level {
            let entry = tables.p_entry_required(x)?;
            let mut ppart = Vec::with_capacity(p);
            ppart.extend_from_slice(&s[i..]);
            ppart.extend_from_slice(&entry.ppart[p - i..]);
            tables.set_ppart(x, ppart)?;
            if i < d {
                next.extend_from_slice(tables.children_in_p(x));
            }
        }
        if next.is_empty() {
            break;
        }
        level = next;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::accumulate_delta;
    use crate::gram::label_tuple_fingerprint;
    use crate::index::GramKey;
    use pqgram_tree::{LabelTable, Tree};

    use pqgram_tree::{InsertAnchor, LogOp};

    /// Rebuilds the Example 5 setting: T2 with node identities of Figure 2.
    fn example5() -> (Tree, LabelTable, Vec<NodeId>, LogOp, LogOp) {
        let mut lt = LabelTable::new();
        let a = lt.intern("a");
        let b = lt.intern("b");
        let c = lt.intern("c");
        let e = lt.intern("e");
        let f = lt.intern("f");
        let g = lt.intern("g");
        let mut t = Tree::with_root(a);
        let n1 = t.root();
        let n2 = t.add_child(n1, c);
        let n3 = t.add_child(n1, b);
        let n4 = t.add_child(n1, c);
        let n5 = t.add_child(n3, e);
        let n6 = t.add_child(n3, f);
        let n7 = t.next_node_id();
        t.apply(EditOp::Insert {
            node: n7,
            label: g,
            parent: n6,
            k: 1,
            m: 0,
        })
        .unwrap();
        t.apply(EditOp::Delete { node: n3 }).unwrap();
        let e1_bar = LogOp::new(EditOp::Delete { node: n7 }, None);
        let e2_bar = LogOp::new(
            EditOp::Insert {
                node: n3,
                label: b,
                parent: n1,
                k: 2,
                m: 3,
            },
            Some(InsertAnchor::Adopted([n5, n6].into())),
        );
        (t, lt, vec![n1, n2, n3, n4, n5, n6, n7], e1_bar, e2_bar)
    }

    fn sorted(mut v: Vec<GramKey>) -> Vec<GramKey> {
        v.sort_unstable();
        v
    }

    #[test]
    fn example5_full_trace() {
        // Δ2+ --U(·, ē2)--> intermediate --U(·, ē1)--> Δ2−, with the exact
        // label tuples printed in Example 5.
        let (t2, lt, _n, e1_bar, e2_bar) = example5();
        let params = PQParams::new(3, 3);
        let mut tables = DeltaTables::new();
        accumulate_delta(&mut tables, &t2, &e1_bar, params).unwrap();
        accumulate_delta(&mut tables, &t2, &e2_bar, params).unwrap();

        let s = |x: &str| lt.lookup(x).unwrap();
        let nl = LabelSym::NULL;
        let (a, b, c, e, f, g) = (s("a"), s("b"), s("c"), s("e"), s("f"), s("g"));
        let fp = |tuples: Vec<Vec<LabelSym>>| -> Vec<GramKey> {
            sorted(
                tuples
                    .into_iter()
                    .map(|t| label_tuple_fingerprint(t, &lt))
                    .collect(),
            )
        };

        // First U call: ē2 = INS((n3, b), n1, 2, 3).
        apply_update(&mut tables, e2_bar.op, params).unwrap();
        tables.validate().unwrap();
        let expected_mid = fp(vec![
            vec![nl, nl, a, nl, c, b],
            vec![nl, nl, a, c, b, c],
            vec![nl, nl, a, b, c, nl],
            vec![nl, a, b, nl, nl, e],
            vec![nl, a, b, nl, e, f],
            vec![nl, a, b, e, f, nl],
            vec![nl, a, b, f, nl, nl],
            vec![a, b, e, nl, nl, nl],
            vec![a, b, f, nl, nl, g],
            vec![a, b, f, nl, g, nl],
            vec![a, b, f, g, nl, nl],
            vec![b, f, g, nl, nl, nl],
        ]);
        assert_eq!(sorted(tables.lambda(&lt)), expected_mid);

        // Second U call: ē1 = DEL(n7).
        apply_update(&mut tables, e1_bar.op, params).unwrap();
        tables.validate().unwrap();
        let expected_minus = fp(vec![
            vec![nl, nl, a, nl, c, b],
            vec![nl, nl, a, c, b, c],
            vec![nl, nl, a, b, c, nl],
            vec![nl, a, b, nl, nl, e],
            vec![nl, a, b, nl, e, f],
            vec![nl, a, b, e, f, nl],
            vec![nl, a, b, f, nl, nl],
            vec![a, b, e, nl, nl, nl],
            vec![a, b, f, nl, nl, nl],
        ]);
        assert_eq!(sorted(tables.lambda(&lt)), expected_minus);
    }

    #[test]
    fn single_rename_roundtrip_through_u() {
        // δ(T_j, REN) transformed by U must equal δ(T_i, REN back) computed
        // on the old tree directly.
        let (t2, mut lt, n, _, _) = example5();
        let params = PQParams::new(3, 3);
        let z = lt.intern("z");
        // Forward op: rename n5 (e) to z. T_j = renamed tree.
        let mut tj = t2.clone();
        let rev = tj
            .apply(EditOp::Rename {
                node: n[4],
                label: z,
            })
            .unwrap();

        let mut tables = DeltaTables::new();
        accumulate_delta(&mut tables, &tj, &LogOp::new(rev, None), params).unwrap();
        apply_update(&mut tables, rev, params).unwrap();
        tables.validate().unwrap();

        let mut expected = DeltaTables::new();
        // On T_i (= t2), the grams δ(T_i, forward REN) are those containing
        // n5 with its old label.
        accumulate_delta(
            &mut expected,
            &t2,
            &LogOp::new(
                EditOp::Rename {
                    node: n[4],
                    label: z,
                },
                None,
            ),
            params,
        )
        .unwrap();
        assert_eq!(sorted(tables.lambda(&lt)), sorted(expected.lambda(&lt)));
    }

    #[test]
    fn update_errors_on_foreign_log() {
        // A log entry that references a node the tables know nothing about
        // must surface as an error, not corrupt memory.
        let (_t2, mut lt, _n, _, _) = example5();
        let params = PQParams::new(3, 3);
        let mut tables = DeltaTables::new();
        let ghost = NodeId::from_index(77);
        let err = apply_update(&mut tables, EditOp::Delete { node: ghost }, params).unwrap_err();
        assert_eq!(err, TableError::MissingPEntry(ghost));
        let z = lt.intern("z");
        let err = apply_update(
            &mut tables,
            EditOp::Rename {
                node: ghost,
                label: z,
            },
            params,
        )
        .unwrap_err();
        assert_eq!(err, TableError::MissingPEntry(ghost));
    }
}
