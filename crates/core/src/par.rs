//! Deterministic fork/join fan-out on scoped OS threads.
//!
//! This module is the **only** sanctioned threading seam in `pqgram-core`
//! (enforced by the `core-thread-discipline` rule of `cargo xtask lint`):
//! query and ingest paths fan work out through [`map`] / [`map_chunks`]
//! instead of spawning threads or taking locks themselves. Centralizing the
//! fan-out buys two properties every caller relies on:
//!
//! * **determinism** — inputs are split into at most `threads` contiguous
//!   chunks and the per-chunk results are concatenated *in chunk order*, so
//!   the output is a pure function of the input slice, independent of
//!   thread scheduling. Parallel index construction therefore produces
//!   byte-identical stores to the serial path;
//! * **panic transparency** — a panic on a worker thread is re-raised on
//!   the calling thread (via [`std::panic::resume_unwind`]), never
//!   swallowed or converted into a truncated result.
//!
//! The primitives deliberately stay fork/join-shaped (no work stealing, no
//! shared queues): every parallel site in this workspace is embarrassingly
//! parallel over trees or candidates, where contiguous chunking already
//! balances well and keeps the merge order obvious.

use std::panic::resume_unwind;

/// An effective worker count: at least 1, at most `len` (no idle workers
/// spinning up for empty chunks).
fn worker_count(threads: usize, len: usize) -> usize {
    threads.max(1).min(len.max(1))
}

/// Splits `items` into at most `threads` contiguous chunks, applies `f` to
/// each chunk on its own scoped thread, and returns the per-chunk results
/// **in chunk order**. The first chunk runs on the calling thread, so
/// `threads == 1` spawns nothing and is exactly the serial loop.
///
/// A panic inside `f` is re-raised on the calling thread.
pub fn map_chunks<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    let workers = worker_count(threads, items.len());
    let chunk = items.len().div_ceil(workers).max(1);
    if workers == 1 || items.len() <= chunk {
        return items.chunks(chunk).map(|part| f(part)).collect();
    }
    let mut chunks = items.chunks(chunk);
    let Some(first) = chunks.next() else {
        return Vec::new();
    };
    let rest: Vec<&[T]> = chunks.collect();
    let mut out = Vec::with_capacity(rest.len() + 1);
    std::thread::scope(|scope| {
        let handles: Vec<_> = rest.iter().map(|part| scope.spawn(|| f(part))).collect();
        out.push(f(first));
        for handle in handles {
            match handle.join() {
                Ok(r) => out.push(r),
                Err(payload) => resume_unwind(payload),
            }
        }
    });
    out
}

/// Applies `f` to every item of `items` across at most `threads` scoped
/// threads and collects the results **in input order** — the parallel
/// equivalent of `items.iter().map(f).collect()`.
///
/// A panic inside `f` is re-raised on the calling thread.
pub fn map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let mut out = Vec::with_capacity(items.len());
    for part in map_chunks(items, threads, |part| {
        part.iter().map(&f).collect::<Vec<R>>()
    }) {
        out.extend(part);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [0, 1, 2, 3, 7, 16, 1000, 5000] {
            assert_eq!(map(&items, threads, |&x| x * 3 + 1), expect, "{threads}");
        }
    }

    #[test]
    fn map_chunks_covers_every_item_exactly_once() {
        let items: Vec<usize> = (0..97).collect();
        for threads in [1, 2, 5, 8, 97, 200] {
            let sums = map_chunks(&items, threads, |part| part.iter().sum::<usize>());
            assert!(sums.len() <= threads.max(1), "{threads}");
            assert_eq!(sums.iter().sum::<usize>(), 97 * 96 / 2, "{threads}");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let none: [u32; 0] = [];
        assert!(map(&none, 8, |&x| x).is_empty());
        assert!(map_chunks(&none, 8, |part| part.len()).is_empty());
    }

    #[test]
    fn work_actually_fans_out() {
        // With more items than one chunk holds, at least two distinct
        // threads must participate (the caller plus one worker).
        let items: Vec<u32> = (0..64).collect();
        let peak = AtomicUsize::new(0);
        let live = AtomicUsize::new(0);
        map(&items, 4, |_| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(2));
            live.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(
            peak.load(Ordering::SeqCst) >= 2,
            "expected concurrent workers, saw peak {}",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..32).collect();
        let result = std::panic::catch_unwind(|| {
            map(&items, 4, |&x| {
                assert!(x != 17, "synthetic failure");
                x
            })
        });
        assert!(result.is_err());
    }
}
