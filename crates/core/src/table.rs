//! The `(P, Q)` table pair that stores delta pq-grams (Section 8.1).
//!
//! Delta sets can contain thousands of pq-grams whose p-parts and q-matrix
//! rows overlap heavily; the paper therefore stores them structure-shared:
//!
//! * `P` holds, per anchor node `n`, the tuple `(n, sibPos, parId, ppart)` —
//!   the single p-part shared by all of `n`'s pq-grams plus the structural
//!   bookkeeping (`n` is the `sibPos`-th child of `parId`) the update
//!   function needs;
//! * `Q` holds q-matrix rows `(n, row, qpart)`.
//!
//! A pq-gram is reconstructed by joining `P` and `Q` on the anchor
//! (`λ(P, Q) = π_{ppart ∘ qpart}[P ⋈ Q]`, Equation 31). Duplicates are
//! prevented on insert, matching the set semantics of profiles; conflicting
//! re-insertions (same key, different content) are reported as errors since
//! they indicate a corrupted log.

use crate::gram::label_tuple_fingerprint;
use crate::index::GramKey;
use crate::matrix::QRow;
use pqgram_tree::{FxHashMap, LabelSym, LabelTable, NodeId};
use std::collections::BTreeMap;

/// A `P`-table entry: the p-part of one anchor plus structural bookkeeping.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PEntry {
    /// Parent node (`None` for the root).
    pub parent: Option<NodeId>,
    /// 1-based sibling position (`0` for the root).
    pub sib_pos: u32,
    /// The p-part labels `(a_{p−1}, …, a_1, anchor)`, null-padded.
    pub ppart: Vec<LabelSym>,
}

/// The `(P, Q)` table pair.
#[derive(Clone, Default, Debug)]
pub struct DeltaTables {
    p: FxHashMap<NodeId, PEntry>,
    /// Secondary index: parent → anchors in `P` (unordered).
    children: FxHashMap<NodeId, Vec<NodeId>>,
    q: FxHashMap<NodeId, BTreeMap<u32, QRow>>,
}

/// Inconsistency detected while manipulating the tables — always indicates
/// that the log does not match the tree/index it is applied to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TableError {
    /// Re-insert of an anchor with different content.
    ConflictingPEntry(NodeId),
    /// Re-insert of a q-row with different content.
    ConflictingQRow(NodeId, u32),
    /// The update function needed an entry the tables do not contain.
    MissingPEntry(NodeId),
    /// The update function needed q-rows the tables do not contain.
    MissingQRows(NodeId, u32, u32),
    /// A log entry asserted a structural fact the tree contradicts (e.g. an
    /// insert without its anchor, or a node whose recorded adjacency is
    /// gone). Reachable from untrusted edit logs, so it is an error — never
    /// a panic.
    Inconsistency(NodeId, &'static str),
}

impl std::fmt::Display for TableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableError::ConflictingPEntry(n) => write!(f, "conflicting P entry for {n:?}"),
            TableError::ConflictingQRow(n, r) => write!(f, "conflicting Q row {r} for {n:?}"),
            TableError::MissingPEntry(n) => write!(f, "missing P entry for {n:?}"),
            TableError::MissingQRows(n, k, m) => {
                write!(f, "missing Q rows {k}..={m} for {n:?}")
            }
            TableError::Inconsistency(n, what) => {
                write!(f, "log/tree inconsistency at {n:?}: {what}")
            }
        }
    }
}

impl std::error::Error for TableError {}

impl DeltaTables {
    /// Empty tables.
    pub fn new() -> Self {
        Self::default()
    }

    /// True if no pq-gram is stored.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Number of stored p-parts.
    pub fn p_len(&self) -> usize {
        self.p.len()
    }

    /// Number of stored q-rows (= number of stored pq-grams).
    pub fn q_len(&self) -> usize {
        self.q.values().map(BTreeMap::len).sum()
    }

    /// Looks up the p-part of an anchor.
    pub fn p_entry(&self, anchor: NodeId) -> Option<&PEntry> {
        self.p.get(&anchor)
    }

    /// Looks up the p-part of an anchor, erroring if absent.
    pub fn p_entry_required(&self, anchor: NodeId) -> Result<&PEntry, TableError> {
        self.p.get(&anchor).ok_or(TableError::MissingPEntry(anchor))
    }

    /// Anchors recorded in `P` whose parent is `parent` (arbitrary order).
    pub fn children_in_p(&self, parent: NodeId) -> &[NodeId] {
        self.children.get(&parent).map_or(&[], Vec::as_slice)
    }

    /// Inserts a p-part; duplicate identical inserts are no-ops.
    pub fn insert_p(&mut self, anchor: NodeId, entry: PEntry) -> Result<(), TableError> {
        if let Some(existing) = self.p.get(&anchor) {
            if *existing == entry {
                return Ok(());
            }
            return Err(TableError::ConflictingPEntry(anchor));
        }
        if let Some(parent) = entry.parent {
            self.children.entry(parent).or_default().push(anchor);
        }
        self.p.insert(anchor, entry);
        Ok(())
    }

    /// Removes an anchor's p-part (and its `children` index entry).
    pub fn remove_p(&mut self, anchor: NodeId) -> Option<PEntry> {
        let entry = self.p.remove(&anchor)?;
        if let Some(parent) = entry.parent {
            if let Some(list) = self.children.get_mut(&parent) {
                list.retain(|&c| c != anchor);
                if list.is_empty() {
                    self.children.remove(&parent);
                }
            }
        }
        Some(entry)
    }

    /// Overwrites the ppart labels of an existing anchor.
    pub fn set_ppart(&mut self, anchor: NodeId, ppart: Vec<LabelSym>) -> Result<(), TableError> {
        let entry = self
            .p
            .get_mut(&anchor)
            .ok_or(TableError::MissingPEntry(anchor))?;
        entry.ppart = ppart;
        Ok(())
    }

    /// Re-parents / repositions an existing anchor, keeping the `children`
    /// index consistent.
    pub fn set_parent_pos(
        &mut self,
        anchor: NodeId,
        parent: Option<NodeId>,
        sib_pos: u32,
    ) -> Result<(), TableError> {
        let entry = self
            .p
            .get_mut(&anchor)
            .ok_or(TableError::MissingPEntry(anchor))?;
        let old_parent = entry.parent;
        entry.parent = parent;
        entry.sib_pos = sib_pos;
        if old_parent != parent {
            if let Some(op) = old_parent {
                if let Some(list) = self.children.get_mut(&op) {
                    list.retain(|&c| c != anchor);
                    if list.is_empty() {
                        self.children.remove(&op);
                    }
                }
            }
            if let Some(np) = parent {
                self.children.entry(np).or_default().push(anchor);
            }
        }
        Ok(())
    }

    /// Inserts one q-row; duplicate identical inserts are no-ops.
    pub fn insert_q_row(&mut self, anchor: NodeId, row: u32, qrow: QRow) -> Result<(), TableError> {
        let rows = self.q.entry(anchor).or_default();
        if let Some(existing) = rows.get(&row) {
            if *existing == qrow {
                return Ok(());
            }
            return Err(TableError::ConflictingQRow(anchor, row));
        }
        rows.insert(row, qrow);
        Ok(())
    }

    /// The stored rows of one anchor (row number → row), if any.
    pub fn q_rows(&self, anchor: NodeId) -> Option<&BTreeMap<u32, QRow>> {
        self.q.get(&anchor)
    }

    /// Extracts (removes) the contiguous rows `k ..= last` of `anchor`,
    /// erroring unless all of them are present.
    pub fn take_q_range(
        &mut self,
        anchor: NodeId,
        k: u32,
        last: u32,
    ) -> Result<Vec<QRow>, TableError> {
        let rows = self
            .q
            .get_mut(&anchor)
            .ok_or(TableError::MissingQRows(anchor, k, last))?;
        let mut out = Vec::with_capacity((last - k + 1) as usize);
        for r in k..=last {
            match rows.remove(&r) {
                Some(row) => out.push(row),
                None => return Err(TableError::MissingQRows(anchor, k, last)),
            }
        }
        if rows.is_empty() {
            self.q.remove(&anchor);
        }
        Ok(out)
    }

    /// Removes *all* rows of an anchor, returning them ascending by row
    /// number (empty if none stored).
    pub fn take_q_all(&mut self, anchor: NodeId) -> Vec<(u32, QRow)> {
        self.q
            .remove(&anchor)
            .map(|m| m.into_iter().collect())
            .unwrap_or_default()
    }

    /// Shifts the row numbers of all stored rows of `anchor` strictly above
    /// `after` by `delta` (used when an edit grows/shrinks a child list).
    pub fn shift_q_rows(&mut self, anchor: NodeId, after: u32, delta: i64) {
        if delta == 0 {
            return;
        }
        let Some(rows) = self.q.get_mut(&anchor) else {
            return;
        };
        let moved: Vec<(u32, QRow)> = rows
            .range(after + 1..)
            .map(|(&r, _)| r)
            .collect::<Vec<_>>()
            .into_iter()
            .map(|r| (r, rows.remove(&r).expect("row present")))
            .collect();
        for (r, qrow) in moved {
            let new_row = (r as i64 + delta) as u32;
            let prev = rows.insert(new_row, qrow);
            debug_assert!(prev.is_none(), "row shift collided at {new_row}");
        }
    }

    /// Shifts `sib_pos` of every `P` anchor whose parent is `parent` and
    /// whose position is strictly greater than `after` by `delta`.
    pub fn shift_sib_pos(&mut self, parent: NodeId, after: u32, delta: i64) {
        if delta == 0 {
            return;
        }
        let Some(anchors) = self.children.get(&parent) else {
            return;
        };
        for anchor in anchors.clone() {
            let entry = self.p.get_mut(&anchor).expect("children index out of sync");
            if entry.sib_pos > after {
                entry.sib_pos = (entry.sib_pos as i64 + delta) as u32;
            }
        }
    }

    /// Enumerates the stored pq-grams as `(anchor, row, label-tuple)` —
    /// the join `P ⋈ Q` of Equation 31.
    pub fn enumerate(&self) -> impl Iterator<Item = (NodeId, u32, Vec<LabelSym>)> + '_ {
        self.q.iter().flat_map(move |(&anchor, rows)| {
            let ppart = &self
                .p
                .get(&anchor)
                .expect("Q row without P entry — tables out of sync")
                .ppart;
            rows.iter().map(move |(&row, qrow)| {
                let mut tuple = Vec::with_capacity(ppart.len() + qrow.len());
                tuple.extend_from_slice(ppart);
                tuple.extend_from_slice(qrow);
                (anchor, row, tuple)
            })
        })
    }

    /// `λ(P, Q)`: the bag of label-tuple fingerprints of the stored
    /// pq-grams (Equation 31).
    pub fn lambda(&self, labels: &LabelTable) -> Vec<GramKey> {
        self.enumerate()
            .map(|(_, _, tuple)| label_tuple_fingerprint(tuple, labels))
            .collect()
    }

    /// Structural invariant audit of the table pair. Checks, in order:
    ///
    /// * the `children` secondary index agrees with `P` in both directions
    ///   (every indexed anchor has a matching `P` entry; every parented
    ///   `P` entry is indexed) — the shared-p-part reference counts;
    /// * `children` lists hold no duplicates and no stale empty lists
    ///   survive;
    /// * every `Q` anchor joins to a `P` entry and holds at least one row
    ///   (P/Q row correspondence, Equation 31);
    /// * all stored p-parts have one common width and all q-rows another
    ///   (a mixed-parameter table cannot arise from one `PQParams`).
    ///
    /// Returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        for (&parent, list) in &self.children {
            if list.is_empty() {
                return Err(format!("stale empty children list for {parent:?}"));
            }
            let mut dedup = list.clone();
            dedup.sort_unstable();
            dedup.dedup();
            if dedup.len() != list.len() {
                return Err(format!("duplicate children index entries under {parent:?}"));
            }
            for &anchor in list {
                match self.p.get(&anchor) {
                    Some(e) if e.parent == Some(parent) => {}
                    other => return Err(format!("children index stale: {anchor:?} -> {other:?}")),
                }
            }
        }
        for (&anchor, entry) in &self.p {
            if let Some(parent) = entry.parent {
                if !self
                    .children
                    .get(&parent)
                    .is_some_and(|l| l.contains(&anchor))
                {
                    return Err(format!("missing children index entry for {anchor:?}"));
                }
            }
        }
        for (&anchor, rows) in &self.q {
            if !self.p.contains_key(&anchor) {
                return Err(format!("Q rows without P entry for {anchor:?}"));
            }
            if rows.is_empty() {
                return Err(format!("stale empty Q row map for {anchor:?}"));
            }
        }
        let mut ppart_width: Option<usize> = None;
        for (&anchor, entry) in &self.p {
            match ppart_width {
                None => ppart_width = Some(entry.ppart.len()),
                Some(w) if w == entry.ppart.len() => {}
                Some(w) => {
                    return Err(format!(
                        "p-part width {} for {anchor:?}, other entries have {w}",
                        entry.ppart.len()
                    ))
                }
            }
        }
        let mut qrow_width: Option<usize> = None;
        for (&anchor, rows) in &self.q {
            for (&row, qrow) in rows {
                match qrow_width {
                    None => qrow_width = Some(qrow.len()),
                    Some(w) if w == qrow.len() => {}
                    Some(w) => {
                        return Err(format!(
                            "q-row width {} at ({anchor:?}, {row}), other rows have {w}",
                            qrow.len()
                        ))
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqgram_tree::LabelTable;

    fn nid(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    fn entry(lt: &mut LabelTable, parent: Option<usize>, pos: u32, labels: &[&str]) -> PEntry {
        PEntry {
            parent: parent.map(nid),
            sib_pos: pos,
            ppart: labels
                .iter()
                .map(|l| {
                    if *l == "*" {
                        LabelSym::NULL
                    } else {
                        lt.intern(l)
                    }
                })
                .collect(),
        }
    }

    #[test]
    fn p_insert_is_idempotent_and_conflicts_detected() {
        let mut lt = LabelTable::new();
        let mut t = DeltaTables::new();
        let e = entry(&mut lt, Some(0), 1, &["*", "a", "b"]);
        t.insert_p(nid(1), e.clone()).unwrap();
        t.insert_p(nid(1), e).unwrap(); // identical: fine
        let different = entry(&mut lt, Some(0), 2, &["*", "a", "b"]);
        assert_eq!(
            t.insert_p(nid(1), different),
            Err(TableError::ConflictingPEntry(nid(1)))
        );
        t.validate().unwrap();
    }

    #[test]
    fn children_index_tracks_mutations() {
        let mut lt = LabelTable::new();
        let mut t = DeltaTables::new();
        t.insert_p(nid(1), entry(&mut lt, Some(0), 1, &["a", "b"]))
            .unwrap();
        t.insert_p(nid(2), entry(&mut lt, Some(0), 2, &["a", "c"]))
            .unwrap();
        assert_eq!(t.children_in_p(nid(0)).len(), 2);
        t.set_parent_pos(nid(2), Some(nid(1)), 1).unwrap();
        assert_eq!(t.children_in_p(nid(0)), &[nid(1)]);
        assert_eq!(t.children_in_p(nid(1)), &[nid(2)]);
        t.remove_p(nid(2));
        assert!(t.children_in_p(nid(1)).is_empty());
        t.validate().unwrap();
    }

    #[test]
    fn q_rows_roundtrip_and_conflicts() {
        let mut lt = LabelTable::new();
        let mut t = DeltaTables::new();
        let x = lt.intern("x");
        let row = vec![x, LabelSym::NULL];
        t.insert_q_row(nid(1), 1, row.clone()).unwrap();
        t.insert_q_row(nid(1), 1, row.clone()).unwrap();
        assert_eq!(
            t.insert_q_row(nid(1), 1, vec![LabelSym::NULL, x]),
            Err(TableError::ConflictingQRow(nid(1), 1))
        );
        assert_eq!(t.q_len(), 1);
        let got = t.take_q_range(nid(1), 1, 1).unwrap();
        assert_eq!(got, vec![row]);
        assert!(t.is_empty());
    }

    #[test]
    fn take_q_range_requires_contiguity() {
        let mut lt = LabelTable::new();
        let mut t = DeltaTables::new();
        let x = lt.intern("x");
        t.insert_q_row(nid(1), 1, vec![x]).unwrap();
        t.insert_q_row(nid(1), 3, vec![x]).unwrap();
        assert!(matches!(
            t.take_q_range(nid(1), 1, 3),
            Err(TableError::MissingQRows(..))
        ));
    }

    #[test]
    fn shift_q_rows_moves_only_later_rows() {
        let mut lt = LabelTable::new();
        let mut t = DeltaTables::new();
        let x = lt.intern("x");
        for r in [1u32, 2, 5, 6] {
            t.insert_q_row(nid(1), r, vec![lt.intern(&format!("r{r}")), x])
                .unwrap();
        }
        t.shift_q_rows(nid(1), 2, 3);
        let rows: Vec<u32> = t.q_rows(nid(1)).unwrap().keys().copied().collect();
        assert_eq!(rows, vec![1, 2, 8, 9]);
        t.shift_q_rows(nid(1), 2, -3);
        let rows: Vec<u32> = t.q_rows(nid(1)).unwrap().keys().copied().collect();
        assert_eq!(rows, vec![1, 2, 5, 6]);
    }

    #[test]
    fn shift_sib_pos_moves_only_later_siblings() {
        let mut lt = LabelTable::new();
        let mut t = DeltaTables::new();
        for (i, pos) in [(1usize, 1u32), (2, 2), (3, 4)] {
            t.insert_p(nid(i), entry(&mut lt, Some(0), pos, &["a", "x"]))
                .unwrap();
        }
        t.shift_sib_pos(nid(0), 1, 1);
        assert_eq!(t.p_entry(nid(1)).unwrap().sib_pos, 1);
        assert_eq!(t.p_entry(nid(2)).unwrap().sib_pos, 3);
        assert_eq!(t.p_entry(nid(3)).unwrap().sib_pos, 5);
    }

    #[test]
    fn lambda_joins_p_and_q() {
        let mut lt = LabelTable::new();
        let mut t = DeltaTables::new();
        let (a, b, c) = (lt.intern("a"), lt.intern("b"), lt.intern("c"));
        t.insert_p(
            nid(1),
            PEntry {
                parent: None,
                sib_pos: 0,
                ppart: vec![LabelSym::NULL, a],
            },
        )
        .unwrap();
        t.insert_q_row(nid(1), 1, vec![LabelSym::NULL, b]).unwrap();
        t.insert_q_row(nid(1), 2, vec![b, c]).unwrap();
        let grams = t.lambda(&lt);
        assert_eq!(grams.len(), 2);
        let expected1 = label_tuple_fingerprint([LabelSym::NULL, a, LabelSym::NULL, b], &lt);
        let expected2 = label_tuple_fingerprint([LabelSym::NULL, a, b, c], &lt);
        assert!(grams.contains(&expected1) && grams.contains(&expected2));
        t.validate().unwrap();
    }

    fn corrupt_message(r: Result<(), String>) -> String {
        match r {
            Err(m) => m,
            Ok(()) => panic!("expected validate() to report corruption"),
        }
    }

    #[test]
    fn validate_reports_stale_children_index() {
        let mut lt = LabelTable::new();
        let mut t = DeltaTables::new();
        t.insert_p(nid(1), entry(&mut lt, Some(0), 1, &["a", "b"]))
            .unwrap();
        // An anchor indexed under nid(0) without a matching P entry.
        if let Some(list) = t.children.get_mut(&nid(0)) {
            list.push(nid(9));
        }
        let m = corrupt_message(t.validate());
        assert!(m.contains("children index stale"), "got: {m}");
    }

    #[test]
    fn validate_reports_duplicate_children_entries() {
        let mut lt = LabelTable::new();
        let mut t = DeltaTables::new();
        t.insert_p(nid(1), entry(&mut lt, Some(0), 1, &["a", "b"]))
            .unwrap();
        if let Some(list) = t.children.get_mut(&nid(0)) {
            list.push(nid(1));
        }
        let m = corrupt_message(t.validate());
        assert!(m.contains("duplicate children index entries"), "got: {m}");
    }

    #[test]
    fn validate_reports_missing_children_entry() {
        let mut lt = LabelTable::new();
        let mut t = DeltaTables::new();
        t.insert_p(nid(1), entry(&mut lt, Some(0), 1, &["a", "b"]))
            .unwrap();
        // Drop the secondary index while the parented P entry survives.
        t.children.remove(&nid(0));
        let m = corrupt_message(t.validate());
        assert!(m.contains("missing children index entry"), "got: {m}");
    }

    #[test]
    fn validate_reports_orphan_q_rows_and_stale_maps() {
        let mut lt = LabelTable::new();
        let mut t = DeltaTables::new();
        let x = lt.intern("x");
        // Q rows for an anchor that has no P entry.
        t.q.entry(nid(3)).or_default().insert(1, vec![x]);
        let m = corrupt_message(t.validate());
        assert!(m.contains("Q rows without P entry"), "got: {m}");

        let mut t = DeltaTables::new();
        t.insert_p(nid(3), entry(&mut lt, None, 0, &["*", "a"]))
            .unwrap();
        t.q.entry(nid(3)).or_default();
        let m = corrupt_message(t.validate());
        assert!(m.contains("stale empty Q row map"), "got: {m}");
    }

    #[test]
    fn validate_reports_mixed_widths() {
        let mut lt = LabelTable::new();
        let mut t = DeltaTables::new();
        t.insert_p(nid(1), entry(&mut lt, None, 0, &["*", "a"]))
            .unwrap();
        t.insert_p(nid(2), entry(&mut lt, Some(1), 1, &["a", "b", "c"]))
            .unwrap();
        let m = corrupt_message(t.validate());
        assert!(m.contains("p-part width"), "got: {m}");

        let mut t = DeltaTables::new();
        let x = lt.intern("x");
        t.insert_p(nid(1), entry(&mut lt, None, 0, &["*", "a"]))
            .unwrap();
        t.insert_q_row(nid(1), 1, vec![x, x]).unwrap();
        t.insert_q_row(nid(1), 2, vec![x]).unwrap();
        let m = corrupt_message(t.validate());
        assert!(m.contains("q-row width"), "got: {m}");
    }
}
