//! A managed in-memory forest: documents, shared labels, and an always
//! up-to-date pq-gram index behind one API.
//!
//! [`crate::index::ForestIndex`] is the bare index; [`Forest`] additionally
//! owns the trees and the label table and keeps the index maintained
//! *incrementally* whenever a document is edited — the intended usage
//! pattern of the paper, packaged. Every edit goes through
//! [`Forest::edit`], which applies the operations, records the inverse log
//! and runs Algorithm 1 on that document's index.
//!
//! ```
//! use pqgram_core::forest::Forest;
//! use pqgram_core::PQParams;
//! use pqgram_tree::{EditOp, LabelTable, Tree};
//!
//! let mut forest = Forest::new(PQParams::default());
//! let article = forest.labels_mut().intern("article");
//! let title = forest.labels_mut().intern("title");
//!
//! let mut doc = Tree::with_root(article);
//! doc.add_child(doc.root(), title);
//! let id = forest.insert(doc);
//!
//! // Edit through the forest: the index is maintained incrementally.
//! let node = forest.get(id).unwrap().children(forest.get(id).unwrap().root())[0];
//! let new_label = forest.labels_mut().intern("headline");
//! forest.edit(id, &[EditOp::Rename { node, label: new_label }]).unwrap();
//!
//! let hits = forest.lookup_tree(forest.get(id).unwrap(), forest.labels(), 0.1).unwrap();
//! assert_eq!(hits[0].tree_id, id);
//! ```

use crate::index::{build_index, ForestIndex, LookupHit, ParamsMismatch, TreeId, TreeIndex};
use crate::maintain::{update_index, MaintainError, UpdateStats};
use crate::params::PQParams;
use pqgram_tree::{EditError, EditLog, EditOp, FxHashMap, LabelTable, Tree};

/// Why a [`Forest`] operation failed.
#[derive(Debug, PartialEq)]
pub enum ForestError {
    /// No document with this id.
    UnknownTree(TreeId),
    /// An edit operation was invalid for the document (nothing applied).
    Edit(EditError),
    /// Incremental maintenance failed (internal inconsistency).
    Maintain(MaintainError),
}

impl std::fmt::Display for ForestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ForestError::UnknownTree(t) => write!(f, "no document {t:?} in the forest"),
            ForestError::Edit(e) => write!(f, "invalid edit: {e}"),
            ForestError::Maintain(e) => write!(f, "maintenance failed: {e}"),
        }
    }
}

impl std::error::Error for ForestError {}

/// Documents + labels + incrementally maintained index.
pub struct Forest {
    params: PQParams,
    labels: LabelTable,
    trees: FxHashMap<TreeId, Tree>,
    index: ForestIndex,
    next_id: u64,
}

impl Forest {
    /// An empty forest.
    pub fn new(params: PQParams) -> Self {
        assert!(
            params.supports_incremental(),
            "Forest maintains indexes incrementally and requires q >= 2"
        );
        Forest {
            params,
            labels: LabelTable::new(),
            trees: FxHashMap::default(),
            index: ForestIndex::new(),
            next_id: 0,
        }
    }

    /// The pq-gram parameters.
    pub fn params(&self) -> PQParams {
        self.params
    }

    /// The shared label table.
    pub fn labels(&self) -> &LabelTable {
        &self.labels
    }

    /// Mutable access to the shared label table (for interning).
    pub fn labels_mut(&mut self) -> &mut LabelTable {
        &mut self.labels
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// True if the forest holds no documents.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Inserts a document (labels must come from [`Forest::labels_mut`]),
    /// assigning the next free id.
    pub fn insert(&mut self, tree: Tree) -> TreeId {
        while self.trees.contains_key(&TreeId(self.next_id)) {
            self.next_id += 1;
        }
        let id = TreeId(self.next_id);
        self.next_id += 1;
        self.insert_with_id(id, tree);
        id
    }

    /// Inserts a document under a caller-chosen id (replacing any previous
    /// document with that id).
    pub fn insert_with_id(&mut self, id: TreeId, tree: Tree) {
        self.index
            .insert(id, build_index(&tree, &self.labels, self.params));
        self.trees.insert(id, tree);
    }

    /// Borrows a document.
    pub fn get(&self, id: TreeId) -> Option<&Tree> {
        self.trees.get(&id)
    }

    /// The maintained index of a document.
    pub fn index_of(&self, id: TreeId) -> Option<&TreeIndex> {
        self.index.get(id)
    }

    /// Removes a document, returning it.
    pub fn remove(&mut self, id: TreeId) -> Option<Tree> {
        self.index.remove(id);
        self.trees.remove(&id)
    }

    /// All ids, ascending.
    pub fn ids(&self) -> Vec<TreeId> {
        let mut ids: Vec<TreeId> = self.trees.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Applies forward edit operations to a document and maintains its
    /// index incrementally (Algorithm 1 over the recorded inverse log).
    ///
    /// Validation happens before any mutation: on an invalid operation the
    /// forest is unchanged. Returns the maintenance statistics.
    pub fn edit(&mut self, id: TreeId, ops: &[EditOp]) -> Result<UpdateStats, ForestError> {
        let tree = self
            .trees
            .get_mut(&id)
            .ok_or(ForestError::UnknownTree(id))?;
        // Dry-run validation on a clone (ops may depend on one another, so
        // they must be validated sequentially).
        let mut probe = tree.clone();
        for &op in ops {
            probe.apply(op).map_err(ForestError::Edit)?;
        }
        // Apply for real, recording the log.
        let mut log = EditLog::new();
        for &op in ops {
            log.push(tree.apply_logged(op).expect("validated above"));
        }
        let old_index = self.index.get(id).expect("indexed with the tree");
        let outcome =
            update_index(old_index, tree, &self.labels, &log).map_err(ForestError::Maintain)?;
        let stats = outcome.stats;
        self.index.insert(id, outcome.index);
        Ok(stats)
    }

    /// Edits a document through a closure that returns the recorded log
    /// entries — the bridge for subtree-level operations
    /// ([`pqgram_tree::subtree`]) and other log-producing edit APIs:
    ///
    /// ```
    /// # use pqgram_core::forest::Forest;
    /// # use pqgram_core::PQParams;
    /// # use pqgram_tree::subtree::{insert_subtree, Spec};
    /// # let mut forest = Forest::new(PQParams::default());
    /// # let a = forest.labels_mut().intern("a");
    /// # let b = forest.labels_mut().intern("b");
    /// # let id = forest.insert(pqgram_tree::Tree::with_root(a));
    /// forest.edit_logged(id, |tree| {
    ///     let root = tree.root();
    ///     let (_, log) = insert_subtree(tree, root, 1, &Spec::leaf(b))?;
    ///     Ok(log)
    /// }).unwrap();
    /// # forest.check_consistency().unwrap();
    /// ```
    ///
    /// The closure must return exactly the log entries of the edits it
    /// applied (in order); entries produced by [`pqgram_tree::Tree::apply_logged`]
    /// and the subtree helpers satisfy this by construction. A wrong log is
    /// detected by the maintenance (error) in almost all cases; the edits
    /// themselves are kept either way, with the index rebuilt on error.
    pub fn edit_logged<F>(&mut self, id: TreeId, f: F) -> Result<UpdateStats, ForestError>
    where
        F: FnOnce(&mut Tree) -> Result<Vec<pqgram_tree::LogOp>, EditError>,
    {
        let tree = self
            .trees
            .get_mut(&id)
            .ok_or(ForestError::UnknownTree(id))?;
        let entries = f(tree).map_err(ForestError::Edit)?;
        let log: EditLog = entries.into_iter().collect();
        let old_index = self.index.get(id).expect("indexed with the tree");
        match update_index(old_index, tree, &self.labels, &log) {
            Ok(outcome) => {
                let stats = outcome.stats;
                self.index.insert(id, outcome.index);
                Ok(stats)
            }
            Err(e) => {
                // Keep the document; restore index coherence by rebuilding.
                let rebuilt = build_index(tree, &self.labels, self.params);
                self.index.insert(id, rebuilt);
                Err(ForestError::Maintain(e))
            }
        }
    }

    /// Approximate lookup with a query document (indexed on the fly).
    ///
    /// `query_labels` is the table the query's `LabelSym`s were interned in
    /// — pass [`Forest::labels`] for queries built through this forest.
    /// Fingerprints are derived from label *names*, so a query interned in
    /// a different table still matches correctly; resolving its symbols
    /// against the forest's table instead would silently compute distances
    /// between unrelated labels that happen to share a symbol id.
    ///
    /// # Errors
    ///
    /// Never fails in practice — the query is indexed under this forest's
    /// own parameters — but propagates [`ParamsMismatch`] for API symmetry
    /// with [`Forest::lookup`].
    pub fn lookup_tree(
        &self,
        query: &Tree,
        query_labels: &LabelTable,
        tau: f64,
    ) -> Result<Vec<LookupHit>, ParamsMismatch> {
        let query_index = build_index(query, query_labels, self.params);
        self.index.lookup(&query_index, tau)
    }

    /// Approximate lookup with a prebuilt query index.
    ///
    /// # Errors
    ///
    /// Returns [`ParamsMismatch`] if `query` was built under different
    /// `PQParams` than this forest.
    pub fn lookup(&self, query: &TreeIndex, tau: f64) -> Result<Vec<LookupHit>, ParamsMismatch> {
        self.index.lookup(query, tau)
    }

    /// The underlying bare index (e.g. for joins).
    pub fn as_forest_index(&self) -> &ForestIndex {
        &self.index
    }

    /// Debug helper: every document's maintained index equals a rebuild.
    pub fn check_consistency(&self) -> Result<(), TreeId> {
        for (&id, tree) in &self.trees {
            let rebuilt = build_index(tree, &self.labels, self.params);
            if self.index.get(id) != Some(&rebuilt) {
                return Err(id);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqgram_tree::generate::{random_tree, RandomTreeConfig};
    use pqgram_tree::{record_script, ScriptConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn forest_with_docs(seed: u64, n: usize) -> (Forest, Vec<TreeId>) {
        let mut forest = Forest::new(PQParams::default());
        let mut rng = StdRng::seed_from_u64(seed);
        let ids = (0..n)
            .map(|_| {
                let tree =
                    random_tree(&mut rng, forest.labels_mut(), &RandomTreeConfig::new(60, 5));
                forest.insert(tree)
            })
            .collect();
        (forest, ids)
    }

    #[test]
    fn insert_assigns_fresh_ids() {
        let (forest, ids) = forest_with_docs(1, 5);
        assert_eq!(forest.len(), 5);
        assert_eq!(ids.len(), 5);
        assert_eq!(forest.ids(), ids);
        forest.check_consistency().unwrap();
    }

    #[test]
    fn edit_maintains_index() {
        let (mut forest, ids) = forest_with_docs(2, 3);
        let id = ids[1];
        // Build a small valid script against the current tree.
        let mut rng = StdRng::seed_from_u64(3);
        let mut scratch = forest.get(id).unwrap().clone();
        let alphabet: Vec<_> = forest.labels().iter().map(|(s, _)| s).collect();
        let (_, forward) = record_script(&mut rng, &mut scratch, &ScriptConfig::new(12, alphabet));
        let stats = forest.edit(id, &forward).unwrap();
        assert_eq!(stats.ops, 12);
        forest.check_consistency().unwrap();
        // The edited tree in the forest matches the scratch evolution.
        assert_eq!(forest.get(id).unwrap(), &scratch);
    }

    #[test]
    fn invalid_edit_leaves_forest_unchanged() {
        let (mut forest, ids) = forest_with_docs(4, 2);
        let id = ids[0];
        let before = forest.get(id).unwrap().clone();
        let root = before.root();
        let bad = EditOp::Delete { node: root };
        assert!(matches!(forest.edit(id, &[bad]), Err(ForestError::Edit(_))));
        assert_eq!(forest.get(id).unwrap(), &before);
        forest.check_consistency().unwrap();
    }

    #[test]
    fn partially_invalid_scripts_are_atomic() {
        let (mut forest, ids) = forest_with_docs(5, 1);
        let id = ids[0];
        let before = forest.get(id).unwrap().clone();
        let tree = forest.get(id).unwrap();
        let leaf = tree
            .preorder(tree.root())
            .find(|&n| tree.is_leaf(n) && n != tree.root());
        let Some(leaf) = leaf else { return };
        // First op valid, second invalid (delete the same node twice).
        let script = [EditOp::Delete { node: leaf }, EditOp::Delete { node: leaf }];
        assert!(forest.edit(id, &script).is_err());
        assert_eq!(forest.get(id).unwrap(), &before, "nothing may be applied");
    }

    #[test]
    fn lookup_finds_edited_document() -> Result<(), ParamsMismatch> {
        let (mut forest, ids) = forest_with_docs(6, 10);
        let id = ids[4];
        let snapshot = forest.get(id).unwrap().clone();
        // After editing, looking up the *new* version finds it at ~0.
        let mut rng = StdRng::seed_from_u64(7);
        let mut scratch = snapshot.clone();
        let alphabet: Vec<_> = forest.labels().iter().map(|(s, _)| s).collect();
        let (_, forward) = record_script(&mut rng, &mut scratch, &ScriptConfig::new(5, alphabet));
        forest.edit(id, &forward).unwrap();
        let hits = forest.lookup_tree(&scratch, forest.labels(), 0.2)?;
        assert_eq!(hits[0].tree_id, id);
        assert!(hits[0].distance.abs() < 1e-12);
        Ok(())
    }

    #[test]
    fn lookup_accepts_foreign_label_tables() -> Result<(), ParamsMismatch> {
        let mut forest = Forest::new(PQParams::default());
        let a = forest.labels_mut().intern("a");
        let b = forest.labels_mut().intern("b");
        let c = forest.labels_mut().intern("c");
        let mut doc = Tree::with_root(a);
        let mid = doc.add_child(doc.root(), b);
        doc.add_child(mid, c);
        let id = forest.insert(doc);

        // A client builds the same document against its own label table,
        // where the symbol ids happen to be assigned in opposite order —
        // every symbol collides with a *different* forest label.
        let mut foreign = LabelTable::new();
        let fc = foreign.intern("c");
        let fb = foreign.intern("b");
        let fa = foreign.intern("a");
        assert_eq!(fc, a, "ids collide across tables by construction");
        let mut query = Tree::with_root(fa);
        let qmid = query.add_child(query.root(), fb);
        query.add_child(qmid, fc);

        let hits = forest.lookup_tree(&query, &foreign, 0.5)?;
        assert!(!hits.is_empty(), "foreign-table query must match");
        assert_eq!(hits[0].tree_id, id);
        assert!(hits[0].distance.abs() < 1e-12);

        // Same hits as a twin re-interned in the forest's own table.
        let mut twin = Tree::with_root(a);
        let tmid = twin.add_child(twin.root(), b);
        twin.add_child(tmid, c);
        assert_eq!(forest.lookup_tree(&twin, forest.labels(), 0.5)?, hits);
        Ok(())
    }

    #[test]
    fn remove_then_insert_reuses_nothing() {
        let (mut forest, ids) = forest_with_docs(8, 3);
        let removed = forest.remove(ids[1]).unwrap();
        assert_eq!(forest.len(), 2);
        assert!(forest.get(ids[1]).is_none());
        let new_id = forest.insert(removed);
        assert_ne!(new_id, ids[0]);
        forest.check_consistency().unwrap();
    }

    #[test]
    fn unknown_tree_reported() {
        let (mut forest, _) = forest_with_docs(9, 1);
        assert_eq!(
            forest.edit(TreeId(99), &[]).unwrap_err(),
            ForestError::UnknownTree(TreeId(99))
        );
    }

    #[test]
    #[should_panic(expected = "q >= 2")]
    fn q1_forest_rejected() {
        Forest::new(PQParams::new(3, 1));
    }
}

#[cfg(test)]
mod edit_logged_tests {
    use super::*;
    use pqgram_tree::subtree::{delete_subtree, insert_subtree, move_subtree, Spec};

    #[test]
    fn subtree_edits_through_forest() {
        let mut forest = Forest::new(PQParams::default());
        let a = forest.labels_mut().intern("a");
        let b = forest.labels_mut().intern("b");
        let c = forest.labels_mut().intern("c");
        let mut doc = pqgram_tree::Tree::with_root(a);
        doc.add_child(doc.root(), b);
        let id = forest.insert(doc);

        // Insert a subtree, move it, delete another — all through the
        // managed API; the index stays consistent throughout.
        forest
            .edit_logged(id, |tree| {
                let root = tree.root();
                let spec = Spec::node(c, vec![Spec::leaf(b), Spec::leaf(b)]);
                let (_, log) = insert_subtree(tree, root, 1, &spec)?;
                Ok(log)
            })
            .unwrap();
        forest.check_consistency().unwrap();

        forest
            .edit_logged(id, |tree| {
                let root = tree.root();
                let target = *tree.children(root).last().expect("b child");
                let subject = tree.children(root)[0];
                let (_, log) = move_subtree(tree, subject, target, 1)?;
                Ok(log)
            })
            .unwrap();
        forest.check_consistency().unwrap();

        forest
            .edit_logged(id, |tree| {
                let root = tree.root();
                let victim = tree.children(root)[0];
                delete_subtree(tree, victim)
            })
            .unwrap();
        forest.check_consistency().unwrap();
        assert_eq!(forest.get(id).unwrap().node_count(), 1);
    }

    #[test]
    fn closure_error_leaves_forest_intact() {
        let mut forest = Forest::new(PQParams::default());
        let a = forest.labels_mut().intern("a");
        let id = forest.insert(pqgram_tree::Tree::with_root(a));
        let before = forest.get(id).unwrap().clone();
        let err = forest
            .edit_logged(id, |tree| {
                let root = tree.root();
                delete_subtree(tree, root) // root deletion: always fails
            })
            .unwrap_err();
        assert!(matches!(err, ForestError::Edit(EditError::RootEdit)));
        assert_eq!(forest.get(id).unwrap(), &before);
        forest.check_consistency().unwrap();
    }
}
