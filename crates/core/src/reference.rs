//! Deliberately naive oracle implementations of the paper's definitions.
//!
//! These recompute everything from materialized profiles of **all**
//! intermediate tree versions — exactly what the incremental algorithm
//! avoids — and exist solely to validate the optimized implementation:
//!
//! * `Δₙ⁺ = Pₙ \ Cₙ` and `Δₙ⁻ = P₀ \ Cₙ` with `Cₙ = P₀ ∩ … ∩ Pₙ`
//!   (Definition 6);
//! * `δ(T_j, ē) = P_j \ P_i` (Definition 4);
//! * the updated index by full recomputation.

use crate::gram::PQGram;
use crate::index::GramKey;
use crate::params::PQParams;
use crate::profile::{compute_profile, Profile};
use pqgram_tree::{EditLog, EditOp, LabelTable, Tree};

/// Reconstructs all intermediate versions `[T₀, T₁, …, Tₙ]` from the final
/// tree and the log of inverse operations. Panics if the log does not match
/// the tree (oracle code).
pub fn rewind_versions(final_tree: &Tree, log: &EditLog) -> Vec<Tree> {
    let mut versions = Vec::with_capacity(log.len() + 1);
    versions.push(final_tree.clone());
    let mut cur = final_tree.clone();
    for entry in log.ops().iter().rev() {
        cur.apply(entry.op).expect("oracle: log must be applicable");
        versions.push(cur.clone());
    }
    versions.reverse();
    versions
}

/// `Cₙ`: the pq-grams shared by all versions (Equation 11).
pub fn invariant_grams(versions: &[Tree], params: PQParams) -> Profile {
    let mut iter = versions.iter();
    let first = iter.next().expect("at least one version");
    let mut inv = compute_profile(first, params);
    for t in iter {
        let profile = compute_profile(t, params);
        inv.retain(|g| profile.contains(g));
    }
    inv
}

/// `Δₙ⁺ = Pₙ \ Cₙ` (Equation 12).
pub fn delta_plus_by_definition(versions: &[Tree], params: PQParams) -> Profile {
    let last = versions.last().expect("at least one version");
    let inv = invariant_grams(versions, params);
    let mut profile = compute_profile(last, params);
    profile.retain(|g| !inv.contains(g));
    profile
}

/// `Δₙ⁻ = P₀ \ Cₙ` (Equation 12).
pub fn delta_minus_by_definition(versions: &[Tree], params: PQParams) -> Profile {
    let first = versions.first().expect("at least one version");
    let inv = invariant_grams(versions, params);
    let mut profile = compute_profile(first, params);
    profile.retain(|g| !inv.contains(g));
    profile
}

/// `δ(T_j, ē) = P_j \ P_i` where `T_i = ē(T_j)`, or `None` when `ē` is not
/// applicable (Definition 4's ∅ branch).
pub fn delta_by_definition(tree: &Tree, op: EditOp, params: PQParams) -> Option<Profile> {
    let mut older = tree.clone();
    older.apply(op).ok()?;
    let older_profile = compute_profile(&older, params);
    let mut delta = compute_profile(tree, params);
    delta.retain(|g| !older_profile.contains(g));
    Some(delta)
}

/// Projects a profile to the sorted bag of label-tuple fingerprints — the
/// comparison currency of the oracle tests.
pub fn lambda_keys(profile: &Profile, labels: &LabelTable) -> Vec<GramKey> {
    let mut keys: Vec<GramKey> = profile
        .iter()
        .map(|g: &PQGram| g.tuple_fingerprint(labels))
        .collect();
    keys.sort_unstable();
    keys
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqgram_tree::generate::{random_tree, RandomTreeConfig};
    use pqgram_tree::{record_script, ScriptConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn versions_start_at_t0_and_end_at_tn() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lt = pqgram_tree::LabelTable::new();
        let mut tree = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(30, 4));
        let t0 = tree.clone();
        let alphabet: Vec<_> = lt.iter().map(|(s, _)| s).collect();
        let (log, _) = record_script(&mut rng, &mut tree, &ScriptConfig::new(6, alphabet));
        let versions = rewind_versions(&tree, &log);
        assert_eq!(versions.len(), 7);
        assert_eq!(versions[0], t0);
        assert_eq!(versions[6], tree);
    }

    #[test]
    fn empty_log_has_empty_deltas() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut lt = pqgram_tree::LabelTable::new();
        let tree = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(30, 4));
        let versions = vec![tree.clone()];
        let params = PQParams::default();
        assert!(delta_plus_by_definition(&versions, params).is_empty());
        assert!(delta_minus_by_definition(&versions, params).is_empty());
        assert_eq!(
            invariant_grams(&versions, params).len(),
            compute_profile(&tree, params).len()
        );
    }

    #[test]
    fn deltas_are_disjoint_from_invariant() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lt = pqgram_tree::LabelTable::new();
        let mut tree = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(50, 4));
        let alphabet: Vec<_> = lt.iter().map(|(s, _)| s).collect();
        let (log, _) = record_script(&mut rng, &mut tree, &ScriptConfig::new(10, alphabet));
        let versions = rewind_versions(&tree, &log);
        let params = PQParams::new(2, 2);
        let inv = invariant_grams(&versions, params);
        let plus = delta_plus_by_definition(&versions, params);
        let minus = delta_minus_by_definition(&versions, params);
        assert!(plus.iter().all(|g| !inv.contains(g)));
        assert!(minus.iter().all(|g| !inv.contains(g)));
        // P_n = C_n ∪ Δ+ and P_0 = C_n ∪ Δ− (Lemma 2's first step).
        assert_eq!(
            compute_profile(versions.last().unwrap(), params).len(),
            inv.len() + plus.len()
        );
        assert_eq!(
            compute_profile(&versions[0], params).len(),
            inv.len() + minus.len()
        );
    }
}
