//! pq-grams over concrete nodes (Definition 1).
//!
//! A [`PQGram`] is the node-level object the profiles and the delta sets are
//! made of. The paper distinguishes the *profile* (a **set** of pq-grams,
//! node identities included) from the *index* (the **bag** of their
//! label-tuples): two different pq-grams may map to the same label-tuple, so
//! the maintenance algorithms operate on node-level grams and only project
//! to label-tuples at the very end.

use crate::params::PQParams;
use pqgram_tree::fingerprint::{combine, Fingerprint, TUPLE_SEED};
use pqgram_tree::{LabelSym, LabelTable, NodeId};
use std::fmt;

/// One entry of a pq-gram: a concrete tree node or a null node `•` of the
/// extended tree.
///
/// Node equality follows the paper: two entries are equal iff identifier
/// *and* label match; all null entries are equal (their placement inside the
/// gram is positional).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GramNode {
    /// A null node `•` (label `*`).
    Null,
    /// A concrete node with its label at the time the gram was taken.
    Node(NodeId, LabelSym),
}

impl GramNode {
    /// The entry's label (`*` for null).
    #[inline]
    pub fn label(self) -> LabelSym {
        match self {
            GramNode::Null => LabelSym::NULL,
            GramNode::Node(_, l) => l,
        }
    }

    /// The concrete node id, if any.
    #[inline]
    pub fn id(self) -> Option<NodeId> {
        match self {
            GramNode::Null => None,
            GramNode::Node(id, _) => Some(id),
        }
    }

    /// True for `•`.
    #[inline]
    pub fn is_null(self) -> bool {
        matches!(self, GramNode::Null)
    }
}

impl fmt::Debug for GramNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GramNode::Null => write!(f, "•"),
            GramNode::Node(id, l) => write!(f, "{id:?}:{l:?}"),
        }
    }
}

/// A pq-gram in linear encoding: `(a_{p-1}, …, a_1, a, c_i, …, c_{i+q-1})` —
/// the p-part (ancestors then anchor) followed by the q-part.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PQGram {
    entries: Box<[GramNode]>,
    /// Length of the p-part within `entries`.
    p: u32,
}

impl PQGram {
    /// Builds a gram from its p-part and q-part.
    pub fn new(ppart: &[GramNode], qpart: &[GramNode]) -> Self {
        let mut entries = Vec::with_capacity(ppart.len() + qpart.len());
        entries.extend_from_slice(ppart);
        entries.extend_from_slice(qpart);
        PQGram {
            entries: entries.into_boxed_slice(),
            p: ppart.len() as u32,
        }
    }

    /// All `p + q` entries in linear encoding.
    #[inline]
    pub fn entries(&self) -> &[GramNode] {
        &self.entries
    }

    /// The p-part `(a_{p-1}, …, a_1, a)`.
    #[inline]
    pub fn ppart(&self) -> &[GramNode] {
        &self.entries[..self.p as usize]
    }

    /// The q-part `(c_i, …, c_{i+q-1})`.
    #[inline]
    pub fn qpart(&self) -> &[GramNode] {
        &self.entries[self.p as usize..]
    }

    /// The anchor node entry (last of the p-part).
    #[inline]
    pub fn anchor(&self) -> GramNode {
        self.entries[self.p as usize - 1]
    }

    /// Shape check against `params`.
    pub fn matches(&self, params: PQParams) -> bool {
        self.p as usize == params.p() && self.entries.len() == params.len()
    }

    /// The label-tuple `λ(g)` of this gram.
    pub fn label_tuple(&self) -> Vec<LabelSym> {
        self.entries.iter().map(|e| e.label()).collect()
    }

    /// Fixed-width fingerprint of `λ(g)` — what the index stores.
    pub fn tuple_fingerprint(&self, labels: &LabelTable) -> Fingerprint {
        label_tuple_fingerprint(self.entries.iter().map(|e| e.label()), labels)
    }

    /// True if the gram contains the node `id` (under any label).
    pub fn contains_id(&self, id: NodeId) -> bool {
        self.entries.iter().any(|e| e.id() == Some(id))
    }
}

impl fmt::Debug for PQGram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            if i == self.p as usize {
                write!(f, "| ")?;
            }
            write!(f, "{e:?}")?;
        }
        write!(f, ")")
    }
}

/// Folds a sequence of labels into the fixed-width label-tuple fingerprint
/// (Section 3.2: the paper concatenates per-label hashes; we fold them with
/// the same Karp–Rabin polynomial, which is equally position-sensitive).
pub fn label_tuple_fingerprint<I: IntoIterator<Item = LabelSym>>(
    tuple: I,
    labels: &LabelTable,
) -> Fingerprint {
    tuple
        .into_iter()
        .fold(TUPLE_SEED, |acc, sym| combine(acc, labels.fingerprint(sym)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(id: usize, l: LabelSym) -> GramNode {
        GramNode::Node(NodeId::from_index(id), l)
    }

    #[test]
    fn parts_and_anchor() {
        let mut lt = LabelTable::new();
        let a = lt.intern("a");
        let b = lt.intern("b");
        let g = PQGram::new(
            &[GramNode::Null, node(1, a)],
            &[GramNode::Null, node(2, b), GramNode::Null],
        );
        assert_eq!(g.ppart().len(), 2);
        assert_eq!(g.qpart().len(), 3);
        assert_eq!(g.anchor(), node(1, a));
        assert!(g.matches(PQParams::new(2, 3)));
        assert!(!g.matches(PQParams::new(3, 3)));
        assert_eq!(
            g.label_tuple(),
            vec![LabelSym::NULL, a, LabelSym::NULL, b, LabelSym::NULL]
        );
        assert!(g.contains_id(NodeId::from_index(2)));
        assert!(!g.contains_id(NodeId::from_index(3)));
    }

    #[test]
    fn same_id_different_label_is_different_gram() {
        let mut lt = LabelTable::new();
        let a = lt.intern("a");
        let b = lt.intern("b");
        let g1 = PQGram::new(&[node(1, a)], &[GramNode::Null]);
        let g2 = PQGram::new(&[node(1, b)], &[GramNode::Null]);
        assert_ne!(g1, g2);
    }

    #[test]
    fn tuple_fingerprint_position_sensitive() {
        let mut lt = LabelTable::new();
        let a = lt.intern("a");
        let b = lt.intern("b");
        let fp = |tuple: &[LabelSym]| label_tuple_fingerprint(tuple.iter().copied(), &lt);
        assert_ne!(fp(&[a, b]), fp(&[b, a]));
        assert_ne!(fp(&[a, LabelSym::NULL]), fp(&[LabelSym::NULL, a]));
        assert_eq!(fp(&[a, b]), fp(&[a, b]));
    }

    #[test]
    fn grams_with_same_labels_different_ids_share_fingerprint() {
        let mut lt = LabelTable::new();
        let a = lt.intern("a");
        let g1 = PQGram::new(&[node(1, a)], &[GramNode::Null]);
        let g2 = PQGram::new(&[node(9, a)], &[GramNode::Null]);
        assert_ne!(g1, g2);
        assert_eq!(g1.tuple_fingerprint(&lt), g2.tuple_fingerprint(&lt));
    }
}
