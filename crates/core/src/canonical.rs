//! Unordered-tree comparison via canonical ordering.
//!
//! The pq-gram distance is defined for *ordered* trees; the paper's
//! conclusion points at unordered data as future work (later addressed by
//! windowed pq-grams, Augsten et al.). This module provides the simple,
//! sound building block: a **canonical form** that sorts every child list by
//! `(label fingerprint, subtree fingerprint)`, so that any two trees that
//! are equal up to sibling permutation map to the identical ordered tree.
//! Indexing the canonical form yields a sibling-permutation-invariant
//! pq-gram distance.
//!
//! Note the trade-off (inherent, not an implementation artifact): after
//! canonicalization, sibling *order* differences cost nothing, and a single
//! rename can move a child to a different sorted position, perturbing more
//! grams than in the ordered setting. For ordered documents prefer the
//! standard index.

use crate::index::{build_index, TreeIndex};
use crate::params::PQParams;
use pqgram_tree::fingerprint::{arity_mark, combine, mix, Fingerprint, TUPLE_SEED};
use pqgram_tree::{LabelTable, NodeId, Tree};

/// Rebuilds `tree` with every child list sorted canonically. The result is
/// identical (as an ordered tree, up to node ids) for all sibling
/// permutations of `tree`.
pub fn canonicalize(tree: &Tree, labels: &LabelTable) -> Tree {
    // Subtree fingerprints over the *canonical* child order: computed
    // bottom-up with each node's children sorted before hashing.
    let mut hashes = vec![0u64; tree.slot_count()];
    let mut sorted_children: Vec<Vec<NodeId>> = vec![Vec::new(); tree.slot_count()];
    for node in tree.postorder(tree.root()) {
        let mut kids: Vec<NodeId> = tree.children(node).to_vec();
        kids.sort_by_key(|&c| (labels.fingerprint(tree.label(c)), hashes[c.index()]));
        let mut acc = combine(TUPLE_SEED, labels.fingerprint(tree.label(node)));
        for &c in &kids {
            acc = combine(acc, mix(hashes[c.index()]));
        }
        hashes[node.index()] = combine(acc, arity_mark(kids.len()));
        sorted_children[node.index()] = kids;
    }
    // Rebuild in canonical preorder.
    let mut out = Tree::with_root(tree.label(tree.root()));
    let mut stack = vec![(tree.root(), out.root())];
    while let Some((src, dst)) = stack.pop() {
        // Push in reverse so children are added left-to-right.
        let kids = &sorted_children[src.index()];
        let mut added = Vec::with_capacity(kids.len());
        for &c in kids {
            added.push((c, out.add_child(dst, tree.label(c))));
        }
        stack.extend(added.into_iter().rev());
    }
    out
}

/// The canonical subtree fingerprint of the whole tree: equal (w.h.p.) iff
/// two trees are isomorphic as *unordered* labeled trees.
pub fn unordered_fingerprint(tree: &Tree, labels: &LabelTable) -> Fingerprint {
    let mut hashes = vec![0u64; tree.slot_count()];
    for node in tree.postorder(tree.root()) {
        let mut kid_hashes: Vec<(Fingerprint, Fingerprint)> = tree
            .children(node)
            .iter()
            .map(|&c| (labels.fingerprint(tree.label(c)), hashes[c.index()]))
            .collect();
        kid_hashes.sort_unstable();
        let mut acc = combine(TUPLE_SEED, labels.fingerprint(tree.label(node)));
        let arity = kid_hashes.len();
        for (_, h) in kid_hashes {
            acc = combine(acc, mix(h));
        }
        hashes[node.index()] = combine(acc, arity_mark(arity));
    }
    hashes[tree.root().index()]
}

/// Builds the pq-gram index of the canonical form — a
/// sibling-permutation-invariant index.
pub fn build_unordered_index(tree: &Tree, labels: &LabelTable, params: PQParams) -> TreeIndex {
    build_index(&canonicalize(tree, labels), labels, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{pq_distance, ParamsMismatch};
    use pqgram_tree::generate::{random_tree, RandomTreeConfig};
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    /// Recursively shuffles every child list.
    fn shuffle_siblings(tree: &Tree, labels: &LabelTable, seed: u64) -> Tree {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Tree::with_root(tree.label(tree.root()));
        let mut stack = vec![(tree.root(), out.root())];
        while let Some((src, dst)) = stack.pop() {
            let mut kids: Vec<NodeId> = tree.children(src).to_vec();
            kids.shuffle(&mut rng);
            for c in kids {
                let nd = out.add_child(dst, tree.label(c));
                stack.push((c, nd));
            }
        }
        let _ = labels;
        out
    }

    #[test]
    fn permuted_trees_have_unordered_distance_zero() -> Result<(), ParamsMismatch> {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lt = LabelTable::new();
        let params = PQParams::default();
        for seed in 0..10u64 {
            let t = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(80, 5));
            let shuffled = shuffle_siblings(&t, &lt, seed);
            // Ordered distance usually nonzero, unordered distance zero.
            let unordered = pq_distance(
                &build_unordered_index(&t, &lt, params),
                &build_unordered_index(&shuffled, &lt, params),
            )?;
            assert_eq!(unordered, 0.0, "seed {seed}");
            assert_eq!(
                unordered_fingerprint(&t, &lt),
                unordered_fingerprint(&shuffled, &lt)
            );
        }
        Ok(())
    }

    #[test]
    fn ordered_distance_detects_permutation_unordered_does_not() -> Result<(), ParamsMismatch> {
        let mut lt = LabelTable::new();
        let (r, a, b, c) = (
            lt.intern("r"),
            lt.intern("a"),
            lt.intern("b"),
            lt.intern("c"),
        );
        let mut t1 = Tree::with_root(r);
        for l in [a, b, c] {
            t1.add_child(t1.root(), l);
        }
        let mut t2 = Tree::with_root(r);
        for l in [c, a, b] {
            t2.add_child(t2.root(), l);
        }
        let params = PQParams::new(2, 2);
        let ordered = pq_distance(
            &build_index(&t1, &lt, params),
            &build_index(&t2, &lt, params),
        )?;
        let unordered = pq_distance(
            &build_unordered_index(&t1, &lt, params),
            &build_unordered_index(&t2, &lt, params),
        )?;
        assert!(ordered > 0.0);
        assert_eq!(unordered, 0.0);
        Ok(())
    }

    #[test]
    fn unordered_distance_still_detects_real_changes() -> Result<(), ParamsMismatch> {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lt = LabelTable::new();
        let params = PQParams::default();
        let t = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(120, 5));
        let mut edited = t.clone();
        let z = lt.intern("zz-changed");
        let leaf = edited
            .preorder(edited.root())
            .find(|&n| edited.is_leaf(n))
            .unwrap();
        edited
            .apply(pqgram_tree::EditOp::Rename {
                node: leaf,
                label: z,
            })
            .unwrap();
        let d = pq_distance(
            &build_unordered_index(&t, &lt, params),
            &build_unordered_index(&edited, &lt, params),
        )?;
        assert!(d > 0.0 && d < 0.3, "distance {d}");
        assert_ne!(
            unordered_fingerprint(&t, &lt),
            unordered_fingerprint(&edited, &lt)
        );
        Ok(())
    }

    #[test]
    fn canonical_form_is_idempotent_and_isomorphic_input() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut lt = LabelTable::new();
        let t = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(60, 4));
        let c1 = canonicalize(&t, &lt);
        let c2 = canonicalize(&c1, &lt);
        assert!(c1.isomorphic(&c2), "canonicalization must be idempotent");
        assert_eq!(c1.node_count(), t.node_count());
        // Same multiset of labels at every depth.
        let label_bag = |t: &Tree| {
            let mut v: Vec<(usize, pqgram_tree::LabelSym)> = t
                .preorder(t.root())
                .map(|n| (t.node_depth(n), t.label(n)))
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(label_bag(&t), label_bag(&c1));
    }

    #[test]
    fn equal_label_twins_sorted_by_subtree() {
        // Two children with the same label but different subtrees must sort
        // deterministically regardless of input order.
        let mut lt = LabelTable::new();
        let (r, x, y, z) = (
            lt.intern("r"),
            lt.intern("x"),
            lt.intern("y"),
            lt.intern("z"),
        );
        let build = |first_y: bool| {
            let mut t = Tree::with_root(r);
            let a = t.add_child(t.root(), x);
            let b = t.add_child(t.root(), x);
            let (ya, yb) = if first_y { (a, b) } else { (b, a) };
            t.add_child(ya, y);
            t.add_child(yb, z);
            t
        };
        let c1 = canonicalize(&build(true), &lt);
        let c2 = canonicalize(&build(false), &lt);
        assert!(c1.isomorphic(&c2));
    }
}
