//! The delta function `δ(T, ē)` (Definition 4, Lemma 1, Algorithm 2).
//!
//! For a tree `T` and a (reverse) edit operation `ē`, `δ(T, ē)` is the set of
//! pq-grams of `T` that the edit undone by `ē` introduced:
//!
//! * `ē = REN(n, l')` or `ē = DEL(n)` — all grams containing `n`: the window
//!   `P(v) ∘ Q^{k..k}(v)` at `n`'s position under its parent `v`, plus the
//!   full gram families `P(x) ∘ Q(x)` of every `x ∈ desc_{p−1}(n)`;
//! * `ē = INS(n, v, k, m)` — all grams containing `v` and one of the
//!   children `c_k … c_m`: the window `P(v) ∘ Q^{k..m}(v)`, plus
//!   `P(x) ∘ Q(x)` for every `x ∈ desc_{p−2}(c_k, …, c_m)`.
//!
//! Definition 4 makes `δ` **total**: when `ē` is not applicable to `T`
//! (which routinely happens when the log entry of an intermediate version is
//! evaluated on the final tree `Tₙ`), `δ(T, ē) = ∅`.
//!
//! The grams are accumulated into the [`DeltaTables`] pair, de-duplicated by
//! construction.

use crate::params::PQParams;
use crate::table::{DeltaTables, PEntry, TableError};
use pqgram_tree::{EditOp, InsertAnchor, LabelSym, LogOp, NodeId, Tree};

/// Computes `δ(tree, entry)` and merges it into `tables`.
///
/// Returns `Ok(true)` if the operation was applicable (grams were added),
/// `Ok(false)` for the `δ = ∅` branch of Definition 4. Errors only on table
/// inconsistencies, which indicate a log/tree mismatch.
///
/// An `INS` entry is resolved through its [`InsertAnchor`]: the children it
/// adopts (or the gap it enters) are identified *by node identity*, not by
/// the positional `k..=m` recorded against the intermediate tree version —
/// sibling positions under the same parent may have shifted since. When the
/// anchor no longer resolves on `tree`, the operation has no tree `Tᵢ` with
/// `Tᵢ = ē(T)` in the sense of the paper's node-set semantics and `δ = ∅`.
pub fn accumulate_delta(
    tables: &mut DeltaTables,
    tree: &Tree,
    entry: &LogOp,
    params: PQParams,
) -> Result<bool, TableError> {
    match entry.op {
        EditOp::Rename { .. } | EditOp::Delete { .. } => {
            // Predicate: all grams containing n. Empty if n is gone (or is
            // the root, which valid logs never edit).
            let node = entry.op.target();
            if !tree.contains(node) {
                return Ok(false);
            }
            let Some(v) = tree.parent(node) else {
                return Ok(false);
            };
            let k = tree.sibling_pos(node).ok_or(TableError::Inconsistency(
                node,
                "non-root node has no sibling position",
            ))? as u32;
            add_p(tables, tree, v, params)?;
            add_q_window(tables, tree, v, k, k, params)?;
            for x in tree.descendants_within(node, params.p() - 1) {
                add_p(tables, tree, x, params)?;
                add_q_full(tables, tree, x, params)?;
            }
            Ok(true)
        }
        EditOp::Insert {
            node, parent: v, ..
        } => {
            if tree.contains(node) || !tree.contains(v) {
                return Ok(false);
            }
            let anchor = entry.anchor.as_ref().ok_or(TableError::Inconsistency(
                node,
                "log insert carries no anchor",
            ))?;
            match anchor {
                InsertAnchor::Adopted(run) => adopted_delta(tables, tree, v, run, params),
                InsertAnchor::Gap { pred, succ } => {
                    let Some(k) = resolve_gap(tree, v, *pred, *succ) else {
                        return Ok(false);
                    };
                    add_p(tables, tree, v, params)?;
                    // Zero-width window Q^{k..k-1}(v): the rows crossing the
                    // insertion gap.
                    add_q_window(tables, tree, v, k as u32, k as u32 - 1, params)?;
                    Ok(true)
                }
            }
        }
    }
}

/// Predicate delta of a non-leaf insert: all grams of `tree` containing `v`
/// and at least one *surviving* member of the adopted node set `C`.
///
/// Surviving members are always descendants of `v` (children can only move
/// deeper while `v` stays alive), so every qualifying gram has `v` in its
/// p-part and the member either in the p-part below `v` (gram anchored
/// inside the member's subtree) or in the q-part (gram anchored at the
/// member's parent, window covering it). When the recorded run is still the
/// intact child range `c_k…c_m` of `v` this enumerates exactly
/// `P(v)∘Q^{k..m}(v) ∪ P(x)∘Q(x), x ∈ desc_{p−2}(c_k…c_m)` — Table 1.
fn adopted_delta(
    tables: &mut DeltaTables,
    tree: &Tree,
    v: NodeId,
    run: &[NodeId],
    params: PQParams,
) -> Result<bool, TableError> {
    let p = params.p();
    let mut any = false;
    for &c in run {
        if !tree.contains(c) {
            continue;
        }
        // Distance from v down to c (walk up from c, at most p steps — any
        // farther and no gram can contain both).
        let mut d = 0usize;
        let mut cur = c;
        let found = loop {
            if cur == v {
                break d > 0;
            }
            if d >= p {
                break false;
            }
            match tree.parent(cur) {
                Some(up) => {
                    cur = up;
                    d += 1;
                }
                None => break false,
            }
        };
        if !found {
            continue;
        }
        any = true;
        // Grams with c in the q-part: anchored at c's parent (which is at
        // distance d−1 ≤ p−1 from v), windows covering c.
        let parent = tree
            .parent(c)
            .ok_or(TableError::Inconsistency(c, "adopted node lost its parent"))?;
        let pos = tree.sibling_pos(c).ok_or(TableError::Inconsistency(
            c,
            "adopted node has no sibling position",
        ))? as u32;
        add_p(tables, tree, parent, params)?;
        add_q_window(tables, tree, parent, pos, pos, params)?;
        // Grams with c in the p-part: anchored in c's subtree within
        // distance p−1 of v, i.e. within p−1−d of c.
        if p > d {
            for x in tree.descendants_within(c, p - 1 - d) {
                add_p(tables, tree, x, params)?;
                add_q_full(tables, tree, x, params)?;
            }
        }
    }
    Ok(any)
}

/// Resolves the gap of a logged leaf insert on `tree` by the identity of its
/// neighbors; `None` when the adjacency no longer exists.
fn resolve_gap(
    tree: &Tree,
    v: NodeId,
    pred: Option<NodeId>,
    succ: Option<NodeId>,
) -> Option<usize> {
    let children = tree.children(v);
    let pos_of = |n: NodeId| -> Option<usize> {
        if tree.contains(n) && tree.parent(n) == Some(v) {
            tree.sibling_pos(n)
        } else {
            None
        }
    };
    match (pred, succ) {
        (None, None) => children.is_empty().then_some(1),
        (None, Some(s)) => (pos_of(s)? == 1).then_some(1),
        (Some(pr), None) => {
            let pp = pos_of(pr)?;
            (pp == children.len()).then_some(pp + 1)
        }
        (Some(pr), Some(s)) => {
            let pp = pos_of(pr)?;
            (pos_of(s)? == pp + 1).then_some(pp + 1)
        }
    }
}

/// Builds the `P` entry of `x` from the tree: the null-padded ancestor
/// chain, the parent id and the sibling position (Section 8.1).
pub fn p_entry_of(tree: &Tree, x: NodeId, params: PQParams) -> PEntry {
    let p = params.p();
    let mut ppart = vec![LabelSym::NULL; p];
    ppart[p - 1] = tree.label(x);
    let mut cur = x;
    for slot in (0..p - 1).rev() {
        match tree.parent(cur) {
            Some(a) => {
                ppart[slot] = tree.label(a);
                cur = a;
            }
            None => break,
        }
    }
    PEntry {
        parent: tree.parent(x),
        sib_pos: tree.sibling_pos(x).unwrap_or(0) as u32,
        ppart,
    }
}

fn add_p(
    tables: &mut DeltaTables,
    tree: &Tree,
    x: NodeId,
    params: PQParams,
) -> Result<(), TableError> {
    tables.insert_p(x, p_entry_of(tree, x, params))
}

/// Adds all rows of the full q-matrix `Q(x)` (Definition 7).
fn add_q_full(
    tables: &mut DeltaTables,
    tree: &Tree,
    x: NodeId,
    params: PQParams,
) -> Result<(), TableError> {
    let q = params.q();
    let children = tree.children(x);
    let f = children.len();
    if f == 0 {
        return tables.insert_q_row(x, 1, vec![LabelSym::NULL; q]);
    }
    add_rows(tables, tree, x, 1, (f + q - 1) as u32, params)
}

/// Adds the window rows `k ..= m+q−1` of `Q(v)` — `Q^{k..m}(v)`, including
/// the zero-width insert window `m = k − 1` and the leaf special case.
fn add_q_window(
    tables: &mut DeltaTables,
    tree: &Tree,
    v: NodeId,
    k: u32,
    m: u32,
    params: PQParams,
) -> Result<(), TableError> {
    let q = params.q();
    if tree.is_leaf(v) {
        // Q^{k..m} of a leaf is the canonical 1×q null row.
        return tables.insert_q_row(v, 1, vec![LabelSym::NULL; q]);
    }
    add_rows(tables, tree, v, k, m + q as u32 - 1, params)
}

/// Adds rows `first ..= last` of the q-matrix of `v` read off the tree:
/// row `r` holds the children `c_{r−q+1} … c_r` (null outside `1..=f`).
fn add_rows(
    tables: &mut DeltaTables,
    tree: &Tree,
    v: NodeId,
    first: u32,
    last: u32,
    params: PQParams,
) -> Result<(), TableError> {
    let q = params.q() as i64;
    let children = tree.children(v);
    let f = children.len() as i64;
    debug_assert!((last as i64) < f + q, "row beyond matrix");
    for r in first..=last {
        let mut row = Vec::with_capacity(q as usize);
        for t in 1..=q {
            let idx = r as i64 - q + t; // child index, 1-based
            row.push(if (1..=f).contains(&idx) {
                tree.label(children[(idx - 1) as usize])
            } else {
                LabelSym::NULL
            });
        }
        tables.insert_q_row(v, r, row)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gram::label_tuple_fingerprint;
    use crate::index::GramKey;
    use crate::reference;
    use pqgram_tree::LabelTable;

    /// T2 of Figure 2 with Example-5 labels: a(c e f(g) c).
    fn paper_t2() -> (Tree, LabelTable, Vec<NodeId>) {
        // Build T0 = a(c b(e f) c), then apply e1, e2 to get T2, preserving
        // the paper's node identities.
        let mut lt = LabelTable::new();
        let a = lt.intern("a");
        let b = lt.intern("b");
        let c = lt.intern("c");
        let e = lt.intern("e");
        let f = lt.intern("f");
        let g = lt.intern("g");
        let mut t = Tree::with_root(a);
        let n1 = t.root();
        let n2 = t.add_child(n1, c);
        let n3 = t.add_child(n1, b);
        let n4 = t.add_child(n1, c);
        let n5 = t.add_child(n3, e);
        let n6 = t.add_child(n3, f);
        let n7 = t.next_node_id();
        // e1 = INS((n7, g), n6, 1, 0); e2 = DEL(n3).
        t.apply(EditOp::Insert {
            node: n7,
            label: g,
            parent: n6,
            k: 1,
            m: 0,
        })
        .unwrap();
        t.apply(EditOp::Delete { node: n3 }).unwrap();
        (t, lt, vec![n1, n2, n3, n4, n5, n6, n7])
    }

    fn sorted_keys(mut v: Vec<GramKey>) -> Vec<GramKey> {
        v.sort_unstable();
        v
    }

    #[test]
    fn example5_delta_plus() {
        // Δ2+ = δ(T2, ē1) ∪ δ(T2, ē2) — 9 pq-grams with the label tuples
        // listed at the end of Example 5.
        let (t2, lt, n) = paper_t2();
        let params = PQParams::new(3, 3);
        let b_label = lt.lookup("b").unwrap();
        let e1_bar = LogOp::new(EditOp::Delete { node: n[6] }, None);
        let e2_bar = LogOp::new(
            EditOp::Insert {
                node: n[2],
                label: b_label,
                parent: n[0],
                k: 2,
                m: 3,
            },
            Some(InsertAnchor::Adopted([n[4], n[5]].into())),
        );

        let mut tables = DeltaTables::new();
        assert!(accumulate_delta(&mut tables, &t2, &e1_bar, params).unwrap());
        assert!(accumulate_delta(&mut tables, &t2, &e2_bar, params).unwrap());
        tables.validate().unwrap();

        let s = |x: &str| lt.lookup(x).unwrap();
        let nl = LabelSym::NULL;
        let (a, c, e, f, g) = (s("a"), s("c"), s("e"), s("f"), s("g"));
        let expected: Vec<GramKey> = [
            vec![nl, nl, a, nl, c, e],
            vec![nl, nl, a, c, e, f],
            vec![nl, nl, a, e, f, c],
            vec![nl, nl, a, f, c, nl],
            vec![nl, a, e, nl, nl, nl],
            vec![nl, a, f, nl, nl, g],
            vec![nl, a, f, nl, g, nl],
            vec![nl, a, f, g, nl, nl],
            vec![a, f, g, nl, nl, nl],
        ]
        .into_iter()
        .map(|tup| label_tuple_fingerprint(tup, &lt))
        .collect();
        assert_eq!(sorted_keys(tables.lambda(&lt)), sorted_keys(expected));
    }

    #[test]
    fn delta_of_inapplicable_op_is_empty() {
        let (t2, lt, n) = paper_t2();
        let params = PQParams::new(3, 3);
        let mut tables = DeltaTables::new();
        // n3 is not in T2: deleting or renaming it is not applicable.
        assert!(!accumulate_delta(
            &mut tables,
            &t2,
            &LogOp::new(EditOp::Delete { node: n[2] }, None),
            params
        )
        .unwrap());
        let x = lt.lookup("g").unwrap();
        assert!(!accumulate_delta(
            &mut tables,
            &t2,
            &LogOp::new(
                EditOp::Rename {
                    node: n[2],
                    label: x
                },
                None
            ),
            params
        )
        .unwrap());
        // Inserting an already-present node is not applicable either.
        assert!(!accumulate_delta(
            &mut tables,
            &t2,
            &LogOp::new(
                EditOp::Insert {
                    node: n[6],
                    label: x,
                    parent: n[0],
                    k: 1,
                    m: 0
                },
                Some(InsertAnchor::Gap {
                    pred: None,
                    succ: Some(n[1])
                }),
            ),
            params
        )
        .unwrap());
        // An adopted run whose nodes are gone does not resolve.
        assert!(!accumulate_delta(
            &mut tables,
            &t2,
            &LogOp::new(
                EditOp::Insert {
                    node: n[2],
                    label: x,
                    parent: n[0],
                    k: 1,
                    m: 1
                },
                Some(InsertAnchor::Adopted([NodeId::from_index(40)].into())),
            ),
            params
        )
        .unwrap());
        assert!(tables.is_empty());
    }

    #[test]
    fn anchorless_insert_entry_is_an_error_not_a_panic() {
        // A hand-forged (untrusted) log entry: an applicable insert with no
        // anchor. Must surface as a structured inconsistency.
        let (t2, lt, n) = paper_t2();
        let params = PQParams::new(3, 3);
        let x = lt.lookup("g").unwrap();
        let node = NodeId::from_index(9);
        // Bypasses `LogOp::new` (which asserts the invariant) the way any
        // deserialized/forged log could: the fields are public.
        let forged = LogOp {
            op: EditOp::Insert {
                node,
                label: x,
                parent: n[0],
                k: 1,
                m: 0,
            },
            anchor: None,
        };
        let mut tables = DeltaTables::new();
        assert_eq!(
            accumulate_delta(&mut tables, &t2, &forged, params),
            Err(TableError::Inconsistency(
                node,
                "log insert carries no anchor"
            ))
        );
        assert!(tables.is_empty());
    }

    #[test]
    fn anchor_resolution_follows_identity_not_position() {
        // In T2, n7 sits at position 1 under n6. An insert entry recorded as
        // position 1 but anchored to the *gap after n7* must resolve to
        // position 2.
        let (t2, lt, n) = paper_t2();
        let params = PQParams::new(3, 3);
        let x = lt.lookup("g").unwrap();
        let entry = LogOp::new(
            EditOp::Insert {
                node: NodeId::from_index(9),
                label: x,
                parent: n[5],
                k: 1,
                m: 0,
            },
            Some(InsertAnchor::Gap {
                pred: Some(n[6]),
                succ: None,
            }),
        );
        let mut tables = DeltaTables::new();
        assert!(accumulate_delta(&mut tables, &t2, &entry, params).unwrap());
        // The window rows are those of gap position k = 2: rows 2..=3.
        let rows: Vec<u32> = tables.q_rows(n[5]).unwrap().keys().copied().collect();
        assert_eq!(rows, vec![2, 3]);
    }

    #[test]
    fn delta_matches_definition_on_defining_tree() {
        // On the tree version a log entry was recorded against, identity and
        // positional semantics coincide and δ(T_i, ē_i) = P_i \ P_{i-1}
        // (Definition 4).
        use pqgram_tree::generate::{random_tree, RandomTreeConfig};
        use pqgram_tree::{record_script, ScriptConfig};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        for seed in 0..30u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut lt = LabelTable::new();
            let mut tree = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(40, 4));
            let alphabet: Vec<_> = lt.iter().map(|(s, _)| s).collect();
            let (log, _) = record_script(&mut rng, &mut tree, &ScriptConfig::new(8, alphabet));
            let params = PQParams::new(3, 3);
            let versions = reference::rewind_versions(&tree, &log);
            for (i, entry) in log.ops().iter().enumerate() {
                // Entry i (ē_{i+1}) is defined on version i+1.
                let defining = &versions[i + 1];
                let mut tables = DeltaTables::new();
                let applied = accumulate_delta(&mut tables, defining, entry, params).unwrap();
                assert!(
                    applied,
                    "seed {seed}: entry must apply on its defining tree"
                );
                let profile = reference::delta_by_definition(defining, entry.op, params)
                    .expect("applicable on defining tree");
                let expected: Vec<GramKey> =
                    profile.iter().map(|g| g.tuple_fingerprint(&lt)).collect();
                assert_eq!(
                    sorted_keys(tables.lambda(&lt)),
                    sorted_keys(expected),
                    "seed {seed} entry {i} op {:?}",
                    entry.op
                );
            }
        }
    }

    #[test]
    fn p_entry_of_pads_with_nulls() {
        let (t2, lt, n) = paper_t2();
        let params = PQParams::new(4, 2);
        let entry = p_entry_of(&t2, n[6], params); // n7, depth 2
        let nl = LabelSym::NULL;
        assert_eq!(
            entry.ppart,
            vec![
                nl,
                lt.lookup("a").unwrap(),
                lt.lookup("f").unwrap(),
                lt.lookup("g").unwrap()
            ]
        );
        assert_eq!(entry.parent, Some(n[5]));
        assert_eq!(entry.sib_pos, 1);
        let root_entry = p_entry_of(&t2, n[0], params);
        assert_eq!(root_entry.parent, None);
        assert_eq!(root_entry.sib_pos, 0);
    }
}
