//! Approximate joins over forests — the application scenario of Guha et al.
//! (the paper's references [7, 8]) that motivates indexed approximate
//! lookups: find all pairs `(T₁ ∈ F₁, T₂ ∈ F₂)` with
//! `dist(T₁, T₂) < τ`.
//!
//! The naive join computes `|F₁| · |F₂|` distances. This module prunes with
//! two classic filters derived from the bag-overlap form of the pq-gram
//! distance `d = 1 − 2·|I₁ ∩ I₂| / (|I₁| + |I₂|)`:
//!
//! * **size filter** — `|I₁ ∩ I₂| ≤ min(|I₁|, |I₂|)` implies
//!   `d ≥ 1 − 2·min / (|I₁| + |I₂|)`; for `d < τ` the bag sizes must satisfy
//!   `(1 − τ)·(|I₁| + |I₂|) < 2·min(|I₁|, |I₂|)` — wildly different sizes
//!   can never join;
//! * **candidate generation** — an inverted index (gram → posting list)
//!   over the smaller forest; only trees sharing at least one gram with the
//!   probe can have `d < 1`, and for `τ ≤ 1` everything else is skipped
//!   without touching it.
//!
//! Both filters are *lossless*: [`join`] returns exactly the pairs the
//! nested-loop join would. Two degenerate regions need care to keep that
//! guarantee:
//!
//! * a pair of *empty* bags has distance 0 (they are indistinguishable), so
//!   for `τ > 0` every empty×empty pair joins even though no gram ever
//!   surfaces it as a candidate — [`join`] enumerates those pairs
//!   explicitly;
//! * for `τ > 1` *every* pair joins (the distance never exceeds 1), so the
//!   filters cannot prune anything and [`join`] degenerates to the
//!   exhaustive scan.

use crate::index::{pq_distance, ForestIndex, GramKey, ParamsMismatch, TreeId, TreeIndex};
use pqgram_tree::{FxHashMap, FxHashSet};

/// One join result pair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JoinPair {
    /// Tree from the left forest.
    pub left: TreeId,
    /// Tree from the right forest.
    pub right: TreeId,
    /// Their pq-gram distance.
    pub distance: f64,
}

/// An inverted index over a forest: gram fingerprint → posting list of
/// `(tree, multiplicity)`.
///
/// Built once per join (or maintained alongside the forest). Because the
/// postings carry multiplicities, a probe can accumulate its exact bag
/// intersection with *every* candidate in one merge pass over its own
/// grams' posting lists — no candidate index is ever fetched.
#[derive(Default, Debug)]
pub struct InvertedIndex {
    postings: FxHashMap<GramKey, Vec<Posting>>,
    totals: FxHashMap<TreeId, u64>,
}

/// One posting-list entry: a tree containing the gram, the gram's
/// multiplicity in that tree, and the tree's bag size. Carrying the total
/// here makes [`InvertedIndex::intersections`] self-contained: the distance
/// of a candidate is computable without any fallible side lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Posting {
    /// The tree containing the gram.
    pub tree: TreeId,
    /// Multiplicity of the gram in the tree's bag.
    pub count: u32,
    /// Bag size `|I(tree)|`.
    pub total: u64,
}

/// Accumulated overlap of a probe with one candidate tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Overlap {
    /// Bag intersection `|I(probe) ∩ I(cand)|`.
    pub shared: u64,
    /// Candidate bag size `|I(cand)|`.
    pub total: u64,
}

impl InvertedIndex {
    /// Builds the inverted index of a forest.
    pub fn build(forest: &ForestIndex) -> Self {
        let mut inv = InvertedIndex::default();
        for (id, index) in forest.iter() {
            inv.add(id, index);
        }
        inv
    }

    /// Adds one tree's index.
    pub fn add(&mut self, id: TreeId, index: &TreeIndex) {
        let total = index.total();
        for (gram, count) in index.iter() {
            self.postings.entry(gram).or_default().push(Posting {
                tree: id,
                count,
                total,
            });
        }
        self.totals.insert(id, total);
    }

    /// Trees sharing at least one distinct gram with `probe`, deduplicated
    /// and sorted.
    pub fn candidates(&self, probe: &TreeIndex) -> Vec<TreeId> {
        let mut seen: FxHashSet<TreeId> = FxHashSet::default();
        for (gram, _) in probe.iter() {
            if let Some(list) = self.postings.get(&gram) {
                seen.extend(list.iter().map(|p| p.tree));
            }
        }
        let mut out: Vec<TreeId> = seen.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Exact bag overlaps `|I(probe) ∩ I(cand)|` (with the candidate's bag
    /// size) for every candidate sharing at least one gram with `probe`,
    /// in one merge pass over the probe's grams' posting lists.
    pub fn intersections(&self, probe: &TreeIndex) -> FxHashMap<TreeId, Overlap> {
        let mut acc: FxHashMap<TreeId, Overlap> = FxHashMap::default();
        for (gram, probe_count) in probe.iter() {
            if let Some(list) = self.postings.get(&gram) {
                for posting in list {
                    let overlap = acc.entry(posting.tree).or_insert(Overlap {
                        shared: 0,
                        total: posting.total,
                    });
                    overlap.shared += u64::from(probe_count.min(posting.count));
                }
            }
        }
        acc
    }

    /// Bag size of one indexed tree.
    pub fn total(&self, id: TreeId) -> Option<u64> {
        self.totals.get(&id).copied()
    }

    /// Number of distinct grams indexed.
    pub fn distinct_grams(&self) -> usize {
        self.postings.len()
    }
}

/// The size filter: can two bags of these sizes possibly be closer than
/// `tau`?
#[inline]
pub fn size_filter(total_a: u64, total_b: u64, tau: f64) -> bool {
    let min = total_a.min(total_b) as f64;
    let sum = (total_a + total_b) as f64;
    if sum == 0.0 {
        return true; // both empty: distance 0
    }
    1.0 - 2.0 * min / sum < tau
}

/// The pq-gram distance from an accumulated bag overlap:
/// `1 − 2·shared / (total_a + total_b)`, with two empty bags at distance 0.
/// This is [`pq_distance`] expressed over the merge-join quantities, shared
/// by the in-memory join and the persistent store's candidate-merge lookup
/// so both paths compute bit-identical distances.
#[inline]
pub fn overlap_distance(shared: u64, total_a: u64, total_b: u64) -> f64 {
    let denom = total_a + total_b;
    if denom == 0 {
        return 0.0;
    }
    1.0 - 2.0 * shared as f64 / denom as f64
}

/// Statistics of one join run (how much the filters pruned).
#[derive(Clone, Copy, Debug, Default)]
pub struct JoinStats {
    /// `|F₁| · |F₂|`: pairs a nested-loop join would examine.
    pub pairs_naive: u64,
    /// Pairs surviving candidate generation, plus the explicitly enumerated
    /// empty×empty pairs. For `τ > 1` the filters prune nothing and this
    /// equals `pairs_naive`.
    pub pairs_candidates: u64,
    /// Pairs whose distance was actually computed (candidates surviving the
    /// size filter, plus the enumerated empty×empty pairs).
    pub pairs_verified: u64,
    /// Result pairs below `tau`.
    pub pairs_joined: u64,
    /// Which plan ran: `true` when candidate generation + size filter
    /// pruned the pair space, `false` when `τ > 1` forced the exhaustive
    /// nested scan (the filters cannot prune — a production cliff callers
    /// should see, not guess).
    pub used_filter: bool,
}

/// Approximate join: all pairs across the two forests with pq-gram distance
/// below `tau`. Returns the pairs (sorted by distance) and pruning stats.
///
/// Exact: identical results to the nested-loop join, typically at a small
/// fraction of the distance computations. The two regions the inverted
/// index cannot see are handled separately (see the module docs): for
/// `τ > 1` the join is exhaustive, and for `0 < τ ≤ 1` the empty×empty
/// pairs (distance 0) are enumerated directly.
///
/// # Errors
///
/// Returns [`ParamsMismatch`] if the `τ > 1` exhaustive region encounters
/// trees indexed under different `PQParams` (the filtered region never
/// compares raw bags, so it cannot observe a mismatch).
pub fn join(
    left: &ForestIndex,
    right: &ForestIndex,
    tau: f64,
) -> Result<(Vec<JoinPair>, JoinStats), ParamsMismatch> {
    let mut stats = JoinStats {
        pairs_naive: left.len() as u64 * right.len() as u64,
        ..Default::default()
    };
    let mut pairs = Vec::new();
    if tau > 1.0 {
        // Every pair has distance <= 1 < tau: no filter can prune, so the
        // inverted index would only add overhead (and misses the
        // zero-overlap pairs). Degenerate to the exhaustive scan.
        for (l, li) in left.iter() {
            for (r, ri) in right.iter() {
                pairs.push(JoinPair {
                    left: l,
                    right: r,
                    distance: pq_distance(li, ri)?,
                });
            }
        }
        stats.pairs_candidates = stats.pairs_naive;
        stats.pairs_verified = stats.pairs_naive;
    } else {
        stats.used_filter = true;
        // Invert the smaller side, probe with the larger.
        let invert_left = left.len() <= right.len();
        let (build_side, probe_side) = if invert_left {
            (left, right)
        } else {
            (right, left)
        };
        let inverted = InvertedIndex::build(build_side);

        for (probe_id, probe_index) in probe_side.iter() {
            let intersections = inverted.intersections(probe_index);
            stats.pairs_candidates += intersections.len() as u64;
            for (cand, overlap) in intersections {
                if !size_filter(probe_index.total(), overlap.total, tau) {
                    continue;
                }
                stats.pairs_verified += 1;
                let distance = overlap_distance(overlap.shared, probe_index.total(), overlap.total);
                if distance < tau {
                    let (l, r) = if invert_left {
                        (cand, probe_id)
                    } else {
                        (probe_id, cand)
                    };
                    pairs.push(JoinPair {
                        left: l,
                        right: r,
                        distance,
                    });
                }
            }
        }
        // Empty bags share no gram with anything, so candidate generation
        // never surfaces them — yet two empty bags are at distance 0 and
        // join for every tau > 0.
        if tau > 0.0 {
            let left_empty: Vec<TreeId> = left
                .iter()
                .filter(|(_, i)| i.total() == 0)
                .map(|(id, _)| id)
                .collect();
            let right_empty: Vec<TreeId> = right
                .iter()
                .filter(|(_, i)| i.total() == 0)
                .map(|(id, _)| id)
                .collect();
            for &l in &left_empty {
                for &r in &right_empty {
                    stats.pairs_candidates += 1;
                    stats.pairs_verified += 1;
                    pairs.push(JoinPair {
                        left: l,
                        right: r,
                        distance: 0.0,
                    });
                }
            }
        }
    }
    stats.pairs_joined = pairs.len() as u64;
    pairs.sort_by(|a, b| {
        a.distance
            .total_cmp(&b.distance)
            .then_with(|| a.left.cmp(&b.left))
            .then_with(|| a.right.cmp(&b.right))
    });
    Ok((pairs, stats))
}

/// [`join`] with candidate verification fanned out over `threads` scoped
/// workers through [`crate::par`]. The inverted index is built once and
/// shared read-only; each worker probes a contiguous chunk of the probe
/// side and verifies its own candidates (size filter + exact distance).
/// Per-worker pair lists and pruning counters merge in chunk order, and the
/// final sort orders pairs exactly as [`join`] does — the result is
/// identical to the serial join for every thread count.
///
/// # Errors
///
/// Returns [`ParamsMismatch`] under the same conditions as [`join`].
pub fn join_parallel(
    left: &ForestIndex,
    right: &ForestIndex,
    tau: f64,
    threads: usize,
) -> Result<(Vec<JoinPair>, JoinStats), ParamsMismatch> {
    if threads <= 1 {
        return join(left, right, tau);
    }
    let mut stats = JoinStats {
        pairs_naive: left.len() as u64 * right.len() as u64,
        ..Default::default()
    };
    let mut pairs = Vec::new();
    if tau > 1.0 {
        // Exhaustive region: fan the left side out, scan the right per probe.
        let probes: Vec<(TreeId, &TreeIndex)> = left.iter().collect();
        for part in crate::par::map_chunks(&probes, threads, |part| {
            let mut out = Vec::new();
            for &(l, li) in part {
                for (r, ri) in right.iter() {
                    out.push(JoinPair {
                        left: l,
                        right: r,
                        distance: pq_distance(li, ri)?,
                    });
                }
            }
            Ok::<_, ParamsMismatch>(out)
        }) {
            pairs.extend(part?);
        }
        stats.pairs_candidates = stats.pairs_naive;
        stats.pairs_verified = stats.pairs_naive;
    } else {
        stats.used_filter = true;
        let invert_left = left.len() <= right.len();
        let (build_side, probe_side) = if invert_left {
            (left, right)
        } else {
            (right, left)
        };
        let inverted = InvertedIndex::build(build_side);
        let probes: Vec<(TreeId, &TreeIndex)> = probe_side.iter().collect();
        for (part_pairs, candidates, verified) in crate::par::map_chunks(&probes, threads, |part| {
            let mut out = Vec::new();
            let mut candidates = 0u64;
            let mut verified = 0u64;
            for &(probe_id, probe_index) in part {
                let intersections = inverted.intersections(probe_index);
                candidates += intersections.len() as u64;
                for (cand, overlap) in intersections {
                    if !size_filter(probe_index.total(), overlap.total, tau) {
                        continue;
                    }
                    verified += 1;
                    let distance =
                        overlap_distance(overlap.shared, probe_index.total(), overlap.total);
                    if distance < tau {
                        let (l, r) = if invert_left {
                            (cand, probe_id)
                        } else {
                            (probe_id, cand)
                        };
                        pairs_push(&mut out, l, r, distance);
                    }
                }
            }
            (out, candidates, verified)
        }) {
            pairs.extend(part_pairs);
            stats.pairs_candidates += candidates;
            stats.pairs_verified += verified;
        }
        if tau > 0.0 {
            // Same degenerate empty×empty enumeration as the serial join.
            let left_empty: Vec<TreeId> = left
                .iter()
                .filter(|(_, i)| i.total() == 0)
                .map(|(id, _)| id)
                .collect();
            let right_empty: Vec<TreeId> = right
                .iter()
                .filter(|(_, i)| i.total() == 0)
                .map(|(id, _)| id)
                .collect();
            for &l in &left_empty {
                for &r in &right_empty {
                    stats.pairs_candidates += 1;
                    stats.pairs_verified += 1;
                    pairs_push(&mut pairs, l, r, 0.0);
                }
            }
        }
    }
    stats.pairs_joined = pairs.len() as u64;
    pairs.sort_by(|a, b| {
        a.distance
            .total_cmp(&b.distance)
            .then_with(|| a.left.cmp(&b.left))
            .then_with(|| a.right.cmp(&b.right))
    });
    Ok((pairs, stats))
}

fn pairs_push(out: &mut Vec<JoinPair>, left: TreeId, right: TreeId, distance: f64) {
    out.push(JoinPair {
        left,
        right,
        distance,
    });
}

/// Reference nested-loop join (used by tests and benchmarks).
///
/// # Errors
///
/// Returns [`ParamsMismatch`] when two trees were indexed under different
/// `PQParams`.
pub fn join_nested_loop(
    left: &ForestIndex,
    right: &ForestIndex,
    tau: f64,
) -> Result<Vec<JoinPair>, ParamsMismatch> {
    let mut pairs = Vec::new();
    for (l, li) in left.iter() {
        for (r, ri) in right.iter() {
            let distance = pq_distance(li, ri)?;
            if distance < tau {
                pairs.push(JoinPair {
                    left: l,
                    right: r,
                    distance,
                });
            }
        }
    }
    pairs.sort_by(|a, b| {
        a.distance
            .total_cmp(&b.distance)
            .then_with(|| a.left.cmp(&b.left))
            .then_with(|| a.right.cmp(&b.right))
    });
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::build_index;
    use crate::params::PQParams;
    use pqgram_tree::generate::{random_tree, RandomTreeConfig};
    use pqgram_tree::{record_script, LabelTable, ScriptConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two forests where each right tree is a noisy copy of a left tree.
    fn forests(seed: u64, n: usize) -> (ForestIndex, ForestIndex, LabelTable) {
        let params = PQParams::new(2, 3);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut lt = LabelTable::new();
        let mut left = ForestIndex::new();
        let mut right = ForestIndex::new();
        for i in 0..n as u64 {
            let tree = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(60, 6));
            left.insert(TreeId(i), build_index(&tree, &lt, params));
            let mut noisy = tree.clone();
            let alphabet: Vec<_> = lt.iter().map(|(s, _)| s).collect();
            record_script(&mut rng, &mut noisy, &ScriptConfig::new(3, alphabet));
            right.insert(TreeId(1000 + i), build_index(&noisy, &lt, params));
        }
        (left, right, lt)
    }

    #[test]
    fn join_matches_nested_loop() -> Result<(), ParamsMismatch> {
        for seed in 0..5 {
            let (left, right, _) = forests(seed, 25);
            for tau in [0.2, 0.5, 0.8] {
                let (fast, stats) = join(&left, &right, tau)?;
                let slow = join_nested_loop(&left, &right, tau)?;
                assert_eq!(fast, slow, "seed {seed} tau {tau}");
                assert!(stats.pairs_verified <= stats.pairs_naive);
                assert_eq!(stats.pairs_joined, fast.len() as u64);
                assert!(stats.used_filter, "tau <= 1 runs the filtered plan");
            }
        }
        Ok(())
    }

    #[test]
    fn join_finds_the_noisy_copies() -> Result<(), ParamsMismatch> {
        let (left, right, _) = forests(9, 30);
        let (pairs, _) = join(&left, &right, 0.5)?;
        // Every left tree joins with (at least) its own noisy copy.
        for i in 0..30u64 {
            assert!(
                pairs
                    .iter()
                    .any(|p| p.left == TreeId(i) && p.right == TreeId(1000 + i)),
                "pair {i} missing"
            );
        }
        Ok(())
    }

    #[test]
    fn filters_prune_on_heterogeneous_collections() -> Result<(), ParamsMismatch> {
        // Clusters with disjoint vocabularies and varied sizes: candidate
        // generation and the size filter both prune.
        let params = PQParams::new(2, 3);
        let mut rng = StdRng::seed_from_u64(11);
        let mut left = ForestIndex::new();
        let mut right = ForestIndex::new();
        for cluster in 0..4usize {
            let mut lt = LabelTable::new();
            for i in 0..10u64 {
                let nodes = 20 + 60 * cluster; // size varies across clusters
                let mut cfg = RandomTreeConfig::new(nodes, 5);
                cfg.label_prefix = ["alpha", "beta", "gamma", "delta"][cluster];
                let tree = random_tree(&mut rng, &mut lt, &cfg);
                let id = (cluster as u64) * 100 + i;
                left.insert(TreeId(id), build_index(&tree, &lt, params));
                right.insert(TreeId(5000 + id), build_index(&tree, &lt, params));
            }
        }
        let (pairs, stats) = join(&left, &right, 0.3)?;
        assert_eq!(stats.pairs_naive, 1600);
        assert!(
            stats.pairs_verified < stats.pairs_naive / 2,
            "expected >2x pruning, verified {} of {}",
            stats.pairs_verified,
            stats.pairs_naive
        );
        assert_eq!(join_nested_loop(&left, &right, 0.3)?, pairs);
        // Every tree joins with its identical twin.
        assert!(pairs.len() >= 40);
        Ok(())
    }

    #[test]
    fn size_filter_is_sound_and_useful() {
        // Sound: never prunes a pair that could join.
        assert!(size_filter(100, 100, 0.1));
        assert!(size_filter(0, 0, 0.5));
        // A 100-gram tree and a 10-gram tree have distance >= 1 - 20/110.
        assert!(!size_filter(100, 10, 0.5));
        assert!(size_filter(100, 95, 0.2));
        // Boundary: d_min = 1 - 2*50/150 = 1/3.
        assert!(!size_filter(100, 50, 1.0 / 3.0));
        assert!(size_filter(100, 50, 0.34));
    }

    #[test]
    fn empty_forests() -> Result<(), ParamsMismatch> {
        let empty = ForestIndex::new();
        let (pairs, stats) = join(&empty, &empty, 0.5)?;
        assert!(pairs.is_empty());
        assert_eq!(stats.pairs_naive, 0);
        Ok(())
    }

    #[test]
    fn empty_trees_join_each_other() -> Result<(), ParamsMismatch> {
        // An empty tree index (e.g. a tree too small to yield any gram bag
        // under the store's conventions) is at distance 0 from any other
        // empty one — the pair must join for every tau > 0 even though no
        // gram ever surfaces it as a candidate.
        let params = PQParams::new(2, 3);
        let (mut left, mut right, _) = forests(17, 4);
        left.insert(TreeId(50), TreeIndex::empty(params));
        right.insert(TreeId(60), TreeIndex::empty(params));
        right.insert(TreeId(61), TreeIndex::empty(params));
        for tau in [0.5, 1.0] {
            let (fast, stats) = join(&left, &right, tau)?;
            let slow = join_nested_loop(&left, &right, tau)?;
            assert_eq!(fast, slow, "tau {tau}");
            for r in [60, 61] {
                assert!(
                    fast.iter()
                        .any(|p| p.left == TreeId(50) && p.right == TreeId(r) && p.distance == 0.0),
                    "empty pair (50, {r}) missing at tau {tau}"
                );
            }
            assert_eq!(stats.pairs_joined, fast.len() as u64);
            assert!(stats.pairs_verified >= 2, "empty pairs count as verified");
        }
        // tau = 0 admits nothing, not even identical trees.
        let (none, _) = join(&left, &right, 0.0)?;
        assert_eq!(none, join_nested_loop(&left, &right, 0.0)?);
        assert!(none.is_empty());
        Ok(())
    }

    #[test]
    fn tau_above_one_joins_every_pair() -> Result<(), ParamsMismatch> {
        // Distances never exceed 1, so tau > 1 joins all pairs — including
        // vocabulary-disjoint ones with zero gram overlap that the inverted
        // index cannot surface.
        let params = PQParams::new(2, 3);
        let mut rng = StdRng::seed_from_u64(23);
        let mut left = ForestIndex::new();
        let mut right = ForestIndex::new();
        let mut lt = LabelTable::new();
        for (side, forest) in [("alpha", &mut left), ("beta", &mut right)] {
            for i in 0..6u64 {
                let mut cfg = RandomTreeConfig::new(25, 4);
                cfg.label_prefix = side;
                let tree = random_tree(&mut rng, &mut lt, &cfg);
                forest.insert(TreeId(i), build_index(&tree, &lt, params));
            }
        }
        let (fast, stats) = join(&left, &right, 1.2)?;
        let slow = join_nested_loop(&left, &right, 1.2)?;
        assert_eq!(fast, slow);
        assert_eq!(fast.len() as u64, stats.pairs_naive, "every pair joins");
        assert_eq!(stats.pairs_candidates, stats.pairs_naive);
        assert_eq!(stats.pairs_verified, stats.pairs_naive);
        assert!(!stats.used_filter, "tau > 1 runs the exhaustive plan");
        // At tau = 1.0 the disjoint pairs (distance exactly 1) drop out.
        let (at_one, at_one_stats) = join(&left, &right, 1.0)?;
        assert_eq!(at_one, join_nested_loop(&left, &right, 1.0)?);
        assert!(at_one.len() < fast.len());
        assert!(at_one_stats.used_filter);
        Ok(())
    }

    #[test]
    fn parallel_join_matches_serial() -> Result<(), ParamsMismatch> {
        let params = PQParams::new(2, 3);
        let (mut left, mut right, _) = forests(29, 20);
        // Include the degenerate regions: empty bags on both sides.
        left.insert(TreeId(700), TreeIndex::empty(params));
        right.insert(TreeId(800), TreeIndex::empty(params));
        for tau in [0.0, 0.3, 0.8, 1.0, 1.2] {
            let (serial_pairs, serial_stats) = join(&left, &right, tau)?;
            for threads in [1, 2, 3, 8, 64] {
                let (pairs, stats) = join_parallel(&left, &right, tau, threads)?;
                assert_eq!(pairs, serial_pairs, "tau {tau} threads {threads}");
                assert_eq!(
                    stats.pairs_candidates, serial_stats.pairs_candidates,
                    "tau {tau} threads {threads}"
                );
                assert_eq!(stats.pairs_verified, serial_stats.pairs_verified);
                assert_eq!(stats.pairs_joined, serial_stats.pairs_joined);
                assert_eq!(stats.pairs_naive, serial_stats.pairs_naive);
                assert_eq!(stats.used_filter, serial_stats.used_filter);
            }
        }
        Ok(())
    }

    #[test]
    fn inverted_index_candidates_share_grams() {
        let (left, _, lt) = forests(13, 10);
        let inv = InvertedIndex::build(&left);
        assert!(inv.distinct_grams() > 0);
        let _ = lt;
        // A probe equal to one member must list that member as candidate.
        let member = left.get(TreeId(3)).unwrap();
        let cands = inv.candidates(member);
        assert!(cands.contains(&TreeId(3)));
    }
}
