//! The pq-gram index (Definition 3), the pq-gram distance, and approximate
//! lookups in forests.
//!
//! The index of a tree is the **bag** of label-tuples of its pq-grams,
//! stored as fixed-width fingerprints with multiplicities — exactly the
//! relation `(treeId, pqg, cnt)` of Figure 4, with [`ForestIndex`] playing
//! the role of the relation over a whole forest.

use crate::gram::label_tuple_fingerprint;
use crate::params::PQParams;
use crate::profile::for_each_gram;
use pqgram_tree::fingerprint::{combine, Fingerprint, TUPLE_SEED};
use pqgram_tree::{FxHashMap, LabelTable, Tree};
use std::fmt;

/// Fingerprint of a pq-gram label-tuple — the `pqg` column of Figure 4.
pub type GramKey = Fingerprint;

/// Identifier of a tree within a forest — the `treeId` column of Figure 4.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TreeId(pub u64);

impl fmt::Debug for TreeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// The pq-gram index `I(T)` of one tree: a bag of gram fingerprints.
#[derive(Clone, PartialEq, Eq)]
pub struct TreeIndex {
    params: PQParams,
    counts: FxHashMap<GramKey, u32>,
    total: u64,
}

impl TreeIndex {
    /// An empty index (no grams) for the given parameters.
    pub fn empty(params: PQParams) -> Self {
        TreeIndex {
            params,
            counts: FxHashMap::default(),
            total: 0,
        }
    }

    /// The pq-gram parameters this index was built with.
    #[inline]
    pub fn params(&self) -> PQParams {
        self.params
    }

    /// Bag cardinality `|I(T)|` (number of pq-grams, duplicates counted).
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct label-tuples.
    #[inline]
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Multiplicity of one gram fingerprint.
    #[inline]
    pub fn count(&self, key: GramKey) -> u32 {
        self.counts.get(&key).copied().unwrap_or(0)
    }

    /// Iterates `(fingerprint, multiplicity)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (GramKey, u32)> + '_ {
        self.counts.iter().map(|(&k, &c)| (k, c))
    }

    /// Adds one occurrence of a gram.
    pub fn add(&mut self, key: GramKey) {
        *self.counts.entry(key).or_insert(0) += 1;
        self.total += 1;
    }

    /// Adds `n` occurrences of a gram in one step — `O(1)` instead of the
    /// `O(n)` loop of repeated [`TreeIndex::add`]. Reconstructing an index
    /// from stored `(gram, count)` rows is `O(distinct)` with this.
    pub fn add_n(&mut self, key: GramKey, n: u32) {
        if n == 0 {
            return;
        }
        *self.counts.entry(key).or_insert(0) += n;
        self.total += u64::from(n);
    }

    /// Removes one occurrence; returns `false` if the gram was absent
    /// (the index is left unchanged in that case).
    pub fn remove(&mut self, key: GramKey) -> bool {
        match self.counts.get_mut(&key) {
            Some(c) if *c > 1 => {
                *c -= 1;
            }
            Some(_) => {
                self.counts.remove(&key);
            }
            None => return false,
        }
        self.total -= 1;
        true
    }

    /// Size of the index in bytes under the compact on-disk encoding
    /// (varint fingerprint + varint count per distinct gram). Used by the
    /// index-size experiment (Figure 14, left).
    pub fn encoded_size(&self) -> usize {
        fn varint_len(mut v: u64) -> usize {
            let mut n = 1;
            while v >= 0x80 {
                v >>= 7;
                n += 1;
            }
            n
        }
        self.counts
            .iter()
            .map(|(&k, &c)| varint_len(k) + varint_len(c as u64))
            .sum()
    }

    /// Structural invariant audit: every stored multiplicity is positive
    /// and the cached bag cardinality equals the sum of multiplicities.
    /// Returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if let Some((&key, _)) = self.counts.iter().find(|(_, &c)| c == 0) {
            return Err(format!("gram {key:#x} stored with zero multiplicity"));
        }
        let sum: u64 = self.counts.values().map(|&c| u64::from(c)).sum();
        if sum != self.total {
            return Err(format!(
                "cached total {} disagrees with multiplicity sum {sum}",
                self.total
            ));
        }
        Ok(())
    }

    /// Audits this index against the tree it claims to describe: internal
    /// consistency ([`Self::validate`]), bag cardinality equal to the
    /// profile size `|P(T)|`, and gram-for-gram agreement with a fresh
    /// build. This is the invariant incremental maintenance must preserve
    /// (Theorem 3); property tests call it after every update batch.
    pub fn validate_against(&self, tree: &Tree, labels: &LabelTable) -> Result<(), String> {
        self.validate()?;
        let expected_total = crate::profile::gram_count(tree, self.params);
        if self.total != expected_total {
            return Err(format!(
                "bag cardinality {} != profile size {expected_total}",
                self.total
            ));
        }
        let fresh = build_index(tree, labels, self.params);
        for (key, count) in fresh.iter() {
            let have = self.count(key);
            if have != count {
                return Err(format!(
                    "gram {key:#x}: multiplicity {have}, fresh build has {count}"
                ));
            }
        }
        if self.distinct() != fresh.distinct() {
            return Err(format!(
                "{} distinct grams, fresh build has {}",
                self.distinct(),
                fresh.distinct()
            ));
        }
        Ok(())
    }
}

impl fmt::Debug for TreeIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TreeIndex")
            .field("params", &self.params)
            .field("distinct", &self.distinct())
            .field("total", &self.total)
            .finish()
    }
}

/// Builds the pq-gram index of `tree` in one streaming pass (no profile is
/// materialized).
pub fn build_index(tree: &Tree, labels: &LabelTable, params: PQParams) -> TreeIndex {
    let mut index = TreeIndex::empty(params);
    for_each_gram(tree, params, |ppart, qpart| {
        let mut acc = TUPLE_SEED;
        for e in ppart.iter().chain(qpart) {
            acc = combine(acc, labels.fingerprint(e.label()));
        }
        index.add(acc);
    });
    index
}

/// Indexes a whole forest, fanning the per-tree work out over `threads`
/// scoped workers through [`crate::par`] (index construction is
/// embarrassingly parallel across documents — the dominant cost of initial
/// indexing, Figure 13 left). Each worker profiles its chunk of trees into
/// a private buffer; the buffers are merged in chunk order at the end, so
/// the result is identical to the serial build for every thread count.
pub fn build_forest_index_parallel(
    trees: &[(TreeId, &Tree)],
    labels: &LabelTable,
    params: PQParams,
    threads: usize,
) -> ForestIndex {
    let mut forest = ForestIndex::new();
    for (id, index) in crate::par::map(trees, threads, |&(id, tree)| {
        (id, build_index(tree, labels, params))
    }) {
        forest.insert(id, index);
    }
    forest
}

/// Builds the index directly from a label-tuple iterator — used by tests
/// and by the reference implementations.
pub fn index_from_tuples<I>(tuples: I, labels: &LabelTable, params: PQParams) -> TreeIndex
where
    I: IntoIterator,
    I::Item: IntoIterator<Item = pqgram_tree::LabelSym>,
{
    let mut index = TreeIndex::empty(params);
    for tuple in tuples {
        index.add(label_tuple_fingerprint(tuple, labels));
    }
    index
}

/// Two indexes built with different [`PQParams`] were compared.
///
/// Distances across parameterizations are meaningless — the bags draw from
/// different gram shapes — so the comparison is rejected as an invalid
/// argument instead of computed, mirroring the `check_params` guard of the
/// persistent stores. Indexes can come from untrusted files, so this is a
/// data condition, not a panic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParamsMismatch {
    /// Parameters of the query (left-hand) index.
    pub got: PQParams,
    /// Parameters of the indexed (right-hand) side.
    pub expected: PQParams,
}

impl fmt::Display for ParamsMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid argument: parameter mismatch: got {:?}, index built with {:?}",
            self.got, self.expected
        )
    }
}

impl std::error::Error for ParamsMismatch {}

/// The pq-gram distance (Section 3.2):
/// `dist(T, T') = 1 − 2·|I(T) ∩ I(T')| / |I(T) ⊎ I(T')|`,
/// with bag intersection and bag union. Ranges over `[0, 1]`; `0` for trees
/// with identical indexes, `1` for trees sharing no pq-grams. Two *empty*
/// indexes are at distance `0`: with nothing in either bag the trees are
/// indistinguishable under these parameters.
///
/// # Errors
///
/// Returns [`ParamsMismatch`] if the indexes were built with different
/// [`PQParams`]. The check precedes every other code path, including the
/// empty-bags shortcut: "both empty, distance 0" would silently paper over
/// a caller mixing parameterizations.
pub fn pq_distance(a: &TreeIndex, b: &TreeIndex) -> Result<f64, ParamsMismatch> {
    if a.params != b.params {
        return Err(ParamsMismatch {
            got: a.params,
            expected: b.params,
        });
    }
    let denominator = a.total + b.total;
    if denominator == 0 {
        return Ok(0.0);
    }
    // Iterate the smaller side.
    let (small, large) = if a.counts.len() <= b.counts.len() {
        (a, b)
    } else {
        (b, a)
    };
    let mut intersection = 0u64;
    for (&key, &c) in &small.counts {
        intersection += c.min(large.count(key)) as u64;
    }
    Ok(1.0 - 2.0 * intersection as f64 / denominator as f64)
}

/// One approximate-lookup result.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LookupHit {
    /// The matching tree.
    pub tree_id: TreeId,
    /// Its pq-gram distance to the query.
    pub distance: f64,
}

/// The pq-gram index of a forest `F = {T_1, …, T_N}` — the persistent
/// relation of Figure 4, kept per tree for distance computation.
#[derive(Clone, Debug, Default)]
pub struct ForestIndex {
    trees: FxHashMap<TreeId, TreeIndex>,
}

impl ForestIndex {
    /// An empty forest index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of indexed trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// True if no tree is indexed.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Inserts (or replaces) the index of `id`.
    pub fn insert(&mut self, id: TreeId, index: TreeIndex) -> Option<TreeIndex> {
        self.trees.insert(id, index)
    }

    /// Removes a tree's index.
    pub fn remove(&mut self, id: TreeId) -> Option<TreeIndex> {
        self.trees.remove(&id)
    }

    /// The index of one tree.
    pub fn get(&self, id: TreeId) -> Option<&TreeIndex> {
        self.trees.get(&id)
    }

    /// Mutable access (for incremental maintenance of a member tree).
    pub fn get_mut(&mut self, id: TreeId) -> Option<&mut TreeIndex> {
        self.trees.get_mut(&id)
    }

    /// Iterates `(id, index)` in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (TreeId, &TreeIndex)> {
        self.trees.iter().map(|(&id, idx)| (id, idx))
    }

    /// The approximate lookup of Section 3.2: all trees whose pq-gram
    /// distance to `query` is below `tau`, sorted by ascending distance
    /// (ties by id). Fails with [`ParamsMismatch`] if the query was built
    /// with different parameters than the forest members.
    pub fn lookup(&self, query: &TreeIndex, tau: f64) -> Result<Vec<LookupHit>, ParamsMismatch> {
        let mut hits: Vec<LookupHit> = Vec::new();
        for (&tree_id, index) in &self.trees {
            let distance = pq_distance(query, index)?;
            if distance < tau {
                hits.push(LookupHit { tree_id, distance });
            }
        }
        hits.sort_by(|a, b| {
            a.distance
                .total_cmp(&b.distance)
                .then_with(|| a.tree_id.cmp(&b.tree_id))
        });
        Ok(hits)
    }

    /// The `k` nearest trees to `query` by pq-gram distance (ascending;
    /// ties by id). Unlike [`ForestIndex::lookup`] there is no threshold —
    /// useful for "find the best matches" interfaces.
    pub fn lookup_top_k(
        &self,
        query: &TreeIndex,
        k: usize,
    ) -> Result<Vec<LookupHit>, ParamsMismatch> {
        let mut hits: Vec<LookupHit> = Vec::new();
        for (&tree_id, index) in &self.trees {
            let distance = pq_distance(query, index)?;
            hits.push(LookupHit { tree_id, distance });
        }
        hits.sort_by(|a, b| {
            a.distance
                .total_cmp(&b.distance)
                .then_with(|| a.tree_id.cmp(&b.tree_id))
        });
        hits.truncate(k);
        Ok(hits)
    }

    /// [`ForestIndex::lookup`] with the distance computations fanned out
    /// over `threads` scoped workers through [`crate::par`]; lookup is
    /// read-only and embarrassingly parallel over trees. The final sort
    /// (distance, then id) makes the result identical to the serial path.
    pub fn lookup_parallel(
        &self,
        query: &TreeIndex,
        tau: f64,
        threads: usize,
    ) -> Result<Vec<LookupHit>, ParamsMismatch> {
        let entries: Vec<(&TreeId, &TreeIndex)> = self.trees.iter().collect();
        let mut hits: Vec<LookupHit> = Vec::new();
        for part in crate::par::map_chunks(&entries, threads, |part| {
            let mut out = Vec::new();
            for &(&tree_id, index) in part {
                let distance = pq_distance(query, index)?;
                if distance < tau {
                    out.push(LookupHit { tree_id, distance });
                }
            }
            Ok::<_, ParamsMismatch>(out)
        }) {
            hits.extend(part?);
        }
        hits.sort_by(|a, b| {
            a.distance
                .total_cmp(&b.distance)
                .then_with(|| a.tree_id.cmp(&b.tree_id))
        });
        Ok(hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqgram_tree::generate::{random_tree, RandomTreeConfig};
    use pqgram_tree::{EditOp, LabelTable};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn paper_t0() -> (Tree, LabelTable) {
        let mut lt = LabelTable::new();
        let a = lt.intern("a");
        let b = lt.intern("b");
        let c = lt.intern("c");
        let e = lt.intern("e");
        let f = lt.intern("f");
        let mut t = Tree::with_root(a);
        let n1 = t.root();
        t.add_child(n1, c);
        let n3 = t.add_child(n1, b);
        t.add_child(n1, c);
        t.add_child(n3, e);
        t.add_child(n3, f);
        (t, lt)
    }

    #[test]
    fn index_counts_duplicates() {
        // Figure 4: the label-tuple (*,a,c,*,*,*) occurs twice in T0 (leaves
        // n2 and n4 share label c).
        let (t, lt) = paper_t0();
        let idx = build_index(&t, &lt, PQParams::new(3, 3));
        assert_eq!(idx.total(), 13);
        assert_eq!(idx.distinct(), 12);
        let null = pqgram_tree::LabelSym::NULL;
        let a = lt.lookup("a").unwrap();
        let c = lt.lookup("c").unwrap();
        let dup = label_tuple_fingerprint([null, a, c, null, null, null], &lt);
        assert_eq!(idx.count(dup), 2);
    }

    #[test]
    fn validate_reports_total_and_multiplicity_corruption() {
        let (t, lt) = paper_t0();
        let mut idx = build_index(&t, &lt, PQParams::new(3, 3));
        assert_eq!(idx.validate(), Ok(()));
        assert_eq!(idx.validate_against(&t, &lt), Ok(()));

        // Cached cardinality drifts from the stored multiplicities.
        idx.total += 1;
        let msg = idx.validate().unwrap_err();
        assert!(msg.contains("disagrees with multiplicity sum"), "{msg}");
        idx.total -= 1;

        // A gram stored with multiplicity zero (must be removed, not kept).
        let Some((&key, _)) = idx.counts.iter().next() else {
            panic!("paper tree index is non-empty");
        };
        if let Some(c) = idx.counts.get_mut(&key) {
            *c = 0;
        }
        let msg = idx.validate().unwrap_err();
        assert!(msg.contains("zero multiplicity"), "{msg}");
    }

    #[test]
    fn validate_against_reports_foreign_tree() {
        let (t, lt) = paper_t0();
        let idx = build_index(&t, &lt, PQParams::new(3, 3));
        let mut lt2 = LabelTable::new();
        let other = Tree::with_root(lt2.intern("z"));
        let msg = idx.validate_against(&other, &lt2).unwrap_err();
        assert!(msg.contains("bag cardinality"), "{msg}");
    }

    #[test]
    fn identical_trees_have_distance_zero() {
        let (t, lt) = paper_t0();
        let i1 = build_index(&t, &lt, PQParams::default());
        let i2 = build_index(&t, &lt, PQParams::default());
        assert_eq!(pq_distance(&i1, &i2), Ok(0.0));
    }

    #[test]
    fn disjoint_trees_have_distance_one() {
        let mut lt = LabelTable::new();
        let t1 = Tree::with_root(lt.intern("x"));
        let t2 = Tree::with_root(lt.intern("y"));
        let p = PQParams::default();
        let d = pq_distance(&build_index(&t1, &lt, p), &build_index(&t2, &lt, p));
        assert_eq!(d, Ok(1.0));
    }

    #[test]
    fn small_edit_small_distance() -> Result<(), ParamsMismatch> {
        let mut rng = StdRng::seed_from_u64(8);
        let mut lt = LabelTable::new();
        let t1 = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(300, 5));
        let mut t2 = t1.clone();
        let x = lt.intern("completely-new-label");
        let leaf = t2
            .preorder(t2.root())
            .find(|&n| t2.is_leaf(n) && n != t2.root())
            .unwrap();
        t2.apply(EditOp::Rename {
            node: leaf,
            label: x,
        })
        .unwrap();
        let p = PQParams::default();
        let d = pq_distance(&build_index(&t1, &lt, p), &build_index(&t2, &lt, p))?;
        assert!(d > 0.0 && d < 0.1, "distance {d} out of expected band");
        Ok(())
    }

    #[test]
    fn distance_is_symmetric() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut lt = LabelTable::new();
        let p = PQParams::new(2, 3);
        for _ in 0..5 {
            let t1 = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(80, 4));
            let t2 = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(90, 4));
            let (i1, i2) = (build_index(&t1, &lt, p), build_index(&t2, &lt, p));
            assert_eq!(pq_distance(&i1, &i2), pq_distance(&i2, &i1));
        }
    }

    #[test]
    fn mismatched_params_are_rejected() {
        let (t, lt) = paper_t0();
        let i1 = build_index(&t, &lt, PQParams::new(2, 2));
        let i2 = build_index(&t, &lt, PQParams::new(3, 3));
        let err = pq_distance(&i1, &i2).unwrap_err();
        assert_eq!(err.got, PQParams::new(2, 2));
        assert_eq!(err.expected, PQParams::new(3, 3));
        let msg = err.to_string();
        assert!(msg.contains("parameter mismatch"), "{msg}");
    }

    #[test]
    fn mismatched_params_rejected_even_for_empty_indexes() {
        // The parameter check must come before the empty-bags shortcut:
        // "both empty, distance 0" would silently paper over a caller mixing
        // parameterizations.
        let err = pq_distance(
            &TreeIndex::empty(PQParams::new(2, 2)),
            &TreeIndex::empty(PQParams::new(3, 3)),
        )
        .unwrap_err();
        assert_eq!(err.got, PQParams::new(2, 2));
    }

    #[test]
    fn add_remove_roundtrip() {
        let (t, lt) = paper_t0();
        let mut idx = build_index(&t, &lt, PQParams::default());
        let snapshot = idx.clone();
        let key = 12345u64;
        assert!(!idx.remove(key), "absent key must not be removable");
        idx.add(key);
        idx.add(key);
        assert_eq!(idx.count(key), 2);
        assert!(idx.remove(key));
        assert_eq!(idx.count(key), 1);
        assert!(idx.remove(key));
        assert_eq!(idx, snapshot);
    }

    #[test]
    fn add_n_matches_repeated_add() {
        let (t, lt) = paper_t0();
        let mut by_loop = TreeIndex::empty(PQParams::default());
        let mut by_batch = TreeIndex::empty(PQParams::default());
        for (key, count) in build_index(&t, &lt, PQParams::default()).iter() {
            for _ in 0..count {
                by_loop.add(key);
            }
            by_batch.add_n(key, count);
        }
        assert_eq!(by_loop, by_batch);
        assert_eq!(by_batch.validate(), Ok(()));
        // add_n(_, 0) is a no-op, not a zero-multiplicity entry.
        by_batch.add_n(0xdead, 0);
        assert_eq!(by_batch.count(0xdead), 0);
        assert_eq!(by_batch.validate(), Ok(()));
    }

    #[test]
    fn forest_lookup_orders_by_distance() -> Result<(), ParamsMismatch> {
        let mut rng = StdRng::seed_from_u64(10);
        let mut lt = LabelTable::new();
        let p = PQParams::default();
        let base = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(200, 5));
        let query = build_index(&base, &lt, p);

        let mut forest = ForestIndex::new();
        // T0: identical; T1: slightly edited; T2: unrelated.
        forest.insert(TreeId(0), query.clone());
        let mut edited = base.clone();
        let nn = lt.intern("zz-edit");
        let some_leaf = edited
            .preorder(edited.root())
            .find(|&n| edited.is_leaf(n))
            .unwrap();
        edited
            .apply(EditOp::Rename {
                node: some_leaf,
                label: nn,
            })
            .unwrap();
        forest.insert(TreeId(1), build_index(&edited, &lt, p));
        let unrelated = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(200, 5));
        forest.insert(TreeId(2), build_index(&unrelated, &lt, p));

        let hits = forest.lookup(&query, 0.5)?;
        assert!(hits.len() >= 2);
        assert_eq!(hits[0].tree_id, TreeId(0));
        assert_eq!(hits[0].distance, 0.0);
        assert_eq!(hits[1].tree_id, TreeId(1));
        assert!(hits[1].distance > 0.0);
        assert!(hits.windows(2).all(|w| w[0].distance <= w[1].distance));
        Ok(())
    }

    #[test]
    fn parallel_lookup_matches_serial() -> Result<(), ParamsMismatch> {
        let mut rng = StdRng::seed_from_u64(11);
        let mut lt = LabelTable::new();
        let p = PQParams::new(2, 2);
        let mut forest = ForestIndex::new();
        for i in 0..37 {
            let t = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(60, 4));
            forest.insert(TreeId(i), build_index(&t, &lt, p));
        }
        let q = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(60, 4));
        let query = build_index(&q, &lt, p);
        let serial = forest.lookup(&query, 0.9)?;
        for threads in [1, 2, 4, 16, 64] {
            assert_eq!(forest.lookup_parallel(&query, 0.9, threads)?, serial);
        }
        Ok(())
    }

    #[test]
    fn forest_lookup_rejects_mismatched_query() {
        let (t, lt) = paper_t0();
        let mut forest = ForestIndex::new();
        forest.insert(TreeId(0), build_index(&t, &lt, PQParams::new(3, 3)));
        let query = build_index(&t, &lt, PQParams::new(2, 2));
        assert!(forest.lookup(&query, 0.5).is_err());
        assert!(forest.lookup_top_k(&query, 3).is_err());
        assert!(forest.lookup_parallel(&query, 0.5, 4).is_err());
    }

    #[test]
    fn encoded_size_grows_with_content() {
        let (t, lt) = paper_t0();
        let idx = build_index(&t, &lt, PQParams::default());
        let empty = TreeIndex::empty(PQParams::default());
        assert_eq!(empty.encoded_size(), 0);
        assert!(idx.encoded_size() >= idx.distinct() * 2);
    }
}

#[cfg(test)]
mod top_k_tests {
    use super::*;
    use pqgram_tree::generate::{random_tree, RandomTreeConfig};
    use pqgram_tree::LabelTable;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn top_k_orders_and_truncates() -> Result<(), ParamsMismatch> {
        let mut rng = StdRng::seed_from_u64(21);
        let mut lt = LabelTable::new();
        let params = PQParams::new(2, 2);
        let mut forest = ForestIndex::new();
        for i in 0..25u64 {
            let t = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(40, 4));
            forest.insert(TreeId(i), build_index(&t, &lt, params));
        }
        let q = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(40, 4));
        let query = build_index(&q, &lt, params);
        let top = forest.lookup_top_k(&query, 5)?;
        assert_eq!(top.len(), 5);
        assert!(top.windows(2).all(|w| w[0].distance <= w[1].distance));
        // Consistent with the thresholded lookup at tau just above the 5th.
        let tau = top[4].distance + 1e-9;
        let thresholded = forest.lookup(&query, tau)?;
        assert_eq!(&thresholded[..5], &top[..]);
        // k larger than the forest returns everything.
        assert_eq!(forest.lookup_top_k(&query, 100)?.len(), 25);
        assert!(forest.lookup_top_k(&query, 0)?.is_empty());
        Ok(())
    }
}

#[cfg(test)]
mod parallel_build_tests {
    use super::*;
    use pqgram_tree::generate::{random_tree, RandomTreeConfig};
    use pqgram_tree::LabelTable;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parallel_build_matches_serial() {
        let mut rng = StdRng::seed_from_u64(31);
        let mut lt = LabelTable::new();
        let params = PQParams::new(2, 3);
        let trees: Vec<Tree> = (0..23)
            .map(|_| random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(80, 5)))
            .collect();
        let refs: Vec<(TreeId, &Tree)> = trees
            .iter()
            .enumerate()
            .map(|(i, t)| (TreeId(i as u64), t))
            .collect();
        for threads in [1, 3, 8, 64] {
            let forest = build_forest_index_parallel(&refs, &lt, params, threads);
            assert_eq!(forest.len(), 23);
            for (i, t) in trees.iter().enumerate() {
                assert_eq!(
                    forest.get(TreeId(i as u64)).unwrap(),
                    &build_index(t, &lt, params)
                );
            }
        }
        // Empty forest edge case.
        assert!(build_forest_index_parallel(&[], &lt, params, 4).is_empty());
    }
}
