//! A bounded max-heap over verified lookup results, for top-k lookups.
//!
//! [`TopK`] keeps the `k` best `(distance, tree_id)` pairs seen so far
//! under the same total order the lookup paths sort hits by: ascending
//! distance via [`f64::total_cmp`], ties broken by ascending tree id. Once
//! full, its worst kept distance becomes a pruning bound
//! ([`TopK::bound`]) that a [`crate::plan::LookupPlanner`] can tighten to
//! — non-strictly, because a pair at exactly the bound distance can still
//! displace the kept worst if its tree id is smaller.

use crate::index::{LookupHit, TreeId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Heap entry ordered by `(distance, tree_id)`; the heap keeps the
/// *largest* (worst) entry at the top so it can be displaced first.
#[derive(Debug)]
struct Entry {
    distance: f64,
    tree_id: TreeId,
}

impl Entry {
    fn cmp_key(&self, other: &Entry) -> Ordering {
        self.distance
            .total_cmp(&other.distance)
            .then_with(|| self.tree_id.cmp(&other.tree_id))
    }
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_key(other) == Ordering::Equal
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp_key(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_key(other)
    }
}

/// The `k` nearest results seen so far, with the displacement bound.
#[derive(Debug)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<Entry>,
}

impl TopK {
    /// An empty collector for the `k` best results.
    pub fn new(k: usize) -> Self {
        TopK {
            k,
            heap: BinaryHeap::with_capacity(k.min(1 << 20)),
        }
    }

    /// Number of results currently kept.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing has been kept yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// True once `k` results are kept (further offers must displace).
    pub fn is_full(&self) -> bool {
        self.heap.len() >= self.k
    }

    /// Offers a verified result; keeps it if the heap has room or if
    /// `(distance, tree_id)` beats the current worst kept pair. Returns
    /// whether the result was kept. Each tree must be offered at most
    /// once.
    pub fn offer(&mut self, tree_id: TreeId, distance: f64) -> bool {
        if self.k == 0 {
            return false;
        }
        let entry = Entry { distance, tree_id };
        if self.heap.len() < self.k {
            self.heap.push(entry);
            return true;
        }
        match self.heap.peek() {
            Some(worst) if entry < *worst => {
                self.heap.pop();
                self.heap.push(entry);
                true
            }
            _ => false,
        }
    }

    /// The current pruning bound: until the heap fills every distance is
    /// admissible (every pq-gram distance is ≤ 1), afterwards only
    /// distances at or below the worst kept one can still displace it.
    pub fn bound(&self) -> f64 {
        if self.is_full() {
            self.heap.peek().map_or(1.0, |worst| worst.distance)
        } else {
            1.0
        }
    }

    /// Consumes the heap into hits sorted ascending by `(distance, id)` —
    /// exactly the first `k` of the distance-sorted oracle.
    pub fn into_sorted_hits(self) -> Vec<LookupHit> {
        let mut hits: Vec<LookupHit> = self
            .heap
            .into_iter()
            .map(|e| LookupHit {
                tree_id: e.tree_id,
                distance: e.distance,
            })
            .collect();
        hits.sort_by(|a, b| {
            a.distance
                .total_cmp(&b.distance)
                .then_with(|| a.tree_id.cmp(&b.tree_id))
        });
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random stream (splitmix64).
    fn mix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Offering every pair in any order and draining equals sorting all
    /// pairs and truncating — including duplicate distances, where ties
    /// break on the id.
    #[test]
    fn matches_sort_then_truncate() {
        let mut state = 7u64;
        for case in 0..200 {
            let len = (mix(&mut state) % 40) as usize;
            let k = (mix(&mut state) % 12) as usize;
            let mut pairs: Vec<(TreeId, f64)> = (0..len)
                .map(|i| {
                    // Coarse buckets force distance collisions.
                    let d = (mix(&mut state) % 8) as f64 / 8.0;
                    (TreeId(1000 * case + i as u64), d)
                })
                .collect();
            let mut topk = TopK::new(k);
            for &(id, d) in &pairs {
                topk.offer(id, d);
            }
            let got = topk.into_sorted_hits();
            pairs.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
            pairs.truncate(k);
            let want: Vec<(TreeId, f64)> = pairs;
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert_eq!((g.tree_id, g.distance), *w, "case {case}");
            }
        }
    }

    #[test]
    fn bound_tightens_as_the_heap_fills() {
        let mut topk = TopK::new(2);
        assert_eq!(topk.bound(), 1.0);
        assert!(topk.offer(TreeId(5), 0.9));
        assert_eq!(topk.bound(), 1.0, "not full yet: everything admissible");
        assert!(topk.offer(TreeId(3), 0.4));
        assert_eq!(topk.bound(), 0.9);
        assert!(!topk.offer(TreeId(9), 0.9), "worse id at the bound distance");
        assert!(topk.offer(TreeId(1), 0.9), "better id at the bound distance");
        assert_eq!(topk.bound(), 0.9);
        assert!(topk.offer(TreeId(8), 0.2));
        assert_eq!(topk.bound(), 0.4);
        let hits = topk.into_sorted_hits();
        assert_eq!(
            hits.iter().map(|h| h.tree_id).collect::<Vec<_>>(),
            vec![TreeId(8), TreeId(3)]
        );
    }

    #[test]
    fn zero_k_keeps_nothing() {
        let mut topk = TopK::new(0);
        assert!(topk.is_full());
        assert!(!topk.offer(TreeId(1), 0.0));
        assert!(topk.into_sorted_hits().is_empty());
    }
}
