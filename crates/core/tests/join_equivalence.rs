//! Property test: the filtered approximate join is *exact* — it returns
//! precisely the pairs the nested-loop join returns, for arbitrary forests
//! including the degenerate shapes that historically broke the claim:
//! empty tree indexes (distance 0 to each other, invisible to the inverted
//! index), single-node trees, vocabulary-disjoint pairs, and thresholds
//! above 1 (where every pair joins).

use pqgram_core::join::join_nested_loop;
use pqgram_core::{build_index, join, ForestIndex, PQParams, TreeId, TreeIndex};
use pqgram_tree::generate::{random_tree, RandomTreeConfig};
use pqgram_tree::LabelTable;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Label vocabularies cycled over the trees of a forest, so that some pairs
/// share grams and some are fully disjoint.
const PREFIXES: &[&str] = &["alpha", "beta", "gamma"];

/// Builds one forest from a size vector: size 0 → an empty index, size 1 →
/// a single-node tree, larger → a random tree of that many nodes.
fn forest_from_sizes(
    rng: &mut StdRng,
    lt: &mut LabelTable,
    params: PQParams,
    sizes: &[usize],
    id_base: u64,
) -> ForestIndex {
    let mut forest = ForestIndex::new();
    for (i, &size) in sizes.iter().enumerate() {
        let id = TreeId(id_base + i as u64);
        let index = match size {
            0 => TreeIndex::empty(params),
            _ => {
                let mut cfg = RandomTreeConfig::new(size, 4);
                cfg.label_prefix = PREFIXES[i % PREFIXES.len()];
                let tree = random_tree(rng, lt, &cfg);
                build_index(&tree, lt, params)
            }
        };
        forest.insert(id, index);
    }
    forest
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `join` ≡ `join_nested_loop` over random forests with empty and tiny
    /// trees, for thresholds spanning 0 < τ ≤ 1 and τ > 1, with coherent
    /// pruning statistics.
    #[test]
    fn prop_join_equals_nested_loop(
        seed in 0u64..1_000_000,
        left_sizes in prop::collection::vec(0usize..12, 0..8),
        right_sizes in prop::collection::vec(0usize..12, 0..8),
        tau_sel in 0usize..4,
    ) {
        let tau = [0.1, 0.5, 1.0, 1.2][tau_sel];
        let params = PQParams::new(2, 3);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut lt = LabelTable::new();
        let left = forest_from_sizes(&mut rng, &mut lt, params, &left_sizes, 0);
        let right = forest_from_sizes(&mut rng, &mut lt, params, &right_sizes, 1000);

        let (fast, stats) = join(&left, &right, tau);
        let slow = join_nested_loop(&left, &right, tau);
        prop_assert_eq!(&fast, &slow, "join must equal the nested-loop join");

        prop_assert_eq!(stats.pairs_naive,
            left_sizes.len() as u64 * right_sizes.len() as u64);
        prop_assert!(stats.pairs_candidates <= stats.pairs_naive);
        prop_assert!(stats.pairs_verified <= stats.pairs_candidates);
        prop_assert!(stats.pairs_joined <= stats.pairs_verified);
        prop_assert_eq!(stats.pairs_joined, fast.len() as u64);
    }
}
