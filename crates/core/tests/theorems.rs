//! Integration tests validating the paper's theorems against the naive
//! oracle (profiles of all intermediate versions) and with property-based
//! testing.

use pqgram_core::index::build_index;
use pqgram_core::maintain::{compute_index_delta, update_index};
use pqgram_core::{reference, PQParams};
use pqgram_tree::generate::{dblp, random_tree, xmark, RandomTreeConfig};
use pqgram_tree::{record_script, LabelTable, ScriptConfig, ScriptMix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scenario(
    seed: u64,
    nodes: usize,
    ops: usize,
    mix: ScriptMix,
) -> (
    pqgram_tree::Tree,
    pqgram_tree::Tree,
    LabelTable,
    pqgram_tree::EditLog,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut lt = LabelTable::new();
    let mut tree = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(nodes, 5));
    let t0 = tree.clone();
    let alphabet: Vec<_> = lt.iter().map(|(s, _)| s).collect();
    let mut cfg = ScriptConfig::new(ops, alphabet);
    cfg.mix = mix;
    let (log, _) = record_script(&mut rng, &mut tree, &cfg);
    (t0, tree, lt, log)
}

/// Theorem 1 + Theorem 2 + Lemma 2 at the bag level: the incremental
/// I⁺ / I⁻ applied to I₀ equal the definitional Δ± applied to I₀, and both
/// equal the rebuilt index.
#[test]
fn deltas_subsume_definitional_deltas() {
    for seed in 0..40u64 {
        let (t0, tn, lt, log) = scenario(seed, 70, 15, ScriptMix::default());
        let params = PQParams::new(3, 3);
        let (delta, _) = compute_index_delta(&tn, &lt, &log, params).unwrap();

        let versions = reference::rewind_versions(&tn, &log);
        assert_eq!(versions[0], t0);
        let def_plus = reference::delta_plus_by_definition(&versions, params);
        let def_minus = reference::delta_minus_by_definition(&versions, params);

        // The incremental Δ± may contain extra *invariant* grams (safe
        // over-approximation, cancelled by Lemma 2); they must subsume the
        // definitional sets and agree after cancellation.
        let def_plus_keys = reference::lambda_keys(&def_plus, &lt);
        let def_minus_keys = reference::lambda_keys(&def_minus, &lt);
        let mut plus = delta.additions.clone();
        let mut minus = delta.removals.clone();
        plus.sort_unstable();
        minus.sort_unstable();
        assert!(
            is_sub_multiset(&def_plus_keys, &plus),
            "seed {seed}: I+ misses Δ+ grams"
        );
        assert!(
            is_sub_multiset(&def_minus_keys, &minus),
            "seed {seed}: I- misses Δ- grams"
        );

        // Cancellation: I0 \ I- ⊎ I+ == I0 \ λ(Δ-) ⊎ λ(Δ+) == rebuild.
        let old = build_index(&t0, &lt, params);
        let out = update_index(&old, &tn, &lt, &log).unwrap();
        assert_eq!(out.index, build_index(&tn, &lt, params), "seed {seed}");
        out.index.validate_against(&tn, &lt).unwrap();

        // The extras on both sides must be identical bags (they cancel).
        let plus_extra = multiset_diff(&plus, &def_plus_keys);
        let minus_extra = multiset_diff(&minus, &def_minus_keys);
        assert_eq!(plus_extra, minus_extra, "seed {seed}: extras must cancel");
    }
}

fn is_sub_multiset(sub: &[u64], sup: &[u64]) -> bool {
    multiset_diff(sub, sup).is_empty()
}

/// Sorted multiset difference a \ b.
fn multiset_diff(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() {
        if j >= b.len() || a[i] < b[j] {
            out.push(a[i]);
            i += 1;
        } else if a[i] == b[j] {
            i += 1;
            j += 1;
        } else {
            j += 1;
        }
    }
    out
}

#[test]
fn incremental_matches_rebuild_on_xmark_and_dblp() {
    let mut rng = StdRng::seed_from_u64(11);
    let params = PQParams::new(3, 3);
    for which in 0..2 {
        let mut lt = LabelTable::new();
        let mut tree = if which == 0 {
            xmark(&mut rng, &mut lt, 4_000)
        } else {
            dblp(&mut rng, &mut lt, 4_000)
        };
        let t0 = tree.clone();
        let alphabet: Vec<_> = lt.iter().map(|(s, _)| s).collect();
        let (log, _) = record_script(&mut rng, &mut tree, &ScriptConfig::new(200, alphabet));
        let old = build_index(&t0, &lt, params);
        let out = update_index(&old, &tree, &lt, &log).unwrap();
        assert_eq!(out.index, build_index(&tree, &lt, params));
        out.index.validate_against(&tree, &lt).unwrap();
    }
}

#[test]
fn long_log_on_small_tree() {
    // Heavy churn: the log is much larger than the tree; most deltas on Tn
    // are empty or heavily rebound.
    for seed in 0..10u64 {
        let (t0, tn, lt, log) = scenario(seed, 12, 120, ScriptMix::default());
        let params = PQParams::new(3, 3);
        let old = build_index(&t0, &lt, params);
        let out = update_index(&old, &tn, &lt, &log).unwrap();
        assert_eq!(out.index, build_index(&tn, &lt, params), "seed {seed}");
        out.index.validate_against(&tn, &lt).unwrap();
        assert!(out.stats.skipped_deltas <= log.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The central claim, property-based: for arbitrary tree sizes, edit
    /// mixes and pq parameters, the incrementally updated index equals the
    /// index rebuilt from scratch.
    #[test]
    fn prop_incremental_equals_rebuild(
        seed in 0u64..1_000_000,
        nodes in 2usize..120,
        ops in 0usize..35,
        p in 1usize..5,
        q in 2usize..5,
        mix_sel in 0u8..5,
        alphabet in 1usize..8,
        adopted in 0usize..4,
    ) {
        let mix = match mix_sel {
            0 => ScriptMix { insert: 1, delete: 0, rename: 0 },
            1 => ScriptMix { insert: 0, delete: 1, rename: 0 },
            2 => ScriptMix { insert: 0, delete: 0, rename: 1 },
            3 => ScriptMix { insert: 3, delete: 1, rename: 1 },
            _ => ScriptMix::default(),
        };
        // Rename-only mixes need at least two labels to make progress.
        let alphabet = if mix_sel == 2 { alphabet.max(2) } else { alphabet };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut lt = LabelTable::new();
        let mut tree = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(nodes, alphabet));
        let t0 = tree.clone();
        let syms: Vec<_> = lt.iter().map(|(s, _)| s).collect();
        let mut cfg = ScriptConfig::new(ops.min(nodes.saturating_sub(2).max(1)), syms);
        cfg.mix = mix;
        cfg.max_adopted = adopted;
        let (log, _) = record_script(&mut rng, &mut tree, &cfg);
        let params = PQParams::new(p, q);
        let old = build_index(&t0, &lt, params);
        let out = update_index(&old, &tree, &lt, &log).unwrap();
        // Full invariant audit: cardinality == |P(T)|, gram-for-gram match.
        prop_assert_eq!(out.index.validate_against(&tree, &lt), Ok(()));
        prop_assert_eq!(out.index, build_index(&tree, &lt, params));
    }

    /// Rewinding the log restores T0 exactly and the definitional deltas are
    /// consistent with the profiles (Definition 6 sanity).
    #[test]
    fn prop_definitional_delta_partitions(
        seed in 0u64..1_000_000,
        nodes in 2usize..60,
        ops in 1usize..15,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut lt = LabelTable::new();
        let mut tree = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(nodes, 4));
        let syms: Vec<_> = lt.iter().map(|(s, _)| s).collect();
        let (log, _) = record_script(
            &mut rng,
            &mut tree,
            &ScriptConfig::new(ops.min(nodes.saturating_sub(2).max(1)), syms),
        );
        let params = PQParams::new(2, 2);
        let versions = reference::rewind_versions(&tree, &log);
        let inv = reference::invariant_grams(&versions, params);
        let plus = reference::delta_plus_by_definition(&versions, params);
        let minus = reference::delta_minus_by_definition(&versions, params);
        // Partitions: P_n = C ⊎ Δ+, P_0 = C ⊎ Δ-.
        let pn = pqgram_core::compute_profile(versions.last().unwrap(), params);
        let p0 = pqgram_core::compute_profile(&versions[0], params);
        prop_assert_eq!(pn.len(), inv.len() + plus.len());
        prop_assert_eq!(p0.len(), inv.len() + minus.len());
        for g in &inv {
            prop_assert!(pn.contains(g) && p0.contains(g));
        }
    }
}

#[test]
fn optimized_logs_produce_the_same_index() {
    // Section 10 future work: preprocessing the log must not change the
    // maintained index.
    use pqgram_tree::optimize_log;
    for seed in 0..25u64 {
        let (t0, tn, lt, log) = scenario(
            seed,
            50,
            40,
            ScriptMix {
                insert: 2,
                delete: 2,
                rename: 3,
            },
        );
        let params = PQParams::new(3, 3);
        let (optimized, stats) = optimize_log(&tn, &log);
        assert!(stats.optimized_len <= stats.original_len);
        let old = build_index(&t0, &lt, params);
        let via_original = update_index(&old, &tn, &lt, &log).unwrap().index;
        let via_optimized = update_index(&old, &tn, &lt, &optimized).unwrap().index;
        let rebuilt = build_index(&tn, &lt, params);
        assert_eq!(via_original, rebuilt, "seed {seed}");
        assert_eq!(via_optimized, rebuilt, "seed {seed} (optimized)");
    }
}

#[test]
fn subtree_operations_feed_incremental_maintenance() {
    // Section 10 future work: subtree insert/delete/move simulated as node
    // edit sequences, maintained incrementally.
    use pqgram_tree::subtree::{delete_subtree, insert_subtree, move_subtree, Spec};
    let params = PQParams::new(3, 3);
    let mut rng = StdRng::seed_from_u64(31);
    let mut lt = LabelTable::new();
    let mut tree = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(200, 6));
    let t0 = tree.clone();
    let old = build_index(&t0, &lt, params);

    let mut log = pqgram_tree::EditLog::new();
    // Insert a record-shaped subtree under the root.
    let spec = Spec::node(
        lt.intern("person"),
        vec![
            Spec::node(lt.intern("name"), vec![Spec::leaf(lt.intern("Ada"))]),
            Spec::leaf(lt.intern("email")),
        ],
    );
    let root = tree.root();
    let (person, entries) = insert_subtree(&mut tree, root, 1, &spec).unwrap();
    for e in entries {
        log.push(e);
    }
    // Move it under some other node.
    let target = tree
        .preorder(tree.root())
        .find(|&n| n != tree.root() && !tree.ancestors(n).any(|a| a == person) && n != person)
        .unwrap();
    let (person, entries) = move_subtree(&mut tree, person, target, 1).unwrap();
    for e in entries {
        log.push(e);
    }
    // Delete some other existing subtree.
    let victim = tree
        .children(tree.root())
        .iter()
        .copied()
        .find(|&c| c != person && !tree.preorder(c).any(|x| x == person))
        .unwrap();
    for e in delete_subtree(&mut tree, victim).unwrap() {
        log.push(e);
    }

    let updated = update_index(&old, &tree, &lt, &log).unwrap().index;
    assert_eq!(updated, build_index(&tree, &lt, params));

    // And the optimized version of this log (the moved subtree's
    // create/destroy churn partially cancels) gives the same result.
    let (optimized, _) = pqgram_tree::optimize_log(&tree, &log);
    let updated2 = update_index(&old, &tree, &lt, &optimized).unwrap().index;
    assert_eq!(updated2, build_index(&tree, &lt, params));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The realistic operator error: applying the *wrong document's* log.
    /// The update must either detect the mismatch (an error) or produce a
    /// well-formed index — never panic, and never silently corrupt when the
    /// log genuinely belongs to the tree.
    #[test]
    fn prop_foreign_logs_fail_safely(
        seed_tree in 0u64..100_000,
        seed_log in 0u64..100_000,
        nodes in 3usize..60,
        ops in 1usize..20,
    ) {
        let params = PQParams::new(3, 3);
        // The document we maintain.
        let mut rng = StdRng::seed_from_u64(seed_tree);
        let mut lt = LabelTable::new();
        let tree = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(nodes, 4));
        let old = build_index(&tree, &lt, params);
        // A log recorded against a different document of similar shape.
        let mut rng2 = StdRng::seed_from_u64(seed_log);
        let mut lt2 = LabelTable::new();
        let mut other = random_tree(&mut rng2, &mut lt2, &RandomTreeConfig::new(nodes, 4));
        let alphabet: Vec<_> = lt2.iter().map(|(s, _)| s).collect();
        let (foreign_log, _) = record_script(
            &mut rng2,
            &mut other,
            &ScriptConfig::new(ops.min(nodes.saturating_sub(2).max(1)), alphabet),
        );
        // Must return (Ok or Err) without panicking. A coincidental Ok can
        // happen for tiny logs whose references line up; correctness of the
        // result is then not guaranteed (documented) — only well-formedness.
        if let Ok(outcome) = update_index(&old, &tree, &lt, &foreign_log) {
            prop_assert!(outcome.index.total() > 0 || tree.node_count() == 0);
            // Even a semantically wrong result must be internally coherent:
            // positive multiplicities, total == sum.
            prop_assert_eq!(outcome.index.validate(), Ok(()));
        }
    }
}

/// Paper-scale sanity (run explicitly: `cargo test --release -- --ignored`):
/// a 1M-node document with a 500-edit log, incrementally maintained, must
/// equal the rebuilt index.
#[test]
#[ignore = "multi-second paper-scale run; use --ignored"]
fn million_node_incremental_equals_rebuild() {
    let params = PQParams::new(3, 3);
    let mut rng = StdRng::seed_from_u64(1);
    let mut lt = LabelTable::new();
    let mut tree = dblp(&mut rng, &mut lt, 1_000_000);
    let t0_index = build_index(&tree, &lt, params);
    let alphabet: Vec<_> = lt.iter().map(|(s, _)| s).collect();
    let (log, _) = record_script(&mut rng, &mut tree, &ScriptConfig::new(500, alphabet));
    let outcome = update_index(&t0_index, &tree, &lt, &log).unwrap();
    assert_eq!(outcome.index, build_index(&tree, &lt, params));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Section 7 fidelity: for every node of a random tree, the full
    /// q-matrix enumerates exactly the q-part windows the profile contains,
    /// and any window survives a rows → block → rows round trip.
    #[test]
    fn prop_qmatrix_windows_match_profile(
        seed in 0u64..1_000_000,
        nodes in 1usize..50,
        q in 2usize..5,
    ) {
        use pqgram_core::matrix::QBlock;
        use pqgram_core::compute_profile;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut lt = LabelTable::new();
        let tree = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(nodes, 4));
        let params = PQParams::new(1, q);
        let profile = compute_profile(&tree, params);
        for node in tree.preorder(tree.root()) {
            let diag: Vec<_> = tree.children(node).iter().map(|&c| tree.label(c)).collect();
            let matrix = QBlock::full(&diag, q);
            // Each matrix row must appear as the q-part of a profile gram
            // anchored at this node, and the counts must agree.
            let anchored: Vec<_> = profile
                .iter()
                .filter(|g| g.anchor().id() == Some(node))
                .collect();
            prop_assert_eq!(anchored.len(), matrix.row_count());
            for (_, row) in matrix.rows() {
                let found = anchored.iter().any(|g| {
                    g.qpart()
                        .iter()
                        .map(|e| e.label())
                        .collect::<Vec<_>>()
                        == row
                });
                prop_assert!(found, "row missing from profile");
            }
            // Round trip through stored-row reconstruction.
            let rows: Vec<Vec<_>> = matrix.rows().map(|(_, r)| r).collect();
            let back = QBlock::from_rows(1, &rows, q);
            prop_assert_eq!(back.diagonals(), matrix.diagonals());
            prop_assert_eq!(back.row_count(), matrix.row_count());
        }
    }
}
