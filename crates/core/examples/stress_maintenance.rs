//! Randomized stress search for incremental-vs-rebuild mismatches.
use pqgram_core::index::build_index;
use pqgram_core::maintain::update_index;
use pqgram_core::PQParams;
use pqgram_tree::generate::{random_tree, RandomTreeConfig};
use pqgram_tree::{record_script, LabelTable, ScriptConfig, ScriptMix};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut failures = 0usize;
    let mut cases = 0usize;
    for seed in 0..3000u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let nodes = 5 + (seed % 120) as usize;
        let ops = 1 + (seed % 40) as usize;
        let mix = match seed % 5 {
            0 => ScriptMix {
                insert: 1,
                delete: 0,
                rename: 0,
            },
            1 => ScriptMix {
                insert: 0,
                delete: 1,
                rename: 0,
            },
            2 => ScriptMix {
                insert: 0,
                delete: 0,
                rename: 1,
            },
            3 => ScriptMix {
                insert: 2,
                delete: 2,
                rename: 1,
            },
            _ => ScriptMix::default(),
        };
        let params = match seed % 7 {
            0 => PQParams::new(1, 2),
            1 => PQParams::new(2, 2),
            2 => PQParams::new(2, 3),
            3 => PQParams::new(3, 3),
            4 => PQParams::new(4, 2),
            5 => PQParams::new(3, 4),
            _ => PQParams::new(5, 5),
        };
        let mut lt = LabelTable::new();
        let mut tree = random_tree(
            &mut rng,
            &mut lt,
            &RandomTreeConfig::new(nodes, 2 + (seed % 6) as usize),
        );
        let t0 = tree.clone();
        let alphabet: Vec<_> = lt.iter().map(|(s, _)| s).collect();
        let mut cfg = ScriptConfig::new(ops.min(nodes.saturating_sub(2).max(1)), alphabet);
        cfg.mix = mix;
        cfg.max_adopted = (seed % 5) as usize;
        let (log, _) = record_script(&mut rng, &mut tree, &cfg);
        cases += 1;
        let old = build_index(&t0, &lt, params);
        match update_index(&old, &tree, &lt, &log) {
            Ok(out) if out.index == build_index(&tree, &lt, params) => {}
            Ok(_) => {
                failures += 1;
                println!("WRONG INDEX seed={seed} nodes={nodes} ops={ops} params={params:?}");
            }
            Err(e) => {
                failures += 1;
                println!("ERROR seed={seed} nodes={nodes} ops={ops} params={params:?}: {e}");
            }
        }
        if failures > 5 {
            break;
        }
    }
    println!("{cases} cases, {failures} failures");
}
