#![warn(missing_docs)]
#![forbid(unsafe_code)]
//! Zhang–Shasha tree edit distance.
//!
//! The pq-gram distance of the reproduced paper is an *approximation* of the
//! tree edit distance of Zhang & Shasha (*Simple fast algorithms for the
//! editing distance between trees and related problems*, SIAM J. Comput.
//! 18(6), 1989 — reference \[20\] of the paper). This crate implements the
//! exact distance with unit costs so that the approximation quality of the
//! pq-gram distance can be evaluated, as the original pq-gram paper (VLDB
//! 2005) does.
//!
//! The algorithm runs in `O(n₁·n₂·min(d₁,l₁)·min(d₂,l₂))` time and
//! `O(n₁·n₂)` space; it is intended for moderate tree sizes (the reference
//! metric in experiments), not for the multi-million-node documents the
//! index itself handles.
//!
//! ```
//! use pqgram_tree::{LabelTable, Tree};
//! use pqgram_ted::tree_edit_distance;
//!
//! let mut lt = LabelTable::new();
//! let (a, b, c) = (lt.intern("a"), lt.intern("b"), lt.intern("c"));
//! let mut t1 = Tree::with_root(a);
//! t1.add_child(t1.root(), b);
//! let mut t2 = Tree::with_root(a);
//! t2.add_child(t2.root(), c);
//! assert_eq!(tree_edit_distance(&t1, &t2), 1); // one rename
//! ```

use pqgram_tree::{LabelSym, NodeId, Tree};

/// Unit edit costs: insert = delete = rename = 1 (rename of equal labels = 0).
const INS: u64 = 1;
const DEL: u64 = 1;

#[inline]
fn ren(a: LabelSym, b: LabelSym) -> u64 {
    u64::from(a != b)
}

/// Postorder view of a tree with the auxiliary arrays of Zhang–Shasha.
struct PostorderView {
    /// Label of the i-th node in left-to-right postorder (0-based).
    labels: Vec<LabelSym>,
    /// `l[i]`: postorder number of the leftmost leaf descendant of node i.
    lld: Vec<usize>,
    /// Postorder numbers of the LR-keyroots, ascending.
    keyroots: Vec<usize>,
}

impl PostorderView {
    fn new(tree: &Tree) -> Self {
        let order = tree.postorder(tree.root());
        let n = order.len();
        let mut number = vec![0usize; tree.slot_count()];
        for (i, &node) in order.iter().enumerate() {
            number[node.index()] = i;
        }
        let mut labels = Vec::with_capacity(n);
        let mut lld = vec![0usize; n];
        for (i, &node) in order.iter().enumerate() {
            labels.push(tree.label(node));
            lld[i] = number[leftmost_leaf(tree, node).index()];
        }
        // A node is a keyroot iff it has no parent, or it is not the leftmost
        // child (equivalently: no ancestor has the same leftmost leaf).
        let mut keyroots = Vec::new();
        for (i, &node) in order.iter().enumerate() {
            let is_keyroot = match tree.parent(node) {
                None => true,
                Some(p) => tree.children(p)[0] != node,
            };
            if is_keyroot {
                keyroots.push(i);
            }
        }
        PostorderView {
            labels,
            lld,
            keyroots,
        }
    }

    fn len(&self) -> usize {
        self.labels.len()
    }
}

fn leftmost_leaf(tree: &Tree, mut node: NodeId) -> NodeId {
    while let Some(&first) = tree.children(node).first() {
        node = first;
    }
    node
}

/// Computes the exact tree edit distance between two ordered labeled trees
/// with unit costs.
pub fn tree_edit_distance(t1: &Tree, t2: &Tree) -> u64 {
    let v1 = PostorderView::new(t1);
    let v2 = PostorderView::new(t2);
    let (n1, n2) = (v1.len(), v2.len());

    // treedist[i][j]: distance between subtrees rooted at postorder i and j.
    let mut treedist = vec![0u64; n1 * n2];
    // Forest-distance scratch, reused across keyroot pairs.
    let mut fd = vec![0u64; (n1 + 1) * (n2 + 1)];
    let fcols = n2 + 1;

    for &i in &v1.keyroots {
        for &j in &v2.keyroots {
            compute_treedist(&v1, &v2, i, j, &mut treedist, &mut fd, fcols, n2);
        }
    }
    treedist[(n1 - 1) * n2 + (n2 - 1)]
}

#[allow(clippy::too_many_arguments)]
fn compute_treedist(
    v1: &PostorderView,
    v2: &PostorderView,
    i: usize,
    j: usize,
    treedist: &mut [u64],
    fd: &mut [u64],
    fcols: usize,
    n2: usize,
) {
    let li = v1.lld[i];
    let lj = v2.lld[j];
    // fd indices are offset by the leftmost leaves: forest (li..=x, lj..=y)
    // is stored at fd[(x - li + 1) * fcols + (y - lj + 1)].
    let at = |x: usize, y: usize| x * fcols + y;

    fd[at(0, 0)] = 0;
    for x in 1..=(i - li + 1) {
        fd[at(x, 0)] = fd[at(x - 1, 0)] + DEL;
    }
    for y in 1..=(j - lj + 1) {
        fd[at(0, y)] = fd[at(0, y - 1)] + INS;
    }
    for x in 1..=(i - li + 1) {
        let px = li + x - 1; // postorder number in t1
        for y in 1..=(j - lj + 1) {
            let py = lj + y - 1; // postorder number in t2
            if v1.lld[px] == li && v2.lld[py] == lj {
                // Both forests are whole trees: record a tree distance.
                let d = (fd[at(x - 1, y)] + DEL)
                    .min(fd[at(x, y - 1)] + INS)
                    .min(fd[at(x - 1, y - 1)] + ren(v1.labels[px], v2.labels[py]));
                fd[at(x, y)] = d;
                treedist[px * n2 + py] = d;
            } else {
                let xl = v1.lld[px] - li; // size of t1 prefix before subtree px
                let yl = v2.lld[py] - lj;
                fd[at(x, y)] = (fd[at(x - 1, y)] + DEL)
                    .min(fd[at(x, y - 1)] + INS)
                    .min(fd[at(xl, yl)] + treedist[px * n2 + py]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqgram_tree::generate::{random_tree, RandomTreeConfig};
    use pqgram_tree::{EditOp, LabelTable, ScriptConfig, ScriptMix};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn leaf_chain(lt: &mut LabelTable, labels: &[&str]) -> Tree {
        let mut t = Tree::with_root(lt.intern(labels[0]));
        let mut cur = t.root();
        for l in &labels[1..] {
            cur = t.add_child(cur, lt.intern(l));
        }
        t
    }

    #[test]
    fn identical_trees_distance_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lt = LabelTable::new();
        let t = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(40, 5));
        assert_eq!(tree_edit_distance(&t, &t), 0);
    }

    #[test]
    fn single_rename() {
        let mut lt = LabelTable::new();
        let t1 = leaf_chain(&mut lt, &["a", "b", "c"]);
        let t2 = leaf_chain(&mut lt, &["a", "x", "c"]);
        assert_eq!(tree_edit_distance(&t1, &t2), 1);
    }

    #[test]
    fn chain_vs_single_node() {
        let mut lt = LabelTable::new();
        let t1 = leaf_chain(&mut lt, &["a", "b", "c", "d"]);
        let t2 = leaf_chain(&mut lt, &["a"]);
        assert_eq!(tree_edit_distance(&t1, &t2), 3);
        assert_eq!(tree_edit_distance(&t2, &t1), 3);
    }

    #[test]
    fn classic_zhang_shasha_example() {
        // The well-known example from the original paper:
        // T1 = f(d(a c(b)) e), T2 = f(c(d(a b)) e), distance 2.
        let mut lt = LabelTable::new();
        let (a, b, c, d, e, f) = (
            lt.intern("a"),
            lt.intern("b"),
            lt.intern("c"),
            lt.intern("d"),
            lt.intern("e"),
            lt.intern("f"),
        );
        let mut t1 = Tree::with_root(f);
        let d1 = t1.add_child(t1.root(), d);
        t1.add_child(t1.root(), e);
        t1.add_child(d1, a);
        let c1 = t1.add_child(d1, c);
        t1.add_child(c1, b);

        let mut t2 = Tree::with_root(f);
        let c2 = t2.add_child(t2.root(), c);
        t2.add_child(t2.root(), e);
        let d2 = t2.add_child(c2, d);
        t2.add_child(d2, a);
        t2.add_child(d2, b);

        assert_eq!(tree_edit_distance(&t1, &t2), 2);
    }

    #[test]
    fn sibling_order_matters() {
        let mut lt = LabelTable::new();
        let (r, a, b) = (lt.intern("r"), lt.intern("a"), lt.intern("b"));
        let mut t1 = Tree::with_root(r);
        t1.add_child(t1.root(), a);
        t1.add_child(t1.root(), b);
        let mut t2 = Tree::with_root(r);
        t2.add_child(t2.root(), b);
        t2.add_child(t2.root(), a);
        assert_eq!(tree_edit_distance(&t1, &t2), 2);
    }

    #[test]
    fn symmetry_on_random_trees() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut lt = LabelTable::new();
        for _ in 0..10 {
            let t1 = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(25, 4));
            let t2 = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(30, 4));
            assert_eq!(tree_edit_distance(&t1, &t2), tree_edit_distance(&t2, &t1));
        }
    }

    #[test]
    fn triangle_inequality_on_random_trees() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut lt = LabelTable::new();
        for _ in 0..10 {
            let a = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(15, 3));
            let b = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(20, 3));
            let c = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(18, 3));
            let ab = tree_edit_distance(&a, &b);
            let bc = tree_edit_distance(&b, &c);
            let ac = tree_edit_distance(&a, &c);
            assert!(ac <= ab + bc, "triangle violated: {ac} > {ab} + {bc}");
        }
    }

    #[test]
    fn bounded_by_script_length() {
        // k edit operations can move the tree at most distance k... for
        // renames and leaf inserts/deletes this is exact unit-cost bound;
        // inner INS/DEL also cost 1 in the Zhang-Shasha model.
        let mut rng = StdRng::seed_from_u64(7);
        for seed in 0..10u64 {
            let mut rng2 = StdRng::seed_from_u64(seed);
            let mut lt = LabelTable::new();
            let mut t = random_tree(&mut rng2, &mut lt, &RandomTreeConfig::new(30, 4));
            let t0 = t.clone();
            let alphabet: Vec<_> = lt.iter().map(|(s, _)| s).collect();
            let mut cfg = ScriptConfig::new(5, alphabet);
            // Leaf-local edits only so each op is one unit-cost edit.
            cfg.max_adopted = 0;
            cfg.mix = ScriptMix {
                insert: 1,
                delete: 0,
                rename: 2,
            };
            let (_, forward) = pqgram_tree::record_script(&mut rng, &mut t, &cfg);
            assert_eq!(forward.len(), 5);
            assert!(forward
                .iter()
                .all(|op| !matches!(op, EditOp::Delete { .. })));
            let d = tree_edit_distance(&t0, &t);
            assert!(d <= 5, "distance {d} exceeds script length");
        }
    }

    #[test]
    fn insert_inner_node_costs_one() {
        let mut lt = LabelTable::new();
        let (r, a, b, x) = (
            lt.intern("r"),
            lt.intern("a"),
            lt.intern("b"),
            lt.intern("x"),
        );
        let mut t1 = Tree::with_root(r);
        t1.add_child(t1.root(), a);
        t1.add_child(t1.root(), b);
        let mut t2 = t1.clone();
        let id = t2.next_node_id();
        t2.apply(EditOp::Insert {
            node: id,
            label: x,
            parent: t2.root(),
            k: 1,
            m: 2,
        })
        .unwrap();
        assert_eq!(tree_edit_distance(&t1, &t2), 1);
    }
}
