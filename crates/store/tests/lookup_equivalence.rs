//! Property tests: the persistent lookup plans agree with each other and
//! with the in-memory [`ForestIndex`] oracle.
//!
//! Three implementations of the same approximate lookup are compared on
//! random forests:
//!
//! 1. the planner-driven candidate merge over the inverted relation — the
//!    only plan, for **every** threshold including `τ > 1`
//!    ([`IndexStore::lookup_with_stats`]; `τ > 1` enumerates the
//!    zero-overlap trees from the totals relation, there is no exhaustive
//!    fallback);
//! 2. the exhaustive forward-relation scan
//!    ([`IndexStore::lookup_exhaustive_with_stats`], the version-1 plan,
//!    kept as the reference oracle);
//! 3. [`ForestIndex::lookup`], the in-memory oracle.
//!
//! Top-k lookups are checked against the same reference: `top_k(K)` must
//! equal the first `K` entries of the distance-sorted exhaustive answer,
//! ties broken by tree id.
//!
//! Equality is **exact** (no epsilon): all three compute
//! `1 − 2·|I₁ ∩ I₂| / (|I₁| + |I₂|)` over the same integers with the same
//! float operations (`pqgram_core::join::overlap_distance` /
//! `pq_distance`), so the results are bit-identical.
//!
//! Forests include members with *empty* bags: [`IndexStore::put_tree`]
//! stores zero rows for them, making them invisible to persistent lookups,
//! so the oracle only receives the non-empty members.

use pqgram_core::{build_index, ForestIndex, PQParams, TreeId, TreeIndex};
use pqgram_store::{
    FaultVfs, IndexStore, InvertedEncoding, LookupPlan, SegmentedIndexStore, MAIN_SOURCE,
    MEMTABLE_SOURCE,
};
use pqgram_tree::generate::{random_tree, RandomTreeConfig};
use pqgram_tree::LabelTable;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pqgram-equiv-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(name);
    std::fs::remove_file(&p).ok();
    let mut j = p.as_os_str().to_owned();
    j.push("-journal");
    std::fs::remove_file(PathBuf::from(j)).ok();
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn persistent_lookup_plans_match_the_in_memory_oracle(
        // (node count, seed) per member; node count 0 means an empty bag.
        members in proptest::collection::vec((0usize..40, any::<u64>()), 1..16),
        query_nodes in 1usize..60,
        query_seed in any::<u64>(),
        tau_pick in 0usize..5,
        case in 0u64..u64::MAX,
    ) {
        // τ = 1.0 exercises the plan's boundary (distance-1.0 non-hits);
        // τ > 1 exercises the zero-overlap enumeration (distance-1.0 hits).
        let tau = [0.1, 0.5, 1.0, 1.5, 2.0][tau_pick];
        let params = PQParams::new(2, 3);
        let path = tmp(&format!("equiv-{case}.pqg"));
        let mut lt = LabelTable::new();
        let mut store = IndexStore::create(&path, params).unwrap();
        let mut oracle = ForestIndex::new();
        for (i, &(nodes, seed)) in members.iter().enumerate() {
            let id = TreeId(i as u64);
            let index = if nodes == 0 {
                TreeIndex::empty(params)
            } else {
                let mut rng = StdRng::seed_from_u64(seed);
                let tree = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(nodes, 5));
                build_index(&tree, &lt, params)
            };
            store.put_tree(id, &index).unwrap();
            if index.total() > 0 {
                oracle.insert(id, index);
            }
        }
        let mut rng = StdRng::seed_from_u64(query_seed);
        let qtree = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(query_nodes, 5));
        let query = build_index(&qtree, &lt, params);

        let expected = oracle.lookup(&query, tau).unwrap();
        let (inverted, inv_stats) = store.lookup_with_stats(&query, tau).unwrap();
        let (scanned, scan_stats) = store.lookup_exhaustive_with_stats(&query, tau).unwrap();
        // Every threshold — τ > 1 included — runs the candidate merge.
        prop_assert!(inv_stats.used_inverted);
        prop_assert_eq!(inv_stats.plan, LookupPlan::CandidateMerge);
        prop_assert!(!scan_stats.used_inverted);
        prop_assert_eq!(scan_stats.plan, LookupPlan::ExhaustiveReference);
        prop_assert_eq!(&inverted, &expected);
        prop_assert_eq!(&scanned, &expected);
        // The scan reads the whole forward relation.
        prop_assert_eq!(scan_stats.rows_read, store.row_count().unwrap());
        std::fs::remove_file(&path).ok();
    }

    /// The segmented engine must answer every lookup **bit-identically** to
    /// a single-file store holding the merged forest, no matter how the
    /// members are spread over memtable, segment files (an N-way merge with
    /// overwrites and tombstones), and the compacted main file.
    #[test]
    fn segmented_lookups_match_the_single_file_plan_and_oracle(
        members in proptest::collection::vec((0usize..40, any::<u64>()), 1..20),
        // Per-member placement directive, cycled: after this member, 0-2 do
        // nothing, 3 flushes the memtable, 4 compacts everything.
        moves in proptest::collection::vec(0u8..5, 1..20),
        // Members overwritten with a fresh index and members tombstoned.
        overwrites in proptest::collection::vec((any::<prop::sample::Index>(), any::<u64>()), 0..4),
        removals in proptest::collection::vec(any::<prop::sample::Index>(), 0..3),
        query_nodes in 1usize..60,
        query_seed in any::<u64>(),
        tau_pick in 0usize..5,
    ) {
        let tau = [0.1, 0.5, 1.0, 1.5, 2.0][tau_pick];
        let params = PQParams::new(2, 3);
        let vfs: Arc<dyn pqgram_store::Vfs> = Arc::new(FaultVfs::new());
        let mut lt = LabelTable::new();
        let mut seg =
            SegmentedIndexStore::create_with(Path::new("/equiv/seg"), params, Arc::clone(&vfs))
                .unwrap();
        seg.set_flush_threshold(u64::MAX);
        let mk = |lt: &mut LabelTable, nodes: usize, seed: u64| {
            if nodes == 0 {
                TreeIndex::empty(params)
            } else {
                let mut rng = StdRng::seed_from_u64(seed);
                let tree = random_tree(&mut rng, lt, &RandomTreeConfig::new(nodes, 5));
                build_index(&tree, lt, params)
            }
        };
        // Final logical contents, mirrored into the single-file reference
        // and the oracle after the segmented store is fully built.
        let mut latest: Vec<TreeIndex> = Vec::new();
        for (i, &(nodes, seed)) in members.iter().enumerate() {
            let index = mk(&mut lt, nodes, seed);
            seg.put_tree(TreeId(i as u64), &index).unwrap();
            latest.push(index);
            match moves[i % moves.len()] {
                3 => seg.flush().unwrap(),
                4 => seg.compact().unwrap(),
                _ => {}
            }
        }
        for (pick, seed) in &overwrites {
            let i = pick.index(members.len());
            let index = mk(&mut lt, members[i].0 / 2 + 1, *seed);
            seg.put_tree(TreeId(i as u64), &index).unwrap();
            latest[i] = index;
        }
        for pick in &removals {
            let i = pick.index(members.len());
            seg.remove_tree(TreeId(i as u64)).unwrap();
            latest[i] = TreeIndex::empty(params);
        }

        let mut single =
            IndexStore::create_with(Path::new("/equiv/single"), params, Arc::clone(&vfs)).unwrap();
        let mut oracle = ForestIndex::new();
        for (i, index) in latest.iter().enumerate() {
            single.put_tree(TreeId(i as u64), index).unwrap();
            if index.total() > 0 {
                oracle.insert(TreeId(i as u64), index.clone());
            }
        }

        let mut rng = StdRng::seed_from_u64(query_seed);
        let qtree = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(query_nodes, 5));
        let query = build_index(&qtree, &lt, params);

        let expected = oracle.lookup(&query, tau).unwrap();
        let (single_hits, _) = single.lookup_with_stats(&query, tau).unwrap();
        let (merged, stats) = seg.lookup_with_stats(&query, tau).unwrap();
        prop_assert_eq!(&single_hits, &expected);
        prop_assert_eq!(&merged, &expected);
        prop_assert_eq!(seg.tree_ids().unwrap(), single.tree_ids().unwrap());
        // Row attribution covers every source exactly once, memtable (if
        // non-empty) first, main last, and sums to the rows read.
        let sources: Vec<u64> = stats.by_source.iter().map(|&(s, _)| s).collect();
        prop_assert_eq!(sources.last(), Some(&MAIN_SOURCE));
        prop_assert_eq!(
            sources.iter().filter(|&&s| s == MEMTABLE_SOURCE).count(),
            usize::from(seg.pending_entries() > 0)
        );
        prop_assert_eq!(
            stats.by_source.iter().map(|&(_, r)| r).sum::<u64>(),
            stats.rows_read
        );
        seg.verify().unwrap();

        // Top-k over the N-way merge must equal top-k over the single
        // file, which must equal the first k of the distance-sorted
        // exhaustive answer (τ = 1.5 admits every stored tree).
        let (all_sorted, _) = single.lookup_exhaustive_with_stats(&query, 1.5).unwrap();
        for k in [0usize, 1, 3, latest.len() + 4] {
            let top_seg = seg.lookup_top_k(&query, k).unwrap();
            let top_single = single.lookup_top_k(&query, k).unwrap();
            prop_assert_eq!(&top_seg, &top_single);
            prop_assert_eq!(&top_seg[..], &all_sorted[..k.min(all_sorted.len())]);
        }

        // Reopening after a clean shutdown (flush) preserves equivalence.
        seg.flush().unwrap();
        drop(seg);
        let seg = SegmentedIndexStore::open_with(Path::new("/equiv/seg"), vfs).unwrap();
        prop_assert_eq!(seg.lookup(&query, tau).unwrap(), expected);
        prop_assert_eq!(seg.lookup_top_k(&query, 3).unwrap(), &all_sorted[..3.min(all_sorted.len())]);
    }

    /// A bulk-created posting-block store must answer every lookup
    /// **bit-identically** to a row-per-posting store (the format-v2
    /// encoding, kept as the benchmark ablation) and to the in-memory
    /// oracle — through arbitrary point mutations, which rewrite, split,
    /// shrink and collapse blocks in place.
    #[test]
    fn posting_block_stores_match_row_per_posting_and_the_oracle(
        members in proptest::collection::vec((0usize..40, any::<u64>()), 1..12),
        // Each member is cloned under this many ids: ≥ 4 clones push every
        // shared gram over the block threshold, so real blocks form.
        clones in 1usize..6,
        overwrites in proptest::collection::vec((any::<prop::sample::Index>(), any::<u64>()), 0..4),
        removals in proptest::collection::vec(any::<prop::sample::Index>(), 0..3),
        query_nodes in 1usize..60,
        query_seed in any::<u64>(),
        tau_pick in 0usize..5,
    ) {
        let tau = [0.1, 0.5, 1.0, 1.5, 2.0][tau_pick];
        let params = PQParams::new(2, 3);
        let vfs: Arc<dyn pqgram_store::Vfs> = Arc::new(FaultVfs::new());
        let mut lt = LabelTable::new();
        let mk = |lt: &mut LabelTable, nodes: usize, seed: u64| {
            if nodes == 0 {
                TreeIndex::empty(params)
            } else {
                let mut rng = StdRng::seed_from_u64(seed);
                let tree = random_tree(&mut rng, lt, &RandomTreeConfig::new(nodes, 5));
                build_index(&tree, lt, params)
            }
        };
        // Forest: member i cloned under ids i, i+N, i+2N, … — shared grams
        // then carry `clones` postings each.
        let n = members.len() as u64;
        let mut latest: Vec<(TreeId, TreeIndex)> = Vec::new();
        for (i, &(nodes, seed)) in members.iter().enumerate() {
            let index = mk(&mut lt, nodes, seed);
            for c in 0..clones as u64 {
                latest.push((TreeId(i as u64 + c * n), index.clone()));
            }
        }
        latest.sort_unstable_by_key(|&(id, _)| id);
        let mut blocked = IndexStore::bulk_create_with_encoding(
            Path::new("/equiv/blocked"),
            params,
            latest.iter().map(|(id, ix)| (*id, ix)),
            Arc::clone(&vfs),
            InvertedEncoding::PostingBlocks,
        ).unwrap();
        let mut raw = IndexStore::bulk_create_with_encoding(
            Path::new("/equiv/raw"),
            params,
            latest.iter().map(|(id, ix)| (*id, ix)),
            Arc::clone(&vfs),
            InvertedEncoding::RowPerPosting,
        ).unwrap();
        if clones >= 4 && members.iter().any(|&(nodes, _)| nodes > 0) {
            prop_assert!(
                blocked.verify().unwrap().blocks > 0,
                "≥ 4 clones of a non-empty member must produce blocks"
            );
        }
        prop_assert_eq!(raw.verify().unwrap().blocks, 0);

        // The same point mutations against both encodings: overwrites and
        // removals hit a clone of a random member, exercising block
        // rewrite/split/shrink on `blocked` and plain rows on `raw`.
        for (pick, seed) in &overwrites {
            let i = pick.index(latest.len());
            let id = latest[i].0;
            let index = mk(&mut lt, members[pick.index(members.len())].0 / 2 + 1, *seed);
            blocked.put_tree(id, &index).unwrap();
            raw.put_tree(id, &index).unwrap();
            latest[i].1 = index;
        }
        for pick in &removals {
            let i = pick.index(latest.len());
            let id = latest[i].0;
            blocked.remove_tree(id).unwrap();
            raw.remove_tree(id).unwrap();
            latest[i].1 = TreeIndex::empty(params);
        }
        blocked.verify().unwrap();
        raw.verify().unwrap();

        let mut oracle = ForestIndex::new();
        for (id, index) in &latest {
            if index.total() > 0 {
                oracle.insert(*id, index.clone());
            }
        }
        let mut rng = StdRng::seed_from_u64(query_seed);
        let qtree = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(query_nodes, 5));
        let query = build_index(&qtree, &lt, params);

        let expected = oracle.lookup(&query, tau).unwrap();
        let (blocked_hits, blocked_stats) = blocked.lookup_with_stats(&query, tau).unwrap();
        let (raw_hits, raw_stats) = raw.lookup_with_stats(&query, tau).unwrap();
        prop_assert_eq!(&blocked_hits, &expected);
        prop_assert_eq!(&raw_hits, &expected);
        // The candidate merge is the only plan, for every threshold.
        prop_assert!(blocked_stats.used_inverted);
        prop_assert!(raw_stats.used_inverted);
        prop_assert_eq!(blocked_stats.plan, LookupPlan::CandidateMerge);
        prop_assert_eq!(raw_stats.plan, LookupPlan::CandidateMerge);
        // A row-per-posting store never touches a block.
        prop_assert_eq!(raw_stats.blocks_decoded, 0);
        prop_assert_eq!(raw_stats.bytes_decoded, 0);
    }

    /// `top_k(K)` on a single-file store must equal the first `K` entries
    /// of the distance-sorted exhaustive answer — for every `K`, including
    /// 0, exact forest size, and past-the-end — with ties broken by tree
    /// id on both sides.
    #[test]
    fn top_k_matches_the_distance_sorted_exhaustive_prefix(
        members in proptest::collection::vec((0usize..40, any::<u64>()), 1..16),
        query_nodes in 1usize..60,
        query_seed in any::<u64>(),
        case in 0u64..u64::MAX,
    ) {
        let params = PQParams::new(2, 3);
        let path = tmp(&format!("topk-{case}.pqg"));
        let mut lt = LabelTable::new();
        let mut store = IndexStore::create(&path, params).unwrap();
        for (i, &(nodes, seed)) in members.iter().enumerate() {
            let index = if nodes == 0 {
                TreeIndex::empty(params)
            } else {
                let mut rng = StdRng::seed_from_u64(seed);
                let tree = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(nodes, 5));
                build_index(&tree, &lt, params)
            };
            store.put_tree(TreeId(i as u64), &index).unwrap();
        }
        let mut rng = StdRng::seed_from_u64(query_seed);
        let qtree = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(query_nodes, 5));
        let query = build_index(&qtree, &lt, params);

        // τ = 1.5 admits every stored tree (all distances are ≤ 1), so the
        // sorted scan is the full nearest-neighbour ranking.
        let (all_sorted, _) = store.lookup_exhaustive_with_stats(&query, 1.5).unwrap();
        for k in [0usize, 1, 2, members.len(), members.len() + 5] {
            let (top, stats) = store.lookup_top_k_with_stats(&query, k).unwrap();
            prop_assert_eq!(&top[..], &all_sorted[..k.min(all_sorted.len())]);
            prop_assert_eq!(stats.hits, top.len());
            prop_assert!(stats.used_inverted);
        }
        std::fs::remove_file(&path).ok();
    }
}
