//! Property tests: the persistent lookup plans agree with each other and
//! with the in-memory [`ForestIndex`] oracle.
//!
//! Three implementations of the same approximate lookup are compared on
//! random forests:
//!
//! 1. the candidate-merge plan over the inverted relation (the default for
//!    `τ ≤ 1`, [`IndexStore::lookup_with_stats`]);
//! 2. the exhaustive forward-relation scan
//!    ([`IndexStore::lookup_exhaustive_with_stats`], the version-1 plan and
//!    the `τ > 1` fallback);
//! 3. [`ForestIndex::lookup`], the in-memory oracle.
//!
//! Equality is **exact** (no epsilon): all three compute
//! `1 − 2·|I₁ ∩ I₂| / (|I₁| + |I₂|)` over the same integers with the same
//! float operations (`pqgram_core::join::overlap_distance` /
//! `pq_distance`), so the results are bit-identical.
//!
//! Forests include members with *empty* bags: [`IndexStore::put_tree`]
//! stores zero rows for them, making them invisible to persistent lookups,
//! so the oracle only receives the non-empty members.

use pqgram_core::{build_index, ForestIndex, PQParams, TreeId, TreeIndex};
use pqgram_store::IndexStore;
use pqgram_tree::generate::{random_tree, RandomTreeConfig};
use pqgram_tree::LabelTable;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pqgram-equiv-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(name);
    std::fs::remove_file(&p).ok();
    let mut j = p.as_os_str().to_owned();
    j.push("-journal");
    std::fs::remove_file(PathBuf::from(j)).ok();
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn persistent_lookup_plans_match_the_in_memory_oracle(
        // (node count, seed) per member; node count 0 means an empty bag.
        members in proptest::collection::vec((0usize..40, any::<u64>()), 1..16),
        query_nodes in 1usize..60,
        query_seed in any::<u64>(),
        tau_pick in 0usize..4,
        case in 0u64..u64::MAX,
    ) {
        // τ = 1.0 exercises the inverted plan's boundary (distance-1.0
        // non-hits); τ = 1.2 exercises the exhaustive fallback.
        let tau = [0.1, 0.5, 1.0, 1.2][tau_pick];
        let params = PQParams::new(2, 3);
        let path = tmp(&format!("equiv-{case}.pqg"));
        let mut lt = LabelTable::new();
        let mut store = IndexStore::create(&path, params).unwrap();
        let mut oracle = ForestIndex::new();
        for (i, &(nodes, seed)) in members.iter().enumerate() {
            let id = TreeId(i as u64);
            let index = if nodes == 0 {
                TreeIndex::empty(params)
            } else {
                let mut rng = StdRng::seed_from_u64(seed);
                let tree = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(nodes, 5));
                build_index(&tree, &lt, params)
            };
            store.put_tree(id, &index).unwrap();
            if index.total() > 0 {
                oracle.insert(id, index);
            }
        }
        let mut rng = StdRng::seed_from_u64(query_seed);
        let qtree = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(query_nodes, 5));
        let query = build_index(&qtree, &lt, params);

        let expected = oracle.lookup(&query, tau);
        let (inverted, inv_stats) = store.lookup_with_stats(&query, tau).unwrap();
        let (scanned, scan_stats) = store.lookup_exhaustive_with_stats(&query, tau).unwrap();
        prop_assert_eq!(inv_stats.used_inverted, tau <= 1.0);
        prop_assert!(!scan_stats.used_inverted);
        prop_assert_eq!(&inverted, &expected);
        prop_assert_eq!(&scanned, &expected);
        // The scan reads the whole forward relation; the inverted plan
        // never reads more rows than that plus one totals row per
        // candidate.
        prop_assert_eq!(scan_stats.rows_read, store.row_count().unwrap());
        std::fs::remove_file(&path).ok();
    }
}
