//! Structure-aware decode fuzzing — the dynamic backstop behind the
//! static taint pass (`cargo xtask analyze`, DESIGN.md §16).
//!
//! Every decoder that consumes raw disk bytes must *verify or reject*:
//! any input returns `Ok` or a corruption error — never a panic, hang,
//! over-allocation, or silently wrong answer. The harness mutates a
//! committed seed corpus (`tests/corpus/decode/`) with structure-aware
//! byte operations (field-targeted overwrites, bit flips, truncation,
//! splicing, CRC repair so deeper validation layers get exercised) and
//! asserts those contracts over the posting-block decoder, the learned
//! fence, and real store/segment/manifest headers.
//!
//! Self-contained by design: its own splitmix64, no fuzzing crates, no
//! nightly — it runs as a plain `cargo test` and gates every PR via the
//! CI smoke job. Scale the case count with `DECODE_FUZZ_CASES`.

use pqgram_store::fuzz;
use pqgram_store::{IndexStore, SegmentedIndexStore, PAGE_SIZE};
use std::path::PathBuf;

/// splitmix64 — deterministic, seedable, no dependencies.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        usize::try_from(self.next() % u64::try_from(n).unwrap_or(1)).unwrap_or(0)
    }
}

/// Mutation budget per case, env-tunable (`DECODE_FUZZ_CASES`). The
/// default keeps the suite a smoke test; CI raises it.
fn cases() -> usize {
    std::env::var("DECODE_FUZZ_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000)
}

/// `tests/corpus/decode` under the store crate, resolved for both cargo
/// and bare-rustc (offline) invocations from the workspace root.
fn corpus_dir() -> PathBuf {
    std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("crates/store"))
        .join("tests/corpus/decode")
}

fn load_corpus() -> Vec<Vec<u8>> {
    let mut names: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("read corpus dir")
        .map(|e| e.expect("dir entry").path())
        .collect();
    names.sort();
    let seeds: Vec<Vec<u8>> = names
        .iter()
        .map(|p| std::fs::read(p).expect("read seed"))
        .collect();
    assert!(!seeds.is_empty(), "committed corpus must not be empty");
    seeds
}

/// One structure-aware mutation step: field-targeted overwrites hit the
/// header scalars validation branches on, generic ops hit everything else.
fn mutate(rng: &mut Rng, bytes: &mut Vec<u8>) {
    match rng.below(8) {
        // Bit flip anywhere.
        0 | 1 => {
            if !bytes.is_empty() {
                let at = rng.below(bytes.len());
                bytes[at] ^= 1 << rng.below(8);
            }
        }
        // Overwrite a u16 field, biased toward the header scalars
        // (row count at 32, payload length at 34, gram count at 36).
        2 => {
            let at = match rng.below(4) {
                0 => 32,
                1 => 34,
                2 => 36,
                _ => rng.below(bytes.len().saturating_sub(1).max(1)),
            };
            if at + 2 <= bytes.len() {
                let v = match rng.below(4) {
                    0 => 0u16,
                    1 => u16::MAX,
                    2 => 257,
                    _ => u16::try_from(rng.next() & 0xffff).unwrap_or(0),
                };
                bytes[at..at + 2].copy_from_slice(&v.to_le_bytes());
            }
        }
        // Overwrite one of the first/last key u64s.
        3 => {
            let at = 8 * rng.below(4);
            if at + 8 <= bytes.len() {
                let v = match rng.below(3) {
                    0 => 0u64,
                    1 => u64::MAX,
                    _ => rng.next(),
                };
                bytes[at..at + 8].copy_from_slice(&v.to_le_bytes());
            }
        }
        // Truncate.
        4 => {
            bytes.truncate(rng.below(bytes.len() + 1));
        }
        // Extend with garbage.
        5 => {
            for _ in 0..=rng.below(32) {
                bytes.push(u8::try_from(rng.next() & 0xff).unwrap_or(0));
            }
        }
        // Random byte write.
        6 => {
            if !bytes.is_empty() {
                let at = rng.below(bytes.len());
                bytes[at] = u8::try_from(rng.next() & 0xff).unwrap_or(0);
            }
        }
        // Section-width bytes just past the entry header (offset 38..42).
        _ => {
            let at = 38 + rng.below(4);
            if at < bytes.len() {
                bytes[at] = u8::try_from(rng.next() & 0xff).unwrap_or(0);
            }
        }
    }
}

/// Repairs the trailing CRC-32 so mutations reach the validation layers
/// behind the checksum.
fn fix_crc(bytes: &mut [u8]) {
    if bytes.len() >= 4 {
        let at = bytes.len() - 4;
        let crc = pqgram_store::crc::crc32(&bytes[..at]);
        bytes[at..].copy_from_slice(&crc.to_le_bytes());
    }
}

/// Row invariants a successful decode must always uphold, whatever the
/// input bytes looked like.
fn assert_decoded_invariants(rows: &[((u64, u64), u32)], what: &str) {
    assert!(!rows.is_empty(), "{what}: decoded zero rows");
    assert!(
        rows.len() <= fuzz::MAX_BLOCK_ROWS,
        "{what}: decoded {} rows past the structural cap",
        rows.len()
    );
    for w in rows.windows(2) {
        assert!(w[0].0 < w[1].0, "{what}: rows not strictly ascending");
    }
    assert!(
        rows.iter().all(|&(_, c)| c > 0),
        "{what}: non-positive posting count"
    );
}

#[test]
fn committed_seeds_decode_cleanly() {
    for (i, seed) in load_corpus().iter().enumerate() {
        let rows = fuzz::decode_block(seed).expect("corpus seed must be a valid block");
        assert_decoded_invariants(&rows, &format!("seed {i}"));
    }
}

#[test]
fn mutated_posting_blocks_verify_or_reject() {
    let seeds = load_corpus();
    let mut rng = Rng(0x5eed_0001);
    for case in 0..cases() {
        let mut bytes = seeds[case % seeds.len()].clone();
        for _ in 0..=rng.below(6) {
            mutate(&mut rng, &mut bytes);
        }
        // Half the cases get a repaired checksum: those exercise the
        // structural validation; the rest exercise CRC rejection.
        if rng.below(2) == 0 {
            fix_crc(&mut bytes);
        }
        if let Ok(rows) = fuzz::decode_block(&bytes) {
            assert_decoded_invariants(&rows, &format!("case {case}"));
        }
    }
}

#[test]
fn random_garbage_blocks_never_panic() {
    let mut rng = Rng(0x5eed_0002);
    for _ in 0..cases() {
        let len = rng.below(600);
        let mut bytes = vec![0u8; len];
        for b in bytes.iter_mut() {
            *b = u8::try_from(rng.next() & 0xff).unwrap_or(0);
        }
        if rng.below(3) == 0 {
            fix_crc(&mut bytes);
        }
        if let Ok(rows) = fuzz::decode_block(&bytes) {
            assert_decoded_invariants(&rows, "garbage");
        }
    }
}

#[test]
fn fuzzed_fence_probes_match_binary_search() {
    let mut rng = Rng(0x5eed_0003);
    for _ in 0..cases() / 40 {
        let n = 1 + rng.below(3_000);
        let mut grams: Vec<u64> = (0..n)
            .map(|_| match rng.below(4) {
                // Tight cluster, duplicate-heavy run, or full-range point.
                0 => rng.next(),
                1 => (1 << 44) + rng.next() % 64,
                _ => (1 << 20) + rng.next() % 4_096,
            })
            .collect();
        grams.sort_unstable();
        let fence = fuzz::Fence::over_grams(grams.clone());
        let mut probes: Vec<u64> = (0..64).map(|_| rng.next()).collect();
        probes.extend((0..64).map(|_| grams[rng.below(n)]));
        probes.push(0);
        probes.push(u64::MAX);
        for probe in probes {
            let expect =
                grams.partition_point(|&g| g < probe)..grams.partition_point(|&g| g <= probe);
            assert_eq!(fence.locate(probe), expect, "probe {probe} over {n} rows");
        }
    }
}

// ---------------------------------------------------------------------------
// Header fuzz over real files: store, segment, and manifest opens must
// return (Ok or Err) on arbitrary header-page bytes — never panic or
// stall. File I/O bounds the case count.
// ---------------------------------------------------------------------------

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pqgram-decodefuzz-{}", std::process::id()));
    std::fs::create_dir_all(&dir).ok();
    dir.join(name)
}

/// Mutates the header page (page 0) of `image`: meta-slot overwrites with
/// boundary values, raw byte writes, truncation — CRC repaired half the
/// time so semantic validation runs.
fn mutate_header(rng: &mut Rng, image: &mut Vec<u8>) {
    let hdr = PAGE_SIZE.min(image.len());
    match rng.below(6) {
        // Meta slot (u64 at 24 + 8i) with a boundary value.
        0 | 1 | 2 => {
            let at = 24 + 8 * rng.below(16);
            if at + 8 <= hdr {
                let v = match rng.below(5) {
                    0 => 0u64,
                    1 => u64::MAX,
                    2 => u64::MAX - 1,
                    3 => 1 << 32,
                    _ => rng.next(),
                };
                image[at..at + 8].copy_from_slice(&v.to_le_bytes());
            }
        }
        3 => {
            let at = rng.below(hdr);
            image[at] ^= 1 << rng.below(8);
        }
        4 => {
            let keep = rng.below(image.len() + 1);
            image.truncate(keep);
        }
        _ => {
            let at = rng.below(hdr);
            image[at] = u8::try_from(rng.next() & 0xff).unwrap_or(0);
        }
    }
    if image.len() >= PAGE_SIZE && rng.below(2) == 0 {
        let crc = pqgram_store::crc::crc32(&image[..PAGE_SIZE - 4]);
        image[PAGE_SIZE - 4..PAGE_SIZE].copy_from_slice(&crc.to_le_bytes());
    }
}

#[test]
fn fuzzed_store_headers_never_panic_on_open() {
    use pqgram_core::{build_index, PQParams, TreeId};
    use pqgram_tree::{LabelTable, Tree};

    let params = PQParams::new(2, 3);
    let mut lt = LabelTable::new();
    let mut tree = Tree::with_root(lt.intern("r"));
    let root = tree.root();
    for i in 0..40 {
        tree.add_child(root, lt.intern(&format!("c{}", i % 5)));
    }
    let idx = build_index(&tree, &lt, params);
    let path = tmp("hdr.pqg");
    std::fs::remove_file(&path).ok();
    let store = IndexStore::bulk_create(&path, params, vec![(TreeId(1), &idx)]).unwrap();
    drop(store);
    let pristine = std::fs::read(&path).unwrap();

    let mut rng = Rng(0x5eed_0004);
    for _ in 0..(cases() / 10).max(50) {
        let mut image = pristine.clone();
        for _ in 0..=rng.below(3) {
            mutate_header(&mut rng, &mut image);
        }
        std::fs::write(&path, &image).unwrap();
        if let Ok(s) = IndexStore::open(&path) {
            let _ = s.verify();
        }
    }
    std::fs::write(&path, &pristine).unwrap();
    IndexStore::open(&path).unwrap().verify().unwrap();
}

#[test]
fn fuzzed_manifest_and_segment_headers_never_panic_on_open() {
    use pqgram_core::{build_index, PQParams, TreeId};
    use pqgram_tree::{LabelTable, Tree};

    let params = PQParams::new(2, 3);
    let mut lt = LabelTable::new();
    let mut tree = Tree::with_root(lt.intern("r"));
    let root = tree.root();
    for i in 0..40 {
        tree.add_child(root, lt.intern(&format!("c{}", i % 5)));
    }
    let idx = build_index(&tree, &lt, params);
    let base = tmp("seg.pqg");
    for suffix in ["", ".main.0", ".seg.0", ".seg.1"] {
        let mut p = base.as_os_str().to_owned();
        p.push(suffix);
        std::fs::remove_file(PathBuf::from(p)).ok();
    }
    let mut store = SegmentedIndexStore::create(&base, params).unwrap();
    for i in 1..=4 {
        store.put_tree(TreeId(i), &idx).unwrap();
    }
    store.flush().unwrap();
    drop(store);
    let mut seg = base.as_os_str().to_owned();
    seg.push(".seg.0");
    let seg = PathBuf::from(seg);
    let pristine_manifest = std::fs::read(&base).unwrap();
    let pristine_seg = std::fs::read(&seg).unwrap();

    let mut rng = Rng(0x5eed_0005);
    for case in 0..(cases() / 20).max(25) {
        let mut manifest = pristine_manifest.clone();
        let mut segment = pristine_seg.clone();
        // Alternate targets; occasionally corrupt both at once.
        if case % 3 != 1 {
            mutate_header(&mut rng, &mut manifest);
        }
        if case % 3 != 0 {
            mutate_header(&mut rng, &mut segment);
        }
        std::fs::write(&base, &manifest).unwrap();
        std::fs::write(&seg, &segment).unwrap();
        if let Ok(s) = SegmentedIndexStore::open(&base) {
            let _ = s.verify();
        }
    }
    std::fs::write(&base, &pristine_manifest).unwrap();
    std::fs::write(&seg, &pristine_seg).unwrap();
    SegmentedIndexStore::open(&base).unwrap().verify().unwrap();
}

// ---------------------------------------------------------------------------
// Gram-filter page fuzz: the filter loader must *load or reject* any
// bytes (it is advisory — rejection is the designed response to damage),
// and a store that still opens must never fabricate lookup answers,
// because every hit is re-derived from the relations.
// ---------------------------------------------------------------------------

/// One structure-aware mutation inside a random gram-filter page: header
/// scalars (`nblocks`/`capacity`/`count` at 8/16/24, `npages`/`nindirect`
/// at 32/36), direct page ids (from 40), plus generic bit flips and byte
/// writes — with the page CRC repaired half the time so the validation
/// behind the checksum gets exercised.
fn mutate_filter_page(rng: &mut Rng, image: &mut [u8], offsets: &[u64]) {
    let off = usize::try_from(offsets[rng.below(offsets.len())]).unwrap_or(0);
    if off + PAGE_SIZE > image.len() {
        return;
    }
    match rng.below(6) {
        // Header scalar with a boundary value (straddles the two u32
        // counters when it lands at 32 — deliberate).
        0 | 1 => {
            let at = off
                + match rng.below(5) {
                    0 => 8,
                    1 => 16,
                    2 => 24,
                    3 => 32,
                    _ => 36,
                };
            let v = match rng.below(6) {
                0 => 0u64,
                1 => u64::MAX,
                2 => 1 << 24,
                3 => (1 << 24) + 1,
                4 => 1,
                _ => rng.next(),
            };
            image[at..at + 8].copy_from_slice(&v.to_le_bytes());
        }
        // A direct data-page id: null, sentinel, aliased low page, random.
        2 => {
            let at = off + 40 + 4 * rng.below(512);
            let v = match rng.below(4) {
                0 => 0u32,
                1 => u32::MAX,
                2 => 7,
                _ => u32::try_from(rng.next() & 0xffff_ffff).unwrap_or(0),
            };
            image[at..at + 4].copy_from_slice(&v.to_le_bytes());
        }
        // Bit flip anywhere on the page.
        3 | 4 => {
            let at = off + rng.below(PAGE_SIZE);
            image[at] ^= 1 << rng.below(8);
        }
        // Random byte write.
        _ => {
            let at = off + rng.below(PAGE_SIZE);
            image[at] = u8::try_from(rng.next() & 0xff).unwrap_or(0);
        }
    }
    if rng.below(2) == 0 {
        use fuzz::filter_layout as fl;
        if off == usize::try_from(offsets[0]).unwrap_or(0) {
            let at = off + fl::OFF_HEADER_CRC;
            let crc = pqgram_store::crc::crc32(&image[off..at]);
            image[at..at + 4].copy_from_slice(&crc.to_le_bytes());
        } else {
            let p = off + fl::OFF_PAYLOAD;
            let crc = pqgram_store::crc::crc32(&image[p..p + fl::DATA_PAYLOAD]);
            let at = off + fl::OFF_PAGE_CRC;
            image[at..at + 4].copy_from_slice(&crc.to_le_bytes());
        }
    }
}

#[test]
fn fuzzed_filter_pages_load_or_reject_and_never_fabricate_hits() {
    use pqgram_core::{build_index, PQParams, TreeId, TreeIndex};
    use pqgram_tree::{LabelTable, Tree};

    // Unique labels per tree push the distinct-gram count past one data
    // page, so the fuzzer reaches the multi-page layout (direct table,
    // page chaining), not just a single-page special case.
    let params = PQParams::new(2, 3);
    let mut lt = LabelTable::new();
    let indexes: Vec<TreeIndex> = (0..8)
        .map(|t| {
            let mut tree = Tree::with_root(lt.intern(&format!("u{t}root")));
            let mut ids = vec![tree.root()];
            for i in 1..200 {
                let parent = ids[i / 2];
                ids.push(tree.add_child(parent, lt.intern(&format!("u{t}n{i}"))));
            }
            build_index(&tree, &lt, params)
        })
        .collect();
    let forest: Vec<(TreeId, &TreeIndex)> = indexes
        .iter()
        .enumerate()
        .map(|(i, idx)| (TreeId(u64::try_from(i).unwrap_or(0) + 1), idx))
        .collect();
    let path = tmp("filter.pqg");
    std::fs::remove_file(&path).ok();
    let store = IndexStore::bulk_create(&path, params, forest).unwrap();
    let query = &indexes[0];
    let baseline = store.lookup(query, 0.8).unwrap();
    assert!(!baseline.is_empty(), "fixture query must have matches");
    drop(store);
    let pristine = std::fs::read(&path).unwrap();

    let offsets = fuzz::filter_page_offsets(&path).unwrap();
    assert!(
        offsets.len() >= 3,
        "fixture filter must span several pages (got {})",
        offsets.len()
    );
    assert!(fuzz::filter_load(&path).unwrap(), "pristine filter must load");

    let mut rng = Rng(0x5eed_0006);
    for _ in 0..(cases() / 10).max(50) {
        let mut image = pristine.clone();
        for _ in 0..=rng.below(3) {
            mutate_filter_page(&mut rng, &mut image, &offsets);
        }
        std::fs::write(&path, &image).unwrap();
        // Decode contract: loaded or rejected, never a panic, hang, or
        // allocation beyond the structural caps.
        let _ = fuzz::filter_load(&path);
        // End-to-end: a mutated filter either fails to load (dropped,
        // answers re-derive unpruned) or loads with its CRC forged back
        // to validity — and then the verifier's superset audit is the
        // backstop: a filter that *lost* bits undercounts overlap and is
        // flagged there. So whenever verification passes, answers must be
        // bit-identical to the pristine store; when it objects, lookups
        // must still return without panicking.
        if let Ok(s) = IndexStore::open(&path) {
            let verdict = s.verify();
            let looked = s.lookup(query, 0.8);
            if verdict.is_ok() {
                let hits = looked.expect("verified store must serve lookups");
                assert_eq!(hits, baseline, "verified store answered differently");
            }
        }
    }
    std::fs::write(&path, &pristine).unwrap();
    IndexStore::open(&path).unwrap().verify().unwrap();
}
