//! Exhaustive crash-point enumeration for the storage engine.
//!
//! A scripted workload runs against a [`FaultVfs`]; a fault-free pass
//! measures the total number of mutating I/O events and records the store
//! contents after every committed transaction. Then, for **every** event
//! index `n` of the mutation phase and every [`CrashMode`], a fresh run is
//! crashed at `n`, the surviving bytes are reopened, and the recovered store
//! must (a) pass structural verification and (b) hold *exactly* one of the
//! recorded snapshots — the state before or after some transaction, never a
//! hybrid of the two.
//!
//! The enumeration starts after store creation: creation is not a
//! transaction (there is no previous state to fall back to), so a crash
//! during it legitimately leaves an unopenable file.
//!
//! Mode coverage:
//! * `KeepUnsynced` — the kernel flushed everything, including the torn
//!   half of the in-flight write;
//! * `DropUnsynced` — power loss with volatile caches: only honestly synced
//!   bytes survive, for every file;
//! * `DropUnsyncedMatching("-journal")` — the journal loses its unsynced
//!   tail while the data file keeps everything (catches a data write racing
//!   its journal sync);
//! * `DropUnsyncedMatching(".db")` — the mirror asymmetry: the data file
//!   loses unsynced writes while the journal keeps them.

use pqgram_core::maintain::IndexDelta;
use pqgram_core::{build_index, PQParams, TreeId, TreeIndex};
use pqgram_store::{CrashMode, DocumentStore, FaultVfs, IndexStore};
use pqgram_tree::{LabelTable, Tree};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

const DB: &str = "/fault/crash.db";

fn modes() -> Vec<CrashMode> {
    vec![
        CrashMode::KeepUnsynced,
        CrashMode::DropUnsynced,
        CrashMode::DropUnsyncedMatching("-journal".into()),
        CrashMode::DropUnsyncedMatching(".db".into()),
    ]
}

/// A deterministic tree: node `i` hangs off node `i / 2`, labels cycle
/// through five `{tag}{k}` names interned in the shared table.
fn sample_tree(lt: &mut LabelTable, tag: &str, nodes: usize) -> Tree {
    let mut tree = Tree::with_root(lt.intern(&format!("{tag}0")));
    let mut ids = vec![tree.root()];
    for i in 1..nodes {
        let parent = ids[i / 2];
        ids.push(tree.add_child(parent, lt.intern(&format!("{tag}{}", i % 5))));
    }
    tree
}

// ---------------------------------------------------------------------------
// IndexStore
// ---------------------------------------------------------------------------

struct IndexFixtures {
    params: PQParams,
    a: TreeIndex,
    a2: TreeIndex,
    b: TreeIndex,
    c: TreeIndex,
}

fn index_fixtures() -> IndexFixtures {
    let params = PQParams::new(2, 3);
    let mut lt = LabelTable::new();
    let mk = |lt: &mut LabelTable, tag, n| {
        let tree = sample_tree(lt, tag, n);
        build_index(&tree, lt, params)
    };
    IndexFixtures {
        params,
        a: mk(&mut lt, "a", 18),
        a2: mk(&mut lt, "r", 24),
        b: mk(&mut lt, "b", 12),
        c: mk(&mut lt, "c", 60),
    }
}

/// Fault-free setup phase: bulk-create the store with the initial trees
/// plus four clones of tree `a` — every gram of `a` then carries five
/// postings, over the block threshold, so the mutation phase below
/// exercises posting-block rewrites (not just inline rows) at every
/// enumerated crash point.
fn index_setup(vfs: &FaultVfs, fx: &IndexFixtures) -> IndexStore {
    let vfs: Arc<FaultVfs> = Arc::new(vfs.clone());
    let forest = [
        (TreeId(1), &fx.a),
        (TreeId(2), &fx.b),
        (TreeId(11), &fx.a),
        (TreeId(12), &fx.a),
        (TreeId(13), &fx.a),
        (TreeId(14), &fx.a),
    ];
    let store = IndexStore::bulk_create_with(Path::new(DB), fx.params, forest, vfs).unwrap();
    assert!(
        store.verify().unwrap().blocks > 0,
        "setup must produce a block-bearing inverted relation"
    );
    store
}

/// The mutation phase, one closure per transaction.
type IndexOp<'a> =
    Box<dyn Fn(&mut IndexStore) -> Result<(), pqgram_store::index_store::IndexError> + 'a>;

fn index_ops(fx: &IndexFixtures) -> Vec<IndexOp<'_>> {
    vec![
        Box::new(|s| s.put_tree(TreeId(1), &fx.a2)),
        Box::new(|s| s.put_tree(TreeId(3), &fx.c)),
        Box::new(|s| s.remove_tree(TreeId(2)).map(|_| ())),
        // An incremental delta: removals and additions mutate all three
        // relations (forward, inverted, totals) in one transaction.
        Box::new(|s| {
            let mut grams: Vec<_> = fx.a2.iter().map(|(g, _)| g).collect();
            grams.sort_unstable();
            let delta = IndexDelta {
                removals: grams.into_iter().take(2).collect(),
                additions: vec![0xfeed_f00d, 0x0dd_ba11],
            };
            s.apply_delta(TreeId(1), &delta)
        }),
    ]
}

/// Everything the store holds, as seen through its public API.
fn index_contents(store: &IndexStore) -> BTreeMap<u64, TreeIndex> {
    store
        .tree_ids()
        .unwrap()
        .into_iter()
        .map(|id| (id.0, store.tree_index(id).unwrap().unwrap()))
        .collect()
}

#[test]
fn index_store_recovers_at_every_crash_point() {
    let fx = index_fixtures();

    // Fault-free pass: measure the event clock and record one snapshot per
    // committed transaction (reads do not tick the clock, so snapshotting
    // mid-run does not shift the crash points of the replays below).
    let vfs = FaultVfs::new();
    let mut store = index_setup(&vfs, &fx);
    let setup_events = vfs.io_events();
    let mut snapshots = vec![index_contents(&store)];
    for op in index_ops(&fx) {
        op(&mut store).unwrap();
        snapshots.push(index_contents(&store));
    }
    drop(store);
    let total_events = vfs.io_events();
    assert!(total_events > setup_events, "mutation phase must do I/O");

    for mode in modes() {
        for n in setup_events..total_events {
            let vfs = FaultVfs::new();
            let mut store = index_setup(&vfs, &fx);
            assert_eq!(vfs.io_events(), setup_events, "workload is deterministic");
            vfs.crash_at(n, mode.clone());
            for op in index_ops(&fx) {
                // Post-crash operations fail; the errors are the point.
                let _ = op(&mut store);
            }
            drop(store);
            assert!(vfs.crashed(), "crash point {n} ({mode:?}) never fired");

            let reopened = IndexStore::open_with(Path::new(DB), Arc::new(vfs.surviving()))
                .unwrap_or_else(|e| panic!("crash point {n} ({mode:?}): reopen failed: {e}"));
            reopened
                .verify()
                .unwrap_or_else(|e| panic!("crash point {n} ({mode:?}): verify failed: {e}"));
            // Filter pages commit under the same journal as the relations,
            // so recovery must land on a *loadable* filter (verify already
            // audited it as a superset) — a dropped filter would mean a
            // torn filter write survived the journal.
            assert!(
                reopened.has_gram_filter(),
                "crash point {n} ({mode:?}): recovered without a loadable gram filter",
            );
            let recovered = index_contents(&reopened);
            assert!(
                snapshots.contains(&recovered),
                "crash point {n} ({mode:?}): recovered to a hybrid state with ids {:?}",
                recovered.keys().collect::<Vec<_>>(),
            );
        }
    }
}

/// An injected sync failure must surface as an `Err` that aborts the
/// transaction — never as silent corruption. After reopening (the documented
/// recovery path), the store holds the pre-transaction state and the same
/// mutation succeeds on retry.
#[test]
fn failed_sync_aborts_the_transaction_and_reopen_recovers() {
    let fx = index_fixtures();

    // Count the syncs of one fault-free run so every ordinal gets a turn.
    let probe = FaultVfs::new();
    let mut store = index_setup(&probe, &fx);
    store.put_tree(TreeId(1), &fx.a2).unwrap();
    drop(store);
    // Sync ordinals are not exposed directly; the event clock bounds them.
    let sync_bound = probe.io_events();

    let mut fired = 0u64;
    for nth in 0..sync_bound {
        let vfs = FaultVfs::new();
        let mut store = index_setup(&vfs, &fx);
        let before = index_contents(&store);
        vfs.fail_sync(nth);
        match store.put_tree(TreeId(1), &fx.a2) {
            Ok(()) => {
                // `nth` pointed at a setup-phase sync that already ran.
                assert_eq!(index_contents(&store)[&1], fx.a2);
                continue;
            }
            Err(e) => {
                fired += 1;
                let msg = e.to_string();
                assert!(msg.contains("injected"), "unexpected error: {msg}");
            }
        }
        drop(store);
        let mut store = IndexStore::open_with(Path::new(DB), Arc::new(vfs.surviving())).unwrap();
        store.verify().unwrap();
        assert_eq!(
            index_contents(&store),
            before,
            "failed sync must abort cleanly"
        );
        store.put_tree(TreeId(1), &fx.a2).unwrap();
        assert_eq!(
            index_contents(&store)[&1],
            fx.a2,
            "retry after reopen succeeds"
        );
    }
    assert!(fired > 0, "no sync ordinal of the transaction was hit");
}

/// A drive that acknowledges syncs it never performs defeats journaling by
/// definition — but the failure must be *loud*: with nothing durable, reopen
/// reports corruption instead of serving stale or hybrid data.
#[test]
fn lying_syncs_lose_everything_loudly() {
    let fx = index_fixtures();
    let vfs = FaultVfs::new();
    vfs.lie_on_syncs();
    let mut store = index_setup(&vfs, &fx);
    let setup_events = vfs.io_events();
    vfs.crash_at(setup_events + 7, CrashMode::DropUnsynced);
    for op in index_ops(&fx) {
        let _ = op(&mut store);
    }
    drop(store);
    assert!(vfs.crashed());
    // No honest sync ever ran, so nothing is durable: the surviving data
    // file is empty and the open must fail — an error, not silent data loss.
    assert!(IndexStore::open_with(Path::new(DB), Arc::new(vfs.surviving())).is_err());

    // With flushed kernel caches (`KeepUnsynced`) the same lying drive is
    // harmless: recovery still lands on a real snapshot.
    let vfs = FaultVfs::new();
    vfs.lie_on_syncs();
    let mut store = index_setup(&vfs, &fx);
    let before = index_contents(&store);
    vfs.crash_at(vfs.io_events() + 7, CrashMode::KeepUnsynced);
    for op in index_ops(&fx) {
        let _ = op(&mut store);
    }
    drop(store);
    let reopened = IndexStore::open_with(Path::new(DB), Arc::new(vfs.surviving())).unwrap();
    reopened.verify().unwrap();
    let recovered = index_contents(&reopened);
    let mut after = before.clone();
    after.insert(1, fx.a2.clone());
    assert!(
        recovered == before || recovered == after,
        "lying syncs + kept caches must still recover to pre- or post-state"
    );
}

// ---------------------------------------------------------------------------
// DocumentStore
// ---------------------------------------------------------------------------

struct DocFixtures {
    params: PQParams,
    lt: LabelTable,
    t1: Tree,
    t1b: Tree,
    t1c: Tree,
    t2: Tree,
    t3: Tree,
}

fn doc_fixtures() -> DocFixtures {
    let params = PQParams::new(2, 3);
    let mut lt = LabelTable::new();
    let t1 = sample_tree(&mut lt, "a", 16);
    let t1b = sample_tree(&mut lt, "r", 22);
    // A small edit of t1b with the same root label: `sync` derives a script
    // and takes the incremental index-update path, not the re-index one.
    let mut t1c = t1b.clone();
    let n = t1c.add_child(t1c.root(), lt.intern("x1"));
    t1c.add_child(n, lt.intern("x2"));
    let t2 = sample_tree(&mut lt, "b", 10);
    let t3 = sample_tree(&mut lt, "c", 48);
    DocFixtures {
        params,
        lt,
        t1,
        t1b,
        t1c,
        t2,
        t3,
    }
}

fn doc_setup(vfs: &FaultVfs, fx: &DocFixtures) -> DocumentStore {
    let vfs: Arc<FaultVfs> = Arc::new(vfs.clone());
    let mut store = DocumentStore::create_with(Path::new(DB), fx.params, vfs).unwrap();
    store.put(TreeId(1), &fx.t1, &fx.lt).unwrap();
    store.put(TreeId(2), &fx.t2, &fx.lt).unwrap();
    store
}

type DocOp<'a> =
    Box<dyn Fn(&mut DocumentStore) -> Result<(), pqgram_store::document::DocError> + 'a>;

fn doc_ops(fx: &DocFixtures) -> Vec<DocOp<'_>> {
    vec![
        Box::new(|s| s.put(TreeId(1), &fx.t1b, &fx.lt)),
        Box::new(|s| s.put(TreeId(3), &fx.t3, &fx.lt)),
        Box::new(|s| s.remove(TreeId(2)).map(|_| ())),
        // Diff-driven incremental sync: index delta + new blob, one tx.
        Box::new(|s| s.sync(TreeId(1), &fx.t1c, &fx.lt).map(|_| ())),
    ]
}

/// Store contents in a table-independent form: each document decoded to its
/// preorder `(fanout, label-name)` sequence, plus its stored pq-gram index.
fn doc_contents(store: &DocumentStore) -> BTreeMap<u64, (Vec<String>, TreeIndex)> {
    store
        .ids()
        .unwrap()
        .into_iter()
        .map(|id| {
            let (tree, labels) = store.document(id).unwrap().unwrap();
            let shape = tree
                .preorder(tree.root())
                .map(|n| format!("{}:{}", tree.fanout(n), labels.name(tree.label(n))))
                .collect();
            let index = store.document_index(id).unwrap().unwrap();
            (id.0, (shape, index))
        })
        .collect()
}

#[test]
fn document_store_recovers_at_every_crash_point() {
    let fx = doc_fixtures();

    let vfs = FaultVfs::new();
    let mut store = doc_setup(&vfs, &fx);
    let setup_events = vfs.io_events();
    let mut snapshots = vec![doc_contents(&store)];
    for op in doc_ops(&fx) {
        op(&mut store).unwrap();
        snapshots.push(doc_contents(&store));
    }
    drop(store);
    let total_events = vfs.io_events();
    assert!(total_events > setup_events, "mutation phase must do I/O");

    for mode in modes() {
        for n in setup_events..total_events {
            let vfs = FaultVfs::new();
            let mut store = doc_setup(&vfs, &fx);
            assert_eq!(vfs.io_events(), setup_events, "workload is deterministic");
            vfs.crash_at(n, mode.clone());
            for op in doc_ops(&fx) {
                let _ = op(&mut store);
            }
            drop(store);
            assert!(vfs.crashed(), "crash point {n} ({mode:?}) never fired");

            let reopened = DocumentStore::open_with(Path::new(DB), Arc::new(vfs.surviving()))
                .unwrap_or_else(|e| panic!("crash point {n} ({mode:?}): reopen failed: {e}"));
            reopened
                .verify()
                .unwrap_or_else(|e| panic!("crash point {n} ({mode:?}): verify failed: {e}"));
            assert!(
                reopened.has_gram_filter().unwrap(),
                "crash point {n} ({mode:?}): recovered without a loadable gram filter",
            );
            let recovered = doc_contents(&reopened);
            assert!(
                snapshots.contains(&recovered),
                "crash point {n} ({mode:?}): recovered to a hybrid state with ids {:?}",
                recovered.keys().collect::<Vec<_>>(),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// SegmentedIndexStore
// ---------------------------------------------------------------------------

use pqgram_store::SegmentedIndexStore;

/// Fault-free setup: create the segmented store and flush the initial trees
/// into segment 0, so the mutation phase starts from a durable state.
fn seg_setup(vfs: &FaultVfs, fx: &IndexFixtures) -> SegmentedIndexStore {
    let vfs: Arc<FaultVfs> = Arc::new(vfs.clone());
    let mut store = SegmentedIndexStore::create_with(Path::new(DB), fx.params, vfs).unwrap();
    store.put_tree(TreeId(1), &fx.a).unwrap();
    store.put_tree(TreeId(2), &fx.b).unwrap();
    store.flush().unwrap();
    store
}

type SegOp<'a> =
    Box<dyn Fn(&mut SegmentedIndexStore) -> Result<(), pqgram_store::index_store::IndexError> + 'a>;

/// The mutation phase. The memtable is volatile by contract, so every op
/// ends at a durability point (flush, parallel-ingest registration, or
/// compaction commit) — the recorded snapshots are exactly the states a
/// crash is allowed to recover to.
fn seg_ops(fx: &IndexFixtures) -> Vec<SegOp<'_>> {
    vec![
        // Memtable flush: an overwrite plus an insert become one segment,
        // registered in one manifest commit.
        Box::new(|s| {
            s.put_tree(TreeId(1), &fx.a2)?;
            s.put_tree(TreeId(3), &fx.c)?;
            s.flush()
        }),
        // Tombstone flush: the segment shadows tree 2 without touching it.
        Box::new(|s| {
            s.remove_tree(TreeId(2))?;
            s.flush()
        }),
        // Parallel ingest: two segments built concurrently, one commit.
        Box::new(|s| {
            s.put_trees_parallel(&[(TreeId(4), fx.b.clone()), (TreeId(5), fx.c.clone())], 2)
        }),
        // Compaction: all segments fold into main generation 1; the old
        // main and every segment file are deleted after the commit.
        Box::new(|s| s.compact()),
        // Post-compaction incremental delta, flushed into a fresh segment.
        Box::new(|s| {
            let mut grams: Vec<_> = fx.a2.iter().map(|(g, _)| g).collect();
            grams.sort_unstable();
            let delta = IndexDelta {
                removals: grams.into_iter().take(2).collect(),
                additions: vec![0xfeed_f00d, 0x0dd_ba11],
            };
            s.apply_delta(TreeId(1), &delta)?;
            s.flush()
        }),
    ]
}

fn seg_contents(store: &SegmentedIndexStore) -> BTreeMap<u64, TreeIndex> {
    store
        .tree_ids()
        .unwrap()
        .into_iter()
        .map(|id| (id.0, store.tree_index(id).unwrap().unwrap()))
        .collect()
}

/// The segmented moat: for every mutating I/O event of a workload covering
/// flush, parallel ingest, manifest swap, and compaction — and every crash
/// mode — recovery lands on exactly a pre- or post-commit segment set,
/// passes structural verification, and never serves a hybrid forest.
#[test]
fn segmented_store_recovers_at_every_crash_point() {
    let fx = index_fixtures();

    let vfs = FaultVfs::new();
    let mut store = seg_setup(&vfs, &fx);
    let setup_events = vfs.io_events();
    let mut snapshots = vec![seg_contents(&store)];
    for op in seg_ops(&fx) {
        op(&mut store).unwrap();
        snapshots.push(seg_contents(&store));
    }
    drop(store);
    let total_events = vfs.io_events();
    assert!(total_events > setup_events, "mutation phase must do I/O");

    for mode in modes() {
        for n in setup_events..total_events {
            let vfs = FaultVfs::new();
            let mut store = seg_setup(&vfs, &fx);
            assert_eq!(vfs.io_events(), setup_events, "workload is deterministic");
            vfs.crash_at(n, mode.clone());
            for op in seg_ops(&fx) {
                let _ = op(&mut store);
            }
            drop(store);
            assert!(vfs.crashed(), "crash point {n} ({mode:?}) never fired");

            let reopened = SegmentedIndexStore::open_with(Path::new(DB), Arc::new(vfs.surviving()))
                .unwrap_or_else(|e| panic!("crash point {n} ({mode:?}): reopen failed: {e}"));
            reopened
                .verify()
                .unwrap_or_else(|e| panic!("crash point {n} ({mode:?}): verify failed: {e}"));
            // Every recovered source — main file and each live segment —
            // must carry a loadable gram filter: segment builds and
            // compactions write it before the manifest commit publishes
            // them.
            assert!(
                reopened.has_gram_filters(),
                "crash point {n} ({mode:?}): a recovered source lost its gram filter",
            );
            let recovered = seg_contents(&reopened);
            assert!(
                snapshots.contains(&recovered),
                "crash point {n} ({mode:?}): recovered to a hybrid state with ids {:?}",
                recovered.keys().collect::<Vec<_>>(),
            );
        }
    }
}
