//! Determinism and concurrency contracts of the parallel engine.
//!
//! 1. **Byte-identical ingest** — profiling a forest over any number of
//!    threads (`pqgram_core::par`) and feeding the batches to the single
//!    writer ([`IndexStore::put_trees`]) produces a store file that is
//!    byte-for-byte identical to the serial pipeline's. The parallel seam
//!    only fans out the pure profiling step; row order and transaction
//!    boundaries — everything the on-disk layout depends on — are fixed.
//!
//! 2. **Concurrent lookups** — any number of [`IndexStoreReader`] clones
//!    may run lookups at once (including multi-threaded verification
//!    phases), and every one of them returns exactly the serial answer.

use pqgram_core::{build_index, PQParams, TreeId, TreeIndex};
use pqgram_store::{IndexStore, IndexStoreReader};
use pqgram_tree::generate::{random_tree, RandomTreeConfig};
use pqgram_tree::{LabelTable, Tree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pqgram-par-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(name);
    std::fs::remove_file(&p).ok();
    let mut j = p.as_os_str().to_owned();
    j.push("-journal");
    std::fs::remove_file(PathBuf::from(j)).ok();
    p
}

fn forest(count: usize, nodes: usize) -> (Vec<(TreeId, Tree)>, LabelTable) {
    let mut rng = StdRng::seed_from_u64(0xf0_7e57);
    let mut labels = LabelTable::new();
    let docs = (0..count)
        .map(|i| {
            let tree = random_tree(&mut rng, &mut labels, &RandomTreeConfig::new(nodes, 6));
            (TreeId(i as u64), tree)
        })
        .collect();
    (docs, labels)
}

/// The full ingest pipeline: profile `docs` over `threads` workers, then
/// stream sorted batches of 10 into the single writer.
fn ingest(
    path: &PathBuf,
    docs: &[(TreeId, Tree)],
    labels: &LabelTable,
    threads: usize,
) -> IndexStore {
    let params = PQParams::default();
    let batch: Vec<(TreeId, TreeIndex)> = pqgram_core::par::map(docs, threads, |(id, tree)| {
        (*id, build_index(tree, labels, params))
    });
    let mut store = IndexStore::create(path, params).expect("create");
    for chunk in batch.chunks(10) {
        store.put_trees(chunk).expect("put_trees");
    }
    store.flush().expect("flush");
    store
}

#[test]
fn parallel_ingest_is_byte_identical_to_serial() {
    let (docs, labels) = forest(100, 60);
    let serial_path = tmp("serial.pqg");
    let serial = ingest(&serial_path, &docs, &labels, 1);
    drop(serial);
    for threads in [2usize, 4, 8] {
        let par_path = tmp(&format!("par{threads}.pqg"));
        let store = ingest(&par_path, &docs, &labels, threads);
        store.verify().expect("parallel-ingested store verifies");
        drop(store);
        let a = std::fs::read(&serial_path).expect("read serial file");
        let b = std::fs::read(&par_path).expect("read parallel file");
        assert!(
            a == b,
            "{threads}-thread ingest produced a different file ({} vs {} bytes)",
            b.len(),
            a.len()
        );
    }
}

#[test]
fn concurrent_readers_agree_with_serial_lookup() {
    let (docs, labels) = forest(60, 50);
    let params = PQParams::default();
    let indexes: Vec<(TreeId, TreeIndex)> = docs
        .iter()
        .map(|(id, tree)| (*id, build_index(tree, &labels, params)))
        .collect();
    let store = IndexStore::bulk_create(
        &tmp("readers.pqg"),
        params,
        indexes.iter().map(|(id, idx)| (*id, idx)),
    )
    .expect("bulk_create");

    let queries: Vec<TreeIndex> = indexes
        .iter()
        .step_by(7)
        .map(|(_, idx)| idx.clone())
        .collect();
    let tau = 0.8;
    let expected: Vec<_> = queries
        .iter()
        .map(|q| store.lookup(q, tau).expect("serial lookup"))
        .collect();

    let reader = store.into_reader();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|worker| {
                let reader: IndexStoreReader = reader.clone();
                let queries = &queries;
                let expected = &expected;
                scope.spawn(move || {
                    for _ in 0..5 {
                        for (q, want) in queries.iter().zip(expected) {
                            // Odd workers also fan out the verification
                            // phase, mixing thread counts under load.
                            let threads = 1 + (worker % 2) * 3;
                            let (hits, stats) = reader
                                .lookup_with_stats_threads(q, tau, threads)
                                .expect("concurrent lookup");
                            assert!(stats.used_inverted);
                            assert_eq!(&hits, want);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("reader thread");
        }
    });

    // All clones dropped: write access comes back.
    let store = match reader.try_into_store() {
        Ok(store) => store,
        Err(_) => panic!("no clones left, try_into_store must succeed"),
    };
    assert!(store.contains_tree(TreeId(0)).expect("contains"));
}

/// Reader storm across ingest rounds: between `put_trees` batches the
/// store flips into a shared reader, and a pack of threads hammers every
/// read surface at once (lookups, multi-threaded verification phases,
/// id scans) while asserting each read sees **exactly** the committed
/// post-batch snapshot — never a partially applied batch, never a stale
/// page resurrected by the buffer pool's eviction. Reads racing a write
/// are ruled out in the type system (`into_reader` consumes the store),
/// so "pre- or post-batch" collapses to "the snapshot the handle was
/// built from"; this test pins that down under thread contention, and is
/// the main workload of the nightly ThreadSanitizer job.
#[test]
fn reader_storm_sees_exact_post_batch_snapshots() {
    let (docs, labels) = forest(90, 40);
    let params = PQParams::default();
    let indexes: Vec<(TreeId, TreeIndex)> = docs
        .iter()
        .map(|(id, tree)| (*id, build_index(tree, &labels, params)))
        .collect();
    let mut store = IndexStore::create(&tmp("storm.pqg"), params).expect("create");
    let mut rng = StdRng::seed_from_u64(0x570_12);
    let tau = 0.9;
    for batch in indexes.chunks(30) {
        store.put_trees(batch).expect("batch ingest");

        // Serial post-batch oracle over randomized queries drawn from
        // everything ingested so far.
        let ids = store.tree_ids().expect("ids");
        let queries: Vec<TreeIndex> = (0..5)
            .map(|_| {
                let pick = rng.random_range(0..ids.len());
                indexes[ids[pick].0 as usize].1.clone()
            })
            .collect();
        let expected: Vec<Vec<_>> = queries
            .iter()
            .map(|q| store.lookup(q, tau).expect("oracle lookup"))
            .collect();

        let reader = store.into_reader();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..6)
                .map(|worker| {
                    let reader = reader.clone();
                    let (queries, expected, ids) = (&queries, &expected, &ids);
                    scope.spawn(move || {
                        for (q, want) in queries.iter().zip(expected) {
                            let threads = 1 + worker % 3;
                            let (hits, _) = reader
                                .lookup_with_stats_threads(q, tau, threads)
                                .expect("storm lookup");
                            assert_eq!(&hits, want, "lookup drifted from the snapshot");
                        }
                        assert_eq!(&reader.tree_ids().expect("ids"), ids);
                        let probe = ids[worker % ids.len()];
                        assert!(reader.contains_tree(probe).expect("contains"));
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("storm thread");
            }
        });
        store = match reader.try_into_store() {
            Ok(store) => store,
            Err(_) => panic!("no clones left, try_into_store must succeed"),
        };
    }
    store.verify().expect("post-storm store verifies");
}
