//! Model-based and stress tests for the storage engine: the B+-tree must
//! behave exactly like `std::collections::BTreeMap` under arbitrary
//! operation sequences, transactions must be all-or-nothing across crashes,
//! and the buffer pool must serve concurrent readers.

use pqgram_store::btree::{BTree, Key};
use pqgram_store::buffer::BufferPool;
use pqgram_store::{PageId, Pager};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pqgram-model-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(name);
    std::fs::remove_file(&p).ok();
    let mut j = p.as_os_str().to_owned();
    j.push("-journal");
    std::fs::remove_file(PathBuf::from(j)).ok();
    p
}

#[derive(Clone, Debug)]
enum Op {
    Insert(Key, u32),
    Delete(Key),
    Get(Key),
    Scan(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // A small key universe so operations collide often.
    let key = (0u64..4, 0u64..600).prop_map(|(a, b)| (a, b));
    prop_oneof![
        (key.clone(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k, v)),
        key.clone().prop_map(Op::Delete),
        key.prop_map(Op::Get),
        (0u64..4).prop_map(Op::Scan),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn btree_matches_btreemap_model(ops in proptest::collection::vec(op_strategy(), 1..400), case in 0u64..u64::MAX) {
        let path = tmp(&format!("model-{case}.db"));
        let pool = BufferPool::new(Pager::create(&path).unwrap(), 32);
        let tree = BTree::open(&pool, 0).unwrap();
        let mut model: BTreeMap<Key, u32> = BTreeMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    let expected = model.insert(k, v);
                    prop_assert_eq!(tree.insert(k, v).unwrap(), expected);
                }
                Op::Delete(k) => {
                    let expected = model.remove(&k);
                    prop_assert_eq!(tree.delete(k).unwrap(), expected);
                }
                Op::Get(k) => {
                    prop_assert_eq!(tree.get(k).unwrap(), model.get(&k).copied());
                }
                Op::Scan(t) => {
                    let mut got = Vec::new();
                    tree.for_each_range((t, 0), (t, u64::MAX), |k, v| {
                        got.push((k, v));
                        true
                    }).unwrap();
                    let expected: Vec<(Key, u32)> = model
                        .range((t, 0)..=(t, u64::MAX))
                        .map(|(&k, &v)| (k, v))
                        .collect();
                    prop_assert_eq!(got, expected);
                }
            }
        }
        prop_assert_eq!(tree.len().unwrap(), model.len() as u64);
        let check = tree.verify().unwrap();
        prop_assert_eq!(check.entries, model.len() as u64);
        pool.validate_pager().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crash_between_transactions_keeps_last_commit(
        committed in proptest::collection::vec((0u64..3, 0u64..200, any::<u32>()), 1..60),
        uncommitted in proptest::collection::vec((0u64..3, 0u64..200, any::<u32>()), 1..60),
        case in 0u64..u64::MAX,
    ) {
        let path = tmp(&format!("crash-{case}.db"));
        let mut model: BTreeMap<Key, u32> = BTreeMap::new();
        {
            let pool = BufferPool::new(Pager::create(&path).unwrap(), 16);
            let tree = BTree::open(&pool, 0).unwrap();
            pool.begin().unwrap();
            for &(a, b, v) in &committed {
                tree.insert((a, b), v).unwrap();
                model.insert((a, b), v);
            }
            pool.commit().unwrap();
            // Second transaction: crashes before commit.
            pool.begin().unwrap();
            for &(a, b, v) in &uncommitted {
                tree.insert((a, b), v.wrapping_add(1)).unwrap();
            }
            pool.flush().unwrap(); // dirty pages reach disk, journal is hot
            // Crash: drop everything without commit/rollback.
            std::mem::forget(pool);
        }
        let pool = BufferPool::new(Pager::open(&path).unwrap(), 16);
        let tree = BTree::open(&pool, 0).unwrap();
        let mut got = Vec::new();
        tree.for_each_range((0, 0), (u64::MAX, u64::MAX), |k, v| {
            got.push((k, v));
            true
        }).unwrap();
        let expected: Vec<(Key, u32)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(got, expected, "recovery must restore the last commit");
        tree.verify().unwrap();
        pool.validate_pager().unwrap();
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn concurrent_readers_share_the_pool() {
    let path = tmp("concurrent.db");
    let pool = BufferPool::new(Pager::create(&path).unwrap(), 64);
    let tree = BTree::open(&pool, 0).unwrap();
    for g in 0..20_000u64 {
        tree.insert((g % 8, g), g as u32).unwrap();
    }
    pool.flush().unwrap();
    std::thread::scope(|scope| {
        for t in 0..8u64 {
            let pool = &pool;
            scope.spawn(move || {
                let tree = BTree::open(pool, 0).unwrap();
                let mut count = 0u64;
                tree.for_each_range((t % 8, 0), (t % 8, u64::MAX), |_, _| {
                    count += 1;
                    true
                })
                .unwrap();
                assert_eq!(count, 2_500);
                for g in (0..20_000u64).step_by(101) {
                    let expect = (g % 8 == t % 8).then_some(g as u32);
                    let got = tree.get((t % 8, g)).unwrap();
                    if g % 8 == t % 8 {
                        assert_eq!(got, expect);
                    }
                }
            });
        }
    });
}

#[test]
fn reopen_after_many_transactions() {
    let path = tmp("manytx.db");
    {
        let pool = BufferPool::new(Pager::create(&path).unwrap(), 32);
        let tree = BTree::open(&pool, 0).unwrap();
        for round in 0..30u64 {
            pool.begin().unwrap();
            for g in 0..200u64 {
                tree.insert((round % 4, round * 1_000 + g), (round * g) as u32)
                    .unwrap();
            }
            if round % 5 == 4 {
                pool.rollback().unwrap();
            } else {
                pool.commit().unwrap();
            }
        }
    }
    let pool = BufferPool::new(Pager::open(&path).unwrap(), 32);
    let tree = BTree::open(&pool, 0).unwrap();
    // 30 rounds, every 5th rolled back -> 24 committed * 200 entries.
    assert_eq!(tree.len().unwrap(), 24 * 200);
    tree.verify().unwrap();
    pool.validate_pager().unwrap();
}

#[test]
fn header_page_is_never_handed_out() {
    let path = tmp("headerguard.db");
    let pool = BufferPool::new(Pager::create(&path).unwrap(), 8);
    let first = pool.allocate().unwrap();
    assert_ne!(first, PageId(0), "allocation must never return the header");
}

#[test]
fn bulk_create_equals_put_tree() {
    use pqgram_core::{build_index, PQParams, TreeId};
    use pqgram_store::IndexStore;
    use pqgram_tree::generate::{random_tree, RandomTreeConfig};
    use pqgram_tree::LabelTable;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let params = PQParams::default();
    let mut rng = StdRng::seed_from_u64(1);
    let mut lt = LabelTable::new();
    let indexes: Vec<_> = (0..12u64)
        .map(|i| {
            let t = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(150, 6));
            (TreeId(i), build_index(&t, &lt, params))
        })
        .collect();

    let bulk_path = tmp("bulk.pqg");
    let bulk = IndexStore::bulk_create(
        &bulk_path,
        params,
        indexes.iter().map(|(id, idx)| (*id, idx)),
    )
    .unwrap();
    bulk.verify().unwrap();

    let put_path = tmp("put.pqg");
    let mut put = IndexStore::create(&put_path, params).unwrap();
    for (id, idx) in &indexes {
        put.put_tree(*id, idx).unwrap();
    }
    for (id, idx) in &indexes {
        assert_eq!(bulk.tree_index(*id).unwrap().unwrap(), *idx);
        assert_eq!(put.tree_index(*id).unwrap().unwrap(), *idx);
    }
    assert_eq!(bulk.row_count().unwrap(), put.row_count().unwrap());
    // Bulk files are tighter than incrementally split files.
    let bulk_len = std::fs::metadata(&bulk_path).unwrap().len();
    let put_len = std::fs::metadata(&put_path).unwrap().len();
    assert!(bulk_len <= put_len, "bulk {bulk_len} > put {put_len}");
}

#[test]
fn compaction_preserves_content_and_shrinks() {
    use pqgram_core::{build_index, PQParams, TreeId};
    use pqgram_store::IndexStore;
    use pqgram_tree::generate::{random_tree, RandomTreeConfig};
    use pqgram_tree::LabelTable;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let params = PQParams::default();
    let mut rng = StdRng::seed_from_u64(2);
    let mut lt = LabelTable::new();
    let path = tmp("frag.pqg");
    let mut store = IndexStore::create(&path, params).unwrap();
    // Fragment the file: insert and remove several generations of trees.
    for round in 0..4u64 {
        for i in 0..8u64 {
            let t = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(200, 6));
            store
                .put_tree(TreeId(round * 100 + i), &build_index(&t, &lt, params))
                .unwrap();
        }
        if round < 3 {
            for i in 0..8u64 {
                store.remove_tree(TreeId(round * 100 + i)).unwrap();
            }
        }
    }
    store.flush().unwrap();
    let before = std::fs::metadata(&path).unwrap().len();
    let compact_path = tmp("compact.pqg");
    let compacted = store.compact_to(&compact_path).unwrap();
    compacted.verify().unwrap();
    let after = std::fs::metadata(&compact_path).unwrap().len();
    assert!(
        after < before,
        "compaction must shrink: {after} vs {before}"
    );
    assert_eq!(compacted.tree_ids().unwrap(), store.tree_ids().unwrap());
    for id in store.tree_ids().unwrap() {
        assert_eq!(
            compacted.tree_index(id).unwrap().unwrap(),
            store.tree_index(id).unwrap().unwrap()
        );
    }
}
