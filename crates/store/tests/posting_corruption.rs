//! On-disk corruption of posting-block pack pages must be *detected*,
//! never trusted and never a panic.
//!
//! A block-bearing store is bulk-built, then bytes of its pack pages
//! (tag byte `0xB7`) are bit-flipped one at a time. Every flipped store
//! must fail verification with a corruption error — and lookups against
//! it must return (`Ok` or `Err`), never panic or serve silently wrong
//! postings without the verifier also objecting.
//!
//! Exhaustive per-bit coverage of the *decoder* lives in the in-crate
//! unit tests (`postings::tests::every_single_bit_flip_is_detected`);
//! this suite proves the same property end-to-end through real files,
//! `IndexStore::open`, `verify`, and `lookup`.

use pqgram_core::{build_index, PQParams, TreeId, TreeIndex};
use pqgram_store::{IndexStore, PAGE_SIZE};
use pqgram_tree::{LabelTable, Tree};
use std::path::PathBuf;

/// Tag byte every pack page starts with (see `crates/store/src/postings.rs`).
const PACK_TAG: u8 = 0xB7;
/// Pack-page header length: tag, pad, n_entries u16, used u16, pad.
const PACK_HDR: usize = 8;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pqgram-postcorrupt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).ok();
    let p = dir.join(name);
    std::fs::remove_file(&p).ok();
    let mut j = p.as_os_str().to_owned();
    j.push("-journal");
    std::fs::remove_file(PathBuf::from(j)).ok();
    p
}

/// Deterministic tree: node `i` hangs off `i / 2`, five cycling labels.
fn sample_tree(lt: &mut LabelTable, tag: &str, nodes: usize) -> Tree {
    let mut tree = Tree::with_root(lt.intern(&format!("{tag}0")));
    let mut ids = vec![tree.root()];
    for i in 1..nodes {
        let parent = ids[i / 2];
        ids.push(tree.add_child(parent, lt.intern(&format!("{tag}{}", i % 5))));
    }
    tree
}

/// Builds a store whose inverted relation holds real posting blocks
/// (eight clones of one tree put every gram well over the threshold)
/// and returns its path plus a query index that probes those blocks.
fn block_bearing_store(name: &str) -> (PathBuf, TreeIndex) {
    let params = PQParams::new(2, 3);
    let mut lt = LabelTable::new();
    let tree = sample_tree(&mut lt, "x", 120);
    let idx = build_index(&tree, &lt, params);
    let forest: Vec<(TreeId, &TreeIndex)> = (1..=8).map(|i| (TreeId(i), &idx)).collect();
    let path = tmp(name);
    let store = IndexStore::bulk_create(&path, params, forest).unwrap();
    let check = store.verify().unwrap();
    assert!(check.blocks > 0, "fixture must contain posting blocks");
    drop(store);
    (path, idx)
}

/// Byte offsets of every pack page in the raw file image.
fn pack_page_offsets(image: &[u8]) -> Vec<usize> {
    (0..image.len() / PAGE_SIZE)
        .map(|p| p * PAGE_SIZE)
        .filter(|&off| image[off] == PACK_TAG)
        .collect()
}

/// Bytes used by entries on the pack page at `off` (little-endian u16 at
/// header offset 4), clamped to the page.
fn pack_used(image: &[u8], off: usize) -> usize {
    let used = u16::from_le_bytes([image[off + 4], image[off + 5]]) as usize;
    used.min(PAGE_SIZE - PACK_HDR)
}

/// Flips one bit, reopens, and demands loud detection: `open` or `verify`
/// must error, and a lookup through the corrupt block must not panic.
fn assert_flip_detected(path: &PathBuf, image: &[u8], bit: usize, query: &TreeIndex) {
    let mut bytes = image.to_vec();
    bytes[bit / 8] ^= 1 << (bit % 8);
    std::fs::write(path, &bytes).unwrap();
    match IndexStore::open(path) {
        Err(_) => {} // detected at open: acceptable and loud
        Ok(store) => {
            let verdict = store.verify();
            assert!(
                verdict.is_err(),
                "bit flip at byte {} bit {} went undetected by verify",
                bit / 8,
                bit % 8,
            );
            // Lookups across the corrupt block must stay panic-free: any
            // Err is fine, and an Ok must at least have been derivable
            // without decoding garbage (e.g. the flip hit a dead region).
            let _ = store.lookup(query, 0.4);
        }
    }
}

#[test]
fn every_sampled_bit_flip_in_pack_pages_is_detected() {
    let (path, query) = block_bearing_store("flips.pqg");
    let image = std::fs::read(&path).unwrap();
    let packs = pack_page_offsets(&image);
    assert!(!packs.is_empty(), "fixture must contain pack pages");

    let mut flips = 0usize;
    for &page in &packs {
        let used = pack_used(&image, page);
        // Every bit of the meaningful header fields and the first entry,
        // then a stride over the rest of the used region (the decoder's
        // own unit tests cover every bit of every encoding exhaustively).
        // Header bytes 1, 6 and 7 are padding: flips there are invisible
        // by design and excluded.
        let dense = (page * 8)..((page + PACK_HDR + 64).min(page + PACK_HDR + used) * 8);
        let sparse = (dense.end..(page + PACK_HDR + used) * 8).step_by(97);
        for bit in dense.chain(sparse) {
            if matches!(bit / 8 - page, 1 | 6 | 7) {
                continue;
            }
            assert_flip_detected(&path, &image, bit, &query);
            flips += 1;
        }
    }
    assert!(flips > 500, "sampling must actually cover bits ({flips})");
    // Restore the pristine image: the store must be healthy again.
    std::fs::write(&path, &image).unwrap();
    IndexStore::open(&path).unwrap().verify().unwrap();
}

#[test]
fn truncated_pack_entry_is_detected() {
    let (path, _query) = block_bearing_store("trunc.pqg");
    let mut image = std::fs::read(&path).unwrap();
    let packs = pack_page_offsets(&image);
    let page = packs[0];
    // Shrink `used` by one byte: the entry walk can no longer land exactly
    // on the recorded end and must report the page as corrupt.
    let used = pack_used(&image, page) as u16 - 1;
    image[page + 4..page + 6].copy_from_slice(&used.to_le_bytes());
    std::fs::write(&path, &image).unwrap();
    let verdict = IndexStore::open(&path).and_then(|s| Ok(s.verify()?));
    assert!(verdict.is_err(), "truncated pack entry went undetected");
}

#[test]
fn zeroed_pack_page_is_detected() {
    let (path, _query) = block_bearing_store("zeroed.pqg");
    let mut image = std::fs::read(&path).unwrap();
    let page = pack_page_offsets(&image)[0];
    image[page..page + PAGE_SIZE].fill(0);
    std::fs::write(&path, &image).unwrap();
    let verdict = IndexStore::open(&path).and_then(|s| Ok(s.verify()?));
    assert!(
        verdict.is_err(),
        "a directory entry points into a zeroed page; verify must object"
    );
}

// ---------------------------------------------------------------------------
// Segment + manifest header corruption (the fence probes live on top of
// segment files; the manifest's scalar slots bound open-time work)
// ---------------------------------------------------------------------------

/// Header-page layout constants (see `crates/store/src/pager.rs`): meta
/// slot `i` is the little-endian u64 at byte `24 + 8 * i` of page 0, and
/// the header CRC-32 covers bytes `0..PAGE_SIZE - 4`.
const OFF_META: usize = 24;
const OFF_HDR_CRC: usize = PAGE_SIZE - 4;

/// Rewrites meta slot `slot` of the header page in `image`, then repairs
/// the header CRC so only *semantic* validation can reject the value.
fn set_meta_raw(image: &mut [u8], slot: usize, value: u64) {
    let at = OFF_META + slot * 8;
    image[at..at + 8].copy_from_slice(&value.to_le_bytes());
    let crc = pqgram_store::crc::crc32(&image[..OFF_HDR_CRC]);
    image[OFF_HDR_CRC..OFF_HDR_CRC + 4].copy_from_slice(&crc.to_le_bytes());
}

/// Builds a segmented store with one flushed (live) segment holding real
/// posting blocks, returning `(base, query)`.
fn segmented_fixture(name: &str) -> (PathBuf, TreeIndex) {
    use pqgram_store::SegmentedIndexStore;
    let params = PQParams::new(2, 3);
    let mut lt = LabelTable::new();
    let tree = sample_tree(&mut lt, "x", 120);
    let idx = build_index(&tree, &lt, params);
    let base = tmp(name);
    for suffix in [".main.0", ".seg.0", ".seg.1"] {
        let mut p = base.as_os_str().to_owned();
        p.push(suffix);
        std::fs::remove_file(PathBuf::from(p)).ok();
    }
    let mut store = SegmentedIndexStore::create(&base, params).unwrap();
    for i in 1..=8 {
        store.put_tree(TreeId(i), &idx).unwrap();
    }
    store.flush().unwrap();
    assert_eq!(store.segment_count(), 1, "fixture must hold a live segment");
    store.verify().unwrap();
    drop(store);
    (base, idx)
}

/// Every semantically tampered manifest header (CRC repaired, so the
/// value is "validly committed" garbage) must fail open with an error,
/// never a panic, hang, or silent acceptance.
#[test]
fn tampered_manifest_headers_are_rejected() {
    use pqgram_store::SegmentedIndexStore;
    let (base, _query) = segmented_fixture("manifest.pqg");
    let pristine = std::fs::read(&base).unwrap();
    // (slot, value): wrong kind marker, wrong format version, zeroed
    // pq-parameters, and an HWM below the live segment sequence.
    for (slot, value) in [(7, 1u64), (7, 999), (6, 99), (1, 0), (2, 0), (4, 0)] {
        let mut image = pristine.clone();
        set_meta_raw(&mut image, slot, value);
        std::fs::write(&base, &image).unwrap();
        assert!(
            SegmentedIndexStore::open(&base).is_err(),
            "tampered manifest meta slot {slot} = {value} went undetected"
        );
    }
    std::fs::write(&base, &pristine).unwrap();
    SegmentedIndexStore::open(&base).unwrap().verify().unwrap();
}

/// An inflated high-water mark must not stall open: the orphan sweep is
/// probe-capped, so open terminates (quickly) and still serves lookups.
#[test]
fn inflated_high_water_mark_cannot_stall_open() {
    use pqgram_store::SegmentedIndexStore;
    let (base, query) = segmented_fixture("hwm.pqg");
    let mut image = std::fs::read(&base).unwrap();
    // Far above any real reservation, still above the live sequences.
    set_meta_raw(&mut image, 4, u64::MAX - 1);
    std::fs::write(&base, &image).unwrap();
    let store = SegmentedIndexStore::open(&base).expect("capped sweep must terminate");
    let hits = store.lookup(&query, 0.4).unwrap();
    assert!(!hits.is_empty(), "postings must survive the inflated mark");
}

/// Every semantically tampered segment header must fail open of the
/// segmented store (the segment's kind, version and parameters are
/// cross-checked against the manifest's).
#[test]
fn tampered_segment_headers_are_rejected() {
    use pqgram_store::SegmentedIndexStore;
    let (base, _query) = segmented_fixture("seghdr.pqg");
    let mut seg = base.as_os_str().to_owned();
    seg.push(".seg.0");
    let seg = PathBuf::from(seg);
    let pristine = std::fs::read(&seg).unwrap();
    for (slot, value) in [(7, 1u64), (7, 0), (6, 2), (6, 99), (1, 9), (2, 0)] {
        let mut image = pristine.clone();
        set_meta_raw(&mut image, slot, value);
        std::fs::write(&seg, &image).unwrap();
        assert!(
            SegmentedIndexStore::open(&base).is_err(),
            "tampered segment meta slot {slot} = {value} went undetected"
        );
    }
    std::fs::write(&seg, &pristine).unwrap();
    SegmentedIndexStore::open(&base).unwrap().verify().unwrap();
}

/// Bit flips inside a segment's pack pages must never mis-probe through
/// the learned fence: open may reject, otherwise verify must object and
/// lookups must stay panic-free.
#[test]
fn segment_pack_page_flips_never_misprobe_through_the_fence() {
    use pqgram_store::SegmentedIndexStore;
    let (base, query) = segmented_fixture("segflip.pqg");
    let mut seg = base.as_os_str().to_owned();
    seg.push(".seg.0");
    let seg = PathBuf::from(seg);
    let pristine = std::fs::read(&seg).unwrap();
    let packs = pack_page_offsets(&pristine);
    assert!(!packs.is_empty(), "segment must contain pack pages");

    let mut flips = 0usize;
    for &page in &packs {
        let used = pack_used(&pristine, page);
        for bit in ((page * 8)..(page + PACK_HDR + used) * 8).step_by(53) {
            if matches!(bit / 8 - page, 1 | 6 | 7) {
                continue;
            }
            let mut image = pristine.clone();
            image[bit / 8] ^= 1 << (bit % 8);
            std::fs::write(&seg, &image).unwrap();
            match SegmentedIndexStore::open(&base) {
                Err(_) => {}
                Ok(store) => {
                    // The flip may sit in a dead region; if verification
                    // passes, the lookup must agree with the pristine
                    // answer — a mis-probe here is silent wrong data.
                    let verdict = store.verify();
                    let looked = store.lookup(&query, 0.4);
                    if verdict.is_ok() {
                        assert!(
                            looked.is_ok(),
                            "verified store failed lookup after flip at byte {}",
                            bit / 8
                        );
                    }
                }
            }
            flips += 1;
        }
    }
    assert!(flips > 50, "sampling must actually cover bits ({flips})");
    std::fs::write(&seg, &pristine).unwrap();
    SegmentedIndexStore::open(&base).unwrap().verify().unwrap();
}

// ---------------------------------------------------------------------------
// Gram-filter corruption: the filter is *advisory*, so the failure mode
// inverts — damage must never change answers, only cost extra probes.
// A filter page whose CRC no longer matches is dropped at load; a header
// whose CRC was forged back to validity is rejected by semantic checks;
// forged *extra* bits keep the superset invariant and thus only produce
// false-positive probes.
// ---------------------------------------------------------------------------

/// Builds a store whose trees use disjoint label sets, so a query over
/// tree 1 genuinely exercises the gram filter (most stored grams are
/// absent from the query and vice versa), plus a "foreign" query sharing
/// no labels with the store at all. Returns `(path, member, foreign)`.
fn filter_bearing_store(name: &str) -> (PathBuf, TreeIndex, TreeIndex) {
    let params = PQParams::new(2, 3);
    let mut lt = LabelTable::new();
    let unique_tree = |tag: &str, nodes: usize, lt: &mut LabelTable| {
        let mut tree = Tree::with_root(lt.intern(&format!("{tag}root")));
        let mut ids = vec![tree.root()];
        for i in 1..nodes {
            let parent = ids[i / 2];
            ids.push(tree.add_child(parent, lt.intern(&format!("{tag}n{i}"))));
        }
        tree
    };
    let trees: Vec<Tree> = (0..6)
        .map(|t| unique_tree(&format!("u{t}"), 150, &mut lt))
        .collect();
    let indexes: Vec<TreeIndex> = trees.iter().map(|t| build_index(t, &lt, params)).collect();
    let forest: Vec<(TreeId, &TreeIndex)> = indexes
        .iter()
        .enumerate()
        .map(|(i, idx)| (TreeId(u64::try_from(i).unwrap_or(0) + 1), idx))
        .collect();
    let path = tmp(name);
    let store = IndexStore::bulk_create(&path, params, forest).unwrap();
    store.verify().unwrap();
    drop(store);
    let foreign = build_index(&unique_tree("zz", 80, &mut lt), &lt, params);
    (path, indexes[0].clone(), foreign)
}

/// The answer set probed by every tamper case: sub-unit and super-unit
/// thresholds plus a top-k plan, over a member and a foreign query.
fn filter_answers(
    path: &PathBuf,
    member: &TreeIndex,
    foreign: &TreeIndex,
) -> Vec<Vec<pqgram_core::LookupHit>> {
    let store = IndexStore::open(path).unwrap();
    vec![
        store.lookup(member, 0.8).unwrap(),
        store.lookup(member, 1.5).unwrap(),
        store.lookup(foreign, 0.8).unwrap(),
        store.lookup_top_k(member, 3).unwrap(),
    ]
}

/// Pristine and corrupted stores must answer identically for both
/// queries across threshold and top-k plans, and verification must still
/// pass: the filter is advisory, so damage to it is *not* a store error.
fn assert_same_answers(
    path: &PathBuf,
    member: &TreeIndex,
    foreign: &TreeIndex,
    baseline: &[Vec<pqgram_core::LookupHit>],
    what: &str,
) {
    IndexStore::open(path)
        .unwrap_or_else(|e| panic!("{what}: open failed: {e}"))
        .verify()
        .unwrap_or_else(|e| panic!("{what}: verify failed: {e}"));
    let got = filter_answers(path, member, foreign);
    for (i, (hits, base)) in got.iter().zip(baseline.iter()).enumerate() {
        assert_eq!(hits, base, "{what}: query {i} answered differently");
    }
}

/// A bit flip in a filter data page (CRC now stale) drops the filter at
/// load: answers identical, the only cost is un-skipped probes — visible
/// as the foreign query's filter skip counters falling to zero.
#[test]
fn flipped_filter_data_page_is_dropped_not_trusted() {
    let (path, member, foreign) = filter_bearing_store("filterflip.pqg");
    let baseline = filter_answers(&path, &member, &foreign);
    {
        let store = IndexStore::open(&path).unwrap();
        let (_, stats) = store.lookup_with_stats(&foreign, 0.8).unwrap();
        assert!(
            stats.grams_skipped_filter > 0,
            "pristine filter must actually skip foreign grams"
        );
    }
    let pristine = std::fs::read(&path).unwrap();
    let offsets = pqgram_store::fuzz::filter_page_offsets(&path).unwrap();
    assert!(offsets.len() >= 2, "filter must have data pages");

    // Flip one payload bit on every filter data page in turn.
    for &off in &offsets[1..] {
        let off = usize::try_from(off).unwrap();
        let mut image = pristine.clone();
        image[off + pqgram_store::fuzz::filter_layout::OFF_PAYLOAD + 17] ^= 0x20;
        std::fs::write(&path, &image).unwrap();
        assert!(
            !pqgram_store::fuzz::filter_load(&path).unwrap(),
            "stale-CRC filter page must be rejected"
        );
        assert_same_answers(&path, &member, &foreign, &baseline, "flipped data page");
        let store = IndexStore::open(&path).unwrap();
        let (_, stats) = store.lookup_with_stats(&foreign, 0.8).unwrap();
        assert_eq!(
            stats.grams_skipped_filter, 0,
            "dropped filter must not skip anything"
        );
    }
    std::fs::write(&path, &pristine).unwrap();
    IndexStore::open(&path).unwrap().verify().unwrap();
}

/// Forged *extra* bits (payload bytes forced to 0xFF, page CRC repaired)
/// keep the filter loadable and keep the superset invariant: verification
/// passes and answers stay identical — the damage can only manifest as
/// false-positive probes.
#[test]
fn forged_extra_filter_bits_only_cost_false_positive_probes() {
    use pqgram_store::fuzz::filter_layout as fl;
    let (path, member, foreign) = filter_bearing_store("filterbits.pqg");
    let baseline = filter_answers(&path, &member, &foreign);
    let pristine = std::fs::read(&path).unwrap();
    let offsets = pqgram_store::fuzz::filter_page_offsets(&path).unwrap();

    let mut image = pristine.clone();
    for &off in &offsets[1..] {
        let off = usize::try_from(off).unwrap();
        for b in 0..64 {
            image[off + fl::OFF_PAYLOAD + b * 9] = 0xFF;
        }
        let crc =
            pqgram_store::crc::crc32(&image[off + fl::OFF_PAYLOAD..off + fl::OFF_PAYLOAD + fl::DATA_PAYLOAD]);
        image[off + fl::OFF_PAGE_CRC..off + fl::OFF_PAGE_CRC + 4]
            .copy_from_slice(&crc.to_le_bytes());
    }
    std::fs::write(&path, &image).unwrap();
    assert!(
        pqgram_store::fuzz::filter_load(&path).unwrap(),
        "extra bits keep the filter loadable"
    );
    assert_same_answers(&path, &member, &foreign, &baseline, "forged extra bits");
}

/// Semantically tampered filter headers (CRC forged back to validity)
/// must be rejected by the plausibility checks — zero or absurd block
/// counts, inconsistent page counts, null page ids — and a rejected
/// filter never changes answers.
#[test]
fn tampered_filter_headers_are_rejected_cleanly() {
    use pqgram_store::fuzz::filter_layout as fl;
    let (path, member, foreign) = filter_bearing_store("filterhdr.pqg");
    let baseline = filter_answers(&path, &member, &foreign);
    let pristine = std::fs::read(&path).unwrap();
    let header = usize::try_from(pqgram_store::fuzz::filter_page_offsets(&path).unwrap()[0]).unwrap();

    // (offset-in-page, u64 value): nblocks 0 / huge, npages+nindirect
    // garbage, first direct page id nulled.
    let cases: &[(usize, u64)] = &[
        (8, 0),
        (8, u64::MAX),
        (8, (1 << 24) + 1),
        (32, u64::MAX),
        (40, 0),
        (40, u64::from(u32::MAX)),
    ];
    for &(at, value) in cases {
        let mut image = pristine.clone();
        image[header + at..header + at + 8].copy_from_slice(&value.to_le_bytes());
        let crc = pqgram_store::crc::crc32(&image[header..header + fl::OFF_HEADER_CRC]);
        image[header + fl::OFF_HEADER_CRC..header + fl::OFF_HEADER_CRC + 4]
            .copy_from_slice(&crc.to_le_bytes());
        std::fs::write(&path, &image).unwrap();
        assert!(
            !pqgram_store::fuzz::filter_load(&path).unwrap(),
            "forged header field at {at} = {value} must be rejected"
        );
        assert_same_answers(&path, &member, &foreign, &baseline, "forged header");
    }
    std::fs::write(&path, &pristine).unwrap();
    IndexStore::open(&path).unwrap().verify().unwrap();
}

/// A filter meta slot pointing at the wrong page (or no u32 page at all)
/// is rejected by the magic/plausibility checks, never trusted.
#[test]
fn filter_slot_pointing_at_garbage_is_rejected() {
    let (path, member, foreign) = filter_bearing_store("filterslot.pqg");
    let baseline = filter_answers(&path, &member, &foreign);
    let pristine = std::fs::read(&path).unwrap();
    // Slot 9 (`SLOT_FILTER`): a live non-filter page, then a non-u32 value.
    for value in [1u64, u64::MAX - 7] {
        let mut image = pristine.clone();
        set_meta_raw(&mut image, 9, value);
        std::fs::write(&path, &image).unwrap();
        assert!(
            !pqgram_store::fuzz::filter_load(&path).unwrap(),
            "filter slot {value} must be rejected"
        );
        assert_same_answers(&path, &member, &foreign, &baseline, "garbage filter slot");
    }
    std::fs::write(&path, &pristine).unwrap();
    IndexStore::open(&path).unwrap().verify().unwrap();
}

/// Inflating a pack page's length fields (entry count and used bytes) to
/// their u16 maxima must be detected as corruption — and must not drive a
/// huge allocation: the entry count is clamped against the smallest
/// physical entry before any `Vec::with_capacity`.
#[test]
fn inflated_pack_length_fields_are_rejected_without_overallocation() {
    let (path, _query) = block_bearing_store("inflate.pqg");
    let pristine = std::fs::read(&path).unwrap();
    let page = pack_page_offsets(&pristine)[0];
    for (off, value) in [(2usize, u16::MAX), (4, u16::MAX)] {
        let mut image = pristine.clone();
        image[page + off..page + off + 2].copy_from_slice(&value.to_le_bytes());
        std::fs::write(&path, &image).unwrap();
        let verdict = IndexStore::open(&path).and_then(|s| Ok(s.verify()?));
        assert!(
            verdict.is_err(),
            "inflated pack length field at offset {off} went undetected"
        );
    }
}
