//! The document store: documents *and* their pq-gram index in one file.
//!
//! [`crate::index_store::IndexStore`] implements exactly the paper's
//! scenario — the application supplies the edit log. `DocumentStore` covers
//! the common practical case where no instrumented editor exists: it keeps
//! the serialized document next to its index rows, and [`DocumentStore::sync`]
//! accepts a *new version* of a document, derives an edit script against the
//! stored version (`pqgram-diff`), preprocesses the log (Section 10), and
//! applies the incremental index update plus the new document blob in one
//! transaction.
//!
//! Header metadata slots: 0 = forward index root, 1 = `p`, 2 = `q`,
//! 3 = blob directory root, 4 = inverted index root, 5 = totals root,
//! 6 = format version, 7 = file-kind marker (see [`crate::ops`]).

use crate::blob::BlobStore;
use crate::btree::BTree;
use crate::buffer::{BufferPool, DEFAULT_CAPACITY};
use crate::ops::{LookupStats, StoreCheck};
use crate::pager::{Pager, StoreError};
use pqgram_core::maintain::{compute_index_delta, MaintainError, UpdateStats};
use pqgram_core::{build_index, GramKey, LookupHit, PQParams, TreeId, TreeIndex};
use pqgram_diff::DiffError;
use pqgram_tree::serial::{read_tree, write_tree};
use pqgram_tree::{optimize_log, LabelTable, Tree};
use std::fmt;
use std::path::Path;

const META_ROOT: usize = crate::ops::SLOT_FWD;
const META_P: usize = 1;
const META_Q: usize = 2;
const META_BLOBS: usize = 3;
const META_KIND: usize = 7;
const KIND_DOCUMENT_STORE: u64 = 2;

/// Errors of the document store.
#[derive(Debug)]
pub enum DocError {
    /// Underlying storage failure.
    Store(StoreError),
    /// Incremental maintenance failure.
    Maintain(MaintainError),
    /// The diff could not produce a script (e.g. the root label changed and
    /// `sync` was asked not to fall back).
    Diff(DiffError),
    /// Operation on a document that is not in the store.
    UnknownDocument(TreeId),
    /// A delta removal referenced a gram the stored index does not have.
    InconsistentDelta(TreeId, GramKey),
    /// The stored blob could not be decoded.
    CorruptDocument(TreeId, String),
}

impl fmt::Display for DocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DocError::Store(e) => write!(f, "storage error: {e}"),
            DocError::Maintain(e) => write!(f, "maintenance error: {e}"),
            DocError::Diff(e) => write!(f, "diff error: {e}"),
            DocError::UnknownDocument(t) => write!(f, "document {t:?} is not in the store"),
            DocError::InconsistentDelta(t, g) => {
                write!(f, "delta removes gram {g:#x} absent from {t:?}")
            }
            DocError::CorruptDocument(t, m) => write!(f, "document {t:?} corrupt: {m}"),
        }
    }
}

impl std::error::Error for DocError {}

impl From<StoreError> for DocError {
    fn from(e: StoreError) -> Self {
        DocError::Store(e)
    }
}

impl From<MaintainError> for DocError {
    fn from(e: MaintainError) -> Self {
        DocError::Maintain(e)
    }
}

impl From<DiffError> for DocError {
    fn from(e: DiffError) -> Self {
        DocError::Diff(e)
    }
}

type Result<T> = std::result::Result<T, DocError>;

/// Rejects a query built with different `p, q` parameters — comparing
/// grams across parameterizations would be silently wrong.
fn check_params(got: PQParams, expected: PQParams) -> Result<()> {
    if got == expected {
        Ok(())
    } else {
        Err(DocError::Store(StoreError::InvalidArgument(format!(
            "parameter mismatch: got {got:?}, store built with {expected:?}"
        ))))
    }
}

/// How [`DocumentStore::sync`] brought the stored document up to date.
#[derive(Clone, Debug)]
pub enum SyncOutcome {
    /// An edit script was derived and the index updated incrementally.
    Incremental {
        /// Edit operations in the derived script.
        script_len: usize,
        /// Operations left after log preprocessing.
        optimized_len: usize,
        /// Maintenance timing breakdown.
        stats: UpdateStats,
    },
    /// The diff was impossible (root relabeled); the document was re-indexed
    /// from scratch.
    Reindexed,
}

/// Documents plus their pq-gram index, in one transactional file.
pub struct DocumentStore {
    pool: BufferPool,
    params: PQParams,
}

impl DocumentStore {
    /// Creates a new document store.
    pub fn create(path: &Path, params: PQParams) -> Result<DocumentStore> {
        Self::create_with(path, params, std::sync::Arc::new(crate::vfs::RealVfs))
    }

    /// [`DocumentStore::create`] on an explicit [`crate::vfs::Vfs`] (fault
    /// injection, tests).
    // analyze: txn-exempt(store bootstrap: runs during create before any reader can open the file; callers treat a failed create as fatal and discard the half-built store)
    pub fn create_with(
        path: &Path,
        params: PQParams,
        vfs: std::sync::Arc<dyn crate::vfs::Vfs>,
    ) -> Result<DocumentStore> {
        let pool = BufferPool::new(Pager::create_with(path, vfs)?, DEFAULT_CAPACITY);
        pool.set_meta(META_P, params.p() as u64)?;
        pool.set_meta(META_Q, params.q() as u64)?;
        pool.set_meta(META_KIND, KIND_DOCUMENT_STORE)?;
        crate::ops::init_relations(&pool)?;
        BlobStore::open(&pool, META_BLOBS)?;
        pool.flush()?;
        Ok(DocumentStore { pool, params })
    }

    /// Opens an existing document store (with crash recovery).
    pub fn open(path: &Path) -> Result<DocumentStore> {
        Self::open_with(path, std::sync::Arc::new(crate::vfs::RealVfs))
    }

    /// [`DocumentStore::open`] on an explicit [`crate::vfs::Vfs`] (fault
    /// injection, tests).
    // analyze: entrypoint(recovery)
    pub fn open_with(
        path: &Path,
        vfs: std::sync::Arc<dyn crate::vfs::Vfs>,
    ) -> Result<DocumentStore> {
        let pool = BufferPool::new(Pager::open_with(path, vfs)?, DEFAULT_CAPACITY);
        if pool.meta(META_KIND) != KIND_DOCUMENT_STORE {
            return Err(DocError::Store(StoreError::Corrupt(
                "not a document store (kind marker mismatch)".into(),
            )));
        }
        let (p, q) = (pool.meta(META_P) as usize, pool.meta(META_Q) as usize);
        let Some(params) = PQParams::try_new(p, q) else {
            return Err(DocError::Store(StoreError::Corrupt(
                "missing pq parameters".into(),
            )));
        };
        crate::ops::ensure_format(&pool)?;
        Ok(DocumentStore { pool, params })
    }

    /// The pq-gram parameters of this store.
    pub fn params(&self) -> PQParams {
        self.params
    }

    /// Stores (or replaces) a document and its index. Transactional.
    // analyze: entrypoint
    pub fn put(&mut self, id: TreeId, tree: &Tree, labels: &LabelTable) -> Result<()> {
        let index = build_index(tree, labels, self.params);
        let mut blob = Vec::new();
        write_tree(&mut blob, tree, labels).map_err(|e| DocError::Store(StoreError::Io(e)))?;
        self.transactional(|store| {
            crate::ops::delete_tree_entries(&store.pool, id)?;
            crate::ops::put_tree_entries(&store.pool, id, &index)?;
            let blobs = BlobStore::open(&store.pool, META_BLOBS)?;
            blobs.put(id.0, &blob)?;
            Ok(())
        })
    }

    /// Loads a stored document (tree + its label table).
    pub fn document(&self, id: TreeId) -> Result<Option<(Tree, LabelTable)>> {
        let blobs = BlobStore::open(&self.pool, META_BLOBS)?;
        let Some(bytes) = blobs.get(id.0)? else {
            return Ok(None);
        };
        read_tree(&mut bytes.as_slice())
            .map(Some)
            .map_err(|e| DocError::CorruptDocument(id, e.to_string()))
    }

    /// The stored index of a document.
    pub fn document_index(&self, id: TreeId) -> Result<Option<TreeIndex>> {
        Ok(crate::ops::tree_index(&self.pool, self.params, id)?)
    }

    /// Removes a document (blob + index rows). Returns `true` if present.
    pub fn remove(&mut self, id: TreeId) -> Result<bool> {
        let blobs = BlobStore::open(&self.pool, META_BLOBS)?;
        if !blobs.contains(id.0)? {
            return Ok(false);
        }
        self.transactional(|store| {
            crate::ops::delete_tree_entries(&store.pool, id)?;
            let blobs = BlobStore::open(&store.pool, META_BLOBS)?;
            blobs.delete(id.0)?;
            Ok(())
        })?;
        Ok(true)
    }

    /// All stored document ids, ascending.
    pub fn ids(&self) -> Result<Vec<TreeId>> {
        let blobs = BlobStore::open(&self.pool, META_BLOBS)?;
        Ok(blobs.keys()?.into_iter().map(TreeId).collect())
    }

    /// Brings document `id` up to date with `new_tree`: derives an edit
    /// script against the stored version, preprocesses it, updates the index
    /// incrementally, and stores the new document blob — all in one
    /// transaction. Falls back to a full re-index when the diff is
    /// impossible (root relabeled).
    // analyze: entrypoint
    pub fn sync(
        &mut self,
        id: TreeId,
        new_tree: &Tree,
        new_labels: &LabelTable,
    ) -> Result<SyncOutcome> {
        let Some((mut tree, mut labels)) = self.document(id)? else {
            return Err(DocError::UnknownDocument(id));
        };
        let log = match pqgram_diff::sync(&mut tree, &mut labels, new_tree, new_labels) {
            Ok(log) => log,
            Err(DiffError::RootRelabeled) => {
                self.put(id, new_tree, new_labels)?;
                return Ok(SyncOutcome::Reindexed);
            }
            Err(e) => return Err(e.into()),
        };
        let script_len = log.len();
        let (optimized, _) = optimize_log(&tree, &log);
        let (delta, stats) = compute_index_delta(&tree, &labels, &optimized, self.params)?;

        let mut blob = Vec::new();
        write_tree(&mut blob, &tree, &labels).map_err(|e| DocError::Store(StoreError::Io(e)))?;
        let t = std::time::Instant::now();
        let mut apply_err = None;
        self.transactional(|store| {
            if let (Some(gram), _) = crate::ops::apply_delta_rows(&store.pool, id, &delta)? {
                apply_err = Some(DocError::InconsistentDelta(id, gram));
                return Err(DocError::InconsistentDelta(id, gram));
            }
            let blobs = BlobStore::open(&store.pool, META_BLOBS)?;
            blobs.put(id.0, &blob)?;
            Ok(())
        })?;
        let mut stats = stats;
        stats.apply = t.elapsed();
        Ok(SyncOutcome::Incremental {
            script_len,
            optimized_len: optimized.len(),
            stats,
        })
    }

    /// Approximate lookup over the stored forest: the candidate-merge plan
    /// over the inverted relation for `τ ≤ 1`, an exhaustive forward scan
    /// for `τ > 1`.
    pub fn lookup(&self, query: &TreeIndex, tau: f64) -> Result<Vec<LookupHit>> {
        Ok(self.lookup_with_stats(query, tau)?.0)
    }

    /// [`DocumentStore::lookup`] also returning the access-path counters of
    /// the executed plan.
    // analyze: entrypoint
    pub fn lookup_with_stats(
        &self,
        query: &TreeIndex,
        tau: f64,
    ) -> Result<(Vec<LookupHit>, LookupStats)> {
        check_params(query.params(), self.params)?;
        Ok(crate::ops::lookup_with_stats(
            &self.pool,
            &crate::ops::SourceProbe::default(),
            query,
            tau,
            1,
        )?)
    }

    /// Number of index rows.
    pub fn row_count(&self) -> Result<u64> {
        Ok(BTree::open(&self.pool, META_ROOT)?.len()?)
    }

    /// Verifies the on-disk B+-tree invariants of all three index relations
    /// plus their cross-relation consistency (see
    /// [`crate::ops::verify_relations`]).
    pub fn verify(&self) -> Result<StoreCheck> {
        Ok(crate::ops::verify_relations(&self.pool)?)
    }

    /// Whether the persisted gram filter loads — see
    /// `IndexStore::has_gram_filter`; crash tests assert this after every
    /// recovery.
    #[doc(hidden)]
    pub fn has_gram_filter(&self) -> Result<bool> {
        Ok(crate::filter::load(&self.pool)?.is_some())
    }

    // analyze: txn-boundary
    fn transactional(&mut self, f: impl FnOnce(&Self) -> Result<()>) -> Result<()> {
        self.pool.begin()?;
        match f(self) {
            Ok(()) => {
                self.pool.commit()?;
                // Debug builds audit the full storage invariants after
                // every committed mutation; release builds pay nothing.
                #[cfg(debug_assertions)]
                {
                    crate::ops::verify_relations(&self.pool)?;
                    self.pool.validate_pager()?;
                }
                Ok(())
            }
            Err(e) => {
                self.pool.rollback()?;
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqgram_tree::generate::{dblp, random_tree, RandomTreeConfig};
    use pqgram_tree::{record_script, ScriptConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::path::PathBuf;

    type TestResult = std::result::Result<(), Box<dyn std::error::Error>>;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pqgram-docstore-{}", std::process::id()));
        std::fs::create_dir_all(&dir).ok();
        let p = dir.join(name);
        std::fs::remove_file(&p).ok();
        let mut j = p.as_os_str().to_owned();
        j.push("-journal");
        std::fs::remove_file(PathBuf::from(j)).ok();
        p
    }

    #[test]
    fn put_document_and_read_back() -> TestResult {
        let params = PQParams::default();
        let mut rng = StdRng::seed_from_u64(1);
        let mut lt = LabelTable::new();
        let tree = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(150, 5));
        let mut store = DocumentStore::create(&tmp("put.docs"), params)?;
        store.put(TreeId(1), &tree, &lt)?;
        let (back, back_lt) = store.document(TreeId(1))?.ok_or("document 1 missing")?;
        assert_eq!(back.node_count(), tree.node_count());
        // Label-name sequences match (ids are renumbered by serialization).
        let names = |t: &Tree, l: &LabelTable| -> Vec<String> {
            t.preorder(t.root())
                .map(|n| l.name(t.label(n)).to_string())
                .collect()
        };
        assert_eq!(names(&tree, &lt), names(&back, &back_lt));
        assert_eq!(
            store
                .document_index(TreeId(1))?
                .ok_or("index for tree 1 missing")?,
            build_index(&tree, &lt, params)
        );
        Ok(())
    }

    #[test]
    fn sync_applies_incremental_update() -> TestResult {
        let params = PQParams::default();
        let mut rng = StdRng::seed_from_u64(2);
        let mut lt = LabelTable::new();
        let mut tree = dblp(&mut rng, &mut lt, 3_000);
        let mut store = DocumentStore::create(&tmp("sync.docs"), params)?;
        store.put(TreeId(1), &tree, &lt)?;

        // The document evolves elsewhere; only the new version arrives.
        let alphabet: Vec<_> = lt.iter().map(|(s, _)| s).collect();
        record_script(&mut rng, &mut tree, &ScriptConfig::new(40, alphabet));
        let outcome = store.sync(TreeId(1), &tree, &lt)?;
        match outcome {
            SyncOutcome::Incremental {
                script_len,
                optimized_len,
                ..
            } => {
                assert!(script_len > 0);
                assert!(optimized_len <= script_len);
                // A 40-edit change must not look like a full rewrite.
                assert!(script_len < 600, "script_len {script_len}");
            }
            SyncOutcome::Reindexed => return Err("expected incremental sync".into()),
        }
        // The stored index equals a rebuild of the new version.
        let stored = store
            .document_index(TreeId(1))?
            .ok_or("index for tree 1 missing")?;
        assert_eq!(stored, build_index(&tree, &lt, params));
        // The stored document matches the new version.
        let (back, back_lt) = store.document(TreeId(1))?.ok_or("document 1 missing")?;
        let names = |t: &Tree, l: &LabelTable| -> Vec<String> {
            t.preorder(t.root())
                .map(|n| l.name(t.label(n)).to_string())
                .collect()
        };
        assert_eq!(names(&tree, &lt), names(&back, &back_lt));
        Ok(())
    }

    #[test]
    fn repeated_syncs_stay_consistent() -> TestResult {
        let params = PQParams::new(2, 3);
        let mut rng = StdRng::seed_from_u64(3);
        let mut lt = LabelTable::new();
        let mut tree = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(400, 6));
        let mut store = DocumentStore::create(&tmp("repeat.docs"), params)?;
        store.put(TreeId(9), &tree, &lt)?;
        for round in 0..5 {
            let alphabet: Vec<_> = lt.iter().map(|(s, _)| s).collect();
            record_script(&mut rng, &mut tree, &ScriptConfig::new(15, alphabet));
            store.sync(TreeId(9), &tree, &lt)?;
            let stored = store
                .document_index(TreeId(9))?
                .ok_or("index for tree 9 missing")?;
            assert_eq!(stored, build_index(&tree, &lt, params), "round {round}");
        }
        Ok(())
    }

    #[test]
    fn root_relabel_falls_back_to_reindex() -> TestResult {
        let params = PQParams::default();
        let mut lt = LabelTable::new();
        let mut t1 = Tree::with_root(lt.intern("old-root"));
        t1.add_child(t1.root(), lt.intern("x"));
        let mut store = DocumentStore::create(&tmp("fallback.docs"), params)?;
        store.put(TreeId(1), &t1, &lt)?;
        let mut t2 = Tree::with_root(lt.intern("new-root"));
        t2.add_child(t2.root(), lt.intern("x"));
        let outcome = store.sync(TreeId(1), &t2, &lt)?;
        assert!(matches!(outcome, SyncOutcome::Reindexed));
        assert_eq!(
            store
                .document_index(TreeId(1))?
                .ok_or("index for tree 1 missing")?,
            build_index(&t2, &lt, params)
        );
        Ok(())
    }

    #[test]
    fn sync_unknown_document_fails() -> TestResult {
        let params = PQParams::default();
        let mut lt = LabelTable::new();
        let t = Tree::with_root(lt.intern("a"));
        let mut store = DocumentStore::create(&tmp("unknown.docs"), params)?;
        assert!(matches!(
            store.sync(TreeId(5), &t, &lt),
            Err(DocError::UnknownDocument(TreeId(5)))
        ));
        Ok(())
    }

    #[test]
    fn remove_drops_blob_and_rows() -> TestResult {
        let params = PQParams::default();
        let mut rng = StdRng::seed_from_u64(4);
        let mut lt = LabelTable::new();
        let tree = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(80, 4));
        let mut store = DocumentStore::create(&tmp("remove.docs"), params)?;
        store.put(TreeId(1), &tree, &lt)?;
        assert!(store.remove(TreeId(1))?);
        assert!(!store.remove(TreeId(1))?);
        assert!(store.document(TreeId(1))?.is_none());
        assert_eq!(store.row_count()?, 0);
        assert!(store.ids()?.is_empty());
        Ok(())
    }

    #[test]
    fn reopen_and_lookup() -> TestResult {
        let params = PQParams::default();
        let path = tmp("reopen.docs");
        let mut rng = StdRng::seed_from_u64(5);
        let mut lt = LabelTable::new();
        let trees: Vec<_> = (0..5)
            .map(|_| random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(120, 5)))
            .collect();
        {
            let mut store = DocumentStore::create(&path, params)?;
            for (i, t) in trees.iter().enumerate() {
                store.put(TreeId(i as u64), t, &lt)?;
            }
        }
        let store = DocumentStore::open(&path)?;
        assert_eq!(store.ids()?.len(), 5);
        let query = build_index(trees.get(2).ok_or("tree 2 missing")?, &lt, params);
        let hits = store.lookup(&query, 0.9)?;
        let best = hits.first().ok_or("no lookup hits")?;
        assert_eq!(best.tree_id, TreeId(2));
        assert!(best.distance.abs() < 1e-12);
        Ok(())
    }

    #[test]
    fn index_store_file_is_rejected() -> TestResult {
        let params = PQParams::default();
        let path = tmp("wrongkind.docs");
        crate::IndexStore::create(&path, params)?;
        let err = match DocumentStore::open(&path) {
            Ok(_) => return Err("open accepted an index-store file".into()),
            Err(e) => e,
        };
        assert!(matches!(err, DocError::Store(StoreError::Corrupt(_))));
        Ok(())
    }
}
